"""Flow-analyzer incremental cache benchmark: cold vs warm analysis.

Runs the whole-program flow analysis over ``src/tussle`` twice against
a fresh cache directory: once cold (every file parsed and summarized)
and once warm (every summary served from the SHA-256-keyed cache, only
the link phase executes).  Records both wall times into
``benchmarks/results/bench_lint_flow.json`` and asserts the warm run is
at least :data:`MIN_WARM_SPEEDUP` times faster — the property that makes
the CI ``actions/cache`` wiring worth its YAML.

Timing uses the best of :data:`ROUNDS` rounds per phase so one GC pause
cannot fake (or mask) a regression; the cache is rebuilt from scratch
before every cold round.
"""

import pathlib
import shutil

import pytest

from tussle.lint import run_flow
from tussle.obs import Profiler
from tussle.obs.bench import bench_record, write_bench_record

PACKAGE_DIR = pathlib.Path(__file__).resolve().parent.parent / "src" / "tussle"

#: Required cold/warm ratio.  Measured ~9-10x on the CI container class;
#: 5x leaves room for noisy neighbours without letting the cache rot
#: into a no-op.
MIN_WARM_SPEEDUP = 5.0
ROUNDS = 3


@pytest.mark.skipif(not PACKAGE_DIR.is_dir(),
                    reason="source checkout layout required")
def test_flow_cache_cold_vs_warm(results_dir, tmp_path):
    cache_dir = tmp_path / "flow-cache"
    profiler = Profiler()

    reports = {}
    for _ in range(ROUNDS):
        shutil.rmtree(cache_dir, ignore_errors=True)
        with profiler.time("cold"):
            reports["cold"] = run_flow([PACKAGE_DIR], cache_dir=cache_dir)
        with profiler.time("warm"):
            reports["warm"] = run_flow([PACKAGE_DIR], cache_dir=cache_dir)

    cold = reports["cold"]
    warm = reports["warm"]
    assert cold.cache_stats["hits"] == 0
    assert warm.cache_stats["misses"] == 0
    assert warm.cache_stats["hits"] == warm.files_scanned
    # The cache must be invisible to the analysis results.
    assert [f.to_dict() for f in warm.findings] == \
           [f.to_dict() for f in cold.findings]
    assert warm.kernel_candidates == cold.kernel_candidates

    cold_s = profiler.min_seconds("cold")
    warm_s = profiler.min_seconds("warm")
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    record = bench_record(
        "LINT_FLOW", profiler=profiler, timing_key="warm",
        files_scanned=warm.files_scanned,
        cold_seconds=cold_s, warm_seconds=warm_s,
        warm_speedup=speedup,
        min_speedup_required=MIN_WARM_SPEEDUP,
        kernel_candidates=len(warm.kernel_candidates),
    )
    write_bench_record(results_dir, record)

    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm flow analysis only {speedup:.2f}x faster than cold "
        f"({cold_s:.3f}s -> {warm_s:.3f}s); the incremental cache should "
        f"buy >= {MIN_WARM_SPEEDUP}x"
    )
