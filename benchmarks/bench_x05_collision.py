"""Benchmark: the VoIP actor-network collision (paper §II-C).

Regenerates the collision measurements; the table is written to
benchmarks/results/ and the turbulence/yielding shapes asserted.
"""

from tussle.experiments import run_x05

from conftest import run_and_record


def test_x05_collision(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_x05)
