"""Benchmark: Encryption/blocking escalation (paper §VI-A).

Regenerates wiretap measurement plus competition sweep of the game; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e11

from conftest import run_and_record


def test_e11_encryption(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e11)
