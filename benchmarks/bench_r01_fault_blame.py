"""Benchmark: fault-blame routing under chaos (paper §VI-A).

Regenerates the structural link-failure table and the seeded chaos
probe sweep; written to benchmarks/results/ with the blame-routing
shape asserted.
"""

from tussle.experiments import run_r01

from conftest import run_and_record


def test_r01_fault_blame(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_r01)
