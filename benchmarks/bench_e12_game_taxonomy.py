"""Benchmark: Game-theoretic tussle taxonomy (paper §II-B).

Regenerates classification/solving of canonical games; Vickrey/VCG; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e12

from conftest import run_and_record


def test_e12_game_taxonomy(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e12)
