"""Shared helpers for the benchmark suite.

Each benchmark runs one experiment (E01-E12), times it with
pytest-benchmark, asserts that the paper's qualitative shape holds, and
persists two artifacts under ``benchmarks/results/``:

* ``<id>.txt`` — the regenerated table, so the rows survive pytest's
  output capture;
* ``bench_<id>.json`` — a machine-readable benchmark record (timing from
  the sanctioned :class:`tussle.obs.Profiler`, event counters from a
  per-run :class:`tussle.obs.Metrics` registry) emitted via
  :mod:`tussle.obs.bench`.
"""

import pathlib

import pytest

from tussle.obs import Metrics, Profiler, observe
from tussle.obs.bench import bench_record, write_bench_record

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def run_and_record(benchmark, results_dir, run_experiment, rounds=1):
    """Benchmark an experiment once, persist its artifacts, assert shape.

    The profiler is shared across rounds (so ``wall_seconds_min`` is the
    best of N); the metrics registry is rebuilt per round so counters
    describe exactly one run.
    """
    profiler = Profiler()
    state = {}

    def timed_run():
        metrics = Metrics()
        with observe(metrics=metrics, profiler=profiler):
            with profiler.time("experiment"):
                result = run_experiment()
        state["metrics"] = metrics
        return result

    result = benchmark.pedantic(timed_run, rounds=rounds, iterations=1)
    path = results_dir / f"{result.experiment_id.lower()}.txt"
    path.write_text(result.format() + "\n")
    record = bench_record(result.experiment_id, metrics=state["metrics"],
                          profiler=profiler, result=result)
    write_bench_record(results_dir, record)
    assert result.shape_holds, (
        f"{result.experiment_id} lost the paper's shape: "
        + "; ".join(c.claim for c in result.checks if not c.holds)
    )
    return result
