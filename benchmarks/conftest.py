"""Shared helpers for the benchmark suite.

Each benchmark runs one experiment (E01-E12), times it with
pytest-benchmark, asserts that the paper's qualitative shape holds, and
writes the regenerated table to ``benchmarks/results/<id>.txt`` so the
rows survive pytest's output capture.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_and_record(benchmark, results_dir, run_experiment, rounds=1):
    """Benchmark an experiment once, persist its table, assert its shape."""
    result = benchmark.pedantic(run_experiment, rounds=rounds, iterations=1)
    path = results_dir / f"{result.experiment_id.lower()}.txt"
    path.write_text(result.format() + "\n")
    assert result.shape_holds, (
        f"{result.experiment_id} lost the paper's shape: "
        + "; ".join(c.claim for c in result.checks if not c.holds)
    )
    return result
