"""Benchmark: Residential broadband open access (paper §V-A-3).

Regenerates facility count x open-access regime sweep; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e03

from conftest import run_and_record


def test_e03_broadband(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e03)
