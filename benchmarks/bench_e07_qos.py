"""Benchmark: QoS deployment fear/greed factorial (paper §VII).

Regenerates 2x2 equilibrium analysis plus the no-closed-deployment ablation; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e07

from conftest import run_and_record


def test_e07_qos(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e07)
