"""Benchmark: topology generation and valley-free convergence at scale.

Two blocking gates (the CI ``topogen`` job runs them):

* generating the default 10^3-AS tiered internet — twice, asserting
  byte-identical canonical JSON along the way — stays inside its
  budget;
* the valley-free fast path converges the full 10^3 x 10^3 RIB in
  under :data:`CONVERGENCE_BUDGET_S` seconds, the ISSUE's headline
  number (the scalar protocol takes minutes on the same graph).

The 10^4-AS tier (generation plus a 64-destination RIB) rides behind
the ``slow`` marker.  Timings land in ``benchmarks/results/`` via the
sanctioned :mod:`tussle.obs` wall-clock channel and feed the
``obs perf`` ledger.
"""

import pytest

from tussle.obs import Profiler
from tussle.obs.bench import bench_record, write_bench_record
from tussle.routing import PathVectorRouting
from tussle.scale.vrouting import converge_valley_free
from tussle.topogen import TopogenConfig, generate_internet, graph_to_json

from conftest import RESULTS_DIR

SEED = 0
GENERATION_BUDGET_S = 30.0
CONVERGENCE_BUDGET_S = 10.0


def _persist(bench_id, profiler, speedups=None):
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    record = bench_record(bench_id, profiler=profiler,
                          speedups=speedups or {})
    write_bench_record(RESULTS_DIR, record)


def test_generate_1e3_deterministic_within_budget(benchmark):
    """Blocking: the 10^3-AS graph generates fast and reproducibly."""
    config = TopogenConfig(n_ases=1000)
    profiler = Profiler()

    def generate_twice():
        with profiler.time("generate/1000"):
            first = graph_to_json(generate_internet(config, seed=SEED))
        with profiler.time("generate/1000"):
            second = graph_to_json(generate_internet(config, seed=SEED))
        return first, second

    first, second = benchmark.pedantic(generate_twice, rounds=1, iterations=1)
    _persist("topogen_generate_1e3", profiler)
    assert first == second, "same (config, seed) must be byte-identical"
    assert profiler.min_seconds("generate/1000") < GENERATION_BUDGET_S


def test_convergence_1e3_full_rib_within_budget(benchmark):
    """Blocking: full-matrix valley-free convergence at 10^3 ASes in
    seconds — the reason converge_fast() exists."""
    network = generate_internet(
        TopogenConfig(n_ases=1000, router_detail="none"), seed=SEED)
    profiler = Profiler()

    def converge():
        proto = PathVectorRouting(network)
        with profiler.time("converge-fast/1000"):
            proto.converge_fast()
        return proto

    proto = benchmark.pedantic(converge, rounds=3, iterations=1)
    _persist("topogen_converge_1e3", profiler)
    asns = sorted(a.asn for a in network.ases)
    assert proto.reachable(asns[-1], asns[0])
    assert profiler.min_seconds("converge-fast/1000") < CONVERGENCE_BUDGET_S


def test_fast_path_beats_scalar_at_toy_scale(benchmark):
    """Sanity speedup gate at a size the scalar protocol can still run."""
    network = generate_internet(
        TopogenConfig(n_ases=60, router_detail="none"), seed=SEED)
    profiler = Profiler()

    def measure():
        scalar = PathVectorRouting(network)
        with profiler.time("scalar/60"):
            scalar.converge()
        fast = PathVectorRouting(network)
        with profiler.time("fast/60"):
            fast.converge_fast()
        return scalar, fast

    benchmark.pedantic(measure, rounds=3, iterations=1)
    speedup = (profiler.min_seconds("scalar/60")
               / profiler.min_seconds("fast/60"))
    _persist("topogen_fastpath_60", profiler, {"60": speedup})
    assert speedup > 1.0, f"fast path slower than scalar ({speedup:.2f}x)"


@pytest.mark.slow
def test_generate_and_converge_1e4(benchmark):
    """10^4 ASes: generation plus a 64-destination RIB, both in seconds."""
    config = TopogenConfig(n_ases=10_000, router_detail="none")
    profiler = Profiler()

    def run():
        with profiler.time("generate/10000"):
            network = generate_internet(config, seed=SEED)
        destinations = [a.asn for a in network.ases if a.tier == 3][:64]
        with profiler.time("converge-fast/10000x64"):
            rib = converge_valley_free(network, destinations=destinations)
        return rib

    rib = benchmark.pedantic(run, rounds=1, iterations=1)
    _persist("topogen_1e4", profiler)
    assert (rib.reachability_counts() == 10_000).all()
    assert profiler.min_seconds("converge-fast/10000x64") \
        < CONVERGENCE_BUDGET_S
