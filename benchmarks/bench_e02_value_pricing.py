"""Benchmark: Value pricing vs tunnelling (paper §V-A-2).

Regenerates competition x tunnelling factorial of the access market; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e02

from conftest import run_and_record


def test_e02_value_pricing(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e02)
