"""Benchmark: Identity, anonymity and refusal (paper §V-B-1).

Regenerates acceptance by identity scheme; disguise-detection sweep; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e06

from conftest import run_and_record


def test_e06_identity(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e06)
