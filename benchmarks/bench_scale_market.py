"""Benchmark: scalar Market vs VectorMarket on the E01 lock-in config.

Times one full market run (30 rounds) under both backends at growing
population sizes and asserts the vectorized kernels deliver the speedup
that justifies their existence: >= 10x at N=10^4.  The per-tier timings
land in ``benchmarks/results/bench_scale_market.json`` via the
sanctioned :mod:`tussle.obs` wall-clock channel.

The 10^3/10^4 tiers are blocking (the CI ``scale`` job runs them); the
10^5 scalar run takes ~90 s, so that tier and the 10^6 vector-only round
live behind the ``slow``/``large`` markers.
"""

import pytest

from tussle.econ.market import Market
from tussle.experiments.e01_lockin import lockin_market_spec
from tussle.obs import Profiler
from tussle.obs.bench import bench_record, write_bench_record
from tussle.scale.large import lockin_market_at_scale

from conftest import RESULTS_DIR

ROUNDS = 30
SWITCHING_COST = 3.0
SEED = 7
SPEEDUP_FLOOR_AT_1E4 = 10.0


def _time_backends(n_consumers, profiler, repeats=3):
    """Best-of-N wall time for a full run of each backend at ``n``."""
    for _ in range(repeats):
        scalar = Market(**lockin_market_spec(SWITCHING_COST, n_consumers,
                                             seed=SEED))
        with profiler.time(f"scalar/{n_consumers}"):
            scalar.run(ROUNDS)
        vector = lockin_market_at_scale(SWITCHING_COST, n_consumers,
                                        seed=SEED)
        with profiler.time(f"vector/{n_consumers}"):
            vector.run(ROUNDS)
    return (profiler.min_seconds(f"scalar/{n_consumers}"),
            profiler.min_seconds(f"vector/{n_consumers}"))


def _persist(bench_id, profiler, speedups):
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    record = bench_record(bench_id, profiler=profiler,
                          rounds=ROUNDS, speedups=speedups)
    write_bench_record(RESULTS_DIR, record)


def test_vector_backend_speedup(benchmark):
    """Blocking gate: >= 10x over the scalar loop at N=10^4."""
    profiler = Profiler()
    speedups = {}

    def measure():
        for n in (1_000, 10_000):
            scalar_s, vector_s = _time_backends(n, profiler)
            speedups[str(n)] = scalar_s / vector_s
        return speedups

    benchmark.pedantic(measure, rounds=1, iterations=1)
    _persist("scale_market", profiler, speedups)
    assert speedups["10000"] >= SPEEDUP_FLOOR_AT_1E4, (
        f"vector backend only {speedups['10000']:.1f}x at N=10^4 "
        f"(floor {SPEEDUP_FLOOR_AT_1E4}x); timings "
        f"{ {k: profiler.total_seconds(k) for k in profiler.keys()} }")
    assert speedups["1000"] > 1.0


@pytest.mark.slow
def test_vector_backend_speedup_at_1e5(benchmark):
    profiler = Profiler()

    def measure():
        scalar_s, vector_s = _time_backends(100_000, profiler, repeats=1)
        return scalar_s / vector_s

    speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    _persist("scale_market_1e5", profiler, {"100000": speedup})
    assert speedup >= 20.0


@pytest.mark.slow
@pytest.mark.large
def test_million_agent_round_within_budget(benchmark):
    """A warm N=10^6 vector round stays under a second."""
    market = lockin_market_at_scale(SWITCHING_COST, 1_000_000, seed=SEED)
    market.step()  # pay first-touch allocation outside the timed region
    profiler = Profiler()

    def one_round():
        with profiler.time("vector-round/1000000"):
            market.step()

    benchmark.pedantic(one_round, rounds=3, iterations=1)
    _persist("scale_market_1e6", profiler, {})
    assert profiler.min_seconds("vector-round/1000000") < 1.0
