"""Benchmark: scalar ForwardingEngine vs the vector/flow netsim backends.

Times whole-batch forwarding under the scalar and vectorized engines at
growing packet counts and asserts the kernels deliver the speedup that
justifies their existence: >= 10x at 10^4 packets on a ~30-node
topology.  A second gate holds the flow-level backend to its headline:
routing a 10^6-flow population in seconds.  Timings land in
``benchmarks/results/bench_scale_netsim.json`` via the sanctioned
:mod:`tussle.obs` wall-clock channel.

The 10^3/10^4 tiers are blocking (the CI ``scale`` job runs them); the
10^5-packet scalar run and the million-flow tier live behind the
``slow``/``large`` markers.
"""

import pytest

from tussle.netsim.forwarding import ForwardingEngine
from tussle.netsim.topology import dumbbell_topology
from tussle.obs import Profiler
from tussle.obs.bench import bench_record, write_bench_record
from tussle.scale.flowsim import FlowSim, random_flows
from tussle.scale.narrays import (
    NetIndex,
    PacketArrays,
    packets_from_traffic,
    traffic_stream,
)
from tussle.scale.vforwarding import VectorForwardingEngine

from conftest import RESULTS_DIR

SEED = 7
SPEEDUP_FLOOR_AT_1E4 = 10.0
MILLION_FLOW_BUDGET_S = 5.0


def _topology():
    """~30 nodes with multi-hop paths: 14 sources, 14 sinks, 2 routers."""
    return dumbbell_topology(14, 14)


def _time_backends(n_packets, profiler, repeats=3):
    """Best-of-N wall time to forward one batch on each backend."""
    network = _topology()
    names = network.node_names()
    traffic = traffic_stream(names, n_packets, SEED)

    scalar = ForwardingEngine(network)
    scalar.install_shortest_path_tables()
    vector = VectorForwardingEngine(network)
    vector.install_shortest_path_tables()
    index = NetIndex.from_network(network)

    for _ in range(repeats):
        packets = packets_from_traffic(traffic)
        with profiler.time(f"scalar/{n_packets}"):
            for packet in packets:
                scalar.send(packet)
        batch = PacketArrays.from_traffic(traffic, index)
        with profiler.time(f"vector/{n_packets}"):
            vector.send_batch(batch)
    return (profiler.min_seconds(f"scalar/{n_packets}"),
            profiler.min_seconds(f"vector/{n_packets}"))


def _persist(bench_id, profiler, speedups):
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    record = bench_record(bench_id, profiler=profiler, speedups=speedups)
    write_bench_record(RESULTS_DIR, record)


def test_vector_backend_speedup(benchmark):
    """Blocking gate: >= 10x over per-packet forwarding at 10^4 packets."""
    profiler = Profiler()
    speedups = {}

    def measure():
        for n in (1_000, 10_000):
            scalar_s, vector_s = _time_backends(n, profiler)
            speedups[str(n)] = scalar_s / vector_s
        return speedups

    benchmark.pedantic(measure, rounds=1, iterations=1)
    _persist("scale_netsim", profiler, speedups)
    assert speedups["10000"] >= SPEEDUP_FLOOR_AT_1E4, (
        f"vector backend only {speedups['10000']:.1f}x at 10^4 packets "
        f"(floor {SPEEDUP_FLOOR_AT_1E4}x); timings "
        f"{ {k: profiler.total_seconds(k) for k in profiler.keys()} }")
    assert speedups["1000"] > 1.0


def test_flow_backend_routes_1e5_flows_fast(benchmark):
    """Blocking: 10^5 flows route well inside a second."""
    sim = FlowSim(_topology())
    flows = random_flows(100_000, len(sim.index), seed=SEED)
    profiler = Profiler()

    def route():
        with profiler.time("flow-route/100000"):
            report = sim.route(flows)
        return report

    report = benchmark.pedantic(route, rounds=3, iterations=1)
    _persist("scale_flowsim_1e5", profiler, {})
    assert report.n_flows == 100_000
    assert profiler.min_seconds("flow-route/100000") < 1.0


@pytest.mark.slow
def test_vector_backend_speedup_at_1e5(benchmark):
    profiler = Profiler()

    def measure():
        scalar_s, vector_s = _time_backends(100_000, profiler, repeats=1)
        return scalar_s / vector_s

    speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    _persist("scale_netsim_1e5", profiler, {"100000": speedup})
    assert speedup >= SPEEDUP_FLOOR_AT_1E4


@pytest.mark.slow
@pytest.mark.large
def test_million_flow_population_within_budget(benchmark):
    """The headline: a 10^6-flow population routes in seconds."""
    sim = FlowSim(_topology())
    flows = random_flows(1_000_000, len(sim.index), seed=SEED)
    profiler = Profiler()

    def route():
        with profiler.time("flow-route/1000000"):
            return sim.route(flows)

    report = benchmark.pedantic(route, rounds=3, iterations=1)
    _persist("scale_flowsim_1e6", profiler, {})
    assert report.n_flows == 1_000_000
    assert report.delivered + report.no_route + report.link_down \
        + report.ttl_exceeded == 1_000_000
    assert profiler.min_seconds("flow-route/1000000") < MILLION_FLOW_BUDGET_S
