"""Benchmark: the multicast post-mortem exercise (paper §VII fn. 19).

Regenerates the multicast deployment factorial and the QoS contrast; the
table is written to benchmarks/results/ and the coordination-trap shape
is asserted.
"""

from tussle.experiments import run_x01

from conftest import run_and_record


def test_x01_multicast(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_x01)
