"""Benchmark: dynamic tussle isolation (paper §IV-A, dynamic view).

Regenerates the co-located vs separated layout comparison; the table is
written to benchmarks/results/ and the collateral-damage shape asserted.
"""

from tussle.experiments import run_x04

from conftest import run_and_record


def test_x04_coupled_spaces(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_x04)
