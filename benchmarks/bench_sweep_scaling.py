"""Sweep engine scaling benchmark: 1/2/4-worker wall time + parity.

Runs the full 21-experiment x 5-seed matrix through
:class:`tussle.sweep.ProcessPoolExecutor` at 1, 2, and 4 workers,
records each configuration's wall time via the sanctioned Profiler
channel into ``benchmarks/results/bench_sweep_scaling.json``, and
asserts two things:

* the merged deterministic channel is byte-identical at every worker
  count (scaling must never change results);
* on a host with >= 4 cores, 4 workers beat 1 worker by >= 1.5x.
  Single- and dual-core hosts still record timings but skip the
  speedup assertion — there is no parallelism to win there, only
  fork/IPC overhead.
"""

import os

from tussle.experiments import ALL_EXPERIMENTS
from tussle.experiments.common import canonical_json
from tussle.obs import Profiler
from tussle.obs.bench import bench_record, write_bench_record
from tussle.sweep import ProcessPoolExecutor, SweepSpec, aggregate, run_sweep

#: Worker counts exercised, in recorded order.
JOB_COUNTS = (1, 2, 4)
#: Seeds per experiment (matches the CI seed-matrix tier).
N_SEEDS = 5
#: Required 4-worker speedup over 1 worker, asserted only when the host
#: actually has >= 4 cores to parallelise across.
MIN_SPEEDUP_4X = 1.5


def test_sweep_scaling_and_parity(results_dir):
    spec = SweepSpec(experiment_ids=sorted(ALL_EXPERIMENTS),
                     seeds=list(range(N_SEEDS)), grid={})
    profiler = Profiler()

    merged = {}
    for jobs in JOB_COUNTS:
        with profiler.time(f"jobs_{jobs}"):
            report = run_sweep(spec, executor=ProcessPoolExecutor(jobs=jobs))
        assert report.ok, report.failed
        merged[jobs] = canonical_json({"cells": report.cells,
                                       "aggregate": aggregate(report.cells)})

    baseline = merged[JOB_COUNTS[0]]
    assert all(text == baseline for text in merged.values()), (
        "merged sweep output differs across worker counts"
    )

    seconds = {jobs: profiler.min_seconds(f"jobs_{jobs}")
               for jobs in JOB_COUNTS}
    cores = os.cpu_count() or 1
    speedup_4x = seconds[1] / seconds[4] if seconds[4] > 0 else 0.0

    record = bench_record(
        "SWEEP_SCALING", profiler=profiler, timing_key="jobs_4",
        cells=len(spec.cells()), seeds=N_SEEDS, host_cores=cores,
        seconds_by_jobs={str(j): seconds[j] for j in JOB_COUNTS},
        speedup_4x_over_1x=speedup_4x,
        speedup_asserted=cores >= 4,
        min_speedup_required=MIN_SPEEDUP_4X,
    )
    write_bench_record(results_dir, record)

    if cores >= 4:
        assert speedup_4x >= MIN_SPEEDUP_4X, (
            f"4-worker sweep only {speedup_4x:.2f}x faster than 1 worker "
            f"({seconds[1]:.2f}s -> {seconds[4]:.2f}s); "
            f"required {MIN_SPEEDUP_4X}x on a {cores}-core host"
        )
