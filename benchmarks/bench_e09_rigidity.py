"""Benchmark: Design for variation in outcome (paper §IV).

Regenerates rigidity sweep through the adaptation simulator; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e09

from conftest import run_and_record


def test_e09_rigidity(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e09)
