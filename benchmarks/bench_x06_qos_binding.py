"""Benchmark: QoS bound to ports vs ToS bits (paper §IV-A).

Regenerates the era x binding classification table; written to
benchmarks/results/ with the entanglement-collapse shape asserted.
"""

from tussle.experiments import run_x06

from conftest import run_and_record


def test_x06_qos_binding(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_x06)
