"""Benchmark gate: disabled observability must cost <= 2%.

Observability is off by default — instrumented subsystems see the
``NullTracer``/``NullMetrics`` context and cache ``None`` hooks, so the
hot path pays one ``is not None`` test per instrumentation point. This
gate measures that price on a realistic market-heavy workload (E01) by
comparing the default disabled context against an explicitly installed
``NullTracer``, min-of-N to squeeze out scheduler noise.

An absolute floor guards the relative bound: on a workload this short,
a few milliseconds of host jitter can exceed 2% without meaning
anything. The gate fails only when the overhead is both relatively and
absolutely significant.
"""

from tussle.experiments import run_e01
from tussle.obs import NullSweepTelemetry, NullTracer, Profiler, observe
from tussle.obs.bench import bench_record, write_bench_record
from tussle.sweep import SweepSpec, run_sweep

#: Measurement rounds (min-of-N) after one warmup, interleaved so slow
#: drift (thermal, cache) hits both arms equally.
ROUNDS = 5
#: Workload repetitions per round — lengthens the measured region so
#: fixed per-round jitter shrinks relative to it.
REPS_PER_ROUND = 3
#: Relative overhead budget for the disabled path.
MAX_OVERHEAD = 0.02
#: Absolute jitter floor: deltas below this are measurement noise.
ABS_EPSILON_SECONDS = 0.005


def _run_baseline():
    for _ in range(REPS_PER_ROUND):
        run_e01()


def _run_with_null_obs():
    with observe(tracer=NullTracer()):
        for _ in range(REPS_PER_ROUND):
            run_e01()


def test_nulltracer_overhead_within_budget(results_dir):
    profiler = Profiler()
    _run_baseline()  # warmup: caches, allocator, import side effects
    _run_with_null_obs()
    for _ in range(ROUNDS):
        with profiler.time("baseline"):
            _run_baseline()
        with profiler.time("nulltracer"):
            _run_with_null_obs()
    baseline = profiler.min_seconds("baseline")
    nulled = profiler.min_seconds("nulltracer")
    delta = nulled - baseline
    overhead = delta / baseline if baseline > 0 else 0.0

    record = bench_record(
        "OBS_OVERHEAD", profiler=profiler, timing_key="nulltracer",
        baseline_seconds=baseline, nulltracer_seconds=nulled,
        overhead_fraction=overhead, rounds=ROUNDS,
        budget_fraction=MAX_OVERHEAD,
    )
    write_bench_record(results_dir, record)

    assert overhead <= MAX_OVERHEAD or delta <= ABS_EPSILON_SECONDS, (
        f"disabled-observability overhead {overhead:.1%} "
        f"({delta * 1e3:.2f} ms over {baseline * 1e3:.2f} ms baseline) "
        f"exceeds the {MAX_OVERHEAD:.0%} budget"
    )


#: Telemetry-disabled sweep spec: small but real (3 cells of E01).
_SWEEP_SPEC = SweepSpec(
    experiment_ids=["E01"],
    seeds=[0, 1, 2],
    grid={"n_consumers": [40], "rounds": [8]},
)


def _run_sweep_plain():
    run_sweep(_SWEEP_SPEC)


def _run_sweep_null_telemetry():
    run_sweep(_SWEEP_SPEC, telemetry=NullSweepTelemetry())


def test_disabled_sweep_telemetry_overhead_within_budget(results_dir):
    """A sweep with telemetry disabled must also stay within 2%.

    The scheduler nulls a disabled telemetry object out before the
    dispatch loop, so the per-cell price is the one ``is not None`` test
    the other observability hooks pay — this gate keeps it that way.
    """
    profiler = Profiler()
    _run_sweep_plain()  # warmup
    _run_sweep_null_telemetry()
    for _ in range(ROUNDS):
        with profiler.time("sweep_plain"):
            _run_sweep_plain()
        with profiler.time("sweep_null_telemetry"):
            _run_sweep_null_telemetry()
    baseline = profiler.min_seconds("sweep_plain")
    nulled = profiler.min_seconds("sweep_null_telemetry")
    delta = nulled - baseline
    overhead = delta / baseline if baseline > 0 else 0.0

    record = bench_record(
        "SWEEP_TELEMETRY_OVERHEAD", profiler=profiler,
        timing_key="sweep_null_telemetry",
        baseline_seconds=baseline, null_telemetry_seconds=nulled,
        overhead_fraction=overhead, rounds=ROUNDS,
        budget_fraction=MAX_OVERHEAD,
    )
    write_bench_record(results_dir, record)

    assert overhead <= MAX_OVERHEAD or delta <= ABS_EPSILON_SECONDS, (
        f"telemetry-disabled sweep overhead {overhead:.1%} "
        f"({delta * 1e3:.2f} ms over {baseline * 1e3:.2f} ms baseline) "
        f"exceeds the {MAX_OVERHEAD:.0%} budget"
    )
