"""Benchmark: who sets the firewall policy (paper §V-B ablation).

Regenerates the policy-authority grant matrix; the table is written to
benchmarks/results/ and the empowerment shape is asserted.
"""

from tussle.experiments import run_x02

from conftest import run_and_record


def test_x02_policy_authority(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_x02)
