"""Benchmark: Tussle isolation: DNS entanglement (paper §IV-A).

Regenerates trademark-dispute damage under both naming designs; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e08

from conftest import run_and_record


def test_e08_tussle_isolation(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e08)
