"""Benchmark: Provider lock-in from IP addressing (paper §V-A-1).

Regenerates addressing-mode sweep: switching, prices, surplus, core table; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e01

from conftest import run_and_record


def test_e01_lockin(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e01)
