"""Benchmark: Firewall designs: protection vs innovation (paper §V-B).

Regenerates threat campaign against four firewall deployments; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e05

from conftest import run_and_record


def test_e05_firewalls(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e05)
