"""Benchmark: Provider vs user routing control (paper §V-A-4).

Regenerates BGP vs source routing (with/without payment) vs overlays; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e04

from conftest import run_and_record


def test_e04_routing_control(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e04)
