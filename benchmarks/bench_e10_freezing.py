"""Benchmark: Actor-network churn and freezing (paper §II-C).

Regenerates entrant arrival-rate sweep over the churn simulation; the table is written to benchmarks/results/ and the
paper's qualitative shape is asserted.
"""

from tussle.experiments import run_e10

from conftest import run_and_record


def test_e10_freezing(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_e10)
