"""Benchmark: mail-system choice and design guidelines (paper §IV-B, §VI-A).

Regenerates the market-discipline, ISP-redirection and guideline-audit
tables; written to benchmarks/results/ with shapes asserted.
"""

from tussle.experiments import run_x03

from conftest import run_and_record


def test_x03_mail_choice(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_x03)
