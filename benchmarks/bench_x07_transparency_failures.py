"""Benchmark: transparency-failure reporting (paper §VI-A).

Regenerates the disclosure-compliance sweep; written to
benchmarks/results/ with the courtesy-tracking shape asserted.
"""

from tussle.experiments import run_x07

from conftest import run_and_record


def test_x07_transparency_failures(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_x07)
