"""Benchmark: the coupled bargaining/routing loop at 10^3-AS scale.

Two blocking gates (the CI ``peering`` job runs them):

* one full bargain-and-reconverge round on a 10^3-AS internet — route
  convergence, the vectorized demand-volume pass, and a whole-market
  re-bargain — stays inside :data:`ROUND_BUDGET_S`;
* the complete P02 arc (bargain-in to a fixed point, depeering war,
  peace) stays inside :data:`WAR_BUDGET_S`, which is what keeps the
  28-experiment seed matrix affordable.

Timings land in ``benchmarks/results/`` via the sanctioned
:mod:`tussle.obs` wall-clock channel and feed the ``obs perf`` ledger.
"""

from tussle.obs import Profiler
from tussle.obs.bench import bench_record, write_bench_record
from tussle.peering import PeeringDynamics
from tussle.topogen import TopogenConfig, generate_internet

from conftest import RESULTS_DIR

SEED = 0
ROUND_BUDGET_S = 5.0
WAR_BUDGET_S = 20.0


def _persist(bench_id, profiler, speedups=None):
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    record = bench_record(bench_id, profiler=profiler,
                          speedups=speedups or {})
    write_bench_record(RESULTS_DIR, record)


def test_bargain_round_1e3_within_budget(benchmark):
    """Blocking: one route/measure/re-bargain round at 10^3 ASes."""
    network = generate_internet(
        TopogenConfig(n_ases=1000, router_detail="none"), seed=SEED)
    dyn = PeeringDynamics(network, seed=SEED)
    profiler = Profiler()

    def one_round():
        with profiler.time("bargain-round/1000"):
            return dyn.step(iteration=1)

    record = benchmark.pedantic(one_round, rounds=3, iterations=1)
    _persist("peering_round_1e3", profiler)
    assert record.agreements > 0
    assert profiler.min_seconds("bargain-round/1000") < ROUND_BUDGET_S


def test_depeering_war_arc_1e3_within_budget(benchmark):
    """Blocking: the full P02 arc — bargain-in, war, peace — in seconds."""
    profiler = Profiler()

    def arc():
        network = generate_internet(
            TopogenConfig(n_ases=1000, router_detail="none"), seed=SEED)
        dyn = PeeringDynamics(network, seed=SEED)
        with profiler.time("bargain-in/1000"):
            initial = dyn.run()
        rib = dyn.routing.fast_rib
        busiest, busiest_volume = None, -1.0
        for pair in sorted(initial.agreements):
            ra, rb = rib.index.of(pair[0]), rib.index.of(pair[1])
            volume = float(dyn.volumes[ra, rb] + dyn.volumes[rb, ra])
            if volume > busiest_volume:
                busiest, busiest_volume = pair, volume
        with profiler.time("war-and-peace/1000"):
            dyn.depeer(*busiest)
            war = dyn.run()
            dyn.lift_embargo(*busiest)
            peace = dyn.run()
        return initial, war, peace

    initial, war, peace = benchmark.pedantic(arc, rounds=1, iterations=1)
    _persist("peering_war_arc_1e3", profiler)
    assert initial.converged and war.converged and peace.converged
    assert profiler.min_seconds("bargain-in/1000") \
        + profiler.min_seconds("war-and-peace/1000") < WAR_BUDGET_S
