"""Benchmark: retry/breaker recovery across fault regimes (paper §VI-A).

Regenerates the regime x strategy recovery matrix; written to
benchmarks/results/ with the retry-contract shape asserted.
"""

from tussle.experiments import run_r02

from conftest import run_and_record


def test_r02_retry_recovery(benchmark, results_dir):
    run_and_record(benchmark, results_dir, run_r02)
