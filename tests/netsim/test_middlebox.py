"""Tests for middleboxes: firewalls, NAT, redirectors, wiretap, cache."""

import pytest

from tussle.netsim.middlebox import (
    Action,
    BlanketFirewall,
    Cache,
    NAT,
    PortFilterFirewall,
    Redirector,
    TransparencyLedger,
    Wiretap,
)
from tussle.netsim.packets import make_packet


class TestPortFilterFirewall:
    def test_blocks_named_application(self):
        fw = PortFilterFirewall("fw", blocked_applications={"p2p"})
        verdict = fw.process(make_packet("a", "b", application="p2p"))
        assert verdict.action is Action.DROP

    def test_forwards_other_traffic(self):
        fw = PortFilterFirewall("fw", blocked_applications={"p2p"})
        verdict = fw.process(make_packet("a", "b", application="http"))
        assert verdict.action is Action.FORWARD

    def test_tunnel_evades_application_filter(self):
        fw = PortFilterFirewall("fw", blocked_applications={"p2p"})
        tunnelled = make_packet("a", "b", application="p2p").tunnel_to(
            "gw", application="https")
        assert fw.process(tunnelled).action is Action.FORWARD

    def test_blocked_port_beats_tunnel_application(self):
        fw = PortFilterFirewall("fw", blocked_ports={443})
        tunnelled = make_packet("a", "b", application="p2p").tunnel_to(
            "gw", application="https")
        assert fw.process(tunnelled).action is Action.DROP

    def test_interference_rate(self):
        fw = PortFilterFirewall("fw", blocked_applications={"p2p"})
        fw.process(make_packet("a", "b", application="p2p"))
        fw.process(make_packet("a", "b", application="http"))
        assert fw.interference_rate() == pytest.approx(0.5)

    def test_disclosure_flag_respected(self):
        silent = PortFilterFirewall("fw", blocked_applications={"p2p"},
                                    discloses=False)
        verdict = silent.process(make_packet("a", "b", application="p2p"))
        assert not verdict.disclosed


class TestBlanketFirewall:
    def test_allows_listed_applications(self):
        fw = BlanketFirewall("fw", allowed_applications={"http"})
        assert fw.process(make_packet("a", "b", application="http")).action \
            is Action.FORWARD

    def test_drops_unknown_applications(self):
        fw = BlanketFirewall("fw", allowed_applications={"http"})
        assert fw.process(make_packet("a", "b", application="new-thing")).action \
            is Action.DROP

    def test_drops_unclassifiable_encrypted_traffic(self):
        fw = BlanketFirewall("fw", allowed_applications={"http"})
        packet = make_packet("a", "b", application="new-thing", encrypted=True)
        assert fw.process(packet).action is Action.DROP


class TestRedirector:
    def test_redirects_matching_port(self):
        redirect = Redirector("isp-box", port=25, new_destination="isp-smtp")
        verdict = redirect.process(make_packet("user", "my-smtp", application="smtp"))
        assert verdict.action is Action.REDIRECT
        assert verdict.new_destination == "isp-smtp"

    def test_leaves_other_ports_alone(self):
        redirect = Redirector("isp-box", port=25, new_destination="isp-smtp")
        verdict = redirect.process(make_packet("user", "site", application="http"))
        assert verdict.action is Action.FORWARD

    def test_no_redirect_loop_to_same_destination(self):
        redirect = Redirector("isp-box", port=25, new_destination="isp-smtp")
        verdict = redirect.process(make_packet("user", "isp-smtp", application="smtp"))
        assert verdict.action is Action.FORWARD


class TestNAT:
    def test_outbound_rewritten_to_public_name(self):
        nat = NAT("nat", public_name="pub", internal_prefix="lan-")
        verdict = nat.process(make_packet("lan-pc", "site"))
        assert verdict.action is Action.MODIFY
        assert verdict.packet.header.src == "pub"

    def test_return_traffic_translated_back(self):
        nat = NAT("nat", public_name="pub", internal_prefix="lan-")
        out = nat.process(make_packet("lan-pc", "site")).packet
        reply = make_packet("site", "pub")
        # Reply must target the mapped port to be translated.
        from dataclasses import replace
        reply.header = replace(reply.header, dst_port=out.header.src_port)
        verdict = nat.process(reply)
        assert verdict.action is Action.REDIRECT
        assert verdict.packet.header.dst == "lan-pc"

    def test_external_traffic_forwarded(self):
        nat = NAT("nat", public_name="pub", internal_prefix="lan-")
        verdict = nat.process(make_packet("elsewhere", "site"))
        assert verdict.action is Action.FORWARD

    def test_translation_count(self):
        nat = NAT("nat", public_name="pub", internal_prefix="lan-")
        nat.process(make_packet("lan-a", "site"))
        nat.process(make_packet("lan-b", "site"))
        assert nat.translation_count() == 2


class TestWiretap:
    def test_sees_plaintext_content(self):
        tap = Wiretap("tap")
        tap.process(make_packet("a", "b", application="http"))
        assert tap.content_visibility_rate() == 1.0
        assert tap.observations[0]["application"] == "http"

    def test_encryption_blinds_content(self):
        tap = Wiretap("tap")
        tap.process(make_packet("a", "b", encrypted=True))
        assert tap.content_visibility_rate() == 0.0

    def test_always_forwards(self):
        tap = Wiretap("tap")
        assert tap.process(make_packet("a", "b")).action is Action.FORWARD

    def test_empty_tap_rate(self):
        assert Wiretap("tap").content_visibility_rate() == 0.0


class TestCache:
    def test_second_request_hits(self):
        cache = Cache("cache")
        first = cache.process(make_packet("a", "site", application="http"))
        second = cache.process(make_packet("b", "site", application="http"))
        assert first.action is Action.FORWARD
        assert second.action is Action.REDIRECT
        assert second.new_destination == "cache"
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_encrypted_traffic_not_cached(self):
        cache = Cache("cache")
        cache.process(make_packet("a", "site", application="http", encrypted=True))
        verdict = cache.process(make_packet("b", "site", application="http",
                                            encrypted=True))
        assert verdict.action is Action.FORWARD

    def test_non_cacheable_application_forwarded(self):
        cache = Cache("cache")
        cache.process(make_packet("a", "site", application="smtp"))
        assert cache.process(make_packet("b", "site", application="smtp")).action \
            is Action.FORWARD


class TestTransparencyLedger:
    def test_forward_actions_not_recorded(self):
        ledger = TransparencyLedger()
        ledger.record("fw", Action.FORWARD, disclosed=True)
        assert ledger.disclosure_rate() == 1.0
        assert not ledger.records

    def test_disclosure_rate_mixes(self):
        ledger = TransparencyLedger()
        ledger.record("fw1", Action.DROP, disclosed=True)
        ledger.record("fw2", Action.DROP, disclosed=False)
        assert ledger.disclosure_rate() == pytest.approx(0.5)
        assert ledger.silent_interferers() == {"fw2"}
