"""Tests for addressing: blocks, registry, renumbering costs."""

import pytest

from tussle.errors import AddressingError
from tussle.netsim.addressing import (
    AddressBlock,
    AddressRegistry,
    AddressingMode,
    RenumberingModel,
)


class TestAddressBlock:
    def test_contains(self):
        block = AddressBlock(start=100, size=10, owner="x")
        assert block.contains(100)
        assert block.contains(109)
        assert not block.contains(110)
        assert not block.contains(99)

    def test_provider_independent_flag(self):
        pa = AddressBlock(start=0, size=4, owner="x", provider_asn=7)
        pi = AddressBlock(start=4, size=4, owner="x")
        assert not pa.provider_independent
        assert pi.provider_independent

    def test_invalid_size_rejected(self):
        with pytest.raises(AddressingError):
            AddressBlock(start=0, size=0, owner="x")

    def test_out_of_space_rejected(self):
        with pytest.raises(AddressingError):
            AddressBlock(start=2 ** 32 - 1, size=2, owner="x")


class TestRegistry:
    def test_customer_block_carved_from_aggregate(self):
        registry = AddressRegistry()
        aggregate = registry.allocate_aggregate(1)
        block = registry.assign_customer_block("acme", 1)
        assert aggregate.contains(block.start)
        assert registry.provider_of("acme") == 1

    def test_duplicate_aggregate_rejected(self):
        registry = AddressRegistry()
        registry.allocate_aggregate(1)
        with pytest.raises(AddressingError):
            registry.allocate_aggregate(1)

    def test_customer_block_needs_aggregate(self):
        with pytest.raises(AddressingError):
            AddressRegistry().assign_customer_block("acme", 99)

    def test_core_table_counts_aggregates_and_pi(self):
        registry = AddressRegistry()
        registry.allocate_aggregate(1)
        registry.allocate_aggregate(2)
        registry.assign_customer_block("a", 1)
        registry.assign_customer_block("b", 1)
        assert registry.core_table_size() == 2  # PA blocks aggregate away
        registry.assign_provider_independent("c")
        assert registry.core_table_size() == 3

    def test_pa_supersedes_pi_and_vice_versa(self):
        registry = AddressRegistry()
        registry.allocate_aggregate(1)
        registry.assign_provider_independent("acme")
        assert registry.provider_of("acme") is None
        registry.assign_customer_block("acme", 1)
        assert registry.provider_of("acme") == 1
        registry.assign_provider_independent("acme")
        assert registry.provider_of("acme") is None
        assert registry.core_table_size() == 2

    def test_renumbering_to_new_provider_changes_block(self):
        registry = AddressRegistry()
        registry.allocate_aggregate(1)
        registry.allocate_aggregate(2)
        old = registry.assign_customer_block("acme", 1)
        new = registry.assign_customer_block("acme", 2)
        assert old.start != new.start
        assert registry.provider_of("acme") == 2

    def test_unknown_customer_raises(self):
        with pytest.raises(AddressingError):
            AddressRegistry().block_of("ghost")

    def test_aggregate_exhaustion(self):
        registry = AddressRegistry()
        registry.allocate_aggregate(1, size=256)
        registry.assign_customer_block("a", 1, size=256)
        with pytest.raises(AddressingError):
            registry.assign_customer_block("b", 1, size=1)

    def test_pi_fraction(self):
        registry = AddressRegistry()
        registry.allocate_aggregate(1)
        registry.assign_customer_block("a", 1)
        registry.assign_provider_independent("b")
        assert registry.pi_fraction() == pytest.approx(0.5)


class TestRenumberingModel:
    def test_static_most_expensive(self):
        model = RenumberingModel()
        static = model.switching_cost(50, AddressingMode.STATIC)
        dhcp = model.switching_cost(50, AddressingMode.DHCP)
        ddns = model.switching_cost(50, AddressingMode.DHCP_DDNS)
        assert static > dhcp > ddns

    def test_cost_scales_with_hosts(self):
        model = RenumberingModel()
        assert (model.switching_cost(100, AddressingMode.STATIC)
                > model.switching_cost(10, AddressingMode.STATIC))

    def test_provider_independent_costs_contract_only(self):
        model = RenumberingModel(contractual_cost=3.0)
        cost = model.switching_cost(1000, AddressingMode.STATIC,
                                    provider_independent=True)
        assert cost == 3.0

    def test_lock_in_index_bounds(self):
        model = RenumberingModel()
        assert model.lock_in_index(30, AddressingMode.STATIC) == pytest.approx(1.0)
        assert 0.0 < model.lock_in_index(30, AddressingMode.DHCP) < 1.0
        assert (model.lock_in_index(30, AddressingMode.DHCP_DDNS)
                < model.lock_in_index(30, AddressingMode.DHCP))

    def test_negative_hosts_rejected(self):
        with pytest.raises(AddressingError):
            RenumberingModel().switching_cost(-1, AddressingMode.DHCP)

    def test_zero_hosts_is_contract_only(self):
        model = RenumberingModel(contractual_cost=2.0)
        assert model.switching_cost(0, AddressingMode.STATIC) == 2.0
