"""Tests for the two name-system designs (E08 substrate)."""

import pytest

from tussle.errors import TussleError
from tussle.netsim.dns import (
    DisputeOutcome,
    EntangledNameSystem,
    SeparatedNameSystem,
)


class TestEntangled:
    def test_register_and_resolve(self):
        system = EntangledNameSystem()
        system.register("acme", holder="acme-co", machine="m1")
        assert system.resolve("acme") == "m1"

    def test_duplicate_registration_rejected(self):
        system = EntangledNameSystem()
        system.register("acme", "a", "m1")
        with pytest.raises(TussleError):
            system.register("acme", "b", "m2")

    def test_transfer_breaks_resolution_for_old_users(self):
        system = EntangledNameSystem()
        system.register("acme", "acme-co", "m1")
        system.dispute("acme", challenger="acme-inc",
                       outcome=DisputeOutcome.TRANSFERRED)
        assert system.resolve("acme") != "m1"

    def test_freeze_breaks_resolution(self):
        system = EntangledNameSystem()
        system.register("acme", "acme-co", "m1")
        system.dispute("acme", "acme-inc", DisputeOutcome.FROZEN)
        assert system.resolve("acme") is None

    def test_denied_dispute_leaves_bindings_intact(self):
        system = EntangledNameSystem()
        system.register("acme", "acme-co", "m1")
        system.add_dependent("acme", "mail.acme")
        system.dispute("acme", "acme-inc", DisputeOutcome.DENIED)
        assert system.resolve("acme") == "m1"
        assert system.machine_bindings_broken() == 0

    def test_dependents_are_collateral_damage(self):
        system = EntangledNameSystem()
        system.register("acme", "acme-co", "m1")
        system.add_dependent("acme", "mail.acme")
        system.add_dependent("acme", "web.acme")
        system.dispute("acme", "acme-inc", DisputeOutcome.TRANSFERRED)
        assert system.collateral_services() == {"mail.acme", "web.acme"}
        assert system.machine_bindings_broken() == 3  # name + 2 dependents

    def test_dependent_on_unregistered_name_rejected(self):
        with pytest.raises(TussleError):
            EntangledNameSystem().add_dependent("ghost", "svc")

    def test_dispute_over_unregistered_name_rejected(self):
        with pytest.raises(TussleError):
            EntangledNameSystem().dispute("ghost", "x", DisputeOutcome.FROZEN)


class TestSeparated:
    def test_register_and_resolve_via_directory(self):
        system = SeparatedNameSystem()
        system.register("acme", "acme-co", "m1")
        assert system.resolve("acme") == "m1"

    def test_identifier_resolution_is_stable(self):
        system = SeparatedNameSystem()
        system.register("acme", "acme-co", "m1")
        identifier = system.identifier_of("acme")
        system.dispute("acme", "acme-inc", DisputeOutcome.TRANSFERRED)
        # The human name now points elsewhere, but the identifier survives.
        assert system.resolve_identifier(identifier) == "m1"
        assert system.resolve("acme") == "machine-of-acme-inc"

    def test_freeze_affects_directory_only(self):
        system = SeparatedNameSystem()
        system.register("acme", "acme-co", "m1")
        identifier = system.identifier_of("acme")
        system.dispute("acme", "acme-inc", DisputeOutcome.FROZEN)
        assert system.resolve("acme") is None
        assert system.resolve_identifier(identifier) == "m1"

    def test_dependents_never_break(self):
        system = SeparatedNameSystem()
        system.register("acme", "acme-co", "m1")
        system.add_dependent("acme", "mail.acme")
        system.dispute("acme", "acme-inc", DisputeOutcome.TRANSFERRED)
        assert system.machine_bindings_broken() == 0
        assert system.collateral_services() == set()

    def test_disputes_recorded_in_both_designs(self):
        for cls in (EntangledNameSystem, SeparatedNameSystem):
            system = cls()
            system.register("acme", "acme-co", "m1")
            system.dispute("acme", "acme-inc", DisputeOutcome.FROZEN)
            assert len(system.disputes) == 1
            assert system.disputes[0].challenger == "acme-inc"

    def test_unknown_identifier_returns_none(self):
        assert SeparatedNameSystem().resolve_identifier("id-999") is None
