"""Tests for the mail system (§IV-B design-for-choice substrate)."""

import pytest

from tussle.errors import SimulationError
from tussle.netsim.forwarding import ForwardingEngine
from tussle.netsim.mail import (
    MailServer,
    MailSystem,
    MailUser,
    build_mail_topology,
    server_market_discipline,
)
from tussle.netsim.middlebox import Redirector


def make_system(servers, seed=0):
    net = build_mail_topology([s.name for s in servers])
    engine = ForwardingEngine(net)
    engine.install_shortest_path_tables()
    return MailSystem(engine, servers, seed=seed), engine


class TestMailServer:
    def test_validation(self):
        with pytest.raises(SimulationError):
            MailServer("s", reliability=1.5)
        with pytest.raises(SimulationError):
            MailServer("s", spam_filter=-0.1)

    def test_server_must_exist_in_topology(self):
        net = build_mail_topology(["smtp0"])
        engine = ForwardingEngine(net)
        with pytest.raises(SimulationError):
            MailSystem(engine, [MailServer("ghost")])


class TestDelivery:
    def test_reliable_server_delivers(self):
        system, _ = make_system([MailServer("smtp0", reliability=1.0)])
        user = MailUser("user", smtp_server="smtp0", pop_server="smtp0")
        outcome = system.send(user)
        assert outcome.delivered
        assert outcome.smtp_used == "smtp0"
        assert not outcome.redirected
        assert user.delivery_rate() == 1.0

    def test_unreliable_server_drops_mail(self):
        system, _ = make_system([MailServer("smtp0", reliability=0.0)])
        user = MailUser("user", smtp_server="smtp0", pop_server="smtp0")
        for _ in range(10):
            system.send(user)
        assert user.delivery_rate() == 0.0

    def test_spam_filter_removes_spam(self):
        system, _ = make_system(
            [MailServer("smtp0", reliability=1.0, spam_filter=1.0)])
        user = MailUser("user", smtp_server="smtp0", pop_server="smtp0")
        outcome = system.send(user, is_spam=True)
        assert outcome.spam_filtered
        assert not outcome.delivered
        assert user.spam_received == 0

    def test_user_choice_of_filtering_server(self):
        """'A user can pick among servers... such as spam filters.'"""
        servers = [MailServer("plain", reliability=1.0, spam_filter=0.0),
                   MailServer("filtered", reliability=1.0, spam_filter=1.0)]
        system, _ = make_system(servers)
        chooser = MailUser("user", smtp_server="filtered",
                           pop_server="filtered")
        for _ in range(5):
            system.send(chooser, is_spam=True)
        assert chooser.spam_received == 0

    def test_deterministic_under_seed(self):
        def run(seed):
            system, _ = make_system([MailServer("smtp0", reliability=0.5)],
                                    seed=seed)
            user = MailUser("user", smtp_server="smtp0", pop_server="smtp0")
            return [system.send(user).delivered for _ in range(20)]

        assert run(9) == run(9)


class TestIspRedirection:
    def test_redirector_overrides_server_choice(self):
        servers = [MailServer("user-smtp", reliability=1.0),
                   MailServer("isp-smtp", reliability=1.0)]
        system, engine = make_system(servers)
        engine.attach_middlebox("isp-access", Redirector(
            "capture", port=25, new_destination="isp-smtp"))
        user = MailUser("user", smtp_server="user-smtp",
                        pop_server="user-smtp")
        outcome = system.send(user)
        assert outcome.redirected
        assert outcome.smtp_used == "isp-smtp"
        assert user.redirected_count == 1
        assert system.redirection_rate() == 1.0

    def test_no_redirector_no_override(self):
        servers = [MailServer("user-smtp", reliability=1.0)]
        system, _ = make_system(servers)
        user = MailUser("user", smtp_server="user-smtp",
                        pop_server="user-smtp")
        system.send(user)
        assert system.redirection_rate() == 0.0


class TestMarketDiscipline:
    def test_reliable_server_wins_user_base(self):
        counts = server_market_discipline([0.99, 0.7, 0.5], seed=1)
        assert counts["smtp0"] == max(counts.values())
        assert counts["smtp2"] == 0

    def test_all_reliable_no_churn(self):
        counts = server_market_discipline([0.99, 0.99, 0.99],
                                          n_users=30, seed=1)
        # Nobody falls below threshold, so the initial spread persists.
        assert all(count == 10 for count in counts.values())
