"""Edge cases for Network analysis helpers and the AS graph.

Targets the BFS frontier code in ``connected``/``shortest_path`` and
the behaviour of single-AS and post-removal graphs — the degenerate
shapes topogen's loaders can legally produce.
"""

import pytest

from tussle.errors import TopologyError
from tussle.netsim.topology import Network, Relationship


def diamond():
    """a-b-d and a-c-d: two equal-length paths."""
    net = Network()
    for name in ("a", "b", "c", "d"):
        net.add_node(name)
    net.add_link("a", "b")
    net.add_link("b", "d")
    net.add_link("a", "c")
    net.add_link("c", "d")
    return net


class TestConnected:
    def test_node_is_connected_to_itself(self):
        net = Network()
        net.add_node("only")
        assert net.connected("only", "only")

    def test_unknown_node_raises(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(TopologyError):
            net.connected("a", "ghost")

    def test_disconnected_after_remove_link(self):
        net = diamond()
        assert net.connected("a", "d")
        net.remove_link("a", "b")
        assert net.connected("a", "d")  # still via c
        net.remove_link("a", "c")
        assert not net.connected("a", "d")
        assert net.connected("b", "d")

    def test_disconnected_after_remove_node(self):
        """remove_node drops every incident link in one call."""
        net = Network()
        for name in ("left", "mid", "right"):
            net.add_node(name)
        net.add_link("left", "mid")
        net.add_link("mid", "right")
        net.remove_node("mid")
        assert not net.connected("left", "right")
        with pytest.raises(TopologyError):
            net.node("mid")

    def test_downed_links_break_connectivity_without_removal(self):
        net = diamond()
        net.fail_link("a", "b")
        net.fail_link("a", "c")
        assert not net.connected("a", "d")
        net.restore_link("a", "c")
        assert net.connected("a", "d")


class TestShortestPath:
    def test_self_path_is_singleton(self):
        net = diamond()
        assert net.shortest_path("a", "a") == ["a"]

    def test_disconnected_returns_none(self):
        net = Network()
        net.add_node("a")
        net.add_node("b")
        assert net.shortest_path("a", "b") is None

    def test_equal_length_paths_pick_lexicographic_neighbor(self):
        """neighbors() iterates sorted, so BFS prefers 'b' over 'c'."""
        assert diamond().shortest_path("a", "d") == ["a", "b", "d"]

    def test_frontier_advances_level_by_level(self):
        """A long chain plus a shortcut: BFS must take the shortcut."""
        net = Network()
        for name in ("a", "b", "c", "d", "e", "z"):
            net.add_node(name)
        for pair in (("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"),
                     ("e", "z")):
            net.add_link(*pair)
        net.add_link("a", "z")
        assert net.shortest_path("a", "z") == ["a", "z"]

    def test_path_respects_link_state(self):
        net = diamond()
        net.fail_link("b", "d")
        assert net.shortest_path("a", "d") == ["a", "c", "d"]

    def test_unknown_endpoint_raises(self):
        with pytest.raises(TopologyError):
            diamond().shortest_path("a", "nope")


class TestSingleASGraph:
    def test_single_as_has_no_neighbors(self):
        net = Network()
        net.add_as(42, tier=1)
        assert net.as_neighbors(42) == set()
        assert net.providers_of(42) == set()
        assert net.relationship(42, 42) is None

    def test_unknown_as_raises(self):
        net = Network()
        with pytest.raises(TopologyError):
            net.as_neighbors(42)

    def test_self_relationship_rejected(self):
        net = Network()
        net.add_as(1)
        with pytest.raises(TopologyError):
            net.add_as_relationship(1, 1, Relationship.PEER_PEER)
