"""Tests for packets: headers, observation semantics, tunnels."""

import pytest

from tussle.errors import SimulationError
from tussle.netsim.packets import (
    Header,
    Packet,
    Protocol,
    WELL_KNOWN_PORTS,
    make_packet,
    port_for_app,
)


class TestHeader:
    def test_port_range_enforced(self):
        with pytest.raises(SimulationError):
            Header(src="a", dst="b", dst_port=70000)

    def test_tos_range_enforced(self):
        with pytest.raises(SimulationError):
            Header(src="a", dst="b", tos=300)

    def test_header_is_immutable(self):
        header = Header(src="a", dst="b")
        with pytest.raises(AttributeError):
            header.dst = "c"


class TestObservation:
    def test_plaintext_known_port_reveals_app(self):
        packet = make_packet("a", "b", application="http")
        assert packet.observable_application() == "http"

    def test_plaintext_unknown_app_visible_via_payload(self):
        packet = make_packet("a", "b", application="brand-new-app")
        assert packet.observable_application() == "brand-new-app"

    def test_encrypted_unknown_app_is_opaque(self):
        packet = make_packet("a", "b", application="brand-new-app", encrypted=True)
        assert packet.observable_application() is None

    def test_encrypted_known_port_still_classified_by_port(self):
        # Encryption hides content, not the port number.
        packet = make_packet("a", "b", application="smtp", encrypted=True)
        assert packet.observable_application() == "smtp"

    def test_tos_visible(self):
        packet = make_packet("a", "b", tos=8)
        assert packet.observable_tos() == 8


class TestTunnels:
    def test_tunnel_masks_inner_application(self):
        packet = make_packet("a", "b", application="p2p")
        tunnelled = packet.tunnel_to("vpn-gw", application="https")
        assert tunnelled.observable_application() == "https"
        assert tunnelled.wire_header.dst == "vpn-gw"
        assert tunnelled.application == "p2p"  # ground truth preserved

    def test_tunnel_encrypts_by_default(self):
        tunnelled = make_packet("a", "b").tunnel_to("gw")
        assert tunnelled.encrypted

    def test_decapsulate_restores_inner_header(self):
        packet = make_packet("a", "b", application="p2p")
        tunnelled = packet.tunnel_to("gw", application="https")
        inner = tunnelled.decapsulate()
        assert inner.wire_header.dst == "b"
        assert not inner.tunnelled

    def test_decapsulate_bare_packet_rejected(self):
        with pytest.raises(SimulationError):
            make_packet("a", "b").decapsulate()

    def test_nested_tunnels_stack(self):
        packet = make_packet("a", "b")
        once = packet.tunnel_to("gw1")
        twice = once.encapsulate(Header(src="a", dst="gw2", dst_port=443))
        assert len(twice.encapsulation) == 2
        assert twice.wire_header.dst == "gw2"
        assert twice.decapsulate().wire_header.dst == "gw1"

    def test_encapsulate_does_not_mutate_original(self):
        packet = make_packet("a", "b")
        packet.tunnel_to("gw")
        assert not packet.tunnelled
        assert not packet.encrypted


class TestHelpers:
    def test_port_for_known_app(self):
        assert port_for_app("http") == 80
        assert port_for_app("smtp") == 25

    def test_port_for_unknown_app_is_stable_and_high(self):
        port = port_for_app("weird-app")
        assert port == port_for_app("weird-app")
        assert port >= 40000

    def test_make_packet_sets_well_known_destination_port(self):
        packet = make_packet("a", "b", application="dns")
        assert packet.header.dst_port == WELL_KNOWN_PORTS["dns"]

    def test_packet_ids_unique(self):
        a = make_packet("a", "b")
        b = make_packet("a", "b")
        assert a.packet_id != b.packet_id

    def test_source_route_copied(self):
        route = ["a", "r1", "b"]
        packet = make_packet("a", "b", source_route=route)
        route.append("evil")
        assert packet.source_route == ["a", "r1", "b"]

    def test_record_hop(self):
        packet = make_packet("a", "b")
        packet.record_hop("a")
        packet.record_hop("r")
        assert packet.hops == ["a", "r"]


class TestSteganography:
    def test_covert_classifies_as_cover(self):
        packet = make_packet("a", "b", application="p2p").hide_in("http")
        assert packet.observable_application() == "http"
        assert packet.application == "p2p"  # ground truth preserved

    def test_covert_is_not_visibly_protected(self):
        """Unlike encryption, steganography leaves no visible marker."""
        packet = make_packet("a", "b", application="p2p").hide_in("http")
        assert not packet.encrypted
        assert packet.covert_cover == "http"

    def test_covert_uses_cover_port(self):
        packet = make_packet("a", "b", application="p2p").hide_in("https")
        assert packet.wire_header.dst_port == 443

    def test_hide_in_does_not_mutate_original(self):
        packet = make_packet("a", "b", application="p2p")
        packet.hide_in("http")
        assert packet.covert_cover is None
        assert packet.observable_application() == "p2p"

    def test_covert_evades_application_firewall(self):
        from tussle.netsim.middlebox import Action, BlanketFirewall

        firewall = BlanketFirewall("fw", allowed_applications={"http"})
        hidden = make_packet("a", "b", application="p2p").hide_in("http")
        assert firewall.process(hidden).action is Action.FORWARD

    def test_covert_blinds_wiretap(self):
        from tussle.netsim.middlebox import Wiretap

        tap = Wiretap("tap")
        tap.process(make_packet("a", "b", application="p2p").hide_in("http"))
        assert tap.content_visibility_rate() == 0.0
        assert tap.observations[0]["application"] == "http"
