"""Tests for topology: nodes, links, AS relationships, builders."""

import random

import pytest

from tussle.errors import TopologyError
from tussle.netsim.topology import (
    Network,
    NodeKind,
    Relationship,
    dumbbell_topology,
    line_topology,
    multihomed_topology,
    random_as_graph,
    star_topology,
)


@pytest.fixture
def triangle():
    net = Network()
    for name in "abc":
        net.add_node(name)
    net.add_link("a", "b")
    net.add_link("b", "c")
    net.add_link("a", "c")
    return net


class TestNodes:
    def test_add_and_lookup(self):
        net = Network()
        node = net.add_node("h1", kind=NodeKind.HOST)
        assert net.node("h1") is node

    def test_duplicate_name_rejected(self):
        net = Network()
        net.add_node("h1")
        with pytest.raises(TopologyError):
            net.add_node("h1")

    def test_unknown_node_raises(self):
        with pytest.raises(TopologyError):
            Network().node("ghost")

    def test_remove_node_removes_incident_links(self, triangle):
        triangle.remove_node("b")
        assert not triangle.has_node("b")
        assert not triangle.has_link("a", "b")
        assert triangle.has_link("a", "c")

    def test_nodes_of_kind(self):
        net = Network()
        net.add_node("h", kind=NodeKind.HOST)
        net.add_node("r", kind=NodeKind.ROUTER)
        assert [n.name for n in net.nodes_of_kind(NodeKind.ROUTER)] == ["r"]

    def test_node_with_asn_auto_creates_as(self):
        net = Network()
        net.add_node("r", asn=65000)
        assert net.has_as(65000)
        assert net.nodes_in_as(65000)[0].name == "r"


class TestLinks:
    def test_link_is_bidirectional(self, triangle):
        assert triangle.link("a", "b") is triangle.link("b", "a")

    def test_self_loop_rejected(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(TopologyError):
            net.add_link("a", "a")

    def test_duplicate_link_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_link("b", "a")

    def test_link_to_unknown_node_rejected(self):
        net = Network()
        net.add_node("a")
        with pytest.raises(TopologyError):
            net.add_link("a", "ghost")

    def test_other_endpoint(self, triangle):
        link = triangle.link("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(TopologyError):
            link.other("c")

    def test_neighbors_sorted_and_respect_link_state(self, triangle):
        assert triangle.neighbors("a") == ["b", "c"]
        triangle.fail_link("a", "b")
        assert triangle.neighbors("a") == ["c"]
        assert triangle.neighbors("a", only_up=False) == ["b", "c"]
        triangle.restore_link("a", "b")
        assert triangle.neighbors("a") == ["b", "c"]


class TestPaths:
    def test_connected_and_shortest_path(self, triangle):
        assert triangle.connected("a", "c")
        assert triangle.shortest_path("a", "c") == ["a", "c"]

    def test_path_reroutes_around_failure(self, triangle):
        triangle.fail_link("a", "c")
        assert triangle.shortest_path("a", "c") == ["a", "b", "c"]

    def test_disconnected_returns_none(self, triangle):
        triangle.fail_link("a", "c")
        triangle.fail_link("a", "b")
        assert triangle.shortest_path("a", "c") is None
        assert not triangle.connected("a", "c")

    def test_path_to_self(self, triangle):
        assert triangle.shortest_path("a", "a") == ["a"]

    def test_path_latency_sums_links(self):
        net = line_topology(3, latency=0.05)
        assert net.path_latency(["n0", "n1", "n2"]) == pytest.approx(0.10)


class TestAsRelationships:
    def test_customer_provider_directional(self):
        net = Network()
        net.add_as(1)
        net.add_as(2)
        net.add_as_relationship(1, 2, Relationship.CUSTOMER_PROVIDER)
        assert net.providers_of(1) == {2}
        assert net.customers_of(2) == {1}
        assert net.is_provider_of(2, 1)
        assert not net.is_provider_of(1, 2)

    def test_peering_symmetric(self):
        net = Network()
        net.add_as(1)
        net.add_as(2)
        net.add_as_relationship(1, 2, Relationship.PEER_PEER)
        assert net.peers_of(1) == {2}
        assert net.peers_of(2) == {1}

    def test_self_relationship_rejected(self):
        net = Network()
        net.add_as(1)
        with pytest.raises(TopologyError):
            net.add_as_relationship(1, 1, Relationship.PEER_PEER)

    def test_as_neighbors_unions_all(self):
        net = Network()
        for asn in (1, 2, 3, 4):
            net.add_as(asn)
        net.add_as_relationship(1, 2, Relationship.CUSTOMER_PROVIDER)
        net.add_as_relationship(1, 3, Relationship.PEER_PEER)
        net.add_as_relationship(1, 4, Relationship.SIBLING)
        assert net.as_neighbors(1) == {2, 3, 4}

    def test_duplicate_as_rejected(self):
        net = Network()
        net.add_as(1)
        with pytest.raises(TopologyError):
            net.add_as(1)

    def test_relationship_lookup(self):
        net = Network()
        net.add_as(1)
        net.add_as(2)
        net.add_as(3)
        net.add_as_relationship(1, 2, Relationship.CUSTOMER_PROVIDER)
        assert net.relationship(1, 2) is Relationship.CUSTOMER_PROVIDER
        assert net.relationship(1, 3) is None


class TestBuilders:
    def test_line_topology_structure(self):
        net = line_topology(4)
        assert len(net.nodes) == 4
        assert len(net.links) == 3
        assert net.shortest_path("n0", "n3") == ["n0", "n1", "n2", "n3"]

    def test_line_needs_a_node(self):
        with pytest.raises(TopologyError):
            line_topology(0)

    def test_star_topology_structure(self):
        net = star_topology(5)
        assert len(net.links) == 5
        assert net.shortest_path("leaf0", "leaf4") == ["leaf0", "hub", "leaf4"]

    def test_dumbbell_bottleneck(self):
        net = dumbbell_topology(2, 2, bottleneck_capacity=100.0)
        assert net.link("L", "R").capacity == 100.0
        assert net.shortest_path("src0", "dst1") == ["src0", "L", "R", "dst1"]

    def test_random_as_graph_is_hierarchical(self):
        net = random_as_graph(n_tier1=2, n_tier2=4, n_tier3=6,
                              rng=random.Random(42))
        tiers = {a.asn: a.tier for a in net.ases}
        assert sum(1 for t in tiers.values() if t == 1) == 2
        # Every stub has at least one provider.
        for autonomous_system in net.ases:
            if autonomous_system.tier == 3:
                assert net.providers_of(autonomous_system.asn)
        # Tier-1s peer with each other.
        tier1 = [a.asn for a in net.ases if a.tier == 1]
        assert tier1[1] in net.peers_of(tier1[0])

    def test_random_as_graph_deterministic_under_seed(self):
        a = random_as_graph(rng=random.Random(7))
        b = random_as_graph(rng=random.Random(7))
        assert {x.asn for x in a.ases} == {x.asn for x in b.ases}
        for autonomous_system in a.ases:
            assert (a.providers_of(autonomous_system.asn)
                    == b.providers_of(autonomous_system.asn))

    def test_multihomed_topology(self):
        net = multihomed_topology(3)
        assert net.has_node("cust")
        assert len(net.neighbors("cust")) == 3
        for i in range(3):
            assert net.connected("cust", "core")
