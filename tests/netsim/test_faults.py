"""Tests for fault injection and audience-targeted reporting."""

import pytest

from tussle.netsim.faults import Audience, FaultInjector, FaultReporter, traceroute
from tussle.netsim.forwarding import DeliveryStatus, ForwardingEngine
from tussle.netsim.middlebox import PortFilterFirewall
from tussle.netsim.packets import make_packet
from tussle.netsim.topology import line_topology


@pytest.fixture
def engine():
    e = ForwardingEngine(line_topology(4))
    e.install_shortest_path_tables()
    return e


class TestFaultReporter:
    def test_delivered_report_not_actionable(self, engine):
        receipt = engine.send(make_packet("n0", "n3"))
        report = FaultReporter().report(receipt, Audience.END_USER)
        assert report.summary == "delivered"
        assert not report.actionable

    def test_disclosed_block_is_actionable_for_user(self, engine):
        engine.attach_middlebox(
            "n1", PortFilterFirewall("fw", blocked_applications={"p2p"}))
        receipt = engine.send(make_packet("n0", "n3", application="p2p"))
        report = FaultReporter().report(receipt, Audience.END_USER)
        assert report.actionable
        assert "different provider" in report.summary

    def test_silent_block_not_actionable_for_user(self, engine):
        engine.attach_middlebox(
            "n1", PortFilterFirewall("fw", blocked_applications={"p2p"},
                                     discloses=False))
        receipt = engine.send(make_packet("n0", "n3", application="p2p"))
        report = FaultReporter().report(receipt, Audience.END_USER)
        assert not report.actionable
        assert "undisclosed" in report.summary

    def test_operator_report_localizes_link_failure(self, engine):
        engine.network.fail_link("n1", "n2")
        receipt = engine.send(make_packet("n0", "n3"))
        report = FaultReporter().report(receipt, Audience.OPERATOR)
        assert report.actionable
        assert report.location == "n1"
        assert "link" in report.summary

    def test_user_report_for_link_failure_mentions_unreachable(self, engine):
        engine.network.fail_link("n1", "n2")
        receipt = engine.send(make_packet("n0", "n3"))
        report = FaultReporter().report(receipt, Audience.END_USER)
        assert "unreachable" in report.summary

    def test_source_route_refusal_report(self, engine):
        engine.honor_source_routes = False
        packet = make_packet("n0", "n3", source_route=["n0", "n1", "n2", "n3"])
        receipt = engine.send(packet)
        report = FaultReporter().report(receipt, Audience.END_USER)
        assert report.actionable
        assert "refuses" in report.summary


class TestBlameRouting:
    """FaultReporter.route: address the actor who can act (§VI-A)."""

    def test_delivered_goes_to_end_user_unactionable(self, engine):
        receipt = engine.send(make_packet("n0", "n3"))
        report = FaultReporter().route(receipt, provider_nodes=["n1", "n2"])
        assert report.audience is Audience.END_USER
        assert not report.actionable

    def test_provider_internal_fault_addresses_operator(self, engine):
        engine.network.fail_link("n1", "n2")
        receipt = engine.send(make_packet("n0", "n3"))
        report = FaultReporter().route(receipt, provider_nodes=["n1", "n2"])
        assert report.audience is Audience.OPERATOR
        assert report.actionable
        assert report.location == "n1"

    def test_fault_outside_provider_addresses_end_user(self, engine):
        engine.network.fail_link("n1", "n2")
        receipt = engine.send(make_packet("n0", "n3"))
        # Same fault, but n1 belongs to no declared provider: the user's
        # remedy is to choose differently.
        report = FaultReporter().route(receipt, provider_nodes=["n2"])
        assert report.audience is Audience.END_USER
        assert report.actionable

    def test_middlebox_inside_provider_addresses_operator(self, engine):
        engine.attach_middlebox(
            "n1", PortFilterFirewall("fw", blocked_applications={"p2p"}))
        receipt = engine.send(make_packet("n0", "n3", application="p2p"))
        report = FaultReporter().route(receipt, provider_nodes=["n1", "n2"])
        assert report.audience is Audience.OPERATOR
        assert report.actionable


class TestTraceroute:
    def test_full_path_on_success(self, engine):
        hops = traceroute(engine, "n0", "n3")
        assert hops == [("n0", True), ("n1", True), ("n2", True), ("n3", True)]

    def test_trace_stops_at_downed_link(self, engine):
        engine.network.fail_link("n2", "n3")
        hops = traceroute(engine, "n0", "n3")
        assert hops == [("n0", True), ("n1", True), ("n2", True),
                        ("?", False)]

    def test_trace_stops_at_silent_interferer(self, engine):
        engine.attach_middlebox(
            "n2", PortFilterFirewall("fw", blocked_applications={"generic"},
                                     discloses=False))
        hops = traceroute(engine, "n0", "n3")
        assert ("n2", True) in hops  # reached the box itself
        assert hops[-1] == ("?", False)


class TestFaultInjector:
    def test_fail_random_link_is_seeded(self):
        def failed(seed):
            engine = ForwardingEngine(line_topology(5))
            injector = FaultInjector(engine, seed=seed)
            return injector.fail_random_link()

        assert failed(3) == failed(3)

    def test_fail_fraction(self):
        engine = ForwardingEngine(line_topology(11))  # 10 links
        injector = FaultInjector(engine, seed=0)
        failed = injector.fail_fraction(0.5)
        assert len(failed) == 5
        assert sum(1 for l in engine.network.links if not l.up) == 5

    def test_restore_all(self):
        engine = ForwardingEngine(line_topology(5))
        injector = FaultInjector(engine, seed=0)
        injector.fail_fraction(1.0)
        injector.restore_all()
        assert all(l.up for l in engine.network.links)
        assert injector.failed_links == []

    def test_no_links_left_returns_none(self):
        engine = ForwardingEngine(line_topology(2))
        injector = FaultInjector(engine, seed=0)
        injector.fail_fraction(1.0)
        assert injector.fail_random_link() is None

    def test_injected_rng_equals_explicit_seed(self):
        import random

        def failures(**kwargs):
            engine = ForwardingEngine(line_topology(8))
            injector = FaultInjector(engine, **kwargs)
            return injector.fail_fraction(0.5)

        assert failures(seed=11) == failures(rng=random.Random(11))

    def test_shared_rng_stream_spans_injectors(self):
        import random

        # Two injectors drawing from one master stream behave like one
        # injector making the same draws in sequence.
        rng = random.Random(5)
        engine_a = ForwardingEngine(line_topology(8))
        engine_b = ForwardingEngine(line_topology(8))
        first = FaultInjector(engine_a, rng=rng).fail_random_link()
        second = FaultInjector(engine_b, rng=rng).fail_random_link()

        serial_rng = random.Random(5)
        engine_c = ForwardingEngine(line_topology(8))
        serial = FaultInjector(engine_c, rng=serial_rng)
        assert serial.fail_random_link() == first
        engine_d = ForwardingEngine(line_topology(8))
        assert FaultInjector(engine_d, rng=serial_rng) \
            .fail_random_link() == second
