"""Tests for fault injection and audience-targeted reporting."""

import pytest

from tussle.netsim.faults import Audience, FaultInjector, FaultReporter, traceroute
from tussle.netsim.forwarding import DeliveryStatus, ForwardingEngine
from tussle.netsim.middlebox import PortFilterFirewall
from tussle.netsim.packets import make_packet
from tussle.netsim.topology import line_topology


@pytest.fixture
def engine():
    e = ForwardingEngine(line_topology(4))
    e.install_shortest_path_tables()
    return e


class TestFaultReporter:
    def test_delivered_report_not_actionable(self, engine):
        receipt = engine.send(make_packet("n0", "n3"))
        report = FaultReporter().report(receipt, Audience.END_USER)
        assert report.summary == "delivered"
        assert not report.actionable

    def test_disclosed_block_is_actionable_for_user(self, engine):
        engine.attach_middlebox(
            "n1", PortFilterFirewall("fw", blocked_applications={"p2p"}))
        receipt = engine.send(make_packet("n0", "n3", application="p2p"))
        report = FaultReporter().report(receipt, Audience.END_USER)
        assert report.actionable
        assert "different provider" in report.summary

    def test_silent_block_not_actionable_for_user(self, engine):
        engine.attach_middlebox(
            "n1", PortFilterFirewall("fw", blocked_applications={"p2p"},
                                     discloses=False))
        receipt = engine.send(make_packet("n0", "n3", application="p2p"))
        report = FaultReporter().report(receipt, Audience.END_USER)
        assert not report.actionable
        assert "undisclosed" in report.summary

    def test_operator_report_localizes_link_failure(self, engine):
        engine.network.fail_link("n1", "n2")
        receipt = engine.send(make_packet("n0", "n3"))
        report = FaultReporter().report(receipt, Audience.OPERATOR)
        assert report.actionable
        assert report.location == "n1"
        assert "link" in report.summary

    def test_user_report_for_link_failure_mentions_unreachable(self, engine):
        engine.network.fail_link("n1", "n2")
        receipt = engine.send(make_packet("n0", "n3"))
        report = FaultReporter().report(receipt, Audience.END_USER)
        assert "unreachable" in report.summary

    def test_source_route_refusal_report(self, engine):
        engine.honor_source_routes = False
        packet = make_packet("n0", "n3", source_route=["n0", "n1", "n2", "n3"])
        receipt = engine.send(packet)
        report = FaultReporter().report(receipt, Audience.END_USER)
        assert report.actionable
        assert "refuses" in report.summary


class TestTraceroute:
    def test_full_path_on_success(self, engine):
        hops = traceroute(engine, "n0", "n3")
        assert hops == [("n0", True), ("n1", True), ("n2", True), ("n3", True)]

    def test_trace_stops_at_silent_interferer(self, engine):
        engine.attach_middlebox(
            "n2", PortFilterFirewall("fw", blocked_applications={"generic"},
                                     discloses=False))
        hops = traceroute(engine, "n0", "n3")
        assert ("n2", True) in hops  # reached the box itself
        assert hops[-1] == ("?", False)


class TestFaultInjector:
    def test_fail_random_link_is_seeded(self):
        def failed(seed):
            engine = ForwardingEngine(line_topology(5))
            injector = FaultInjector(engine, seed=seed)
            return injector.fail_random_link()

        assert failed(3) == failed(3)

    def test_fail_fraction(self):
        engine = ForwardingEngine(line_topology(11))  # 10 links
        injector = FaultInjector(engine, seed=0)
        failed = injector.fail_fraction(0.5)
        assert len(failed) == 5
        assert sum(1 for l in engine.network.links if not l.up) == 5

    def test_restore_all(self):
        engine = ForwardingEngine(line_topology(5))
        injector = FaultInjector(engine, seed=0)
        injector.fail_fraction(1.0)
        injector.restore_all()
        assert all(l.up for l in engine.network.links)
        assert injector.failed_links == []

    def test_no_links_left_returns_none(self):
        engine = ForwardingEngine(line_topology(2))
        injector = FaultInjector(engine, seed=0)
        injector.fail_fraction(1.0)
        assert injector.fail_random_link() is None
