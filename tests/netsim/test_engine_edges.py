"""Edge cases of the discrete-event engine: cancellation after firing,
zero-delay self-rescheduling, tie-break ordering, and mid-run process
termination."""

import pytest

from tussle.errors import SimulationError
from tussle.netsim.engine import Process, Simulator


class TestCancelAfterFire:
    def test_cancelling_a_fired_handle_is_a_noop(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(1.0, lambda: seen.append("fired"))
        sim.run()
        assert seen == ["fired"]
        handle.cancel()  # must not raise or un-fire anything
        assert handle.fired is True
        assert handle.active is False
        assert sim.events_processed == 1

    def test_cancel_after_fire_does_not_affect_later_events(self):
        sim = Simulator()
        seen = []
        first = sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(2.0, lambda: seen.append("b"))
        assert sim.step() is True
        first.cancel()
        sim.run()
        assert seen == ["a", "b"]


class TestZeroDelaySelfReschedule:
    def test_zero_delay_events_advance_seq_not_time(self):
        """An event rescheduling itself at delay 0 runs at the same
        instant, strictly after the current event (FIFO on seq)."""
        sim = Simulator()
        seen = []

        def reschedule(depth):
            seen.append((sim.now, depth))
            if depth < 3:
                sim.schedule(0.0, reschedule, depth + 1)

        sim.schedule(1.0, reschedule, 0)
        fired = sim.run()
        assert fired == 4
        assert seen == [(1.0, 0), (1.0, 1), (1.0, 2), (1.0, 3)]

    def test_zero_delay_chain_respects_until_bound(self):
        sim = Simulator()
        count = []

        def forever():
            count.append(sim.now)
            sim.schedule(0.0, forever)

        sim.schedule(1.0, forever)
        # max_events bounds an otherwise infinite zero-delay chain.
        fired = sim.run(max_events=10)
        assert fired == 10
        assert all(t == 1.0 for t in count)

    def test_interleaves_with_later_events(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: (order.append("t1"),
                                   sim.schedule(0.0, lambda: order.append("t1+0"))))
        sim.schedule(2.0, lambda: order.append("t2"))
        sim.run()
        assert order == ["t1", "t1+0", "t2"]


class TestTieBreakOrdering:
    def test_fifo_under_identical_time_and_priority(self):
        sim = Simulator()
        order = []
        for label in ("first", "second", "third"):
            sim.schedule(1.0, order.append, label, priority=5)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_priority_beats_insertion_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "late", priority=1)
        sim.schedule(1.0, order.append, "early", priority=0)
        sim.run()
        assert order == ["early", "late"]

    def test_time_beats_priority(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "later", priority=-10)
        sim.schedule(1.0, order.append, "sooner", priority=10)
        sim.run()
        assert order == ["sooner", "later"]

    def test_tie_break_is_reproducible(self):
        def run_once():
            sim = Simulator()
            order = []
            for i in range(20):
                sim.schedule(1.0, order.append, i, priority=i % 3)
            sim.run()
            return order
        assert run_once() == run_once()


class TestProcessTerminationMidRun:
    def test_stop_from_inside_a_callback(self):
        sim = Simulator()
        ticks = []
        process = Process(sim, interval=1.0,
                          callback=lambda: ticks.append(sim.now))

        def halt():
            process.stop()

        process.start()
        sim.schedule(2.5, halt)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert process.running is False

    def test_callback_returning_false_terminates(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            return None if len(ticks) < 3 else False

        process = Process(sim, interval=1.0, callback=tick)
        process.start()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert process.running is False

    def test_stopped_process_can_restart(self):
        sim = Simulator()
        ticks = []
        process = Process(sim, interval=1.0,
                          callback=lambda: ticks.append(sim.now))
        process.start()
        sim.run(until=1.5)
        process.stop()
        sim.run(until=3.5)
        assert ticks == [1.0]
        process.start()
        sim.run(until=5.5)
        assert ticks == [1.0, 4.5, 5.5]

    def test_double_start_raises(self):
        sim = Simulator()
        process = Process(sim, interval=1.0, callback=lambda: None)
        process.start()
        with pytest.raises(SimulationError, match="already started"):
            process.start()
