"""Tests for the QoS classifiers and scheduler."""

import pytest

from tussle.netsim.packets import make_packet
from tussle.netsim.qos import (
    PRIORITY_TOS,
    PortQosClassifier,
    QosScheduler,
    TosQosClassifier,
)


class TestPortClassifier:
    def test_prioritizes_named_application(self):
        classifier = PortQosClassifier()
        assert classifier.prioritize(make_packet("a", "b", application="voip"))
        assert not classifier.prioritize(make_packet("a", "b",
                                                     application="http"))

    def test_fooled_by_encapsulation(self):
        classifier = PortQosClassifier()
        bulk = make_packet("a", "b", application="p2p").tunnel_to(
            "relay", application="voip", encrypt=False)
        assert classifier.prioritize(bulk)

    def test_misses_tunnelled_voip(self):
        classifier = PortQosClassifier()
        voip = make_packet("a", "b", application="voip").tunnel_to(
            "vpn", application="vpn")
        assert not classifier.prioritize(voip)


class TestTosClassifier:
    def test_threshold(self):
        classifier = TosQosClassifier()
        assert classifier.prioritize(make_packet("a", "b", tos=PRIORITY_TOS))
        assert not classifier.prioritize(make_packet("a", "b", tos=0))

    def test_tos_survives_tunnelling(self):
        classifier = TosQosClassifier()
        voip = make_packet("a", "b", application="voip",
                           tos=PRIORITY_TOS).tunnel_to("vpn")
        assert classifier.prioritize(voip)

    def test_billing_accrues_per_prioritized_packet(self):
        classifier = TosQosClassifier(bill_per_packet=0.5)
        classifier.prioritize(make_packet("a", "b", tos=PRIORITY_TOS))
        classifier.prioritize(make_packet("a", "b", tos=0))
        classifier.prioritize(make_packet("a", "b", tos=PRIORITY_TOS))
        assert classifier.revenue == pytest.approx(1.0)


class TestScheduler:
    def _run(self, classifier, packets):
        scheduler = QosScheduler("qos", classifier)
        for packet in packets:
            scheduler.process(packet)
        return scheduler

    def test_perfect_scores_on_honest_traffic(self):
        packets = [make_packet("a", "b", application="voip", tos=PRIORITY_TOS),
                   make_packet("a", "b", application="http", tos=0)]
        for classifier in (PortQosClassifier(), TosQosClassifier()):
            scheduler = self._run(classifier, packets)
            assert scheduler.accuracy() == 1.0
            assert scheduler.recall() == 1.0
            assert scheduler.false_priority_rate() == 0.0

    def test_ground_truth_uses_true_application(self):
        bulk = make_packet("a", "b", application="p2p").tunnel_to(
            "relay", application="voip", encrypt=False)
        scheduler = self._run(PortQosClassifier(), [bulk])
        assert scheduler.false_priority_rate() == 1.0
        assert scheduler.accuracy() == 0.0

    def test_always_forwards(self):
        from tussle.netsim.middlebox import Action
        scheduler = QosScheduler("qos", TosQosClassifier())
        verdict = scheduler.process(make_packet("a", "b"))
        assert verdict.action is Action.FORWARD

    def test_empty_scores(self):
        scheduler = QosScheduler("qos", TosQosClassifier())
        assert scheduler.recall() == 1.0
        assert scheduler.false_priority_rate() == 0.0
        assert scheduler.accuracy() == 1.0
