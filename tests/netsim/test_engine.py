"""Tests for the discrete-event engine."""

import pytest

from tussle.errors import SimulationError
from tussle.netsim.engine import EventHandle, Process, Simulator


class TestSimulatorBasics:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_schedule_and_run_advances_clock(self):
        sim = Simulator()
        sim.schedule(2.5, lambda: None)
        sim.run()
        assert sim.now == 2.5

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_fifo(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "second", priority=1)
        sim.schedule(1.0, order.append, "first", priority=0)
        sim.schedule(1.0, order.append, "third", priority=1)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_run_returns_event_count(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.active

    def test_handle_active_lifecycle(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.active
        sim.run()
        assert not handle.active
        assert handle.fired

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_when_empty(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_bounds_firing(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending == 7

    def test_stop_requests_early_return(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [(None)] or len(fired) == 1

    def test_step_returns_false_on_empty_calendar(self):
        assert Simulator().step() is False

    def test_clear_drops_pending_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.clear()
        assert sim.pending == 0
        assert sim.run() == 0

    def test_not_reentrant(self):
        sim = Simulator()

        def reenter():
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()


class TestProcess:
    def test_ticks_at_interval(self):
        sim = Simulator()
        times = []
        Process(sim, interval=1.0, callback=lambda: times.append(sim.now)).start()
        sim.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_custom_start_delay(self):
        sim = Simulator()
        times = []
        proc = Process(sim, interval=2.0, callback=lambda: times.append(sim.now),
                       start_delay=0.5)
        proc.start()
        sim.run(until=5.0)
        assert times == [0.5, 2.5, 4.5]

    def test_callback_false_stops_recurrence(self):
        sim = Simulator()
        count = []

        def tick():
            count.append(1)
            if len(count) >= 2:
                return False

        Process(sim, interval=1.0, callback=tick).start()
        sim.run(until=10.0)
        assert len(count) == 2

    def test_stop_cancels_pending_tick(self):
        sim = Simulator()
        count = []
        proc = Process(sim, interval=1.0, callback=lambda: count.append(1))
        proc.start()
        sim.run(until=1.5)
        proc.stop()
        sim.run(until=5.0)
        assert len(count) == 1
        assert not proc.running

    def test_double_start_rejected(self):
        sim = Simulator()
        proc = Process(sim, interval=1.0, callback=lambda: None)
        proc.start()
        with pytest.raises(SimulationError):
            proc.start()

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(SimulationError):
            Process(Simulator(), interval=0.0, callback=lambda: None)


class TestBookkeeping:
    def test_events_processed_counts(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_process_priority_orders_simultaneous_ticks(self):
        sim = Simulator()
        order = []
        late = Process(sim, interval=1.0,
                       callback=lambda: order.append("late"), priority=5)
        early = Process(sim, interval=1.0,
                        callback=lambda: order.append("early"), priority=0)
        late.start()
        early.start()
        sim.run(until=1.0)
        assert order == ["early", "late"]

    def test_process_tick_counter(self):
        sim = Simulator()
        proc = Process(sim, interval=1.0, callback=lambda: None)
        proc.start()
        sim.run(until=3.5)
        assert proc.ticks == 3
