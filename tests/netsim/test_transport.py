"""Tests for transport flows and the congestion-control tussle."""

import pytest

from tussle.errors import SimulationError
from tussle.netsim.transport import (
    AIMDFlow,
    CheaterFlow,
    SharedBottleneck,
    fairness_index,
)


class TestAimd:
    def test_additive_increase_without_congestion(self):
        flow = AIMDFlow(name="f", rate=1.0, increase=1.0)
        flow.on_round(congested=False)
        assert flow.rate == 2.0

    def test_multiplicative_decrease_on_congestion(self):
        flow = AIMDFlow(name="f", rate=8.0, decrease_factor=0.5)
        flow.on_round(congested=True)
        assert flow.rate == 4.0

    def test_rate_floor(self):
        flow = AIMDFlow(name="f", rate=0.1, min_rate=0.1)
        flow.on_round(congested=True)
        assert flow.rate == 0.1

    def test_compliant_flag(self):
        assert AIMDFlow(name="f").compliant
        assert not CheaterFlow(name="c").compliant


class TestCheater:
    def test_ignores_congestion(self):
        cheater = CheaterFlow(name="c", rate=5.0, increase=2.0)
        cheater.on_round(congested=True)
        assert cheater.rate == 7.0

    def test_respects_max_rate(self):
        cheater = CheaterFlow(name="c", rate=9.0, increase=2.0, max_rate=10.0)
        cheater.on_round(congested=True)
        assert cheater.rate == 10.0


class TestSharedBottleneck:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            SharedBottleneck(0.0)

    def test_uncongested_serves_full_rates(self):
        link = SharedBottleneck(100.0, [AIMDFlow(name="a", rate=10.0),
                                        AIMDFlow(name="b", rate=20.0)])
        served = link.step()
        assert served == {"a": 10.0, "b": 20.0}
        assert link.congested_rounds == 0

    def test_congested_shares_proportionally(self):
        link = SharedBottleneck(30.0, [AIMDFlow(name="a", rate=20.0),
                                       AIMDFlow(name="b", rate=40.0)])
        served = link.step()
        assert served["a"] == pytest.approx(10.0)
        assert served["b"] == pytest.approx(20.0)
        assert link.congested_rounds == 1

    def test_all_compliant_flows_share_fairly_long_run(self):
        flows = [AIMDFlow(name=f"f{i}", rate=1.0 + i * 0.5) for i in range(4)]
        link = SharedBottleneck(40.0, flows)
        link.run(300)
        shares = [f.delivered for f in flows]
        assert fairness_index(shares) > 0.95

    def test_cheater_wins_against_compliant_majority(self):
        """The paper's §II-B claim: once a player defects, the technical
        design does nothing to protect the compliant majority."""
        flows = [AIMDFlow(name=f"f{i}") for i in range(9)]
        flows.append(CheaterFlow(name="cheat"))
        link = SharedBottleneck(50.0, flows)
        link.run(200)
        assert link.cheater_advantage() > 2.0

    def test_more_cheaters_hurt_everyone(self):
        def total_goodput(n_cheaters):
            flows = [AIMDFlow(name=f"f{i}") for i in range(10 - n_cheaters)]
            flows += [CheaterFlow(name=f"c{i}") for i in range(n_cheaters)]
            link = SharedBottleneck(50.0, flows)
            link.run(200)
            return sum(f.delivered for f in flows if f.compliant) / max(
                1, sum(1 for f in flows if f.compliant))

        assert total_goodput(0) > total_goodput(2) > total_goodput(5)

    def test_cheater_advantage_one_when_no_cheaters(self):
        link = SharedBottleneck(10.0, [AIMDFlow(name="a")])
        link.run(10)
        assert link.cheater_advantage() == 1.0


class TestFairnessIndex:
    def test_equal_allocation_is_one(self):
        assert fairness_index([5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert fairness_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero_are_fair(self):
        assert fairness_index([]) == 1.0
        assert fairness_index([0, 0]) == 1.0

    def test_negative_values_clamped(self):
        assert 0.0 < fairness_index([-1, 5]) <= 1.0
