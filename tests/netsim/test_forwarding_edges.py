"""Edge cases of the forwarding substrate, pinned on both backends.

The shapes parity sweeps statistically are nailed down here one by one:
zero-capacity links, self-loop routes, empty/degenerate topologies,
links failing between batches, and duplicate FIB entries.  Where a case
touches both backends, both are asserted — the scalar engine is the
reference and the vector engine must not quietly disagree on corners.
"""

import pytest

from tussle.errors import RoutingError, ScaleError
from tussle.netsim.forwarding import (
    DeliveryStatus,
    ForwardingEngine,
    PrefixFib,
)
from tussle.netsim.packets import make_packet
from tussle.netsim.topology import Network, dumbbell_topology, line_topology
from tussle.scale.narrays import NetIndex, PacketArrays, traffic_stream
from tussle.scale.vforwarding import VectorForwardingEngine


def two_nodes(capacity=10.0):
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", latency=0.01, capacity=capacity)
    return net


class TestZeroCapacityLinks:
    def test_scalar_treats_zero_capacity_as_unusable(self):
        engine = ForwardingEngine(two_nodes(capacity=0.0))
        engine.install_shortest_path_tables()
        receipt = engine.send(make_packet("a", "b"))
        assert receipt.status is DeliveryStatus.LINK_DOWN
        assert "has no capacity" in receipt.diagnostic

    def test_vector_agrees_zero_capacity_is_link_down(self):
        net = two_nodes(capacity=0.0)
        engine = VectorForwardingEngine(net)
        engine.install_shortest_path_tables()
        batch = PacketArrays.from_traffic([("a", "b", 0)],
                                          NetIndex.from_network(net))
        rounds = engine.send_batch(batch)
        assert sum(r.link_down for r in rounds) == 1
        assert engine.status_name(batch.status[0]) == "link-down"

    def test_zero_capacity_bottleneck_blocks_cross_traffic_only(self):
        net = dumbbell_topology(3, 3, bottleneck_capacity=0.0)
        engine = ForwardingEngine(net)
        engine.install_shortest_path_tables()
        same_side = engine.send(make_packet("src0", "src1"))
        cross = engine.send(make_packet("src0", "dst0"))
        assert same_side.status is DeliveryStatus.DELIVERED
        assert cross.status is DeliveryStatus.LINK_DOWN


class TestSelfLoopRoutes:
    def test_scalar_self_loop_table_entry_is_link_down(self):
        net = two_nodes()
        engine = ForwardingEngine(net)
        engine.install_table("a", {"b": "a"})  # next hop = current node
        receipt = engine.send(make_packet("a", "b"))
        assert receipt.status is DeliveryStatus.LINK_DOWN

    def test_vector_self_loop_table_entry_is_link_down(self):
        net = two_nodes()
        engine = VectorForwardingEngine(net)
        engine.install_table("a", {"b": "a"})
        engine.install_table("b", {"a": "a"})
        batch = PacketArrays.from_traffic([("a", "b", 0)],
                                          NetIndex.from_network(net))
        engine.send_batch(batch)
        assert engine.status_name(batch.status[0]) == "link-down"

    def test_packet_already_at_destination_delivers_in_round_zero(self):
        net = two_nodes()
        engine = VectorForwardingEngine(net)
        engine.install_shortest_path_tables()
        batch = PacketArrays.from_traffic([("a", "a", 0)],
                                          NetIndex.from_network(net))
        rounds = engine.send_batch(batch)
        assert rounds[0].delivered == 1
        assert len(rounds) == 1
        assert engine.delivered_to(batch, 0) == "a"


class TestDegenerateTopologies:
    def test_empty_topology_rejects_traffic_stream(self):
        with pytest.raises(ScaleError):
            traffic_stream([], 5, seed=1)

    def test_single_node_rejects_traffic_stream(self):
        with pytest.raises(ScaleError):
            traffic_stream(["only"], 5, seed=1)

    def test_empty_batch_forwards_to_empty_history(self):
        net = two_nodes()
        engine = VectorForwardingEngine(net)
        engine.install_shortest_path_tables()
        batch = PacketArrays.from_traffic([], NetIndex.from_network(net))
        rounds = engine.send_batch(batch)
        assert len(rounds) == 1
        assert rounds[0].in_flight == 0
        assert engine.delivery_rate() == 0.0

    def test_no_tables_installed_means_no_route(self):
        net = two_nodes()
        scalar = ForwardingEngine(net)
        receipt = scalar.send(make_packet("a", "b"))
        assert receipt.status is DeliveryStatus.NO_ROUTE

        vector = VectorForwardingEngine(net)
        batch = PacketArrays.from_traffic([("a", "b", 0)],
                                          NetIndex.from_network(net))
        vector.send_batch(batch)
        assert vector.status_name(batch.status[0]) == "no-route"


class TestLinkFailureBetweenBatches:
    def test_vector_sees_failure_after_refresh(self):
        net = line_topology(3)
        engine = VectorForwardingEngine(net)
        engine.install_shortest_path_tables()
        index = NetIndex.from_network(net)

        batch = PacketArrays.from_traffic([("n0", "n2", 0)], index)
        engine.send_batch(batch)
        assert engine.status_name(batch.status[0]) == "delivered"

        net.fail_link("n1", "n2")
        engine.refresh_topology()
        batch = PacketArrays.from_traffic([("n0", "n2", 0)], index)
        engine.send_batch(batch)
        assert engine.status_name(batch.status[0]) == "link-down"
        # The packet made it one hop before hitting the dead link.
        assert int(batch.hops[0]) == 2

    def test_scalar_and_vector_agree_on_midpath_failure(self):
        net = line_topology(4)
        scalar = ForwardingEngine(net)
        scalar.install_shortest_path_tables()
        vector = VectorForwardingEngine(net)
        vector.install_shortest_path_tables()

        # Tables were computed while the link was up; it dies in transit.
        net.fail_link("n2", "n3")
        receipt = scalar.send(make_packet("n0", "n3"))
        vector.refresh_topology()
        batch = PacketArrays.from_traffic(
            [("n0", "n3", 0)], NetIndex.from_network(net))
        vector.send_batch(batch)
        assert receipt.status is DeliveryStatus.LINK_DOWN
        assert vector.status_name(batch.status[0]) == receipt.status.value
        assert int(batch.hops[0]) == len(receipt.path)
        assert float(batch.latency[0]) == receipt.latency


class TestDuplicateFibEntries:
    def test_reinstalling_a_table_replaces_it(self):
        net = line_topology(3)
        engine = ForwardingEngine(net)
        engine.install_table("n0", {"n2": "n1"})
        engine.install_table("n0", {"n2": "n1", "n1": "n1"})
        assert engine.tables["n0"] == {"n2": "n1", "n1": "n1"}

    def test_prefix_fib_duplicate_insert_replaces(self):
        net = Network()
        for name in ("leaf-a", "leaf-b", "hub"):
            net.add_node(name)
        net.add_link("hub", "leaf-a", latency=0.01)
        net.add_link("hub", "leaf-b", latency=0.01)
        fib = PrefixFib()
        fib.insert("leaf-", "leaf-a")
        fib.insert("leaf-", "leaf-b")  # routing update replaces the first
        engine = ForwardingEngine(net)
        engine.install_prefix_table("hub", fib)
        assert fib.lookup("leaf-b") == "leaf-b"
        assert len(fib) == 1

    def test_prefix_fib_longest_prefix_beats_shorter(self):
        net = Network()
        for name in ("core", "edge-1", "edge-2"):
            net.add_node(name)
        net.add_link("core", "edge-1", latency=0.01)
        net.add_link("core", "edge-2", latency=0.01)
        fib = PrefixFib()
        fib.insert("edge", "edge-1")
        fib.insert("edge-2", "edge-2")
        engine = ForwardingEngine(net)
        engine.install_prefix_table("core", fib)
        packet = make_packet("core", "edge-2")
        receipt = engine.send(packet)
        assert receipt.status is DeliveryStatus.DELIVERED
        assert receipt.path == ["core", "edge-2"]

    def test_vector_rejects_unknown_next_hop(self):
        net = two_nodes()
        engine = VectorForwardingEngine(net)
        with pytest.raises(ScaleError):
            engine.install_table("a", {"b": "ghost"})

    def test_scalar_rejects_unknown_prefix_next_hop(self):
        net = two_nodes()
        engine = ForwardingEngine(net)
        fib = PrefixFib()
        fib.insert("b", "ghost")
        with pytest.raises(RoutingError):
            engine.install_prefix_table("a", fib)
