"""Property-based tests (hypothesis) on netsim invariants.

Four invariants the forwarding substrate must hold for *any* input, not
just the fixtures the unit tests pin:

* **Conservation** — every packet a batch offers is accounted for at
  every round: delivered + failed + still-in-flight always equals the
  batch size, and the final round leaves nothing in flight.
* **FIB determinism** — longest-prefix lookup does not depend on the
  order entries were inserted (after last-wins dedup, which is itself a
  property here).
* **Work conservation** — the shared bottleneck serves exactly what is
  offered when uncongested and exactly its capacity when congested; it
  neither creates nor destroys rate.
* **Event-order invariance** — the discrete-event engine fires events in
  ``(time, priority, insertion)`` order no matter how scheduling calls
  are interleaved.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from tussle.netsim.engine import Simulator
from tussle.netsim.forwarding import PrefixFib
from tussle.netsim.topology import (
    dumbbell_topology,
    line_topology,
    star_topology,
)
from tussle.netsim.transport import AIMDFlow, CheaterFlow, SharedBottleneck
from tussle.scale.narrays import NetIndex, PacketArrays, traffic_stream
from tussle.scale.vforwarding import VectorForwardingEngine

_BUILDERS = (
    lambda: line_topology(6),
    lambda: star_topology(8),
    lambda: dumbbell_topology(4, 4),
)


class TestForwardingConservation:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           builder=st.sampled_from(_BUILDERS),
           n_packets=st.integers(min_value=1, max_value=80))
    @settings(max_examples=40, deadline=None)
    def test_every_packet_is_accounted_for_each_round(self, seed, builder,
                                                      n_packets):
        network = builder()
        engine = VectorForwardingEngine(network)
        engine.install_shortest_path_tables()
        traffic = traffic_stream(network.node_names(), n_packets, seed)
        batch = PacketArrays.from_traffic(traffic,
                                          NetIndex.from_network(network))
        rounds = engine.send_batch(batch)

        resolved = 0
        for record in rounds:
            resolved += (record.delivered + record.no_route
                         + record.link_down + record.ttl_exceeded)
            assert resolved + record.in_flight == n_packets
        assert rounds[-1].in_flight == 0
        assert resolved == n_packets


_prefixes = st.text(alphabet="abc", min_size=0, max_size=4)
_hops = st.sampled_from(["h1", "h2", "h3"])


class TestPrefixFibDeterminism:
    @given(entries=st.dictionaries(_prefixes, _hops, max_size=8),
           name=st.text(alphabet="abc", min_size=0, max_size=6),
           order=st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_lookup_invariant_under_permuted_insertion(self, entries, name,
                                                       order):
        sorted_fib = PrefixFib()
        for prefix in sorted(entries):
            sorted_fib.insert(prefix, entries[prefix])

        shuffled = list(entries.items())
        order.shuffle(shuffled)
        shuffled_fib = PrefixFib()
        for prefix, hop in shuffled:
            shuffled_fib.insert(prefix, hop)

        assert shuffled_fib.lookup(name) == sorted_fib.lookup(name)
        assert shuffled_fib.entries() == sorted_fib.entries()

    @given(hops=st.lists(_hops, min_size=1, max_size=5))
    def test_duplicate_prefixes_last_insert_wins(self, hops):
        fib = PrefixFib()
        for hop in hops:
            fib.insert("ab", hop)
        assert len(fib) == 1
        assert fib.lookup("abc") == hops[-1]


class TestBottleneckWorkConservation:
    @given(rates=st.lists(st.floats(min_value=0.1, max_value=50.0,
                                    allow_nan=False),
                          min_size=1, max_size=12),
           cheaters=st.integers(min_value=0, max_value=3),
           capacity=st.floats(min_value=1.0, max_value=100.0,
                              allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_served_totals_offered_or_capacity(self, rates, cheaters,
                                               capacity):
        flows = [AIMDFlow(name=f"f{i}", rate=rate)
                 for i, rate in enumerate(rates)]
        flows += [CheaterFlow(name=f"c{i}", rate=2.0)
                  for i in range(cheaters)]
        link = SharedBottleneck(capacity, flows)
        offered = sum(flow.rate for flow in flows)
        served = link.step()

        total = sum(served.values())
        if offered > capacity:
            assert math.isclose(total, capacity, rel_tol=1e-9)
        else:
            assert math.isclose(total, offered, rel_tol=1e-9)
        assert all(share >= 0.0 for share in served.values())


class TestEngineOrderInvariance:
    @given(events=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=5.0,
                            allow_nan=False),
                  st.integers(min_value=-2, max_value=2)),
        min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_firing_order_is_time_priority_insertion(self, events):
        sim = Simulator()
        fired = []
        for i, (delay, priority) in enumerate(events):
            sim.schedule(delay, (lambda j: lambda: fired.append(j))(i),
                         priority=priority)
        sim.run()

        expected = [i for i, _ in sorted(
            enumerate(events),
            key=lambda item: (item[1][0], item[1][1], item[0]))]
        assert fired == expected
