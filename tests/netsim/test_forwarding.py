"""Tests for the forwarding engine: delivery, middleboxes, source routes."""

import pytest

from tussle.errors import RoutingError
from tussle.netsim.forwarding import DeliveryStatus, ForwardingEngine
from tussle.netsim.middlebox import PortFilterFirewall, Redirector
from tussle.netsim.packets import make_packet
from tussle.netsim.topology import Network, line_topology, star_topology


@pytest.fixture
def line_engine():
    engine = ForwardingEngine(line_topology(4))
    engine.install_shortest_path_tables()
    return engine


class TestDelivery:
    def test_delivers_along_path(self, line_engine):
        receipt = line_engine.send(make_packet("n0", "n3"))
        assert receipt.status is DeliveryStatus.DELIVERED
        assert receipt.path == ["n0", "n1", "n2", "n3"]

    def test_latency_accumulates(self, line_engine):
        receipt = line_engine.send(make_packet("n0", "n3"))
        assert receipt.latency == pytest.approx(0.03)

    def test_delivery_to_self(self, line_engine):
        receipt = line_engine.send(make_packet("n0", "n0"))
        assert receipt.delivered
        assert receipt.path == ["n0"]

    def test_no_route_status(self):
        engine = ForwardingEngine(line_topology(3))
        # no tables installed
        receipt = engine.send(make_packet("n0", "n2"))
        assert receipt.status is DeliveryStatus.NO_ROUTE

    def test_link_down_status(self, line_engine):
        line_engine.network.fail_link("n1", "n2")
        receipt = line_engine.send(make_packet("n0", "n3"))
        assert receipt.status is DeliveryStatus.LINK_DOWN
        assert "n1" in receipt.diagnostic

    def test_routing_loop_detected(self):
        engine = ForwardingEngine(line_topology(3))
        engine.install_table("n0", {"n2": "n1"})
        engine.install_table("n1", {"n2": "n0"})
        receipt = engine.send(make_packet("n0", "n2"))
        assert receipt.status is DeliveryStatus.TTL_EXCEEDED

    def test_delivery_rate(self, line_engine):
        line_engine.send(make_packet("n0", "n3"))
        line_engine.network.fail_link("n0", "n1")
        line_engine.send(make_packet("n0", "n3"))
        assert line_engine.delivery_rate() == pytest.approx(0.5)

    def test_table_with_unknown_next_hop_rejected(self, line_engine):
        with pytest.raises(RoutingError):
            line_engine.install_table("n0", {"n3": "ghost"})


class TestMiddleboxesOnPath:
    def test_firewall_drop_produces_diagnostic(self, line_engine):
        line_engine.attach_middlebox(
            "n1", PortFilterFirewall("fw", blocked_applications={"p2p"}))
        receipt = line_engine.send(make_packet("n0", "n3", application="p2p"))
        assert receipt.status is DeliveryStatus.DROPPED_BY_MIDDLEBOX
        assert receipt.interfering_node == "n1"
        assert "blocked by" in receipt.diagnostic

    def test_silent_firewall_gives_vague_diagnostic(self, line_engine):
        line_engine.attach_middlebox(
            "n1", PortFilterFirewall("fw", blocked_applications={"p2p"},
                                     discloses=False))
        receipt = line_engine.send(make_packet("n0", "n3", application="p2p"))
        assert "fw" not in receipt.diagnostic
        assert "cause unknown" in receipt.diagnostic

    def test_redirector_changes_destination(self):
        net = star_topology(3)
        engine = ForwardingEngine(net)
        engine.install_shortest_path_tables()
        engine.attach_middlebox(
            "hub", Redirector("isp", port=25, new_destination="leaf2"))
        receipt = engine.send(make_packet("leaf0", "leaf1", application="smtp"))
        assert receipt.delivered
        assert receipt.delivered_to == "leaf2"

    def test_ledger_records_interference(self, line_engine):
        line_engine.attach_middlebox(
            "n1", PortFilterFirewall("fw", blocked_applications={"p2p"}))
        line_engine.send(make_packet("n0", "n3", application="p2p"))
        assert line_engine.ledger.records

    def test_multiple_middleboxes_first_interferer_wins(self, line_engine):
        line_engine.attach_middlebox(
            "n1", PortFilterFirewall("fw1", blocked_applications={"p2p"}))
        line_engine.attach_middlebox(
            "n1", PortFilterFirewall("fw2", blocked_applications={"http"}))
        receipt = line_engine.send(make_packet("n0", "n3", application="http"))
        assert receipt.status is DeliveryStatus.DROPPED_BY_MIDDLEBOX

    def test_detach_middleboxes(self, line_engine):
        line_engine.attach_middlebox(
            "n1", PortFilterFirewall("fw", blocked_applications={"http"}))
        line_engine.detach_middleboxes("n1")
        receipt = line_engine.send(make_packet("n0", "n3", application="http"))
        assert receipt.delivered


class TestSourceRoutes:
    def test_source_route_honoured(self):
        net = star_topology(3)
        net.add_node("alt")
        net.add_link("alt", "leaf0")
        net.add_link("alt", "leaf1")
        engine = ForwardingEngine(net)
        engine.install_shortest_path_tables()
        packet = make_packet("leaf0", "leaf1",
                             source_route=["leaf0", "alt", "leaf1"])
        receipt = engine.send(packet)
        assert receipt.delivered
        assert receipt.path == ["leaf0", "alt", "leaf1"]

    def test_source_route_refused_when_disabled(self, line_engine):
        line_engine.honor_source_routes = False
        packet = make_packet("n0", "n3", source_route=["n0", "n1", "n2", "n3"])
        receipt = line_engine.send(packet)
        assert receipt.status is DeliveryStatus.SOURCE_ROUTE_REFUSED

    def test_source_route_over_missing_link_fails(self, line_engine):
        packet = make_packet("n0", "n3", source_route=["n0", "n2", "n3"])
        receipt = line_engine.send(packet)
        assert receipt.status is DeliveryStatus.LINK_DOWN

    def test_reset_stats(self, line_engine):
        line_engine.send(make_packet("n0", "n3"))
        line_engine.reset_stats()
        assert line_engine.receipts == []
        assert line_engine.delivery_rate() == 0.0


class TestSimulatorIntegration:
    def test_created_at_stamped_from_simulator_clock(self):
        from tussle.netsim.engine import Simulator

        sim = Simulator()
        engine = ForwardingEngine(line_topology(3), sim=sim)
        engine.install_shortest_path_tables()
        sim.schedule(5.0, lambda: engine.send(make_packet("n0", "n2")))
        sim.run()
        assert engine.receipts[0].packet.created_at == 5.0

    def test_cache_hit_served_as_redirected(self):
        from tussle.netsim.middlebox import Cache

        engine = ForwardingEngine(line_topology(4))
        engine.install_shortest_path_tables()
        engine.attach_middlebox("n1", Cache("n1"))
        first = engine.send(make_packet("n0", "n3", application="http"))
        second = engine.send(make_packet("n0", "n3", application="http"))
        assert first.status is DeliveryStatus.DELIVERED
        assert second.status is DeliveryStatus.REDIRECTED
        assert second.delivered  # served, just not by the origin
        assert second.delivered_to == "n1"

    def test_nat_on_path_rewrites_source(self):
        from tussle.netsim.middlebox import NAT
        from tussle.netsim.topology import Network

        net = Network()
        for name in ("lan-pc", "natbox", "site"):
            net.add_node(name)
        net.add_link("lan-pc", "natbox")
        net.add_link("natbox", "site")
        engine = ForwardingEngine(net)
        engine.install_shortest_path_tables()
        engine.attach_middlebox("natbox", NAT("natbox", public_name="pub",
                                              internal_prefix="lan-"))
        receipt = engine.send(make_packet("lan-pc", "site"))
        assert receipt.delivered
        assert receipt.packet.header.src == "pub"
