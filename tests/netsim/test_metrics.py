"""Tests for metric collection."""

import pytest

from tussle.netsim.metrics import Counter, MetricRegistry, TimeSeries, summarize


class TestCounter:
    def test_increment(self):
        counter = Counter("packets")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        assert int(counter) == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)


class TestTimeSeries:
    def test_record_and_stats(self):
        series = TimeSeries("rate")
        series.record(0.0, 1.0)
        series.record(1.0, 3.0)
        assert len(series) == 2
        assert series.last() == 3.0
        assert series.mean() == 2.0
        assert series.delta() == 2.0

    def test_time_must_not_go_backwards(self):
        series = TimeSeries("rate")
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 1.0)

    def test_empty_series(self):
        series = TimeSeries("rate")
        assert series.last() is None
        assert series.mean() == 0.0
        assert series.delta() == 0.0


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == 2.5

    def test_odd_median(self):
        assert summarize([3, 1, 2]).median == 2.0

    def test_empty_sample(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_stdev_zero_for_constant(self):
        assert summarize([5, 5, 5]).stdev == 0.0

    def test_as_row(self):
        row = summarize([1, 2]).as_row()
        assert set(row) == {"count", "mean", "stdev", "min", "max", "median"}


class TestRegistry:
    def test_counter_reuse(self):
        registry = MetricRegistry()
        registry.counter("hits").increment()
        registry.counter("hits").increment()
        assert registry.counter("hits").value == 2

    def test_snapshot_combines_counters_and_series(self):
        registry = MetricRegistry()
        registry.counter("hits").increment(3)
        registry.series("load").record(0.0, 0.7)
        snapshot = registry.snapshot()
        assert snapshot == {"hits": 3.0, "load": 0.7}

    def test_empty_series_not_in_snapshot(self):
        registry = MetricRegistry()
        registry.series("load")
        assert "load" not in registry.snapshot()
