"""Parity gate: converge_fast() must reproduce the scalar fixed point.

Gao-Rexford guarantees a unique stable route selection and both
backends break ties by the same documented total order (class, AS-path
length, lowest next-hop ASN, lexicographic path), so parity is exact:
same paths, same reachability, same transit loads — not approximately,
byte for byte.
"""

import random

import pytest

from tussle.errors import RoutingError, ScaleError
from tussle.netsim.topology import Network, Relationship, random_as_graph
from tussle.routing import GaoRexfordPolicy, OpenPolicy, PathVectorRouting
from tussle.scale.vrouting import converge_valley_free
from tussle.topogen import TopogenConfig, generate_internet


def assert_parity(net):
    scalar = PathVectorRouting(net)
    scalar.converge()
    fast = PathVectorRouting(net)
    fast.converge_fast()
    asns = [a.asn for a in net.ases]
    for s in asns:
        for d in asns:
            assert scalar.as_path(s, d) == fast.as_path(s, d), (s, d)
            assert scalar.reachable(s, d) == fast.reachable(s, d)
    for asn in asns:
        assert scalar.transit_load(asn) == fast.transit_load(asn), asn
    assert scalar.reachability_matrix() == fast.reachability_matrix()


class TestParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_as_graphs(self, seed):
        assert_parity(random_as_graph(n_tier1=3, n_tier2=6, n_tier3=12,
                                      rng=random.Random(seed)))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_generated_internets(self, seed):
        assert_parity(generate_internet(
            TopogenConfig(n_ases=40, router_detail="none"), seed=seed))

    def test_partitioned_business_graph(self):
        """Unreachable pairs are unreachable in both backends."""
        net = Network()
        for asn in (1, 2, 10, 11):
            net.add_as(asn)
        net.add_as_relationship(1, 2, Relationship.CUSTOMER_PROVIDER)
        net.add_as_relationship(10, 11, Relationship.CUSTOMER_PROVIDER)
        assert_parity(net)
        rib = converge_valley_free(net)
        assert rib.reachable(1, 2) and not rib.reachable(1, 10)

    def test_valley_blocked_pair(self):
        """Two providers of one customer cannot reach each other through
        it — the textbook valley both backends must refuse."""
        net = Network()
        for asn in (1, 2, 3):
            net.add_as(asn)
        net.add_as_relationship(1, 2, Relationship.CUSTOMER_PROVIDER)
        net.add_as_relationship(1, 3, Relationship.CUSTOMER_PROVIDER)
        assert_parity(net)
        rib = converge_valley_free(net)
        assert not rib.reachable(2, 3)
        assert not rib.reachable(3, 2)
        assert rib.reachable(2, 1) and rib.reachable(1, 3)


class TestRibArrays:
    def setup_method(self):
        self.net = random_as_graph(n_tier1=3, n_tier2=6, n_tier3=12,
                                   rng=random.Random(7))

    def test_destination_subset(self):
        dests = [a.asn for a in self.net.ases if a.tier == 3][:4]
        rib = converge_valley_free(self.net, destinations=dests)
        full = converge_valley_free(self.net)
        for d in dests:
            for a in self.net.ases:
                assert rib.as_path(a.asn, d) == full.as_path(a.asn, d)
        with pytest.raises(ScaleError):
            rib.column_of(dests[0] + 10_000)

    def test_duplicate_destinations_rejected(self):
        asns = [a.asn for a in self.net.ases]
        with pytest.raises(ScaleError):
            converge_valley_free(self.net, destinations=[asns[0], asns[0]])

    def test_path_length_and_counts(self):
        rib = converge_valley_free(self.net)
        asns = [a.asn for a in self.net.ases]
        assert rib.path_length(asns[0], asns[0]) == 0
        counts = rib.reachability_counts()
        assert counts.shape == (len(asns),)
        assert (counts >= 1).all()


class TestGuards:
    def test_siblings_rejected(self):
        net = Network()
        net.add_as(1)
        net.add_as(2)
        net.add_as_relationship(1, 2, Relationship.SIBLING)
        with pytest.raises(ScaleError):
            converge_valley_free(net)

    def test_empty_network_rejected(self):
        with pytest.raises(ScaleError):
            converge_valley_free(Network())

    def test_non_gao_rexford_policy_rejected(self):
        net = random_as_graph(rng=random.Random(0))
        proto = PathVectorRouting(net, policy=OpenPolicy())
        with pytest.raises(RoutingError):
            proto.converge_fast()

    def test_announced_routes_unavailable_on_fast_path(self):
        net = random_as_graph(rng=random.Random(0))
        proto = PathVectorRouting(net, policy=GaoRexfordPolicy())
        proto.converge_fast()
        asns = sorted(a.asn for a in net.ases)
        with pytest.raises(RoutingError):
            proto.announced_routes(asns[0], asns[1])

    def test_queries_require_convergence(self):
        proto = PathVectorRouting(random_as_graph(rng=random.Random(0)))
        with pytest.raises(RoutingError):
            proto.routes(1)
