"""Tests for the canonical JSON graph document."""

import json

import pytest

from tussle.errors import TopogenError
from tussle.netsim.topology import Network, NodeKind, Relationship
from tussle.topogen import (
    TopogenConfig,
    generate_internet,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)


def small_net():
    net = Network()
    net.add_as(1, tier=1, region=0)
    net.add_as(2, tier=2, region=0)
    net.add_as(3, tier=3, region=0)
    net.add_as_relationship(2, 1, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(3, 2, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(1, 3, Relationship.PEER_PEER)
    net.add_node("r1", kind=NodeKind.ROUTER, asn=1, role="core")
    net.add_node("r2", kind=NodeKind.ROUTER, asn=2, role="core")
    net.add_link("r1", "r2", latency=0.02, capacity=1e9)
    return net


class TestRoundTrip:
    def test_small_net_round_trips_bytewise(self):
        text = graph_to_json(small_net())
        assert graph_to_json(graph_from_json(text)) == text

    def test_generated_net_round_trips_bytewise(self):
        net = generate_internet(TopogenConfig(n_ases=60), seed=2)
        text = graph_to_json(net)
        assert graph_to_json(graph_from_json(text)) == text

    def test_relationships_survive(self):
        net = graph_from_json(graph_to_json(small_net()))
        assert net.providers_of(2) == {1}
        assert net.providers_of(3) == {2}
        assert net.peers_of(1) == {3}
        assert net.autonomous_system(1).tier == 1

    def test_infinite_capacity_encodes_as_null(self):
        net = Network()
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "b")  # default capacity is infinite
        document = graph_to_dict(net)
        assert document["links"][0]["capacity"] is None
        restored = graph_from_dict(json.loads(graph_to_json(net)))
        assert restored.link("a", "b").capacity == float("inf")

    def test_link_state_survives(self):
        net = small_net()
        net.fail_link("r1", "r2")
        restored = graph_from_json(graph_to_json(net))
        assert restored.link("r1", "r2").up is False

    def test_provenance_is_embedded(self):
        config = TopogenConfig(n_ases=40)
        net = generate_internet(config, seed=9)
        document = graph_to_dict(
            net, generator={"name": "tussle.topogen", "seed": 9,
                            "params": config.to_params()})
        assert document["generator"]["seed"] == 9
        assert document["generator"]["params"]["n_ases"] == 40


class TestValidation:
    def test_rejects_non_document(self):
        with pytest.raises(TopogenError):
            graph_from_dict({"nodes": []})

    def test_rejects_unknown_schema(self):
        document = graph_to_dict(small_net())
        document["schema"] = 99
        with pytest.raises(TopogenError):
            graph_from_dict(document)

    def test_rejects_non_json(self):
        with pytest.raises(TopogenError):
            graph_from_json("not json at all")

    def test_rejects_unknown_relationship_kind(self):
        document = graph_to_dict(small_net())
        document["relationships"][0][2] = "frenemy"
        with pytest.raises(TopogenError):
            graph_from_dict(document)
