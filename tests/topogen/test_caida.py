"""Tests for the CAIDA as-rel loader."""

import pytest

from tussle.errors import TopogenError
from tussle.netsim.topology import Network, Relationship
from tussle.topogen import (
    TopogenConfig,
    dump_caida,
    generate_internet,
    infer_tiers,
    parse_caida,
    load_caida,
)

SAMPLE = """\
# comment line
1|2|-1
1|3|-1

2|3|0
2|4|-1
3|5|-1
"""


class TestParse:
    def test_orientation_provider_first(self):
        net = parse_caida(SAMPLE.splitlines())
        assert net.providers_of(2) == {1}
        assert net.customers_of(1) == {2, 3}
        assert net.peers_of(2) == {3}

    def test_tiers_inferred(self):
        net = parse_caida(SAMPLE.splitlines())
        assert net.autonomous_system(1).tier == 1  # no providers, customers
        assert net.autonomous_system(2).tier == 2  # both
        assert net.autonomous_system(4).tier == 3  # pure stub

    def test_duplicates_tolerated_conflicts_rejected(self):
        parse_caida(["1|2|-1", "1|2|-1"])
        with pytest.raises(TopogenError):
            parse_caida(["1|2|-1", "1|2|0"])
        with pytest.raises(TopogenError):
            parse_caida(["1|2|-1", "2|1|-1"])

    @pytest.mark.parametrize("line", ["1|2", "a|2|-1", "1|1|-1", "1|2|7"])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(TopogenError):
            parse_caida([line])


class TestRoundTrip:
    def test_dump_parse_dump_is_stable(self):
        net = parse_caida(SAMPLE.splitlines())
        text = dump_caida(net)
        assert dump_caida(parse_caida(text.splitlines())) == text

    def test_generated_internet_round_trips(self):
        net = generate_internet(TopogenConfig(n_ases=60), seed=4)
        text = dump_caida(net)
        restored = parse_caida(text.splitlines())
        for a in net.ases:
            assert restored.providers_of(a.asn) == net.providers_of(a.asn)
            assert restored.peers_of(a.asn) == net.peers_of(a.asn)
            # generator tiers and inferred tiers agree on this shape
            assert restored.autonomous_system(a.asn).tier == a.tier

    def test_siblings_cannot_be_dumped(self):
        net = Network()
        net.add_as(1)
        net.add_as(2)
        net.add_as_relationship(1, 2, Relationship.SIBLING)
        with pytest.raises(TopogenError):
            dump_caida(net)


class TestFiles:
    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "asrel.txt"
        path.write_text(SAMPLE, encoding="utf-8")
        net = load_caida(path)
        assert net.providers_of(5) == {3}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TopogenError):
            load_caida(tmp_path / "missing.txt")


class TestInferTiers:
    def test_island_as_is_a_stub(self):
        net = Network()
        net.add_as(9)
        infer_tiers(net)
        assert net.autonomous_system(9).tier == 3
