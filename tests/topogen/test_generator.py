"""Tests for the deterministic tiered internet generator."""

import pytest

from tussle.errors import TopogenError
from tussle.topogen import (
    TopogenConfig,
    betweenness_centrality,
    core_routers,
    generate_internet,
    graph_to_json,
    waxman_graph,
)

import random


class TestConfig:
    def test_derived_tier_sizes_partition_the_as_count(self):
        config = TopogenConfig(n_ases=1000)
        assert config.n_tier1 + config.n_tier2 + config.n_stub == 1000

    def test_small_configs_keep_tier1_floor(self):
        config = TopogenConfig(n_ases=20)
        assert config.n_tier1 >= 3
        assert config.n_stub > 0

    @pytest.mark.parametrize("bad", [
        {"n_ases": 5},
        {"tier1_fraction": 0.0},
        {"n_ases": 20, "transit_fraction": 0.85},
        {"router_detail": "everything"},
        {"routers_tier1": (5, 3)},
        {"core_percentile": 0},
        {"n_regions": 0},
    ])
    def test_bad_knobs_raise(self, bad):
        with pytest.raises(TopogenError):
            TopogenConfig(**bad)

    def test_to_params_is_json_plain(self):
        params = TopogenConfig().to_params()
        assert params["n_ases"] == 1000
        assert isinstance(params["routers_tier1"], list)


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        config = TopogenConfig(n_ases=80)
        first = graph_to_json(generate_internet(config, seed=7))
        second = graph_to_json(generate_internet(config, seed=7))
        assert first == second

    def test_different_seeds_differ(self):
        config = TopogenConfig(n_ases=80)
        assert (graph_to_json(generate_internet(config, seed=0))
                != graph_to_json(generate_internet(config, seed=1)))

    def test_router_detail_does_not_disturb_the_as_graph(self):
        """Router-level draws ride their own substream: the business
        graph is identical whether or not routers are generated."""
        base = TopogenConfig(n_ases=60, router_detail="none")
        detailed = TopogenConfig(n_ases=60, router_detail="core")
        plain = generate_internet(base, seed=3)
        routered = generate_internet(detailed, seed=3)
        def business(net):
            return [(a.asn, a.tier, sorted(net.providers_of(a.asn)),
                     sorted(net.peers_of(a.asn))) for a in net.ases]
        assert business(plain) == business(routered)


class TestStructure:
    def setup_method(self):
        self.config = TopogenConfig(n_ases=120)
        self.net = generate_internet(self.config, seed=0)

    def test_tier_sizes(self):
        tiers = {1: 0, 2: 0, 3: 0}
        for a in self.net.ases:
            tiers[a.tier] += 1
        assert tiers[1] == self.config.n_tier1
        assert tiers[2] == self.config.n_tier2
        assert tiers[3] == self.config.n_stub

    def test_tier1_full_peer_mesh_and_no_providers(self):
        tier1 = [a.asn for a in self.net.ases if a.tier == 1]
        for asn in tier1:
            assert not self.net.providers_of(asn)
            assert set(tier1) - {asn} <= self.net.peers_of(asn)

    def test_tier2_buys_from_tier1_only(self):
        for a in self.net.ases:
            if a.tier != 2:
                continue
            providers = self.net.providers_of(a.asn)
            assert providers
            assert all(self.net.autonomous_system(p).tier == 1
                       for p in providers)

    def test_stubs_buy_regionally_and_sell_nothing(self):
        for a in self.net.ases:
            if a.tier != 3:
                continue
            providers = self.net.providers_of(a.asn)
            assert 1 <= len(providers) <= 2
            assert not self.net.customers_of(a.asn)
            for p in providers:
                provider = self.net.autonomous_system(p)
                assert provider.tier == 2
                assert provider.metadata["region"] == a.metadata["region"]

    def test_provider_edges_form_a_dag(self):
        """tier(provider) < tier(customer) everywhere => acyclic."""
        for a in self.net.ases:
            for p in self.net.providers_of(a.asn):
                assert self.net.autonomous_system(p).tier < a.tier

    def test_core_routers_carry_the_inter_as_links(self):
        for link in self.net.links:
            node_a, node_b = self.net.node(link.a), self.net.node(link.b)
            if node_a.asn != node_b.asn:
                assert node_a.metadata["role"] == "core"
                assert node_b.metadata["role"] == "core"


class TestWaxman:
    def test_connected_for_every_size(self):
        rng = random.Random(0)
        for n in (1, 2, 5, 20):
            points, edges = waxman_graph(n, rng)
            assert len(points) == n
            # union-find-free connectivity check via BFS
            adj = {i: set() for i in range(n)}
            for a, b in edges:
                adj[a].add(b)
                adj[b].add(a)
            seen, frontier = {0}, [0]
            while frontier:
                for nbr in adj[frontier.pop()]:
                    if nbr not in seen:
                        seen.add(nbr)
                        frontier.append(nbr)
            assert len(seen) == n

    def test_zero_nodes_raises(self):
        with pytest.raises(TopogenError):
            waxman_graph(0, random.Random(0))


class TestBetweenness:
    def test_path_graph_center_wins(self):
        # 0-1-2: node 1 sits on the only 0<->2 geodesic.
        centrality = betweenness_centrality(3, [(0, 1), (1, 2)])
        assert centrality[1] > centrality[0] == centrality[2] == 0.0

    def test_core_selection_is_deterministic_and_bounded(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]
        assert core_routers(4, edges, 25) == core_routers(4, edges, 25)
        assert len(core_routers(4, edges, 25)) == 1
        assert core_routers(1, [], 20) == [0]
