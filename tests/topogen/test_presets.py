"""Tests for the shared workload presets."""

from tussle.netsim.forwarding import ForwardingEngine
from tussle.topogen.presets import (
    FLAKY_PROVIDER_NODES,
    MULTIHOMED_PRIMARY_LINKS,
    MULTIHOMED_PROVIDER_NODES,
    e04_reference_graph,
    flaky_provider_network,
    guarded_enterprise_network,
    multihomed_user_network,
    stub_pairs,
)


class TestE04Graph:
    def test_shape_matches_the_experiment(self):
        net = e04_reference_graph()
        tiers = {1: 0, 2: 0, 3: 0}
        for a in net.ases:
            tiers[a.tier] += 1
        assert tiers == {1: 3, 2: 6, 3: 12}

    def test_deterministic_per_seed(self):
        def fingerprint(net):
            return [(a.asn, sorted(net.as_neighbors(a.asn)))
                    for a in net.ases]
        assert fingerprint(e04_reference_graph(5)) \
            == fingerprint(e04_reference_graph(5))

    def test_stub_pairs_are_stub_to_stub_and_capped(self):
        net = e04_reference_graph()
        pairs = stub_pairs(net, 8)
        assert len(pairs) == 8
        stubs = {a.asn for a in net.ases if a.tier == 3}
        assert all(s in stubs and d in stubs and s != d for s, d in pairs)


class TestMultihomedUser:
    def test_primary_beats_standby_under_shortest_path(self):
        net = multihomed_user_network()
        path = net.shortest_path("u", "dst")
        assert path == ["u", "aE", "aC", "dst"]

    def test_constants_match_the_topology(self):
        net = multihomed_user_network()
        for name in MULTIHOMED_PROVIDER_NODES:
            net.node(name)  # raises if missing
        keys = {link.key() for link in net.links}
        assert set(MULTIHOMED_PRIMARY_LINKS) <= keys

    def test_standby_survives_primary_failure(self):
        net = multihomed_user_network()
        net.fail_link("u", "aE")
        assert net.shortest_path("u", "dst") == ["u", "bE", "bX", "bC", "dst"]


class TestFlakyProvider:
    def test_single_chain_no_alternative(self):
        net = flaky_provider_network()
        assert net.shortest_path("u", "dst") == ["u", "p1", "p2", "dst"]
        net.fail_link("p1", "p2")
        assert net.shortest_path("u", "dst") is None
        for name in FLAKY_PROVIDER_NODES:
            net.node(name)


class TestGuardedEnterprise:
    def test_all_roads_lead_through_the_gateway(self):
        net = guarded_enterprise_network()
        engine = ForwardingEngine(net)
        engine.install_shortest_path_tables()
        for src in ("friend", "colleague", "stranger", "badguy0", "badguy1"):
            path = net.shortest_path(src, "victim")
            assert path[-2] == "gw"
