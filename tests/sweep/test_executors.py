"""Executor parity: process pool and in-process runs are byte-identical."""

import pytest

from tussle.experiments import ALL_EXPERIMENTS
from tussle.experiments.common import canonical_json
from tussle.sweep import (
    InProcessExecutor,
    ProcessPoolExecutor,
    SweepSpec,
    aggregate,
    run_cell,
    run_sweep,
)
from tussle.sweep.executors import cell_task


def merged_json(spec, executor):
    report = run_sweep(spec, executor=executor)
    return canonical_json({"cells": report.cells,
                           "aggregate": aggregate(report.cells)})


class TestParity:
    def test_pool_matches_in_process_on_small_grid(self):
        spec = SweepSpec(
            experiment_ids=["E01", "E03"],
            seeds=[0, 1],
            grid={"n_consumers": [15], "rounds": [6]},
        )
        serial = merged_json(spec, InProcessExecutor())
        pooled = merged_json(spec, ProcessPoolExecutor(jobs=2))
        assert serial == pooled

    def test_pool_isolates_cell_failures(self):
        spec = SweepSpec(experiment_ids=["E01"], seeds=[0, 1],
                         grid={"bogus_kwarg": [1]})
        report = run_sweep(spec, executor=ProcessPoolExecutor(jobs=2))
        assert len(report.failed) == 2
        assert all(c["error"]["type"] == "TypeError" for c in report.cells)

    def test_jobs_one_pool_degrades_to_in_process(self):
        executor = ProcessPoolExecutor(jobs=1)
        spec = SweepSpec(experiment_ids=["E01"], seeds=[0],
                         grid={"n_consumers": [15], "rounds": [6]})
        report = run_sweep(spec, executor=executor)
        assert report.ok

    def test_invalid_jobs_rejected(self):
        from tussle.errors import SweepError

        with pytest.raises(SweepError):
            ProcessPoolExecutor(jobs=0)


class TestWorkerPayload:
    def test_payload_is_json_safe_and_profiled(self):
        spec = SweepSpec(experiment_ids=["E01"], seeds=[3],
                         grid={"n_consumers": [15], "rounds": [6]})
        [cell] = spec.cells()
        output = run_cell(cell_task(cell))
        canonical_json(output["payload"])  # must not raise
        assert output["payload"]["status"] == "ok"
        assert output["payload"]["seed"] == cell.seed
        assert output["payload"]["base_seed"] == 3
        assert output["profile"]["seconds"] > 0.0
        assert output["profile"]["worker"]

    def test_result_survives_ipc_roundtrip(self):
        from tussle.experiments.common import ExperimentResult
        from tussle.lint.seedcheck import fingerprint

        spec = SweepSpec(experiment_ids=["E04"], seeds=[0], grid={})
        [cell] = spec.cells()
        output = run_cell(cell_task(cell))
        revived = ExperimentResult.from_json(
            canonical_json(output["payload"]["result"]))
        direct = ALL_EXPERIMENTS["E04"](seed=cell.seed)
        assert fingerprint(revived) == fingerprint(direct)


@pytest.mark.slow
class TestFullMatrixDeterminism:
    """Acceptance: all 23 experiments x 5 seeds, --jobs 1 vs --jobs 4."""

    def test_full_matrix_byte_identical_across_job_counts(self):
        spec = SweepSpec(experiment_ids=sorted(ALL_EXPERIMENTS),
                         seeds=list(range(5)), grid={})
        serial = merged_json(spec, InProcessExecutor())
        pooled = merged_json(spec, ProcessPoolExecutor(jobs=4))
        assert serial == pooled
