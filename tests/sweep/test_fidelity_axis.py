"""Fidelity is a sweepable axis: N01 across the whole substrate ladder.

The sweep machinery treats the substrate backend like any other grid
parameter — ``grid={"fidelity": [...]}`` fans N01 out across
packet-scalar, packet-vector and flow-level cells, every cell's shape
checks hold, and the aggregate groups by fidelity with full agreement
across seeds.  This is the operational form of the DESIGN.md rule that
experiments *declare* their fidelity rather than inherit one silently.
"""

from tussle.experiments.n01_substrate import FIDELITIES
from tussle.sweep import SweepSpec, aggregate, run_sweep


class TestFidelityAxis:
    def test_n01_sweeps_across_the_fidelity_ladder(self):
        spec = SweepSpec(
            experiment_ids=["N01"],
            seeds=[0, 1],
            grid={"fidelity": list(FIDELITIES)},
        )
        report = run_sweep(spec)

        assert len(report.cells) == len(FIDELITIES) * 2
        swept = {cell["params"]["fidelity"] for cell in report.cells}
        assert swept == set(FIDELITIES)
        for cell in report.cells:
            assert cell["status"] == "ok", cell["error"]
            assert cell["result"]["shape_holds"], (
                f"fidelity {cell['params']['fidelity']} failed its "
                f"checks at seed {cell['base_seed']}")

    def test_aggregate_groups_one_row_per_fidelity(self):
        spec = SweepSpec(
            experiment_ids=["N01"],
            seeds=[0, 1, 2],
            grid={"fidelity": list(FIDELITIES)},
        )
        summary = aggregate(run_sweep(spec).cells)
        groups = summary["groups"]
        assert len(groups) == len(FIDELITIES)
        for group in groups:
            assert group["cells"] == 3
            assert group["robust"], group["verdict"]
