"""Property-based tests (hypothesis) for sweep canonicalization.

The sweep engine's determinism rests on three canonical forms: the
params JSON, the cache key, and the result wire format.  Each must be
invariant to representational noise (dict insertion order, value order)
and lossless under round-trip.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tussle.experiments import ALL_EXPERIMENTS
from tussle.experiments.common import ExperimentResult, Table, canonical_json
from tussle.lint.seedcheck import fingerprint
from tussle.sweep import (
    Cell,
    ResultCache,
    canonical_params,
    derive_seed,
    expand_grid,
)

param_keys = st.text(alphabet="abcdefghijklmnop_", min_size=1, max_size=10)
scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-10 ** 9, max_value=10 ** 9),
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
)
param_dicts = st.dictionaries(param_keys, scalars, max_size=6)
grids = st.dictionaries(param_keys, st.lists(scalars, min_size=1, max_size=3,
                                             unique_by=canonical_json),
                        max_size=3)


def reordered(mapping, reverse_values=False):
    """The same mapping with reversed insertion order (and value order)."""
    out = {}
    for key in reversed(list(mapping)):
        value = mapping[key]
        if reverse_values and isinstance(value, list):
            value = list(reversed(value))
        out[key] = value
    return out


class TestCanonicalization:
    @settings(deadline=None)
    @given(param_dicts)
    def test_canonical_params_insertion_order_invariant(self, params):
        assert canonical_params(params) == canonical_params(reordered(params))

    @settings(deadline=None)
    @given(param_dicts)
    def test_canonical_params_round_trip(self, params):
        assert json.loads(canonical_params(params)) == params

    @settings(deadline=None)
    @given(grids)
    def test_grid_expansion_order_insensitive(self, grid):
        baseline = expand_grid(grid)
        assert baseline == expand_grid(reordered(grid, reverse_values=True))

    @settings(deadline=None)
    @given(grids)
    def test_grid_expansion_covers_the_product(self, grid):
        expanded = expand_grid(grid)
        expected = 1
        for values in grid.values():
            expected *= len(values)
        assert len(expanded) == expected
        assert len({canonical_params(p) for p in expanded}) == expected

    @settings(deadline=None)
    @given(param_dicts, st.integers(min_value=0, max_value=2 ** 31))
    def test_cache_key_stable_across_insertion_order(self, params, seed):
        cache = ResultCache("unused-root", fingerprint="fp")
        cell_a = Cell(experiment_id="E01",
                      params_json=canonical_params(params),
                      base_seed=seed,
                      seed=derive_seed(seed, "E01", canonical_params(params)))
        cell_b = Cell(experiment_id="E01",
                      params_json=canonical_params(reordered(params)),
                      base_seed=seed,
                      seed=derive_seed(seed, "E01",
                                       canonical_params(reordered(params))))
        assert cache.key(cell_a) == cache.key(cell_b)

    @settings(deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 31))
    def test_derived_seeds_distinct_across_labels(self, base_seed):
        seeds = {derive_seed(base_seed, eid, "{}")
                 for eid in sorted(ALL_EXPERIMENTS)}
        assert len(seeds) == len(ALL_EXPERIMENTS)
        assert all(0 <= s < 2 ** 63 for s in seeds)

    def test_derive_seed_is_stable_across_processes(self):
        # Pinned values: the derivation must never drift, or every cache
        # entry and recorded sweep in the wild silently invalidates.
        assert derive_seed(0, "E01", "{}") == 9176064134830089106
        assert derive_seed(1, "E01", "{}") == 4277605397436725453


rows = st.lists(st.dictionaries(param_keys, scalars, max_size=4),
                min_size=0, max_size=5)


class TestResultRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(rows)
    def test_table_json_round_trip_is_byte_stable(self, row_dicts):
        columns = sorted({k for row in row_dicts for k in row}) or ["c"]
        table = Table("t", columns)
        for row in row_dicts:
            table.add_row(**row)
        text = table.to_json()
        assert Table.from_json(text).to_json() == text

    @pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
    def test_experiment_result_round_trip_lossless(self, experiment_id):
        result = ALL_EXPERIMENTS[experiment_id](seed=0)
        text = result.to_json()
        revived = ExperimentResult.from_json(text)
        assert revived.to_json() == text
        assert fingerprint(revived) == fingerprint(result)
        assert revived.shape_holds == result.shape_holds
