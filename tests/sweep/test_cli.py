"""CLI surface of ``python -m tussle sweep``."""

import json

import pytest

from tussle.__main__ import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestSweepCli:
    def test_seeds_and_json(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "E01", "--seeds", "2", "--json",
            "--grid", "n_consumers=40", "--grid", "rounds=8",
        )
        assert code == 0
        document = json.loads(out)
        assert document["stats"]["cells_total"] == 2
        [group] = document["aggregate"]["groups"]
        assert group["experiment_id"] == "E01"
        assert group["seeds"] == [0, 1]
        assert group["robust"] is True
        assert "E01 shape holds on 2/2 seeds" in document["aggregate"]["verdicts"]

    def test_grid_expands_cartesian_product(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "E01", "--seeds", "1", "--json",
            "--grid", "n_consumers=40,50", "--grid", "rounds=8,10",
        )
        assert code == 0
        document = json.loads(out)
        assert document["stats"]["cells_total"] == 4
        points = [g["params"] for g in document["aggregate"]["groups"]]
        assert {(p["n_consumers"], p["rounds"]) for p in points} == {
            (40, 8), (40, 10), (50, 8), (50, 10)}

    def test_grid_value_types(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "E01", "--seeds", "1", "--json",
            "--grid", "n_consumers=40", "--grid", "rounds=8",
        )
        document = json.loads(out)
        params = document["aggregate"]["groups"][0]["params"]
        assert isinstance(params["n_consumers"], int)

    def test_bad_grid_entry_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "E01", "--grid", "nonsense"])

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "E99"])

    def test_text_mode_prints_verdicts_and_stats(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "E01", "--seeds", "2",
            "--grid", "n_consumers=40", "--grid", "rounds=8",
        )
        assert code == 0
        assert "E01 shape holds on 2/2 seeds" in out
        assert "2 cells: 0 cached, 2 dispatched, 0 failed" in out
        assert "worker utilization" in out

    def test_failed_cell_reported_and_nonzero_exit(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "E01", "--seeds", "1",
            "--grid", "bogus_kwarg=1",
        )
        assert code == 1
        assert "FAILED E01" in out
        assert "TypeError" in out

    def test_cache_dir_makes_second_run_incremental(self, capsys, tmp_path):
        argv = ("sweep", "E01", "--seeds", "2", "--json",
                "--grid", "n_consumers=40", "--grid", "rounds=8",
                "--cache-dir", str(tmp_path))
        code_first, out_first = run_cli(capsys, *argv)
        code_second, out_second = run_cli(capsys, *argv)
        assert code_first == code_second == 0
        first = json.loads(out_first)
        second = json.loads(out_second)
        assert first["stats"]["cells_dispatched"] == 2
        assert second["stats"]["cells_cached"] == 2
        assert first["aggregate"] == second["aggregate"]

    def test_jobs_flag_output_identical(self, capsys, tmp_path):
        argv = ("sweep", "E01", "E10", "--seeds", "2", "--json",
                "--grid", "rounds=6")
        _, serial = run_cli(capsys, *argv, "--jobs", "1")
        _, pooled = run_cli(capsys, *argv, "--jobs", "2")
        assert serial == pooled

    def test_seeds_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["sweep", "E01", "--seeds", "0"])


class TestSweepTelemetryCli:
    ARGS = ("sweep", "E01", "--seeds", "2",
            "--grid", "n_consumers=40", "--grid", "rounds=8")

    def test_summary_line_always_printed(self, capsys):
        code = main(list(self.ARGS))
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep: 2 cells, 0 cache hits, 0 retries, 0 failures," in out
        assert "s wall" in out

    def test_summary_line_goes_to_stderr_under_json(self, capsys):
        code = main(list(self.ARGS) + ["--json"])
        captured = capsys.readouterr()
        assert code == 0
        json.loads(captured.out)  # stdout stays a clean JSON document
        assert "sweep: 2 cells" in captured.err

    def test_telemetry_flag_writes_both_channels(self, capsys, tmp_path):
        target = tmp_path / "telemetry.jsonl"
        code = main(list(self.ARGS) + ["--telemetry", str(target)])
        captured = capsys.readouterr()
        assert code == 0
        assert target.exists()
        assert (tmp_path / "telemetry.wall.jsonl").exists()
        assert "telemetry written to" in captured.err
        first = json.loads(target.read_text().splitlines()[0])
        assert first == {"kind": "meta", "schema": 1,
                         "channel": "deterministic"}

    def test_telemetry_det_channel_identical_across_jobs(
            self, capsys, tmp_path):
        serial, pooled = tmp_path / "serial.jsonl", tmp_path / "pooled.jsonl"
        main(list(self.ARGS) + ["--telemetry", str(serial)])
        main(list(self.ARGS) + ["--jobs", "2", "--telemetry", str(pooled)])
        capsys.readouterr()
        assert serial.read_bytes() == pooled.read_bytes()

    def test_progress_streams_running_verdicts(self, capsys):
        code = main(list(self.ARGS) + ["--progress"])
        captured = capsys.readouterr()
        assert code == 0
        assert "[1/2] E01 seed=0 ok" in captured.err
        assert "[2/2] E01 seed=1 ok | E01 shape holds on 2/2 seeds" \
            in captured.err

    def test_progress_json_matches_batch_aggregate(self, capsys):
        code_batch = main(list(self.ARGS) + ["--json"])
        batch = capsys.readouterr().out
        code_stream = main(list(self.ARGS) + ["--json", "--progress"])
        streamed = capsys.readouterr().out
        assert code_batch == code_stream == 0
        assert batch == streamed
