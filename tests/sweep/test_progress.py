"""Streaming aggregation: the digest and the running-verdict folder."""

import random
import statistics

import pytest

from tussle.canon import canonical_json
from tussle.errors import SweepError
from tussle.sweep import (
    InProcessExecutor,
    MergingDigest,
    StreamingAggregator,
    SweepSpec,
    aggregate,
    run_sweep,
)

SPEC = SweepSpec(
    experiment_ids=["E01", "E10"],
    seeds=[0, 1, 2],
    grid={"rounds": [6]},
)


class TestMergingDigest:
    def test_exact_below_cap(self):
        values = [3.0, 1.0, 2.0, 2.0, 5.0]
        digest = MergingDigest.from_values(values)
        assert digest.exact
        assert digest.minimum() == 1.0 and digest.maximum() == 5.0
        assert digest.mean() == pytest.approx(statistics.mean(values))
        assert digest.median() == statistics.median(values)

    def test_insertion_order_insensitive(self):
        rng = random.Random(7)
        values = [rng.uniform(-50, 50) for _ in range(101)]
        shuffled = list(values)
        rng.shuffle(shuffled)
        a = MergingDigest.from_values(values)
        b = MergingDigest.from_values(shuffled)
        assert canonical_json(a.summary()) == canonical_json(b.summary())
        assert a.to_dict() == b.to_dict()

    def test_median_matches_statistics_exactly(self):
        rng = random.Random(3)
        for n in (1, 2, 5, 100, 101):
            values = [rng.uniform(0, 10) for _ in range(n)]
            digest = MergingDigest.from_values(values)
            assert digest.median() == statistics.median(values), n

    def test_merge_equals_bulk_build(self):
        left = MergingDigest.from_values([1.0, 4.0, 2.0])
        right = MergingDigest.from_values([3.0, 0.5])
        left.merge(right)
        bulk = MergingDigest.from_values([1.0, 4.0, 2.0, 3.0, 0.5])
        assert left.to_dict() == bulk.to_dict()

    def test_serialization_round_trip(self):
        digest = MergingDigest.from_values([2.0, 1.0, 3.0])
        clone = MergingDigest.from_dict(digest.to_dict())
        assert clone.summary() == digest.summary()
        assert clone.count == 3

    def test_compression_preserves_extremes_and_count(self):
        digest = MergingDigest(cap=8)
        for value in range(100):
            digest.add(float(value))
        assert not digest.exact
        assert digest.count == 100
        assert digest.minimum() == 0.0 and digest.maximum() == 99.0
        assert digest.mean() == pytest.approx(49.5)

    def test_empty_digest_raises(self):
        with pytest.raises(SweepError, match="empty"):
            MergingDigest().minimum()

    def test_cap_must_hold_two(self):
        with pytest.raises(SweepError, match="cap"):
            MergingDigest(cap=1)


class TestStreamingAggregator:
    def payloads(self):
        return run_sweep(SPEC, executor=InProcessExecutor()).cells

    def test_snapshot_matches_batch_byte_for_byte(self):
        cells = self.payloads()
        streaming = StreamingAggregator()
        for payload in cells:
            streaming.fold(payload)
        assert canonical_json(streaming.snapshot()) == \
            canonical_json(aggregate(cells))

    def test_fold_order_does_not_matter(self):
        cells = self.payloads()
        shuffled = list(cells)
        random.Random(11).shuffle(shuffled)
        streaming = StreamingAggregator()
        for payload in shuffled:
            streaming.fold(payload)
        assert canonical_json(streaming.snapshot()) == \
            canonical_json(aggregate(cells))

    def test_running_verdicts_update_per_fold(self):
        cells = [c for c in self.payloads() if c["experiment_id"] == "E01"]
        streaming = StreamingAggregator()
        group = streaming.fold(cells[0])
        assert group.verdict() == "E01 shape holds on 1/1 seeds"
        assert group.verdict(total_seeds=3) == \
            "E01 shape holds on 1/3 seeds"
        streaming.fold(cells[1])
        assert streaming.verdicts() == ["E01 shape holds on 2/2 seeds"]
        assert streaming.cells_seen == 2

    def test_failed_cells_fold_into_failed_seeds(self):
        cells = self.payloads()
        broken = dict(cells[0])
        broken["status"] = "error"
        streaming = StreamingAggregator()
        group = streaming.fold(broken)
        assert group.failed_seeds == [broken["base_seed"]]
        assert "(1 failed)" in group.verdict()
        snapshot = streaming.snapshot()
        assert snapshot["groups"][0]["cells_failed"] == 1
        assert snapshot["robust"] is False

    def test_duplicate_seed_rejected(self):
        cells = self.payloads()
        streaming = StreamingAggregator()
        streaming.fold(cells[0])
        with pytest.raises(SweepError, match="folded twice"):
            streaming.fold(cells[0])

    def test_streaming_failed_matches_batch(self):
        cells = self.payloads()
        broken = [dict(c) for c in cells]
        broken[1]["status"] = "error"
        broken[1] = {**broken[1], "result": None,
                     "error": {"type": "RuntimeError", "message": "boom"}}
        streaming = StreamingAggregator()
        for payload in broken:
            streaming.fold(payload)
        assert canonical_json(streaming.snapshot()) == \
            canonical_json(aggregate(broken))
