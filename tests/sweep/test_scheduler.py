"""Scheduler invariants: deterministic merge, cache behaviour, isolation."""

import pytest

from tussle.errors import SweepError
from tussle.experiments import ALL_EXPERIMENTS
from tussle.experiments.common import ExperimentResult, Table, canonical_json
from tussle.obs import Metrics, observe
from tussle.sweep import (
    InProcessExecutor,
    ResultCache,
    SweepSpec,
    code_fingerprint,
    run_sweep,
)

SMALL_PARAMS = {"n_consumers": 12, "rounds": 5}


def small_spec(ids=("E01",), seeds=(0, 1), grid=None):
    return SweepSpec(
        experiment_ids=list(ids),
        seeds=list(seeds),
        grid=dict(grid or {k: [v] for k, v in SMALL_PARAMS.items()}),
    )


class ShuffledExecutor:
    """Returns worker outputs in an adversarial (non-submission) order."""

    def __init__(self, rotation=3):
        self.rotation = rotation
        self.inner = InProcessExecutor()

    def map(self, tasks):
        outputs = self.inner.map(tasks)
        outputs.reverse()
        cut = self.rotation % len(outputs) if outputs else 0
        return outputs[cut:] + outputs[:cut]


class TestDeterministicMerge:
    def test_merge_order_independent_of_completion_order(self):
        spec = small_spec(seeds=(0, 1, 2))
        ordered = run_sweep(spec, executor=InProcessExecutor())
        shuffled = run_sweep(spec, executor=ShuffledExecutor())
        assert canonical_json(ordered.cells) == canonical_json(shuffled.cells)

    def test_merged_cells_sorted_by_identity(self):
        spec = small_spec(ids=("E10", "E01"), seeds=(1, 0), grid={})
        report = run_sweep(spec, executor=ShuffledExecutor(rotation=1))
        identities = [(c["experiment_id"], c["base_seed"])
                      for c in report.cells]
        assert identities == sorted(identities)

    def test_executor_losing_cells_is_an_error(self):
        class LossyExecutor:
            def map(self, tasks):
                return InProcessExecutor().map(tasks[:-1])

        with pytest.raises(SweepError):
            run_sweep(small_spec(), executor=LossyExecutor())

    def test_scheduler_metrics_instrumented(self):
        metrics = Metrics()
        with observe(metrics=metrics):
            run_sweep(small_spec(seeds=(0,)))
        counters = metrics.snapshot()["sweep.scheduler"]["counters"]
        assert counters["cells_total"] == 1
        assert counters["cells_dispatched"] == 1
        assert counters["cells_cached"] == 0
        assert counters["cells_failed"] == 0


class TestCache:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        spec = small_spec(seeds=(0, 1))
        first_cache = ResultCache(tmp_path, fingerprint="fp-a")
        first = run_sweep(spec, cache=first_cache)
        assert first.stats["cells_dispatched"] == 2

        second_cache = ResultCache(tmp_path, fingerprint="fp-a")

        class ExplodingExecutor:
            def map(self, tasks):
                raise AssertionError("cache should have satisfied every cell")

        second = run_sweep(spec, cache=second_cache,
                           executor=ExplodingExecutor())
        assert second.stats["cells_cached"] == 2
        assert canonical_json(first.cells) == canonical_json(second.cells)

    def test_fingerprint_change_invalidates(self, tmp_path):
        spec = small_spec(seeds=(0,))
        run_sweep(spec, cache=ResultCache(tmp_path, fingerprint="fp-a"))
        stale = run_sweep(spec, cache=ResultCache(tmp_path, fingerprint="fp-b"))
        assert stale.stats["cells_dispatched"] == 1
        assert stale.stats["cells_cached"] == 0

    def test_code_fingerprint_tracks_source_changes(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("X = 1\n")
        before = code_fingerprint(tmp_path)
        assert before == code_fingerprint(tmp_path)
        module.write_text("X = 2\n")
        assert code_fingerprint(tmp_path) != before

    def test_failed_cells_are_not_cached(self, tmp_path, monkeypatch):
        def explode(seed=0):
            raise RuntimeError("boom")

        monkeypatch.setitem(ALL_EXPERIMENTS, "Z99", explode)
        spec = SweepSpec(experiment_ids=["Z99"], seeds=[0], grid={})
        cache = ResultCache(tmp_path, fingerprint="fp-a")
        report = run_sweep(spec, cache=cache)
        assert report.stats["cells_failed"] == 1
        rerun = run_sweep(spec, cache=ResultCache(tmp_path, fingerprint="fp-a"))
        assert rerun.stats["cells_cached"] == 0
        assert rerun.stats["cells_dispatched"] == 1

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = small_spec(seeds=(0,))
        cache = ResultCache(tmp_path, fingerprint="fp-a")
        run_sweep(spec, cache=cache)
        for path in tmp_path.rglob("*.json"):
            path.write_text("{ not json")
        rerun = run_sweep(spec, cache=ResultCache(tmp_path, fingerprint="fp-a"))
        assert rerun.stats["cells_dispatched"] == 1

    def test_prune_removes_stale_fingerprints(self, tmp_path):
        spec = small_spec(seeds=(0,))
        run_sweep(spec, cache=ResultCache(tmp_path, fingerprint="fp-a"))
        fresh = ResultCache(tmp_path, fingerprint="fp-b")
        assert fresh.prune() == 1
        assert fresh.prune() == 0


class TestFailureIsolation:
    def test_one_raising_cell_marks_only_itself_failed(self, monkeypatch):
        def fragile(seed=0, parity=0):
            if parity:
                raise RuntimeError("diverged")
            result = ExperimentResult(experiment_id="Z98", title="t",
                                      paper_claim="c")
            table = Table("z", ["v"])
            table.add_row(v=float(seed % 97))
            result.tables.append(table)
            result.add_check("ok", True)
            return result

        monkeypatch.setitem(ALL_EXPERIMENTS, "Z98", fragile)
        spec = SweepSpec(experiment_ids=["Z98"], seeds=[0],
                         grid={"parity": [0, 1]})
        report = run_sweep(spec)
        assert len(report.cells) == 2
        statuses = {c["params"]["parity"]: c["status"] for c in report.cells}
        assert statuses == {0: "ok", 1: "error"}
        failed = report.failed
        assert len(failed) == 1
        assert failed[0]["error"]["type"] == "RuntimeError"
        assert not report.ok

    def test_unknown_experiment_is_a_failed_cell(self):
        spec = SweepSpec(experiment_ids=["NOPE"], seeds=[0], grid={})
        report = run_sweep(spec)
        assert report.stats["cells_failed"] == 1
        assert report.cells[0]["error"]["type"] == "SweepError"


class TestSpecValidation:
    def test_duplicate_seeds_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(experiment_ids=["E01"], seeds=[0, 0], grid={})

    def test_empty_spec_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(experiment_ids=[], seeds=[0], grid={})
        with pytest.raises(SweepError):
            SweepSpec(experiment_ids=["E01"], seeds=[], grid={})

    def test_empty_grid_axis_rejected(self):
        spec = SweepSpec(experiment_ids=["E01"], seeds=[0],
                         grid={"rounds": []})
        with pytest.raises(SweepError):
            spec.cells()
