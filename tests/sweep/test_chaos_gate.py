"""The chaos gate: a 30%-sabotaged sweep must merge byte-identically.

CI's blocking ``resil`` job runs this module.  A ``WorkerChaos`` dooms
roughly 30% of cells to crash or hang on their first attempt; the
``ResilientExecutor`` must retry them to completion with the merged
deterministic channel byte-identical to an all-healthy ``--jobs 1``
run — the recovery machinery may cost wall-clock, never bytes.
"""

import pytest

from tussle.experiments import ALL_EXPERIMENTS
from tussle.experiments.common import canonical_json
from tussle.obs.diff import first_divergence, format_divergence
from tussle.resil import WorkerChaos
from tussle.sweep import (
    InProcessExecutor,
    ResilientExecutor,
    SweepSpec,
    aggregate,
    run_sweep,
)
from tussle.sweep.executors import cell_task


def merged_lines(report):
    """One canonical record per cell plus the aggregate, diff-friendly."""
    return ([canonical_json(cell) for cell in report.cells]
            + [canonical_json(aggregate(report.cells))])


def assert_streams_identical(healthy, chaotic):
    """Byte-identity with a localized first divergence on failure."""
    divergence = first_divergence(healthy, chaotic)
    assert divergence is None, (
        "chaos run diverged from healthy run:\n"
        + format_divergence(divergence, "healthy", "chaos"))


def doomed_cells(chaos, spec):
    tasks = [cell_task(cell) for cell in spec.cells()]
    return [t for t in tasks if chaos.doomed(
        t["experiment_id"], t["params_json"], t["base_seed"])]


class TestChaosGate:
    def test_thirty_percent_chaos_merges_byte_identical(self):
        spec = SweepSpec(
            experiment_ids=["E01", "E03"],
            seeds=list(range(5)),
            grid={"n_consumers": [15], "rounds": [6]},
        )
        chaos = WorkerChaos(seed=2, fraction=0.3)
        doomed = doomed_cells(chaos, spec)
        # The gate only means something if sabotage actually happens.
        assert doomed, "chaos seed dooms no cells; pick another seed"

        healthy = merged_lines(run_sweep(spec, executor=InProcessExecutor()))
        executor = ResilientExecutor(jobs=4, timeout=2.0, retries=3,
                                     chaos=chaos)
        report = run_sweep(spec, executor=executor)

        assert report.ok, f"chaos sweep failed cells: {report.failed}"
        assert_streams_identical(healthy, merged_lines(report))
        assert executor.recovery["recovered_cells"] == len(doomed)
        assert executor.recovery["failed_cells"] == 0
        assert executor.recovery["retries"] >= len(doomed)

    def test_doomed_set_is_deterministic_in_seed(self):
        spec = SweepSpec(experiment_ids=["E01", "E03"],
                         seeds=list(range(10)), grid={})
        a = doomed_cells(WorkerChaos(seed=7, fraction=0.3), spec)
        b = doomed_cells(WorkerChaos(seed=7, fraction=0.3), spec)
        assert a == b
        full = doomed_cells(WorkerChaos(seed=7, fraction=1.0), spec)
        assert len(full) == len(spec.cells())


@pytest.mark.slow
class TestFullMatrixChaosGate:
    """Acceptance: all experiments x 3 seeds under 30% worker chaos."""

    def test_full_registry_survives_chaos(self):
        spec = SweepSpec(experiment_ids=sorted(ALL_EXPERIMENTS),
                         seeds=list(range(3)), grid={})
        healthy = merged_lines(run_sweep(spec, executor=InProcessExecutor()))
        # P02 bargains a 10^3-AS internet (~3-6s under 4-way load); 20s
        # clears it with margin, and hang-mode cells stay affordable
        # because chaos only sabotages first attempts (max_attempts=1).
        executor = ResilientExecutor(jobs=4, timeout=20.0, retries=3,
                                     chaos=WorkerChaos(seed=0, fraction=0.3))
        report = run_sweep(spec, executor=executor)
        assert report.ok
        assert_streams_identical(healthy, merged_lines(report))
        assert executor.recovery["failed_cells"] == 0
