"""ResilientExecutor crash recovery: exit, SIGKILL, hang, and give-up.

The acceptance bar: a sweep whose workers are sabotaged on their first
attempt still completes, and its merged deterministic channel is
byte-identical to an all-healthy ``--jobs 1`` run.  Recovery accounting
is visible only on the quarantined ``resil`` channel.
"""

import pytest

from tussle.errors import SweepError
from tussle.experiments.common import canonical_json
from tussle.obs import Metrics, observe
from tussle.resil import FailedCell, WorkerChaos
from tussle.sweep import (
    InProcessExecutor,
    ResilientExecutor,
    SweepSpec,
    aggregate,
    run_sweep,
)


def small_spec(seeds=(0, 1)):
    return SweepSpec(
        experiment_ids=["E01"],
        seeds=list(seeds),
        grid={"n_consumers": [15], "rounds": [6]},
    )


def merged_json(report):
    return canonical_json({"cells": report.cells,
                           "aggregate": aggregate(report.cells)})


def sabotage_all(mode, **kwargs):
    """Chaos that dooms every cell's first attempt with one mode."""
    return WorkerChaos(seed=0, fraction=1.0, modes=(mode,), **kwargs)


class TestCrashRecovery:
    @pytest.mark.parametrize("mode", ["exit", "kill"])
    def test_worker_death_is_retried_to_byte_identical_output(self, mode):
        spec = small_spec()
        healthy = merged_json(run_sweep(spec, executor=InProcessExecutor()))
        executor = ResilientExecutor(jobs=2, timeout=10.0, retries=3,
                                     chaos=sabotage_all(mode))
        report = run_sweep(spec, executor=executor)
        assert report.ok
        assert merged_json(report) == healthy
        assert executor.recovery["worker_deaths"] == len(spec.cells())
        assert executor.recovery["recovered_cells"] == len(spec.cells())
        assert executor.recovery["failed_cells"] == 0

    def test_hung_worker_hits_timeout_then_recovers(self):
        spec = small_spec(seeds=(0,))
        healthy = merged_json(run_sweep(spec, executor=InProcessExecutor()))
        executor = ResilientExecutor(jobs=1, timeout=0.5, retries=3,
                                     chaos=sabotage_all("hang"))
        report = run_sweep(spec, executor=executor)
        assert report.ok
        assert merged_json(report) == healthy
        assert executor.recovery["timeouts"] == 1
        assert executor.recovery["recovered_cells"] == 1

    def test_retries_visible_in_resil_metrics_scope(self):
        spec = small_spec(seeds=(0,))
        with observe(metrics=Metrics()) as context:
            run_sweep(spec, executor=ResilientExecutor(
                jobs=1, timeout=10.0, retries=3,
                chaos=sabotage_all("exit")))
        counters = context.metrics.scope("resil").snapshot()["counters"]
        assert counters["retries"] == 1
        assert counters["worker_deaths"] == 1
        assert counters["recovered_cells"] == 1

    def test_recovery_stats_quarantined_from_merge(self):
        spec = small_spec(seeds=(0,))
        executor = ResilientExecutor(jobs=1, timeout=10.0, retries=2,
                                     chaos=sabotage_all("exit"))
        report = run_sweep(spec, executor=executor)
        assert report.recovery["retries"] == 1
        assert "recovery" not in merged_json(report)
        assert "retries" not in merged_json(report)


class TestGracefulDegradation:
    def test_exhausted_cell_degrades_to_failed_payload(self):
        spec = small_spec(seeds=(0,))
        # Sabotage outlives the retry budget: the cell must fail
        # permanently — as a structured payload, not a sweep abort.
        executor = ResilientExecutor(
            jobs=1, timeout=10.0, retries=1,
            chaos=sabotage_all("exit", max_attempts=10))
        report = run_sweep(spec, executor=executor)
        assert not report.ok
        [cell] = report.cells
        assert cell["status"] == "failed"
        assert cell["result"] is None
        assert cell["error"]["type"] == "FailedCell"
        assert cell["error"]["attempts"] == 2
        assert len(cell["error"]["reasons"]) == 2
        assert all("worker-death" in r for r in cell["error"]["reasons"])
        assert executor.recovery["failed_cells"] == 1
        assert executor.recovery["recovered_cells"] == 0
        canonical_json(cell)  # failed payloads stay JSON-safe

    def test_failed_cell_roundtrips_from_payload(self):
        spec = small_spec(seeds=(0,))
        executor = ResilientExecutor(
            jobs=1, timeout=10.0, retries=0,
            chaos=sabotage_all("exit", max_attempts=10))
        report = run_sweep(spec, executor=executor)
        [cell] = report.cells
        record = FailedCell.from_payload(cell)
        assert record.experiment_id == "E01"
        assert record.base_seed == 0
        assert record.attempts == 1
        assert record.to_error_dict() == cell["error"]

    def test_deterministic_error_payload_is_not_retried(self):
        # A cell that raises inside the experiment is a verdict, not an
        # infrastructure failure: no retries are spent on it.
        spec = SweepSpec(experiment_ids=["E01"], seeds=[0],
                         grid={"bogus_kwarg": [1]})
        executor = ResilientExecutor(jobs=1, timeout=10.0, retries=3)
        report = run_sweep(spec, executor=executor)
        [cell] = report.cells
        assert cell["status"] == "error"
        assert cell["error"]["type"] == "TypeError"
        assert executor.recovery["retries"] == 0
        assert executor.recovery["failed_cells"] == 0


class TestConfiguration:
    @pytest.mark.parametrize("kwargs", [
        {"jobs": 0}, {"timeout": 0.0}, {"retries": -1},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(SweepError):
            ResilientExecutor(**kwargs)

    def test_healthy_run_without_chaos_matches_in_process(self):
        spec = small_spec()
        healthy = merged_json(run_sweep(spec, executor=InProcessExecutor()))
        executor = ResilientExecutor(jobs=2, timeout=10.0, retries=3)
        report = run_sweep(spec, executor=executor)
        assert merged_json(report) == healthy
        assert executor.recovery == {"retries": 0, "worker_deaths": 0,
                                     "timeouts": 0, "recovered_cells": 0,
                                     "failed_cells": 0}
