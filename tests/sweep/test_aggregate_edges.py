"""Aggregation edge cases: the verdict strings CI greps must not drift."""

import math

from tussle.sweep import aggregate, metric_scalars
from tussle.sweep.aggregate import _numeric


def ok_cell(seed, shape_holds=True, checks=None, rows=None):
    return {
        "experiment_id": "E01",
        "params": {},
        "base_seed": seed,
        "seed": seed,
        "status": "ok",
        "result": {
            "shape_holds": shape_holds,
            "checks": checks if checks is not None
            else [{"claim": "prices rise", "holds": shape_holds}],
            "tables": [{
                "title": "market",
                "columns": ["price", "label"],
                "rows": rows if rows is not None
                else [{"price": 1.0 + seed, "label": "x"}],
            }],
        },
        "error": None,
    }


def error_cell(seed):
    return {
        "experiment_id": "E01",
        "params": {},
        "base_seed": seed,
        "seed": seed,
        "status": "error",
        "result": None,
        "error": {"type": "RuntimeError", "message": "boom"},
    }


class TestSingleSeed:
    def test_single_seed_verdict(self):
        document = aggregate([ok_cell(0)])
        [group] = document["groups"]
        assert group["verdict"] == "E01 shape holds on 1/1 seeds"
        assert group["robust"] is True
        assert document["verdicts"] == ["E01 shape holds on 1/1 seeds"]
        # min == median == mean == max with one observation.
        summary = group["metrics"]["market/price"]
        assert summary == {"min": 1.0, "median": 1.0,
                           "mean": 1.0, "max": 1.0}

    def test_single_seed_shape_failure(self):
        [group] = aggregate([ok_cell(0, shape_holds=False)])["groups"]
        assert group["verdict"] == "E01 shape holds on 0/1 seeds"
        assert group["robust"] is False


class TestAllCellsFailed:
    def test_all_failed_verdict_and_no_metrics(self):
        document = aggregate([error_cell(0), error_cell(1)])
        [group] = document["groups"]
        assert group["verdict"] == \
            "E01 shape holds on 0/2 seeds (2 failed)"
        assert group["robust"] is False
        assert group["checks"] == [] and group["metrics"] == {}
        assert group["cells_failed"] == 2

    def test_mixed_failed_and_ok(self):
        [group] = aggregate([ok_cell(0), error_cell(1)])["groups"]
        assert group["verdict"] == \
            "E01 shape holds on 1/2 seeds (1 failed)"
        # A failed cell denies robustness even when every ok cell holds.
        assert group["robust"] is False

    def test_empty_cell_list(self):
        document = aggregate([])
        assert document["groups"] == [] and document["verdicts"] == []
        assert document["robust"] is True  # vacuous, but stable


class TestNanAndMissingMetrics:
    def test_nan_and_inf_rows_are_ignored(self):
        rows = [{"price": 2.0}, {"price": float("nan")},
                {"price": float("inf")}, {"price": None}]
        cell = ok_cell(0, rows=rows)
        assert metric_scalars(cell["result"]) == {"market/price": 2.0}
        [group] = aggregate([cell])["groups"]
        assert group["metrics"]["market/price"]["mean"] == 2.0

    def test_all_nan_column_vanishes_instead_of_poisoning(self):
        cell = ok_cell(0, rows=[{"price": float("nan")}])
        assert metric_scalars(cell["result"]) == {}
        [group] = aggregate([cell])["groups"]
        assert group["metrics"] == {}
        assert group["verdict"] == "E01 shape holds on 1/1 seeds"

    def test_bools_and_strings_are_not_metrics(self):
        cell = ok_cell(0, rows=[{"price": True, "label": "x"}])
        assert metric_scalars(cell["result"]) == {}

    def test_numeric_filter(self):
        assert _numeric(2) == 2.0
        assert _numeric(True) is None
        assert _numeric("3") is None
        assert _numeric(float("nan")) is None
        assert _numeric(float("-inf")) is None
        assert _numeric(math.pi) == math.pi

    def test_metric_present_on_subset_of_seeds(self):
        with_price = ok_cell(0)
        without = ok_cell(1, rows=[{"label": "y"}])
        [group] = aggregate([with_price, without])["groups"]
        # Summary over the seeds that have the metric, not a crash.
        assert group["metrics"]["market/price"]["mean"] == 1.0

    def test_checks_misaligned_across_seeds(self):
        short = ok_cell(0, checks=[{"claim": "a", "holds": True}])
        long = ok_cell(
            1, checks=[{"claim": "a", "holds": True},
                       {"claim": "b", "holds": True}])
        [group] = aggregate([short, long])["groups"]
        # Claims come from the lowest seed; extra checks never crash.
        assert [check["claim"] for check in group["checks"]] == ["a"]
        assert group["checks"][0]["passes"] == 2
