"""Tests for the ``python -m tussle`` command-line interface."""

import json

import pytest

from tussle.__main__ import build_parser, main


class TestCli:
    def test_list_shows_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for identifier in ("E01", "E12", "X01", "X05"):
            assert identifier in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E07"]) == 0
        out = capsys.readouterr().out
        assert "E07" in out
        assert "HOLDS" in out
        assert "FAILS" not in out

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "e07"]) == 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"])

    def test_summary_runs_everything(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert out.count("HOLDS") == 28

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "E01", "E02"])
        assert args.command == "run"
        assert args.experiments == ["E01", "E02"]
        assert args.trace is None
        assert args.as_json is False


class TestRunTraceAndJson:
    def test_trace_writes_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["run", "E01", "--trace", str(trace)]) == 0
        assert "trace written to" in capsys.readouterr().out
        lines = trace.read_text().splitlines()
        assert lines
        scopes = {json.loads(line)["scope"] for line in lines}
        assert {"experiments", "econ.market", "netsim.addressing"} <= scopes

    def test_trace_is_byte_identical_across_runs(self, tmp_path, capsys):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main(["run", "E01", "--trace", str(path)]) == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["run", "E07", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == []
        (result,) = payload["results"]
        assert result["experiment_id"] == "E07"
        assert result["shape_holds"] is True
        assert result["tables"] and result["tables"][0]["rows"]
        assert all(check["holds"] for check in result["checks"])

    def test_json_includes_metrics_snapshot(self, capsys):
        assert main(["run", "E01", "--json"]) == 0
        (result,) = json.loads(capsys.readouterr().out)["results"]
        assert "econ.market" in result["metrics"]

    def test_json_and_trace_compose(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["run", "E07", "--json", "--trace", str(trace)]) == 0
        json.loads(capsys.readouterr().out)  # stdout stays pure JSON
        assert trace.exists()
