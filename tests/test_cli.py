"""Tests for the ``python -m tussle`` command-line interface."""

import pytest

from tussle.__main__ import build_parser, main


class TestCli:
    def test_list_shows_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for identifier in ("E01", "E12", "X01", "X05"):
            assert identifier in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E07"]) == 0
        out = capsys.readouterr().out
        assert "E07" in out
        assert "HOLDS" in out
        assert "FAILS" not in out

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "e07"]) == 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"])

    def test_summary_runs_everything(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert out.count("HOLDS") == 19

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "E01", "E02"])
        assert args.command == "run"
        assert args.experiments == ["E01", "E02"]
