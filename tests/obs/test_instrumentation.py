"""Instrumented subsystems: coverage, reproducibility, non-interference."""

import numpy as np

from tussle.core.mechanisms import Mechanism
from tussle.core.simulator import TussleSimulator
from tussle.core.stakeholders import Stakeholder, StakeholderKind
from tussle.core.tussle import TussleSpace
from tussle.experiments import run_e01
from tussle.gametheory.games import NormalFormGame
from tussle.gametheory.learning import fictitious_play
from tussle.netsim.addressing import AddressRegistry
from tussle.netsim.engine import Simulator
from tussle.netsim.topology import Network, Relationship, line_topology
from tussle.obs import Metrics, Tracer, observe
from tussle.routing.linkstate import LinkStateRouting
from tussle.routing.pathvector import PathVectorRouting


def contested_space():
    space = TussleSpace("arena", initial_state={"x": 0.5})
    space.add_mechanism(Mechanism(name="knob", variable="x",
                                  allowed_range=(0.0, 1.0)))
    users = Stakeholder("users", StakeholderKind.USER)
    users.add_interest("x", target=1.0)
    providers = Stakeholder("providers", StakeholderKind.COMMERCIAL_ISP)
    providers.add_interest("x", target=0.0)
    space.add_stakeholder(providers)
    space.add_stakeholder(users)
    return space


def as_chain():
    net = Network()
    for asn in (1, 2, 3):
        net.add_as(asn)
    net.add_as_relationship(1, 2, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(2, 3, Relationship.CUSTOMER_PROVIDER)
    return net


class TestEngineInstrumentation:
    def test_schedule_fire_cancel_traced_and_counted(self):
        tracer, metrics = Tracer(), Metrics()
        with observe(tracer=tracer, metrics=metrics):
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            doomed = sim.schedule(2.0, lambda: None)
            doomed.cancel()
            sim.run()
        names = [r["name"] for r in tracer.records()
                 if r["scope"] == "netsim.engine"]
        assert names.count("schedule") == 2
        assert names.count("fire") == 1
        assert names.count("cancel") == 1
        counters = metrics.snapshot()["netsim.engine"]["counters"]
        assert counters == {"events_scheduled": 2, "events_fired": 1,
                            "events_cancelled": 1}

    def test_peak_queue_depth_gauge(self):
        metrics = Metrics()
        with observe(metrics=metrics):
            sim = Simulator()
            for delay in (1.0, 2.0, 3.0):
                sim.schedule(delay, lambda: None)
            sim.run()
        gauges = metrics.snapshot()["netsim.engine"]["gauges"]
        assert gauges["peak_queue_depth"] == 3

    def test_cancelled_entry_noted_in_step_path(self):
        metrics = Metrics()
        with observe(metrics=metrics):
            sim = Simulator()
            handle = sim.schedule(1.0, lambda: None)
            handle.cancel()
            assert sim.step() is False
        counters = metrics.snapshot()["netsim.engine"]["counters"]
        assert counters["events_cancelled"] == 1

    def test_trace_uses_sim_time_and_qualnames(self):
        tracer = Tracer()
        with observe(tracer=tracer):
            sim = Simulator()
            sim.schedule(2.5, max, 1, 2)
            sim.run()
        fire = [r for r in tracer.records() if r["name"] == "fire"][0]
        assert fire["t"] == 2.5
        assert fire["fields"]["callback"] == "max"
        assert "0x" not in fire["fields"]["callback"]


class TestSubsystemCoverage:
    def test_core_simulator_rounds_and_moves(self):
        tracer, metrics = Tracer(), Metrics()
        with observe(tracer=tracer, metrics=metrics):
            TussleSimulator(contested_space()).run(5)
        assert "core.simulator" in tracer.scopes()
        counters = metrics.snapshot()["core.simulator"]["counters"]
        assert counters["rounds"] == 5
        assert counters["moves"] > 0

    def test_routing_pathvector_convergence(self):
        tracer, metrics = Tracer(), Metrics()
        with observe(tracer=tracer, metrics=metrics):
            iterations = PathVectorRouting(as_chain()).converge()
        spans = [r for r in tracer.records() if r["kind"] == "span"
                 and r["scope"] == "routing.pathvector"]
        assert spans and spans[0]["fields"]["iterations"] == iterations
        counters = metrics.snapshot()["routing.pathvector"]["counters"]
        assert counters["iterations"] == iterations
        assert counters["announcements"] > 0

    def test_routing_linkstate_flood_and_spf(self):
        metrics = Metrics()
        with observe(metrics=metrics):
            LinkStateRouting(line_topology(4)).converge()
        counters = metrics.snapshot()["routing.linkstate"]["counters"]
        assert counters == {"floods": 1, "spf_runs": 4, "lsas_announced": 3}

    def test_gametheory_learning_run_span(self):
        tracer, metrics = Tracer(), Metrics()
        payoffs = np.array([[1.0, -1.0], [-1.0, 1.0]])
        with observe(tracer=tracer, metrics=metrics):
            result = fictitious_play(NormalFormGame([payoffs, -payoffs]),
                                     iterations=300)
        (span,) = [r for r in tracer.records()
                   if r["scope"] == "gametheory.learning"]
        assert span["name"] == "fictitious_play"
        assert span["t1"] == float(result.iterations)
        counters = metrics.snapshot()["gametheory.learning"]["counters"]
        assert counters["runs"] == 1
        assert counters["iterations"] == result.iterations

    def test_addressing_logical_clock(self):
        tracer, metrics = Tracer(), Metrics()
        with observe(tracer=tracer, metrics=metrics):
            registry = AddressRegistry()
            registry.allocate_aggregate(1)
            registry.assign_customer_block("site", 1)
            registry.assign_provider_independent("indie")
        events = [r for r in tracer.records()
                  if r["scope"] == "netsim.addressing"]
        assert [e["t"] for e in events] == [1.0, 2.0, 3.0]
        counters = metrics.snapshot()["netsim.addressing"]["counters"]
        assert counters == {"assignments": 3, "pi_assignments": 1}


class TestReproducibility:
    def test_e01_double_trace_is_byte_identical(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            tracer = Tracer()
            with observe(tracer=tracer):
                run_e01()
            paths.append(tracer.write_jsonl(tmp_path / f"{run}.jsonl"))
        first, second = (p.read_bytes() for p in paths)
        assert first == second
        assert first  # non-empty: the instrumentation actually fired

    def test_e01_trace_covers_econ_and_netsim(self):
        tracer = Tracer()
        with observe(tracer=tracer):
            run_e01()
        assert "econ.market" in tracer.scopes()
        assert "netsim.addressing" in tracer.scopes()

    def test_observation_does_not_change_results(self):
        baseline = run_e01()
        tracer, metrics = Tracer(), Metrics()
        with observe(tracer=tracer, metrics=metrics):
            observed = run_e01()
        assert observed.format() == baseline.format()
        assert len(tracer) > 0
