"""Benchmark record emitter: assembly and on-disk format."""

import json

from tussle.obs import Metrics, Profiler
from tussle.obs.bench import SCHEMA_VERSION, bench_record, write_bench_record


def populated_metrics():
    metrics = Metrics()
    engine = metrics.scope("netsim.engine")
    engine.counter("events_fired").inc(42)
    engine.gauge("peak_queue_depth").set_max(9)
    metrics.scope("econ.market").counter("switches").inc(3)
    return metrics


class TestBenchRecord:
    def test_counters_flatten_to_scoped_keys(self):
        record = bench_record("E01", metrics=populated_metrics())
        assert record.event_counts == {"netsim.engine/events_fired": 42,
                                       "econ.market/switches": 3}

    def test_peak_queue_depth_pulled_from_engine_gauge(self):
        record = bench_record("E01", metrics=populated_metrics())
        assert record.peak_queue_depth == 9

    def test_timing_from_profiler_key(self):
        profiler = Profiler()
        profiler.record("experiment", 0.5)
        profiler.record("experiment", 0.3)
        record = bench_record("E01", profiler=profiler)
        assert record.calls == 2
        assert record.wall_seconds_min == 0.3
        assert record.wall_seconds == 0.4  # mean

    def test_shape_verdict_from_result(self):
        class FakeResult:
            shape_holds = True
        assert bench_record("E01", result=FakeResult()).shape_holds is True
        assert bench_record("E01").shape_holds is None

    def test_extra_fields_land_in_payload(self):
        record = bench_record("X", overhead_fraction=0.01)
        assert record.to_dict()["overhead_fraction"] == 0.01

    def test_empty_record_is_well_formed(self):
        payload = bench_record("EMPTY").to_dict()
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["id"] == "EMPTY"
        assert payload["wall_seconds"] is None
        assert "shape_holds" not in payload


class TestWriteBenchRecord:
    def test_writes_bench_id_lowercase(self, tmp_path):
        path = write_bench_record(tmp_path, bench_record("E01"))
        assert path.name == "bench_e01.json"

    def test_creates_results_dir(self, tmp_path):
        target = tmp_path / "nested" / "results"
        path = write_bench_record(target, bench_record("E02"))
        assert path.exists()

    def test_payload_round_trips(self, tmp_path):
        profiler = Profiler()
        profiler.record("experiment", 0.25)
        record = bench_record("E03", metrics=populated_metrics(),
                              profiler=profiler, rounds=5)
        payload = json.loads(write_bench_record(tmp_path, record).read_text())
        assert payload["wall_seconds"] == 0.25
        assert payload["rounds"] == 5
        assert payload["event_counts"]["econ.market/switches"] == 3
        assert payload["metrics"]["netsim.engine"]["counters"][
            "events_fired"] == 42
