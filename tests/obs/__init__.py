"""Tests for tussle.obs: deterministic-safe observability."""
