"""Metrics registry: instruments, scopes, and snapshot stability."""

import json

from tussle.obs import Metrics, NullMetrics


class TestInstruments:
    def test_counter(self):
        counter = Metrics().scope("s").counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set_and_high_water(self):
        gauge = Metrics().scope("s").gauge("depth")
        gauge.set(3.0)
        gauge.set_max(7.0)
        gauge.set_max(2.0)  # below the mark: ignored
        assert gauge.value == 7.0

    def test_histogram_summary(self):
        histogram = Metrics().scope("s").histogram("price")
        for value in (2.0, 4.0, 9.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary == {"count": 3, "total": 15.0, "min": 2.0,
                           "max": 9.0, "mean": 5.0}

    def test_empty_histogram_mean_is_zero(self):
        assert Metrics().scope("s").histogram("h").mean == 0.0


class TestRegistry:
    def test_instruments_are_get_or_create(self):
        scope = Metrics().scope("s")
        assert scope.counter("c") is scope.counter("c")
        assert scope.gauge("g") is scope.gauge("g")
        assert scope.histogram("h") is scope.histogram("h")

    def test_scopes_are_get_or_create(self):
        metrics = Metrics()
        assert metrics.scope("a") is metrics.scope("a")

    def test_snapshot_nested_and_sorted(self):
        metrics = Metrics()
        metrics.scope("zeta").counter("n").inc()
        metrics.scope("alpha").gauge("g").set(1.0)
        metrics.scope("alpha").counter("c").inc(2)
        snapshot = metrics.snapshot()
        assert list(snapshot) == ["alpha", "zeta"]
        assert snapshot["alpha"] == {"counters": {"c": 2},
                                     "gauges": {"g": 1.0}}
        assert snapshot["zeta"] == {"counters": {"n": 1}}

    def test_snapshot_is_json_serialisable_and_stable(self):
        metrics = Metrics()
        metrics.scope("s").histogram("h").observe(1.5)
        first = json.dumps(metrics.snapshot(), sort_keys=True)
        second = json.dumps(metrics.snapshot(), sort_keys=True)
        assert first == second

    def test_empty_scope_snapshot_is_empty(self):
        metrics = Metrics()
        metrics.scope("quiet")
        assert metrics.snapshot() == {"quiet": {}}


class TestNullMetrics:
    def test_disabled_flag(self):
        assert NullMetrics().enabled is False
        assert Metrics().enabled is True

    def test_still_usable_when_held_directly(self):
        # Callers that skip the `enabled` check must not crash.
        metrics = NullMetrics()
        metrics.scope("s").counter("c").inc()
        assert metrics.snapshot() == {"s": {"counters": {"c": 1}}}
