"""Tracer: spans, events, and the byte-reproducible JSONL contract."""

import functools
import json

from tussle.obs import NullTracer, Tracer, callback_name


def make_trace():
    tracer = Tracer()
    span = tracer.begin("econ.market", "round", 0.0, seed=7)
    tracer.event("netsim.engine", "schedule", 0.0, at=1.5, priority=0)
    tracer.event("netsim.engine", "fire", 1.5, priority=0, queue_depth=0)
    span.end(1.0, switches=3)
    return tracer


class TestTracer:
    def test_event_record_shape(self):
        tracer = Tracer()
        tracer.event("scope", "name", 2.5, value=1)
        (record,) = tracer.records()
        assert record == {"kind": "event", "seq": 0, "scope": "scope",
                          "name": "name", "t": 2.5, "fields": {"value": 1}}

    def test_span_record_appended_on_end(self):
        tracer = Tracer()
        span = tracer.begin("scope", "work", 1.0, a=1)
        assert len(tracer) == 0  # nothing until the span closes
        span.end(4.0, b=2)
        (record,) = tracer.records()
        assert record["kind"] == "span"
        assert record["t0"] == 1.0 and record["t1"] == 4.0
        assert record["fields"] == {"a": 1, "b": 2}

    def test_span_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("scope", "work", 0.0)
        span.end(1.0)
        span.end(2.0)
        assert len(tracer) == 1
        assert tracer.records()[0]["t1"] == 1.0

    def test_span_context_manager_closes_at_t0(self):
        tracer = Tracer()
        with tracer.begin("scope", "group", 3.0):
            pass
        assert tracer.records()[0]["t1"] == 3.0

    def test_seq_is_emission_order_across_kinds(self):
        tracer = make_trace()
        seqs = [r["seq"] for r in tracer.records()]
        # The span got seq 0 at begin() even though it serialized last.
        assert sorted(seqs) == [0, 1, 2]

    def test_scopes_sorted(self):
        assert make_trace().scopes() == ["econ.market", "netsim.engine"]

    def test_jsonl_is_deterministic(self):
        a, b = make_trace().to_jsonl(), make_trace().to_jsonl()
        assert a == b
        for line in a.strip().splitlines():
            record = json.loads(line)
            assert line == json.dumps(record, sort_keys=True,
                                      separators=(",", ":"))

    def test_write_jsonl_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "dir" / "trace.jsonl"
        written = make_trace().write_jsonl(target)
        assert written == target
        assert len(target.read_text().splitlines()) == 3

    def test_empty_tracer_writes_empty_file(self, tmp_path):
        target = Tracer().write_jsonl(tmp_path / "empty.jsonl")
        assert target.read_text() == ""


class TestNullTracer:
    def test_disabled_flag(self):
        assert NullTracer().enabled is False
        assert Tracer().enabled is True

    def test_records_nothing(self):
        tracer = NullTracer()
        tracer.event("scope", "name", 0.0, x=1)
        span = tracer.begin("scope", "work", 0.0)
        span.end(1.0, y=2)
        with tracer.begin("scope", "group", 0.0):
            pass
        assert len(tracer) == 0
        assert tracer.to_jsonl() == ""


class TestCallbackName:
    def test_function_qualname(self):
        def local():
            pass
        assert "local" in callback_name(local)

    def test_method_qualname(self):
        class Thing:
            def tick(self):
                pass
        assert callback_name(Thing().tick).endswith("Thing.tick")

    def test_callable_object_falls_back_to_type_name(self):
        name = callback_name(functools.partial(print, 1))
        assert name == "partial"

    def test_never_embeds_addresses(self):
        assert "0x" not in callback_name(lambda: None)
