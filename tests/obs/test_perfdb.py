"""Perf-history ledger: ingest, trend extraction, regression gating."""

import json

import pytest

from tussle.errors import ObservabilityError
from tussle.obs import perfdb


def bench_record(bench_id, wall_min, wall=None, counts=None):
    return {
        "id": bench_id,
        "wall_seconds": wall if wall is not None else wall_min * 1.2,
        "wall_seconds_min": wall_min,
        "calls": 3,
        "event_counts": counts or {"engine.fire": 10},
        "peak_queue_depth": 4,
        "shape_holds": True,
    }


def write_results(directory, *records):
    directory.mkdir(parents=True, exist_ok=True)
    for record in records:
        path = directory / f"bench_{record['id'].lower()}.json"
        path.write_text(json.dumps(record))
    return directory


class TestLedgerIO:
    def test_missing_history_is_empty_ledger(self, tmp_path):
        history = perfdb.load_history(tmp_path / "history.json")
        assert history == {"schema": 1, "benchmarks": {}}

    def test_round_trip(self, tmp_path):
        path = tmp_path / "history.json"
        history = perfdb.load_history(path)
        perfdb.ingest(history, {"E01": bench_record("E01", 0.05)})
        perfdb.write_history(path, history)
        again = perfdb.load_history(path)
        assert again == history
        # Reviewable: indented, sorted, trailing newline.
        text = path.read_text()
        assert text.endswith("\n") and '"schema": 1' in text

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text('{"schema": 99, "benchmarks": {}}')
        with pytest.raises(ObservabilityError, match="schema"):
            perfdb.load_history(path)

    def test_load_results_rejects_damaged_record(self, tmp_path):
        directory = write_results(tmp_path / "results",
                                  bench_record("E01", 0.05))
        (directory / "bench_broken.json").write_text("{truncated")
        with pytest.raises(ObservabilityError, match="cannot read"):
            perfdb.load_results(directory)

    def test_load_results_requires_id(self, tmp_path):
        directory = tmp_path / "results"
        directory.mkdir()
        (directory / "bench_x.json").write_text('{"wall_seconds": 1}')
        with pytest.raises(ObservabilityError, match="missing 'id'"):
            perfdb.load_results(directory)


class TestIngest:
    def test_runs_are_ledger_positions_not_timestamps(self, tmp_path):
        history = perfdb.load_history(tmp_path / "h.json")
        perfdb.ingest(history, {"E01": bench_record("E01", 0.05)})
        perfdb.ingest(history, {"E01": bench_record("E01", 0.04)})
        entries = history["benchmarks"]["E01"]
        assert [entry["run"] for entry in entries] == [1, 2]
        assert all("timestamp" not in entry for entry in entries)

    def test_wall_quarantined_under_wall_key(self, tmp_path):
        history = perfdb.load_history(tmp_path / "h.json")
        perfdb.ingest(history, {"E01": bench_record("E01", 0.05)})
        [entry] = history["benchmarks"]["E01"]
        assert entry["wall"]["seconds_min"] == 0.05
        assert entry["det"]["event_counts"] == {"engine.fire": 10}
        assert "seconds" not in entry["det"]


class TestTrend:
    def test_direction(self, tmp_path):
        history = perfdb.load_history(tmp_path / "h.json")
        for wall in (0.05, 0.055, 0.10):
            perfdb.ingest(history, {"E01": bench_record("E01", wall)})
        trend = perfdb.trend(history, "E01")
        assert trend["runs"] == 3
        assert trend["latest"] == 0.10 and trend["best"] == 0.05
        assert trend["direction"] == "slower"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(ObservabilityError, match="no history"):
            perfdb.trend({"schema": 1, "benchmarks": {}}, "E99")


class TestCheck:
    def setup_method(self):
        self.history = {"schema": 1, "benchmarks": {}}
        perfdb.ingest(self.history, {"E01": bench_record("E01", 0.05)})

    def test_within_threshold_passes(self):
        findings, ok = perfdb.check(
            self.history, {"E01": bench_record("E01", 0.06)})
        assert ok and findings == []

    def test_regression_blocks(self):
        findings, ok = perfdb.check(
            self.history, {"E01": bench_record("E01", 0.50)})
        assert not ok
        [finding] = findings
        assert finding.kind == "regression" and finding.blocking
        assert "0.5000s" in finding.message

    def test_abs_floor_swallows_microbench_jitter(self):
        history = {"schema": 1, "benchmarks": {}}
        perfdb.ingest(history, {"E07": bench_record("E07", 0.0002)})
        # 5x slower but only 0.8ms absolute: noise, not a regression.
        findings, ok = perfdb.check(
            history, {"E07": bench_record("E07", 0.001)})
        assert ok

    def test_new_benchmark_does_not_block(self):
        findings, ok = perfdb.check(
            self.history, {"NEW": bench_record("NEW", 1.0)})
        assert ok
        assert findings[0].kind == "new-benchmark"

    def test_counter_drift_reported_non_blocking(self):
        findings, ok = perfdb.check(
            self.history,
            {"E01": bench_record("E01", 0.05,
                                 counts={"engine.fire": 99})})
        assert ok
        [finding] = findings
        assert finding.kind == "counter-drift" and not finding.blocking

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ObservabilityError, match="threshold"):
            perfdb.check(self.history, {}, threshold=0.9)
