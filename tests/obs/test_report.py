"""Trace report: aggregation and the ``python -m tussle.obs`` CLI."""

import json

import pytest

from tussle.errors import ObservabilityError
from tussle.obs import SweepTelemetry, Tracer
from tussle.obs.__main__ import main as obs_main
from tussle.obs.report import (
    TraceReport,
    build_report,
    build_sweep_report,
    load_trace,
    load_trace_tolerant,
)


def synthetic_trace(tmp_path):
    """Two scopes: an engine firing three callbacks and one market span."""
    tracer = Tracer()
    span = tracer.begin("econ.market", "round", 0.0)
    for t, callback in ((0.0, "Process._tick"), (1.0, "Process._tick"),
                        (2.0, "Market.step")):
        tracer.event("netsim.engine", "fire", t, callback=callback)
    tracer.event("netsim.engine", "schedule", 0.0, callback="Market.step")
    span.end(2.0, switches=1)
    return tracer.write_jsonl(tmp_path / "trace.jsonl")


class TestLoadTrace:
    def test_round_trips_records(self, tmp_path):
        path = synthetic_trace(tmp_path)
        records = load_trace(path)
        assert len(records) == 5
        assert {r["kind"] for r in records} == {"span", "event"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read"):
            load_trace(tmp_path / "nope.jsonl")

    def test_invalid_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"event"}\nnot json\n')
        with pytest.raises(ObservabilityError, match="bad.jsonl:2"):
            load_trace(path)

    def test_non_record_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_kind": 1}\n')
        with pytest.raises(ObservabilityError, match="missing 'kind'"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gappy.jsonl"
        path.write_text('{"kind":"event","scope":"s","name":"n","t":0.0}\n\n')
        assert len(load_trace(path)) == 1


class TestTraceReport:
    def test_subsystem_breakdown(self, tmp_path):
        report = build_report(synthetic_trace(tmp_path))
        rows = {r["scope"]: r for r in report.subsystem_breakdown()}
        market = rows["econ.market"]
        assert market["spans"] == 1 and market["span_time"] == 2.0
        engine = rows["netsim.engine"]
        assert engine["events"] == 4
        assert engine["t_min"] == 0.0 and engine["t_max"] == 2.0
        # Sorted by span time: the market span ranks first.
        assert report.subsystem_breakdown()[0]["scope"] == "econ.market"

    def test_event_rates(self, tmp_path):
        report = build_report(synthetic_trace(tmp_path))
        rates = {(r["scope"], r["name"]): r for r in report.event_rates()}
        fire = rates[("netsim.engine", "fire")]
        assert fire["count"] == 3
        assert fire["rate"] == pytest.approx(1.5)  # 3 events over t∈[0,2]

    def test_hottest_callbacks(self, tmp_path):
        report = build_report(synthetic_trace(tmp_path))
        assert report.hottest_callbacks(top=1) == [("Process._tick", 2)]
        # Schedule events don't count as fires.
        assert dict(report.hottest_callbacks())["Market.step"] == 1

    def test_format_contains_all_sections(self, tmp_path):
        text = build_report(synthetic_trace(tmp_path)).format()
        assert "Per-subsystem breakdown" in text
        assert "Event rates" in text
        assert "hottest callbacks" in text

    def test_to_dict_is_json_ready(self, tmp_path):
        payload = build_report(synthetic_trace(tmp_path)).to_dict()
        json.dumps(payload)  # must not raise
        assert payload["records"] == 5

    def test_empty_trace_report(self):
        report = TraceReport([])
        assert report.subsystem_breakdown() == []
        assert report.hottest_callbacks() == []
        assert "0 records" in report.format()


class TestTolerantLoading:
    """S1: damaged traces yield a partial report, never a traceback."""

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        records, problems = load_trace_tolerant(path)
        assert records == [] and problems == []
        report = build_report(path, strict=False)
        assert "0 records" in report.format()

    def test_truncated_tail_salvaged(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        path.write_text(
            '{"kind":"event","scope":"s","name":"n","t":1.0}\n'
            '{"kind":"span","scope":"s","name":"m","t0":0.0,"t1"')
        records, problems = load_trace_tolerant(path)
        assert len(records) == 1
        assert len(problems) == 1 and "truncated.jsonl:2" in problems[0]
        report = build_report(path, strict=False)
        assert len(report.events) == 1
        assert report.problems == problems

    def test_mixed_schema_records_counted_not_crashed(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"kind":"meta","schema":1,"channel":"deterministic"}\n'
            '{"kind":"cell","event":"cell_dispatched","base_seed":0}\n'
            '{"kind":"event","scope":"s","name":"n","t":1.0}\n')
        report = build_report(path, strict=False)
        assert len(report.records) == 1
        assert len(report.other) == 2
        assert "other-schema" in report.format()
        assert report.to_dict()["other"] == 2

    def test_broken_timestamps_quarantined(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text(
            '{"kind":"span","scope":"s","name":"m","t0":"zero","t1":1.0}\n'
            '{"kind":"event","scope":"s","name":"n"}\n'
            '{"kind":"event","scope":"s","name":"n","t":2.0}\n')
        records, problems = load_trace_tolerant(path)
        assert len(records) == 1
        assert any("t0/t1" in p for p in problems)
        assert any("numeric t" in p for p in problems)
        # The salvaged record still aggregates.
        report = TraceReport(records, problems=problems)
        assert report.subsystem_breakdown()[0]["events"] == 1
        assert "Problems (2)" in report.format()

    def test_strict_mode_unchanged(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("garbage\n")
        with pytest.raises(ObservabilityError, match="bad.jsonl:1"):
            build_report(path)

    def test_report_never_raises_on_malformed_records(self):
        report = TraceReport([
            {"kind": "span", "scope": "s", "name": "m", "t0": None,
             "t1": 1.0},
            "not even a dict",
            {"kind": "event", "scope": "s", "name": "n", "t": 0.0},
        ])
        assert len(report.records) == 1
        assert len(report.skipped) == 2
        assert len(report.problems) == 2


def sweep_telemetry_files(tmp_path):
    from tussle.sweep import SweepSpec, run_sweep
    spec = SweepSpec(experiment_ids=["E01"], seeds=[0, 1],
                     grid={"n_consumers": [15], "rounds": [6]})
    telemetry = SweepTelemetry()
    run_sweep(spec, telemetry=telemetry)
    return telemetry.write(tmp_path / "telemetry.jsonl")


class TestSweepTelemetryReport:
    def test_totals_and_cache_rate(self, tmp_path):
        det_path, _ = sweep_telemetry_files(tmp_path)
        report = build_sweep_report(det_path)
        assert report.schema == 1
        assert report.det_counters["cells_total"] == 2
        assert report.cache_hit_rate() == 0.0
        assert report.problems == []

    def test_worker_utilization_and_stragglers(self, tmp_path):
        det_path, _ = sweep_telemetry_files(tmp_path)
        report = build_sweep_report(det_path)
        [worker] = report.worker_utilization()
        assert worker["cells"] == 2 and worker["busy_seconds"] > 0
        stragglers = report.stragglers()
        assert len(stragglers) == 2
        assert stragglers[0]["seconds"] >= stragglers[1]["seconds"]

    def test_missing_wall_sibling_is_partial_not_fatal(self, tmp_path):
        det_path, wall_path = sweep_telemetry_files(tmp_path)
        wall_path.unlink()
        report = build_sweep_report(det_path)
        assert report.det_counters["cells_total"] == 2
        assert report.worker_utilization() == []

    def test_retry_storms_from_wall_events(self):
        from tussle.obs.report import SweepTelemetryReport
        telemetry = SweepTelemetry()
        cell = ("E01", "{}", 4)
        telemetry.cell_retried(cell, 1, "worker-death", 0.1)
        telemetry.cell_retried(cell, 2, "timeout", 0.2)
        telemetry.cell_retried(("E01", "{}", 5), 1, "worker-death", 0.1)
        wall = [json.loads(line) for line in telemetry.wall_lines()]
        report = SweepTelemetryReport([], wall)
        [storm] = report.retry_storms()
        assert storm["base_seed"] == 4 and storm["retries"] == 2
        assert "worker-death" in storm["reasons"]

    def test_schema_mismatch_reported(self):
        from tussle.obs.report import SweepTelemetryReport
        report = SweepTelemetryReport([{"kind": "meta", "schema": 99}])
        assert any("schema 99" in p for p in report.problems)

    def test_format_and_to_dict(self, tmp_path):
        det_path, _ = sweep_telemetry_files(tmp_path)
        report = build_sweep_report(det_path)
        text = report.format()
        assert "sweep telemetry (schema 1)" in text
        assert "Per-worker utilization" in text
        json.dumps(report.to_dict())  # must not raise


class TestCli:
    def test_report_text(self, tmp_path, capsys):
        path = synthetic_trace(tmp_path)
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "econ.market" in out and "netsim.engine" in out

    def test_report_json(self, tmp_path, capsys):
        path = synthetic_trace(tmp_path)
        assert obs_main(["report", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 1 and payload["events"] == 4

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "tussle.obs:" in capsys.readouterr().err

    def test_no_subcommand_prints_help(self, capsys):
        assert obs_main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_tolerant_flag_salvages_damaged_trace(self, tmp_path, capsys):
        path = tmp_path / "damaged.jsonl"
        path.write_text(
            '{"kind":"event","scope":"s","name":"n","t":1.0}\ngarbage\n')
        assert obs_main(["report", str(path)]) == 2
        capsys.readouterr()
        assert obs_main(["report", str(path), "--tolerant"]) == 0
        out = capsys.readouterr().out
        assert "1 skipped" in out and "Problems (1)" in out

    def test_sweep_report_subcommand(self, tmp_path, capsys):
        det_path, _ = sweep_telemetry_files(tmp_path)
        assert obs_main(["sweep-report", str(det_path)]) == 0
        assert "sweep telemetry" in capsys.readouterr().out
        assert obs_main(["sweep-report", str(det_path),
                         "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["det_counters"]["cells_total"] == 2

    def test_diff_subcommand(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text('{"i":0}\n{"v":"x"}\n')
        b.write_text('{"i":0}\n{"v":"y"}\n')
        assert obs_main(["diff", str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out
        assert obs_main(["diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "first divergence at record 1" in out
        assert obs_main(["diff", str(a), str(b), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["index"] == 1

    def test_perf_subcommands(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "bench_e01.json").write_text(json.dumps({
            "id": "E01", "wall_seconds": 0.06, "wall_seconds_min": 0.05,
            "calls": 3, "event_counts": {}, "peak_queue_depth": None}))
        history = tmp_path / "history.json"
        argv = ["perf", "--history", str(history), "--results",
                str(results)]
        assert obs_main(argv + ["--ingest"]) == 0
        assert "ingested 1 benchmark" in capsys.readouterr().out
        assert obs_main(argv + ["--check"]) == 0
        assert "ok" in capsys.readouterr().out
        # A 10x regression blocks.
        (results / "bench_e01.json").write_text(json.dumps({
            "id": "E01", "wall_seconds": 0.6, "wall_seconds_min": 0.5,
            "calls": 3, "event_counts": {}, "peak_queue_depth": None}))
        assert obs_main(argv + ["--check"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "REGRESSED" in out
        assert obs_main(argv) == 0
        assert "1 run(s)" in capsys.readouterr().out
