"""Trace report: aggregation and the ``python -m tussle.obs`` CLI."""

import json

import pytest

from tussle.errors import ObservabilityError
from tussle.obs import Tracer
from tussle.obs.__main__ import main as obs_main
from tussle.obs.report import TraceReport, build_report, load_trace


def synthetic_trace(tmp_path):
    """Two scopes: an engine firing three callbacks and one market span."""
    tracer = Tracer()
    span = tracer.begin("econ.market", "round", 0.0)
    for t, callback in ((0.0, "Process._tick"), (1.0, "Process._tick"),
                        (2.0, "Market.step")):
        tracer.event("netsim.engine", "fire", t, callback=callback)
    tracer.event("netsim.engine", "schedule", 0.0, callback="Market.step")
    span.end(2.0, switches=1)
    return tracer.write_jsonl(tmp_path / "trace.jsonl")


class TestLoadTrace:
    def test_round_trips_records(self, tmp_path):
        path = synthetic_trace(tmp_path)
        records = load_trace(path)
        assert len(records) == 5
        assert {r["kind"] for r in records} == {"span", "event"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read"):
            load_trace(tmp_path / "nope.jsonl")

    def test_invalid_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"event"}\nnot json\n')
        with pytest.raises(ObservabilityError, match="bad.jsonl:2"):
            load_trace(path)

    def test_non_record_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_kind": 1}\n')
        with pytest.raises(ObservabilityError, match="missing 'kind'"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gappy.jsonl"
        path.write_text('{"kind":"event","scope":"s","name":"n","t":0.0}\n\n')
        assert len(load_trace(path)) == 1


class TestTraceReport:
    def test_subsystem_breakdown(self, tmp_path):
        report = build_report(synthetic_trace(tmp_path))
        rows = {r["scope"]: r for r in report.subsystem_breakdown()}
        market = rows["econ.market"]
        assert market["spans"] == 1 and market["span_time"] == 2.0
        engine = rows["netsim.engine"]
        assert engine["events"] == 4
        assert engine["t_min"] == 0.0 and engine["t_max"] == 2.0
        # Sorted by span time: the market span ranks first.
        assert report.subsystem_breakdown()[0]["scope"] == "econ.market"

    def test_event_rates(self, tmp_path):
        report = build_report(synthetic_trace(tmp_path))
        rates = {(r["scope"], r["name"]): r for r in report.event_rates()}
        fire = rates[("netsim.engine", "fire")]
        assert fire["count"] == 3
        assert fire["rate"] == pytest.approx(1.5)  # 3 events over t∈[0,2]

    def test_hottest_callbacks(self, tmp_path):
        report = build_report(synthetic_trace(tmp_path))
        assert report.hottest_callbacks(top=1) == [("Process._tick", 2)]
        # Schedule events don't count as fires.
        assert dict(report.hottest_callbacks())["Market.step"] == 1

    def test_format_contains_all_sections(self, tmp_path):
        text = build_report(synthetic_trace(tmp_path)).format()
        assert "Per-subsystem breakdown" in text
        assert "Event rates" in text
        assert "hottest callbacks" in text

    def test_to_dict_is_json_ready(self, tmp_path):
        payload = build_report(synthetic_trace(tmp_path)).to_dict()
        json.dumps(payload)  # must not raise
        assert payload["records"] == 5

    def test_empty_trace_report(self):
        report = TraceReport([])
        assert report.subsystem_breakdown() == []
        assert report.hottest_callbacks() == []
        assert "0 records" in report.format()


class TestCli:
    def test_report_text(self, tmp_path, capsys):
        path = synthetic_trace(tmp_path)
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "econ.market" in out and "netsim.engine" in out

    def test_report_json(self, tmp_path, capsys):
        path = synthetic_trace(tmp_path)
        assert obs_main(["report", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 1 and payload["events"] == 4

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "tussle.obs:" in capsys.readouterr().err

    def test_no_subcommand_prints_help(self, capsys):
        assert obs_main([]) == 0
        assert "usage" in capsys.readouterr().out
