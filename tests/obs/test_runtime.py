"""The ambient observability context: disabled default, install/restore."""

import pytest

from tussle.obs import (
    Metrics,
    NullMetrics,
    NullProfiler,
    NullTracer,
    ObsContext,
    Profiler,
    Tracer,
    current,
    observe,
)


class TestDefaultContext:
    def test_fully_disabled(self):
        context = current()
        assert isinstance(context.tracer, NullTracer)
        assert isinstance(context.metrics, NullMetrics)
        assert isinstance(context.profiler, NullProfiler)
        assert context.active is False


class TestObserve:
    def test_installs_and_restores(self):
        tracer = Tracer()
        before = current()
        with observe(tracer=tracer) as context:
            assert current() is context
            assert context.tracer is tracer
            assert context.active is True
        assert current() is before

    def test_omitted_facilities_stay_disabled(self):
        with observe(metrics=Metrics()) as context:
            assert context.tracer.enabled is False
            assert context.profiler.enabled is False
            assert context.metrics.enabled is True

    def test_restores_on_error(self):
        before = current()
        with pytest.raises(RuntimeError):
            with observe(tracer=Tracer()):
                raise RuntimeError("boom")
        assert current() is before

    def test_nesting_restores_outer(self):
        outer_metrics = Metrics()
        with observe(metrics=outer_metrics):
            with observe(profiler=Profiler()) as inner:
                # Inner context replaces wholesale: metrics fall back to
                # the disabled default unless re-passed.
                assert inner.metrics.enabled is False
            assert current().metrics is outer_metrics


class TestObsContext:
    def test_active_when_any_enabled(self):
        disabled = ObsContext(NullTracer(), NullMetrics(), NullProfiler())
        assert disabled.active is False
        assert ObsContext(Tracer(), NullMetrics(), NullProfiler()).active
        assert ObsContext(NullTracer(), Metrics(), NullProfiler()).active
        assert ObsContext(NullTracer(), NullMetrics(), Profiler()).active
