"""Sweep telemetry: two channels, byte-identical deterministic stream."""

import json

from tussle.obs import NullSweepTelemetry, SweepTelemetry, wall_path_for
from tussle.resil import WorkerChaos
from tussle.sweep import (
    InProcessExecutor,
    ProcessPoolExecutor,
    ResilientExecutor,
    ResultCache,
    SweepSpec,
    run_sweep,
)

SPEC = SweepSpec(
    experiment_ids=["E01"],
    seeds=[0, 1, 2],
    grid={"n_consumers": [15], "rounds": [6]},
)


def det_bytes(executor):
    telemetry = SweepTelemetry()
    run_sweep(SPEC, executor=executor, telemetry=telemetry)
    return telemetry.to_deterministic_jsonl()


class TestChannels:
    def test_wall_path_sibling(self, tmp_path):
        assert wall_path_for("out/t.jsonl").name == "t.wall.jsonl"
        assert wall_path_for("t").name == "t.wall"

    def test_write_emits_both_channels(self, tmp_path):
        telemetry = SweepTelemetry()
        run_sweep(SPEC, telemetry=telemetry)
        det_path, wall_path = telemetry.write(tmp_path / "t.jsonl")
        assert det_path.exists() and wall_path.exists()
        det = [json.loads(line)
               for line in det_path.read_text().splitlines()]
        assert det[0] == {"kind": "meta", "schema": 1,
                          "channel": "deterministic"}
        assert det[-1]["kind"] == "summary"
        wall = [json.loads(line)
                for line in wall_path.read_text().splitlines()]
        assert wall[0]["channel"] == "wall"
        # No wall-clock offsets ever leak into the deterministic channel.
        assert all("t" not in record for record in det)

    def test_det_events_cover_every_cell(self):
        telemetry = SweepTelemetry()
        run_sweep(SPEC, telemetry=telemetry)
        counters = telemetry.det_counters
        assert counters["cells_total"] == 3
        assert counters["dispatched"] == 3
        assert counters["completed_ok"] == 3
        events = [json.loads(line)
                  for line in telemetry.deterministic_lines()[1:-1]]
        assert [e["event"] for e in events] == [
            "cell_dispatched", "cell_completed"] * 3
        assert [e["base_seed"] for e in events] == [0, 0, 1, 1, 2, 2]

    def test_cache_hits_recorded(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(SPEC, cache=cache)
        telemetry = SweepTelemetry()
        run_sweep(SPEC, cache=cache, telemetry=telemetry)
        assert telemetry.det_counters["cache_hits"] == 3
        assert telemetry.det_counters["dispatched"] == 0
        events = [json.loads(line)
                  for line in telemetry.deterministic_lines()[1:-1]]
        assert [e["event"] for e in events] == [
            "cell_cache_hit", "cell_completed"] * 3


class TestByteIdentity:
    def test_serial_vs_pool(self):
        serial = det_bytes(InProcessExecutor())
        pooled = det_bytes(ProcessPoolExecutor(jobs=4))
        assert serial == pooled

    def test_serial_vs_chaos(self):
        """The ISSUE's core gate: 30% sabotage costs wall time, not bytes."""
        serial = det_bytes(InProcessExecutor())
        chaos = WorkerChaos(seed=2, fraction=0.3)
        executor = ResilientExecutor(jobs=4, timeout=2.0, retries=3,
                                     chaos=chaos)
        telemetry = SweepTelemetry()
        run_sweep(SPEC, executor=executor, telemetry=telemetry)
        assert telemetry.to_deterministic_jsonl() == serial
        # ...while the wall channel records what recovery cost.
        assert telemetry.wall_counters["retries"] >= 1
        wall_events = {json.loads(line).get("event")
                       for line in telemetry.wall_lines()[1:-1]}
        assert "cell_retried" in wall_events

    def test_cached_run_differs_only_in_event_names(self, tmp_path):
        # Cache state IS an input to the deterministic channel: the same
        # spec over a warm cache legitimately yields different bytes.
        cold = det_bytes(InProcessExecutor())
        cache = ResultCache(tmp_path)
        run_sweep(SPEC, cache=cache)
        telemetry = SweepTelemetry()
        run_sweep(SPEC, cache=cache, telemetry=telemetry)
        warm = telemetry.to_deterministic_jsonl()
        assert warm != cold
        # Same cells in the same order; only the event name and the
        # cache-hit/dispatch counters move.
        warm_cells = warm.splitlines()[1:-1]
        cold_cells = cold.splitlines()[1:-1]
        assert [line.replace("cell_cache_hit", "cell_dispatched")
                for line in warm_cells] == cold_cells


class TestWallChannel:
    def test_resilient_executor_emits_lifecycle(self):
        executor = ResilientExecutor(jobs=2, timeout=5.0, retries=1)
        telemetry = SweepTelemetry()
        run_sweep(SPEC, executor=executor, telemetry=telemetry)
        events = [json.loads(line)
                  for line in telemetry.wall_lines()[1:-1]]
        names = {e["event"] for e in events}
        assert {"worker_started", "cell_attempt",
                "cell_finished", "worker_exited"} <= names
        attempts = [e for e in events if e["event"] == "cell_attempt"]
        assert telemetry.wall_counters["attempts"] == len(attempts) == 3
        for event in events:
            assert isinstance(event["t"], float) and event["t"] >= 0.0

    def test_retry_reasons_classified(self):
        telemetry = SweepTelemetry()
        cell = ("E01", "{}", 0)
        telemetry.cell_retried(cell, 1, "worker-death (exit 1)", 0.1)
        telemetry.cell_retried(cell, 2, "timeout after 2.0s", 0.2)
        telemetry.cell_retried(cell, 3, "unknown reason", 0.3)
        assert telemetry.wall_counters["retries"] == 3
        assert telemetry.wall_counters["worker_deaths"] == 1
        assert telemetry.wall_counters["timeouts"] == 1

    def test_summary_line(self):
        telemetry = SweepTelemetry()
        run_sweep(SPEC, telemetry=telemetry)
        line = telemetry.summary_line(1.25)
        assert line == ("sweep: 3 cells, 0 cache hits, 0 retries, "
                       "0 failures, 1.25s wall")
        assert "wall" not in telemetry.summary_line()


class TestNullTelemetry:
    def test_null_records_nothing(self):
        telemetry = NullSweepTelemetry()
        run_sweep(SPEC, telemetry=telemetry)
        assert not telemetry.enabled
        assert len(telemetry.deterministic_lines()) == 2  # header+summary
        assert telemetry.det_counters["cells_total"] == 0
        assert telemetry.elapsed() == 0.0

    def test_disabled_telemetry_is_dropped_by_scheduler(self):
        executor = InProcessExecutor()
        run_sweep(SPEC, executor=executor,
                  telemetry=NullSweepTelemetry())
        # The scheduler nulls it out rather than injecting it.
        assert executor.telemetry is None
