"""Profiler: the quarantined wall-clock channel."""

from tussle.obs import Metrics, NullProfiler, Profiler, Tracer, observe


class TestProfiler:
    def test_time_accumulates_per_key(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.time("work"):
                pass
        snapshot = profiler.snapshot()["work"]
        assert snapshot["calls"] == 3
        assert snapshot["total_seconds"] >= 0.0
        assert snapshot["min_seconds"] <= snapshot["max_seconds"]

    def test_record_folds_external_measurements(self):
        profiler = Profiler()
        profiler.record("ext", 0.5)
        profiler.record("ext", 0.25)
        assert profiler.total_seconds("ext") == 0.75
        assert profiler.min_seconds("ext") == 0.25

    def test_keys_sorted(self):
        profiler = Profiler()
        profiler.record("b", 0.1)
        profiler.record("a", 0.1)
        assert profiler.keys() == ["a", "b"]

    def test_unknown_key_defaults(self):
        profiler = Profiler()
        assert profiler.total_seconds("missing") == 0.0
        assert profiler.min_seconds("missing") is None

    def test_time_records_on_exception(self):
        profiler = Profiler()
        try:
            with profiler.time("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert profiler.snapshot()["failing"]["calls"] == 1


class TestQuarantine:
    def test_wall_clock_never_enters_trace_or_metrics(self):
        """The quarantine rule: profiling a block must leave the
        deterministic channels (trace, metrics) untouched."""
        tracer, metrics, profiler = Tracer(), Metrics(), Profiler()
        with observe(tracer=tracer, metrics=metrics, profiler=profiler):
            with profiler.time("quarantined"):
                pass
        assert len(tracer) == 0
        assert metrics.snapshot() == {}
        assert "quarantined" in profiler.snapshot()


class TestNullProfiler:
    def test_disabled_flag(self):
        assert NullProfiler().enabled is False
        assert Profiler().enabled is True

    def test_records_nothing(self):
        profiler = NullProfiler()
        with profiler.time("work"):
            pass
        profiler.record("work", 1.0)
        assert profiler.snapshot() == {}
