"""Trace diffing: localizing the first divergence between streams."""

import json

import pytest

from tussle.errors import ObservabilityError
from tussle.obs.diff import (
    diff_files,
    diff_lines,
    first_divergence,
    format_divergence,
)


def lines(*records):
    return [json.dumps(record, sort_keys=True) for record in records]


class TestFirstDivergence:
    def test_identical_streams(self):
        stream = lines({"a": 1}, {"a": 2})
        assert first_divergence(stream, list(stream)) is None

    def test_record_divergence_with_context(self):
        a = lines({"i": 0}, {"i": 1}, {"i": 2, "v": "x"}, {"i": 3})
        b = lines({"i": 0}, {"i": 1}, {"i": 2, "v": "y"}, {"i": 3})
        divergence = first_divergence(a, b, context=2)
        assert divergence.index == 2
        assert divergence.kind == "record"
        assert divergence.context == a[0:2]
        assert divergence.changed_fields == {"v": {"a": "x", "b": "y"}}
        assert divergence.a_total == divergence.b_total == 4

    def test_missing_field_uses_sentinel(self):
        [divergence] = [first_divergence(lines({"x": 1, "y": 2}),
                                         lines({"x": 1}))]
        assert divergence.changed_fields == {
            "y": {"a": 2, "b": "<missing>"}}

    def test_prefix_reports_length_divergence(self):
        a = lines({"i": 0}, {"i": 1}, {"i": 2})
        divergence = first_divergence(a, a[:2])
        assert divergence.kind == "length"
        assert divergence.index == 2
        assert divergence.a_line == a[2] and divergence.b_line is None

    def test_non_json_lines_still_diff(self):
        divergence = first_divergence(["plain text"], ["other text"])
        assert divergence.index == 0
        assert divergence.changed_fields == {}

    def test_to_dict_round_trips(self):
        divergence = first_divergence(lines({"a": 1}), lines({"a": 2}))
        payload = divergence.to_dict()
        json.dumps(payload)  # must stay JSON-serializable
        assert payload["kind"] == "record"
        assert payload["index"] == 0


class TestDiffFiles:
    def test_blank_lines_ignored(self):
        assert diff_lines('{"a":1}\n\n{"a":2}\n', '{"a":1}\n{"a":2}') is None

    def test_files(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text('{"v":1}\n')
        b.write_text('{"v":2}\n')
        divergence = diff_files(a, b)
        assert divergence.changed_fields == {"v": {"a": 1, "b": 2}}
        b.write_text('{"v":1}\n')
        assert diff_files(a, b) is None

    def test_missing_file_raises(self, tmp_path):
        (tmp_path / "a.jsonl").write_text("")
        with pytest.raises(ObservabilityError, match="cannot read"):
            diff_files(tmp_path / "a.jsonl", tmp_path / "nope.jsonl")


class TestFormat:
    def test_agreement(self):
        assert format_divergence(None) == "streams are identical"

    def test_rendering_names_both_streams(self):
        divergence = first_divergence(
            lines({"i": 0}, {"v": "x"}), lines({"i": 0}, {"v": "y"}))
        text = format_divergence(divergence, "healthy", "chaos")
        assert "first divergence at record 1" in text
        assert "- healthy[1]" in text and "+ chaos[1]" in text
        assert "'x' -> 'y'" in text

    def test_long_lines_clipped(self):
        divergence = first_divergence(["x" * 500], ["y" * 500])
        text = format_divergence(divergence)
        assert "..." in text
        assert all(len(line) < 200 for line in text.splitlines())
