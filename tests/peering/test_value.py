"""The traffic-value substrate against hand-traceable ground truth.

The vectorized volume pass (:func:`tussle.peering.route_volumes`) is
the load-bearing kernel of the peering layer — every dollar in every
bargain flows through it — so this suite pins it to a network small
enough to route by hand, and checks the conservation laws that must
hold at any scale.
"""

import numpy as np
import pytest

from tussle.netsim.topology import Network, Relationship
from tussle.peering import (
    PeeringDynamics,
    PeeringEconomics,
    TrafficMatrix,
    as_accounts,
    cone_traffic,
    customer_cones,
    route_volumes,
)
from tussle.routing import PathVectorRouting
from tussle.topogen import TopogenConfig, generate_internet


def _two_valley_net() -> Network:
    """1,2 under AS10; 3,4 under AS20; 10 and 20 peer under 100."""
    network = Network()
    network.add_as(100, tier=1)
    network.add_as(10, tier=2)
    network.add_as(20, tier=2)
    for stub, provider in ((1, 10), (2, 10), (3, 20), (4, 20)):
        network.add_as(stub, tier=3)
        network.add_as_relationship(stub, provider,
                                    Relationship.CUSTOMER_PROVIDER)
    network.add_as_relationship(10, 100, Relationship.CUSTOMER_PROVIDER)
    network.add_as_relationship(20, 100, Relationship.CUSTOMER_PROVIDER)
    network.add_as_relationship(10, 20, Relationship.PEER_PEER)
    return network


@pytest.fixture()
def routed():
    network = _two_valley_net()
    traffic = TrafficMatrix.from_network(network, seed=0)
    proto = PathVectorRouting(network)
    proto.converge_fast(destinations=tuple(traffic.stub_asns))
    volumes = route_volumes(proto.fast_rib, traffic)
    return network, traffic, proto, volumes


class TestRouteVolumes:
    def test_every_edge_carries_exactly_its_paths(self, routed):
        network, traffic, proto, volumes = routed
        rib = proto.fast_rib
        expected = np.zeros_like(volumes)
        for i, src in enumerate(traffic.stub_asns):
            for j, dst in enumerate(traffic.stub_asns):
                if i == j:
                    continue
                path = proto.as_path(src, dst)
                for hop, nxt in zip(path, path[1:]):
                    expected[rib.index.of(hop), rib.index.of(nxt)] += \
                        traffic.demand[i, j]
        np.testing.assert_allclose(volumes, expected, rtol=1e-12)

    def test_demand_is_conserved_into_destinations(self, routed):
        network, traffic, proto, volumes = routed
        rib = proto.fast_rib
        for j, dst in enumerate(traffic.stub_asns):
            inbound = float(volumes[:, rib.index.of(dst)].sum())
            assert inbound == pytest.approx(float(traffic.demand[:, j].sum()))

    def test_peer_edge_carries_cross_valley_demand_only(self, routed):
        network, traffic, proto, volumes = routed
        rib = proto.fast_rib
        left = [traffic.index_of(s) for s in (1, 2)]
        right = [traffic.index_of(s) for s in (3, 4)]
        expected = float(traffic.demand[np.ix_(left, right)].sum())
        assert float(volumes[rib.index.of(10), rib.index.of(20)]) \
            == pytest.approx(expected)
        # Nothing climbs to the tier-1: the peer edge short-circuits it.
        assert float(volumes[rib.index.of(10), rib.index.of(100)]) == 0.0
        assert float(volumes[rib.index.of(20), rib.index.of(100)]) == 0.0


class TestCones:
    def test_cones_partition_the_two_valleys(self, routed):
        network, traffic, _, _ = routed
        cones = customer_cones(network)
        stub_of = {s: i for i, s in enumerate(traffic.stub_asns)}
        assert [i for i, x in enumerate(cones[10]) if x] \
            == sorted(stub_of[s] for s in (1, 2))
        assert [i for i, x in enumerate(cones[20]) if x] \
            == sorted(stub_of[s] for s in (3, 4))
        assert cones[100].all()
        # A stub's cone is itself.
        assert cones[1].sum() == 1

    def test_cone_traffic_matches_the_measured_peer_edge(self, routed):
        network, traffic, proto, volumes = routed
        rib = proto.fast_rib
        cones = customer_cones(network)
        forecast = cone_traffic(traffic, cones, 10, 20)
        assert forecast.to_b == pytest.approx(
            float(volumes[rib.index.of(10), rib.index.of(20)]))
        assert forecast.to_a == pytest.approx(
            float(volumes[rib.index.of(20), rib.index.of(10)]))


class TestAccounts:
    def test_transit_money_is_zero_sum_between_ases(self, routed):
        network, traffic, proto, volumes = routed
        econ = PeeringEconomics()
        accounts = as_accounts(network, proto.fast_rib, volumes,
                               traffic, econ)
        bills = sum(a.transit_bill for a in accounts.values())
        revenue = sum(a.transit_revenue for a in accounts.values())
        assert bills == pytest.approx(revenue)
        assert bills > 0

    def test_delivered_value_covers_all_demand_when_reachable(self, routed):
        network, traffic, proto, volumes = routed
        econ = PeeringEconomics()
        accounts = as_accounts(network, proto.fast_rib, volumes,
                               traffic, econ)
        delivered = sum(a.delivered_value for a in accounts.values())
        assert delivered == pytest.approx(econ.delivery_value
                                          * traffic.total)

    def test_transfers_enter_the_accounts_signed(self, routed):
        network, traffic, proto, volumes = routed
        econ = PeeringEconomics()
        accounts = as_accounts(network, proto.fast_rib, volumes, traffic,
                               econ, transfers={10: 5.0, 20: -5.0})
        assert accounts[10].transfers == 5.0
        assert accounts[20].transfers == -5.0


class TestScaleParityWithDynamics:
    @pytest.mark.slow
    def test_generated_internet_volume_conservation(self):
        """Conservation holds on a generated 300-AS internet too."""
        network = generate_internet(
            TopogenConfig(n_ases=300, router_detail="none"), seed=4)
        dyn = PeeringDynamics(network, seed=4)
        dyn.reconverge()
        rib = dyn.routing.fast_rib
        for j, dst in enumerate(dyn.traffic.stub_asns[:10]):
            inbound = float(dyn.volumes[:, rib.index.of(dst)].sum())
            assert inbound == pytest.approx(
                float(dyn.traffic.demand[:, j].sum()))
