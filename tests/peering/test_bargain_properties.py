"""Property-based hardening of the bargaining core (ISSUE 10 satellite).

The Nash bargaining solution has textbook axioms; this suite holds
:func:`tussle.peering.nash_bargain` and :func:`tussle.peering.evaluate_pair`
to them with Hypothesis rather than hand-picked examples:

* the solution is Pareto-optimal (exhausts the utility frontier);
* symmetric under swapping the players;
* invariant under positive affine rescaling of either utility scale;
* never hands a party less than its disagreement payoff;
* and degenerates correctly (zero surplus -> no deal, symmetric
  problems -> equal split).
"""

import math

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from tussle.errors import PeeringError
from tussle.peering import (
    AgreementKind,
    PairTraffic,
    PeeringEconomics,
    evaluate_pair,
    nash_bargain,
)

totals = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
payoffs = st.floats(min_value=-1e5, max_value=1e5,
                    allow_nan=False, allow_infinity=False)
weights = st.floats(min_value=0.01, max_value=100.0,
                    allow_nan=False, allow_infinity=False)
scales = st.floats(min_value=0.1, max_value=10.0,
                   allow_nan=False, allow_infinity=False)
shifts = st.floats(min_value=-1e4, max_value=1e4,
                   allow_nan=False, allow_infinity=False)
volumes = st.floats(min_value=0.0, max_value=1e6,
                    allow_nan=False, allow_infinity=False)


def _scale(total, d_a, d_b, w_a, w_b):
    """A magnitude yardstick for float tolerances in one problem."""
    return max(abs(total), abs(d_a), abs(d_b), 1.0) * max(w_a, w_b, 1.0)


class TestNashBargain:
    @given(totals, payoffs, payoffs, weights, weights)
    def test_never_below_disagreement(self, total, d_a, d_b, w_a, w_b):
        outcome = nash_bargain(total, (d_a, d_b), (w_a, w_b))
        tol = 1e-9 * _scale(total, d_a, d_b, w_a, w_b)
        assert outcome.utilities[0] >= d_a - tol
        assert outcome.utilities[1] >= d_b - tol

    @given(totals, payoffs, payoffs, weights, weights)
    def test_pareto_optimal_when_agreed(self, total, d_a, d_b, w_a, w_b):
        """An agreement allocates the whole frontier: w . u == total."""
        outcome = nash_bargain(total, (d_a, d_b), (w_a, w_b))
        if not outcome.agreed:
            return
        allocated = w_a * outcome.utilities[0] + w_b * outcome.utilities[1]
        assert math.isclose(allocated, total, rel_tol=1e-9,
                            abs_tol=1e-9 * _scale(total, d_a, d_b, w_a, w_b))

    @given(totals, payoffs, payoffs, weights, weights)
    def test_symmetric_under_player_swap(self, total, d_a, d_b, w_a, w_b):
        one = nash_bargain(total, (d_a, d_b), (w_a, w_b))
        two = nash_bargain(total, (d_b, d_a), (w_b, w_a))
        assert one.agreed == two.agreed
        assert one.utilities == (two.utilities[1], two.utilities[0])

    @given(totals, payoffs, payoffs, weights, weights,
           scales, shifts, scales, shifts)
    def test_invariant_under_affine_rescaling(self, total, d_a, d_b,
                                              w_a, w_b, alpha_a, beta_a,
                                              alpha_b, beta_b):
        """Rescaling a player's utility scale rescales the solution.

        Measuring player i's utility in new units ``v = alpha*u + beta``
        turns the frontier ``w . u = total`` into ``(w/alpha) . v =
        total + sum(w*beta/alpha)`` and moves the disagreement point to
        ``alpha*d + beta``; the Nash solution must map through the same
        transformation (the classic invariance axiom).
        """
        base = nash_bargain(total, (d_a, d_b), (w_a, w_b))
        # Keep clear of the agree/no-agree boundary, where a float-level
        # perturbation of the transformed inputs can flip the branch.
        assume(abs(base.surplus) > 1e-6 * _scale(total, d_a, d_b, w_a, w_b))
        mapped = nash_bargain(
            total + w_a * beta_a / alpha_a + w_b * beta_b / alpha_b,
            (alpha_a * d_a + beta_a, alpha_b * d_b + beta_b),
            (w_a / alpha_a, w_b / alpha_b),
        )
        assert mapped.agreed == base.agreed
        expect_a = alpha_a * base.utilities[0] + beta_a
        expect_b = alpha_b * base.utilities[1] + beta_b
        tol = 1e-6 * _scale(total, d_a, d_b, w_a, w_b) \
            * max(alpha_a, alpha_b, abs(beta_a), abs(beta_b), 1.0)
        assert math.isclose(mapped.utilities[0], expect_a, abs_tol=tol)
        assert math.isclose(mapped.utilities[1], expect_b, abs_tol=tol)

    @given(payoffs, payoffs, weights, weights)
    def test_zero_surplus_means_no_deal(self, d_a, d_b, w_a, w_b):
        total = w_a * d_a + w_b * d_b
        outcome = nash_bargain(total, (d_a, d_b), (w_a, w_b))
        assert not outcome.agreed
        assert outcome.utilities == (d_a, d_b)
        assert outcome.gains == (0.0, 0.0)

    @given(totals, payoffs)
    def test_symmetric_problem_splits_equally(self, total, d):
        outcome = nash_bargain(total, (d, d))
        assert outcome.utilities[0] == outcome.utilities[1]
        if outcome.agreed:
            assert outcome.utilities[0] > d

    def test_rejects_bad_inputs(self):
        with pytest.raises(PeeringError):
            nash_bargain(1.0, (0.0, 0.0), (0.0, 1.0))
        with pytest.raises(PeeringError):
            nash_bargain(math.inf, (0.0, 0.0))
        with pytest.raises(PeeringError):
            nash_bargain(1.0, (math.nan, 0.0))


class TestEvaluatePair:
    @given(volumes, volumes)
    def test_agreement_iff_positive_surplus(self, to_b, to_a):
        econ = PeeringEconomics()
        traffic = PairTraffic(a=1, b=2, to_b=to_b, to_a=to_a)
        agreement = evaluate_pair(traffic, econ)
        surplus = econ.transit_price * (to_b + to_a) - 2 * econ.peering_cost
        assert (agreement is not None) == (surplus > 0)

    @given(volumes, volumes)
    def test_surplus_split_equally_between_parties(self, to_b, to_a):
        """The Nash split: both sides gain exactly half the surplus."""
        econ = PeeringEconomics()
        agreement = evaluate_pair(PairTraffic(a=1, b=2, to_b=to_b,
                                              to_a=to_a), econ)
        if agreement is None:
            return
        gain_a = agreement.net_gain(1, econ)
        gain_b = agreement.net_gain(2, econ)
        if agreement.kind is AgreementKind.PAID_PEERING:
            assert math.isclose(gain_a, gain_b, rel_tol=1e-9, abs_tol=1e-6)
            assert math.isclose(gain_a, agreement.surplus / 2,
                                rel_tol=1e-9, abs_tol=1e-6)
        # Settlement-free waives the equalising transfer, but the joint
        # gain is the surplus either way.
        assert math.isclose(gain_a + gain_b, agreement.surplus,
                            rel_tol=1e-9, abs_tol=1e-6)

    @given(volumes, volumes)
    def test_heavy_sender_pays(self, to_b, to_a):
        econ = PeeringEconomics()
        agreement = evaluate_pair(PairTraffic(a=1, b=2, to_b=to_b,
                                              to_a=to_a), econ)
        if agreement is None or agreement.kind is not AgreementKind.PAID_PEERING:
            return
        if agreement.savings_a > agreement.savings_b:
            assert agreement.transfer > 0  # a pays b
        else:
            assert agreement.transfer < 0  # b pays a

    @given(volumes, volumes)
    def test_ratio_cap_draws_the_settlement_free_line(self, to_b, to_a):
        econ = PeeringEconomics()
        agreement = evaluate_pair(PairTraffic(a=1, b=2, to_b=to_b,
                                              to_a=to_a), econ)
        if agreement is None:
            return
        hi = max(agreement.savings_a, agreement.savings_b)
        lo = min(agreement.savings_a, agreement.savings_b)
        balanced = hi <= econ.ratio_cap * lo
        assert (agreement.kind is AgreementKind.SETTLEMENT_FREE) == balanced
        if balanced:
            assert agreement.transfer == 0.0

    @given(volumes)
    def test_tier1_side_saves_nothing_and_collects(self, to_b):
        """A side with no providers gains nothing from peering itself,
        so any agreement that still forms has the other side paying."""
        econ = PeeringEconomics()
        agreement = evaluate_pair(PairTraffic(a=1, b=2, to_b=to_b, to_a=1e5),
                                  econ, a_pays_transit=False)
        if agreement is None:
            return
        assert agreement.savings_a == 0.0
        assert agreement.kind is AgreementKind.PAID_PEERING
        assert agreement.transfer < 0  # b pays a for the access

    def test_negative_volume_rejected(self):
        with pytest.raises(PeeringError):
            evaluate_pair(PairTraffic(a=1, b=2, to_b=-1.0, to_a=0.0),
                          PeeringEconomics())

    def test_economics_knobs_validated(self):
        with pytest.raises(PeeringError):
            PeeringEconomics(transit_price=0.0)
        with pytest.raises(PeeringError):
            PeeringEconomics(peering_cost=-1.0)
        with pytest.raises(PeeringError):
            PeeringEconomics(ratio_cap=0.5)
        with pytest.raises(PeeringError):
            PeeringEconomics(discount=1.0)
