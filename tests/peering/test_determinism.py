"""Determinism and stream-coupling contracts of the peering loop.

The coupled bargaining/routing fixed point is only a usable experiment
substrate if it is a *pure function* of ``(network, seed, economics)``.
This suite asserts the contract at full strength:

* P01 and P02 are byte-identical across two independent runs at the
  same seed (canonical JSON, the same bytes the sweep cache hashes);
* the fixed point does not depend on the order ASes were inserted into
  the :class:`~tussle.netsim.topology.Network` (the sorted-total-order
  contract);
* the traffic-matrix and bargaining RNG streams are distinct, labelled
  substreams of the master seed, so drawing more from one can never
  shift the other; and
* the new subsystem is flow-lint clean for seed provenance (F201) and
  stream sharing (F202) with zero suppressions.
"""

from pathlib import Path

import pytest

from tussle.experiments import run_p01, run_p02
from tussle.lint import run_flow
from tussle.netsim.topology import Network, Relationship
from tussle.peering import PeeringDynamics
from tussle.resil.workerchaos import digest63
from tussle.scale.tmatrix import stub_content, stub_populations

SRC = Path(__file__).resolve().parents[2] / "src" / "tussle"


def _mesh_network(order: str) -> Network:
    """The same little internet, assembled in two different orders."""
    ases = [(100, 1, {}), (10, 2, {"ixps": ["ix-west"]}),
            (20, 2, {"ixps": ["ix-west"]}),
            (1, 3, {}), (2, 3, {}), (3, 3, {}), (4, 3, {})]
    rels = [(10, 100, Relationship.CUSTOMER_PROVIDER),
            (20, 100, Relationship.CUSTOMER_PROVIDER),
            (1, 10, Relationship.CUSTOMER_PROVIDER),
            (2, 10, Relationship.CUSTOMER_PROVIDER),
            (3, 20, Relationship.CUSTOMER_PROVIDER),
            (4, 20, Relationship.CUSTOMER_PROVIDER)]
    if order == "reversed":
        ases = list(reversed(ases))
        rels = list(reversed(rels))
    network = Network()
    for asn, tier, metadata in ases:
        network.add_as(asn, tier=tier, **metadata)
    for a, b, rel in rels:
        network.add_as_relationship(a, b, rel)
    return network


class TestDoubleRunByteIdentity:
    def test_p01_is_byte_identical_across_runs(self):
        first = run_p01(seed=3)
        second = run_p01(seed=3)
        assert first.to_json() == second.to_json()

    @pytest.mark.slow
    def test_p02_is_byte_identical_across_runs(self):
        """The ISSUE 10 acceptance bar: the full 10^3-AS war, twice."""
        first = run_p02(seed=0)
        second = run_p02(seed=0)
        assert first.to_json() == second.to_json()
        assert all(c["holds"] for c in first.to_dict()["checks"])

    def test_fixed_point_result_is_byte_identical(self):
        import json

        results = []
        for _ in range(2):
            dyn = PeeringDynamics(_mesh_network("forward"), seed=5)
            results.append(json.dumps(dyn.run().to_dict(), sort_keys=True))
        assert results[0] == results[1]


class TestIterationOrderIndependence:
    def test_fixed_point_ignores_as_insertion_order(self):
        """Sorted total order: the graph, not its build history, decides."""
        forward = PeeringDynamics(_mesh_network("forward"), seed=9)
        backward = PeeringDynamics(_mesh_network("reversed"), seed=9)
        result_f = forward.run()
        result_b = backward.run()
        assert result_f.to_dict() == result_b.to_dict()
        accounts_f = forward.accounts()
        accounts_b = backward.accounts()
        assert sorted(accounts_f) == sorted(accounts_b)
        for asn in accounts_f:
            assert accounts_f[asn] == accounts_b[asn]

    def test_the_mesh_actually_bargains(self):
        """Guard against vacuity: the order test must cover a real deal."""
        dyn = PeeringDynamics(_mesh_network("forward"), seed=9)
        result = dyn.run()
        assert result.converged
        assert (10, 20) in result.agreements


class TestSubstreamIsolation:
    def test_streams_are_distinct_substreams_of_the_master_seed(self):
        seed = 13
        population_stream = digest63(seed, "tmatrix", "population")
        content_stream = digest63(seed, "tmatrix", "content")
        bargain_stream = digest63(seed, "peering", "bargain")
        assert len({population_stream, content_stream, bargain_stream}) == 3

    def test_dynamics_exposes_the_bargain_substream(self):
        dyn = PeeringDynamics(_mesh_network("forward"), seed=13)
        assert dyn.bargain_seed == digest63(13, "peering", "bargain")

    def test_traffic_attributes_are_label_isolated(self):
        """Same seed, different labels: independent assignments, and a
        change of one stream's knobs never touches the other stream."""
        population = stub_populations(64, seed=13)
        content = stub_content(64, seed=13)
        assert list(population) != list(content)
        # Re-drawing content with a different tail leaves population
        # byte-identical: the streams do not share state.
        stub_content(64, seed=13, content_tail=2.5)
        again = stub_populations(64, seed=13)
        assert population.tobytes() == again.tobytes()


class TestFlowLintClean:
    @pytest.fixture(scope="class")
    def report(self):
        return run_flow([
            SRC / "peering",
            SRC / "scale" / "tmatrix.py",
            SRC / "experiments" / "p01_paid_peering.py",
            SRC / "experiments" / "p02_depeering_war.py",
        ])

    def test_seed_provenance_and_stream_sharing_clean(self, report):
        findings = [f for f in report.active
                    if f.rule_id in ("F201", "F202")]
        formatted = "\n".join(f.format() for f in findings)
        assert not findings, f"flow findings in peering code:\n{formatted}"

    def test_zero_suppressions(self, report):
        assert not report.suppressed, \
            "the peering subsystem must need no flow-lint suppressions"
