"""Edge cases of the peering fixed-point loop (ISSUE 10 satellite).

Degenerate internets must bargain trivially, pathological bargaining
must terminate with a structured verdict instead of hanging, and a
depeered (embargoed) link must never sneak back into the valley-free
RIB — cross-checked against :func:`tussle.routing.policies.is_valley_free`.
"""

import pytest

from tussle.errors import PeeringError
from tussle.netsim.topology import Network, Relationship
from tussle.peering import (
    AgreementKind,
    PeeringAgreement,
    PeeringDynamics,
    customer_cones,
)
from tussle.routing import is_valley_free
from tussle.topogen import TopogenConfig, generate_internet


def _ixp_mesh() -> Network:
    """Two tier-2s at one IXP, two stubs each, one tier-1 above."""
    network = Network()
    network.add_as(100, tier=1)
    network.add_as(10, tier=2, ixps=["ix"])
    network.add_as(20, tier=2, ixps=["ix"])
    for stub, provider in ((1, 10), (2, 10), (3, 20), (4, 20)):
        network.add_as(stub, tier=3)
        network.add_as_relationship(stub, provider,
                                    Relationship.CUSTOMER_PROVIDER)
    network.add_as_relationship(10, 100, Relationship.CUSTOMER_PROVIDER)
    network.add_as_relationship(20, 100, Relationship.CUSTOMER_PROVIDER)
    return network


class _FlipFlopDynamics(PeeringDynamics):
    """Pathological bargaining: every live peering looks worthless at
    the table, every candidate looks irresistible — depeer/repeer
    forever.  Models a forecast/measurement disagreement that refusal
    memory normally dampens."""

    def evaluate_existing(self, pair):
        return None

    def evaluate_candidate(self, pair):
        return PeeringAgreement(
            a=pair[0], b=pair[1], kind=AgreementKind.SETTLEMENT_FREE,
            transfer=0.0, surplus=1.0, savings_a=1.0, savings_b=1.0)


class TestOscillation:
    def test_flipflop_pair_hits_the_cap_with_a_structured_verdict(self):
        dyn = _FlipFlopDynamics(_ixp_mesh(), seed=0, max_iterations=6,
                                refusal_memory=False)
        result = dyn.run()  # must return, not hang
        assert not result.converged
        assert result.oscillating
        assert result.verdict == "oscillation"
        assert result.iterations == 6
        assert len(result.history) == 6
        # The cycle is on record: the pair flips between peered and not.
        flips = [rec.peered + rec.depeered for rec in result.history]
        assert all(f > 0 for f in flips)
        # And the verdict serialises like any other result.
        assert result.to_dict()["verdict"] == "oscillation"

    def test_refusal_memory_dampens_the_same_economics(self):
        """With the stabiliser on, a dropped pair stays dropped."""
        dyn = _FlipFlopDynamics(_ixp_mesh(), seed=0, max_iterations=6,
                                refusal_memory=True)
        result = dyn.run()
        assert result.converged
        assert result.verdict == "fixed-point"


class TestDegenerateInternets:
    def test_single_as_bargains_trivially(self):
        network = Network()
        network.add_as(1, tier=3)
        dyn = PeeringDynamics(network, seed=0)
        result = dyn.run()
        assert result.converged
        assert result.iterations == 1
        assert result.agreements == {}
        assert dyn.traffic.total == 0.0

    def test_all_transit_no_stub_internet(self):
        network = Network()
        network.add_as(100, tier=1)
        network.add_as(10, tier=2, ixps=["ix"])
        network.add_as(20, tier=2, ixps=["ix"])
        network.add_as_relationship(10, 100, Relationship.CUSTOMER_PROVIDER)
        network.add_as_relationship(20, 100, Relationship.CUSTOMER_PROVIDER)
        dyn = PeeringDynamics(network, seed=0)
        result = dyn.run()
        # No demand -> no surplus -> nothing to peer over.
        assert result.converged
        assert result.agreements == {}

    def test_no_ixp_topology_has_no_candidates(self):
        network = _ixp_mesh()
        for asn in (10, 20):
            network.autonomous_system(asn).metadata.pop("ixps")
        dyn = PeeringDynamics(network, seed=0)
        assert dyn.candidate_pairs() == []
        result = dyn.run()
        assert result.converged
        assert result.iterations == 1
        assert result.agreements == {}

    def test_ixp_mesh_does_bargain(self):
        """The degenerate cases above are meaningful only because the
        same mesh *with* the IXP does strike a deal."""
        dyn = PeeringDynamics(_ixp_mesh(), seed=0)
        result = dyn.run()
        assert (10, 20) in result.agreements

    def test_tier1_clique_is_not_depeerable(self):
        network = Network()
        network.add_as(1, tier=1)
        network.add_as(2, tier=1)
        network.add_as(3, tier=3)
        network.add_as(4, tier=3)
        network.add_as_relationship(1, 2, Relationship.PEER_PEER)
        network.add_as_relationship(3, 1, Relationship.CUSTOMER_PROVIDER)
        network.add_as_relationship(4, 2, Relationship.CUSTOMER_PROVIDER)
        dyn = PeeringDynamics(network, seed=0)
        with pytest.raises(PeeringError):
            dyn.depeer(1, 2)

    def test_depeering_non_peers_is_rejected(self):
        dyn = PeeringDynamics(_ixp_mesh(), seed=0)
        with pytest.raises(PeeringError):
            dyn.depeer(1, 10)  # customer-provider, not peers


class TestDepeeredLinkStaysDown:
    @pytest.fixture(scope="class")
    def war(self):
        network = generate_internet(
            TopogenConfig(n_ases=120, router_detail="none"), seed=2)
        dyn = PeeringDynamics(network, seed=2)
        initial = dyn.run()
        rib = dyn.routing.fast_rib
        busiest, busiest_volume = None, -1.0
        for pair in sorted(initial.agreements):
            ra, rb = rib.index.of(pair[0]), rib.index.of(pair[1])
            volume = float(dyn.volumes[ra, rb] + dyn.volumes[rb, ra])
            if volume > busiest_volume:
                busiest, busiest_volume = pair, volume
        dyn.depeer(*busiest)
        dyn.run()
        return dyn, busiest

    def test_depeered_edge_never_reappears_in_the_rib(self, war):
        dyn, (a, b) = war
        routing = dyn.routing
        crossings = 0
        for src in dyn.traffic.stub_asns:
            for dst in dyn.traffic.stub_asns:
                if src == dst:
                    continue
                path = routing.as_path(src, dst)
                assert path is not None, "war must not break reachability"
                for hop, nxt in zip(path, path[1:]):
                    assert {hop, nxt} != {a, b}, \
                        f"embargoed edge {a}-{b} used by {path}"
                crossings += 1
        assert crossings == len(dyn.traffic.stub_asns) \
            * (len(dyn.traffic.stub_asns) - 1)

    def test_postwar_paths_are_valley_free(self, war):
        dyn, _ = war
        sample = dyn.traffic.stub_asns[:12]
        checked = 0
        for src in sample:
            for dst in sample:
                if src == dst:
                    continue
                path = dyn.routing.as_path(src, dst)
                assert is_valley_free(dyn.network, path), path
                checked += 1
        assert checked == len(sample) * (len(sample) - 1)

    def test_war_preserves_cone_reachability_economics(self, war):
        """The exclusive cones still exchange demand — via transit."""
        dyn, (a, b) = war
        cones = customer_cones(dyn.network)
        rib = dyn.routing.fast_rib
        assert float((rib.cls != 3).mean()) == 1.0
        assert cones[a].any() and cones[b].any()
