"""Tests for the canonical tussle-game constructors."""

import pytest

from tussle.errors import GameError
from tussle.gametheory.games import TussleClass, classify_game
from tussle.gametheory.tussle_games import (
    anonymity_game,
    congestion_dilemma,
    encryption_escalation_game,
    peering_game,
    wiretap_hide_seek,
)


class TestCongestionDilemma:
    def test_is_a_dilemma(self):
        game = congestion_dilemma()
        assert game.pure_nash_equilibria() == [(1, 1)]
        assert game.dominant_strategy(0) == 1

    def test_mutual_compliance_is_better_for_both(self):
        game = congestion_dilemma()
        assert game.payoff(0, (0, 0)) > game.payoff(0, (1, 1))

    def test_parameter_validation(self):
        with pytest.raises(GameError):
            congestion_dilemma(capacity_value=1.0, cheat_gain=0.0)


class TestEncryptionEscalation:
    def test_competition_range_validated(self):
        with pytest.raises(GameError):
            encryption_escalation_game(1.5)

    def test_monopoly_has_no_pure_equilibrium(self):
        game = encryption_escalation_game(0.0)
        assert game.pure_nash_equilibria() == []

    def test_competition_stabilizes_transparency(self):
        game = encryption_escalation_game(1.0)
        assert (0, 0) in game.pure_nash_equilibria()

    def test_exploit_profitable_only_under_weak_competition(self):
        weak = encryption_escalation_game(0.0)
        strong = encryption_escalation_game(1.0)
        # ISP payoff of exploit vs plaintext user.
        assert weak.payoff(1, (0, 1)) > weak.payoff(1, (0, 0))
        assert strong.payoff(1, (0, 1)) < strong.payoff(1, (0, 0))

    def test_encryption_defeats_exploitation_for_user(self):
        game = encryption_escalation_game(0.0)
        assert game.payoff(0, (1, 1)) > game.payoff(0, (0, 1))

    def test_blocking_hurts_encrypted_user_most(self):
        game = encryption_escalation_game(0.0)
        assert game.payoff(0, (1, 2)) == 0.0


class TestPeering:
    def test_coordination_structure(self):
        game = peering_game()
        equilibria = game.pure_nash_equilibria()
        assert (0, 0) in equilibria  # both peer
        assert (1, 1) in equilibria  # both refuse
        assert classify_game(game) is TussleClass.COORDINATION

    def test_unilateral_peering_wastes_setup_cost(self):
        game = peering_game(setup_cost=2.0)
        assert game.payoff(0, (0, 1)) == -2.0

    def test_must_be_jointly_profitable(self):
        with pytest.raises(GameError):
            peering_game(interconnection_value=1.0, setup_cost=2.0)


class TestAnonymity:
    def test_receiver_prefers_refusing_anonymous(self):
        game = anonymity_game()
        # Against an anonymous sender, refusal beats accepting abuse risk.
        assert game.payoff(1, (1, 1)) > game.payoff(1, (1, 0))

    def test_identified_sender_always_served(self):
        game = anonymity_game()
        assert game.payoff(0, (0, 0)) == game.payoff(0, (0, 1))

    def test_identified_accept_is_equilibrium(self):
        """The paper's predicted compromise: identify, and be served."""
        game = anonymity_game()
        assert (0, 1) in game.pure_nash_equilibria()


class TestWiretapHideSeek:
    def test_zero_sum(self):
        assert wiretap_hide_seek(3).is_zero_sum()

    def test_channel_count_validated(self):
        with pytest.raises(GameError):
            wiretap_hide_seek(1)

    def test_value_scales_with_channels(self):
        from tussle.gametheory.zerosum import solve_zero_sum
        v3 = solve_zero_sum(wiretap_hide_seek(3)).value
        v5 = solve_zero_sum(wiretap_hide_seek(5)).value
        assert v3 == pytest.approx(-1 / 3, abs=1e-6)
        assert v5 == pytest.approx(-1 / 5, abs=1e-6)
        assert v5 > v3  # more channels favour the hider


class TestSteganographyEscalation:
    def test_steg_row_added(self):
        game = encryption_escalation_game(0.0, steganography=True)
        assert game.n_actions == (3, 3)
        assert game.action_labels[0][2] == "steganography"

    def test_steg_payoff_uniform_across_isp_postures(self):
        game = encryption_escalation_game(0.0, steganography=True)
        payoffs = [game.payoff(0, (2, col)) for col in range(3)]
        assert payoffs[0] == payoffs[1] == payoffs[2]

    def test_steg_raises_user_maximin(self):
        import numpy as np
        from tussle.gametheory.zerosum import minimax_value

        without = minimax_value(
            np.asarray(encryption_escalation_game(0.0).payoffs[0]))
        with_steg = minimax_value(
            np.asarray(encryption_escalation_game(
                0.0, steganography=True).payoffs[0]))
        assert with_steg > without

    def test_steg_costs_more_than_encryption(self):
        game = encryption_escalation_game(0.0, steganography=True)
        # Against a carrying ISP: plaintext > encrypt > steg.
        assert game.payoff(0, (0, 0)) > game.payoff(0, (1, 0)) \
            > game.payoff(0, (2, 0))
