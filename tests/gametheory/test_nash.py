"""Tests for Nash support enumeration and best response."""

import numpy as np
import pytest

from tussle.errors import GameError
from tussle.gametheory.games import NormalFormGame
from tussle.gametheory.nash import best_response, support_enumeration
from tussle.gametheory.repeated import prisoners_dilemma


def battle_of_sexes():
    a = np.array([[3.0, 0.0], [0.0, 2.0]])
    b = np.array([[2.0, 0.0], [0.0, 3.0]])
    return NormalFormGame([a, b])


def matching_pennies():
    a = np.array([[1.0, -1.0], [-1.0, 1.0]])
    return NormalFormGame([a, -a])


class TestBestResponse:
    def test_pure_best_response(self):
        game = prisoners_dilemma()
        cooperate = np.array([1.0, 0.0])
        assert best_response(game, 0, cooperate) == 1  # defect

    def test_best_response_to_mixed(self):
        game = battle_of_sexes()
        mostly_second = np.array([0.1, 0.9])
        assert best_response(game, 0, mostly_second) == 1

    def test_column_player_perspective(self):
        game = battle_of_sexes()
        row_plays_first = np.array([1.0, 0.0])
        assert best_response(game, 1, row_plays_first) == 0

    def test_two_player_only(self):
        payoffs = [np.zeros((2, 2, 2)) for _ in range(3)]
        with pytest.raises(GameError):
            best_response(NormalFormGame(payoffs), 0, np.array([1.0, 0.0]))


class TestSupportEnumeration:
    def test_pd_single_equilibrium(self):
        equilibria = support_enumeration(prisoners_dilemma())
        assert len(equilibria) == 1
        assert equilibria[0].pure_profile() == (1, 1)
        assert equilibria[0].payoffs == (pytest.approx(1.0), pytest.approx(1.0))

    def test_battle_of_sexes_three_equilibria(self):
        equilibria = support_enumeration(battle_of_sexes())
        assert len(equilibria) == 3
        pure = {e.pure_profile() for e in equilibria if e.is_pure()}
        assert pure == {(0, 0), (1, 1)}
        mixed = [e for e in equilibria if not e.is_pure()]
        assert len(mixed) == 1
        x, y = mixed[0].strategies
        assert x == pytest.approx([0.6, 0.4], abs=1e-6)
        assert y == pytest.approx([0.4, 0.6], abs=1e-6)

    def test_matching_pennies_unique_mixed(self):
        equilibria = support_enumeration(matching_pennies())
        assert len(equilibria) == 1
        x, y = equilibria[0].strategies
        assert x == pytest.approx([0.5, 0.5], abs=1e-6)
        assert y == pytest.approx([0.5, 0.5], abs=1e-6)

    def test_equilibria_verified_no_profitable_deviation(self):
        for game in (battle_of_sexes(), prisoners_dilemma()):
            for equilibrium in support_enumeration(game):
                x, y = equilibrium.strategies
                a, b = (np.asarray(p) for p in game.payoffs)
                assert np.max(a @ y) <= float(x @ a @ y) + 1e-6
                assert np.max(x @ b) <= float(x @ b @ y) + 1e-6

    def test_max_support_bounds_search(self):
        equilibria = support_enumeration(battle_of_sexes(), max_support=1)
        assert all(e.is_pure() for e in equilibria)

    def test_two_player_only(self):
        payoffs = [np.zeros((2, 2, 2)) for _ in range(3)]
        with pytest.raises(GameError):
            support_enumeration(NormalFormGame(payoffs))

    def test_asymmetric_action_counts(self):
        a = np.array([[2.0, 0.0, 1.0], [0.0, 2.0, 1.0]])
        b = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        equilibria = support_enumeration(NormalFormGame([a, b]))
        assert equilibria  # at least the pure ones
