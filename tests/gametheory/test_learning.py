"""Tests for learning dynamics."""

import numpy as np
import pytest

from tussle.errors import GameError
from tussle.gametheory.games import NormalFormGame
from tussle.gametheory.learning import (
    best_response_dynamics,
    fictitious_play,
    replicator_dynamics,
)
from tussle.gametheory.repeated import prisoners_dilemma


def matching_pennies():
    a = np.array([[1.0, -1.0], [-1.0, 1.0]])
    return NormalFormGame([a, -a])


def coordination_game():
    a = np.array([[2.0, 0.0], [0.0, 1.0]])
    return NormalFormGame([a, a.copy()])


class TestFictitiousPlay:
    def test_converges_to_mixed_equilibrium_in_pennies(self):
        result = fictitious_play(matching_pennies(), iterations=5000)
        x, y = result.strategies
        assert x == pytest.approx([0.5, 0.5], abs=0.05)
        assert y == pytest.approx([0.5, 0.5], abs=0.05)

    def test_converges_to_defect_in_pd(self):
        result = fictitious_play(prisoners_dilemma(), iterations=2000)
        x, y = result.strategies
        assert x[1] > 0.95
        assert y[1] > 0.95

    def test_trajectory_sampled(self):
        result = fictitious_play(matching_pennies(), iterations=500,
                                 sample_every=100)
        assert len(result.trajectory) >= 4

    def test_two_player_only(self):
        payoffs = [np.zeros((2, 2, 2)) for _ in range(3)]
        with pytest.raises(GameError):
            fictitious_play(NormalFormGame(payoffs))


class TestReplicator:
    def test_selects_payoff_dominant_equilibrium_from_uniform(self):
        result = replicator_dynamics(coordination_game(), iterations=3000)
        x, y = result.strategies
        assert x[0] > 0.9
        assert y[0] > 0.9

    def test_defect_takes_over_in_pd(self):
        result = replicator_dynamics(prisoners_dilemma(), iterations=5000,
                                     step=0.2)
        x, y = result.strategies
        assert x[1] > 0.9
        assert y[1] > 0.9

    def test_strategies_remain_distributions(self):
        result = replicator_dynamics(matching_pennies(), iterations=500)
        for strategy in result.strategies:
            assert strategy.sum() == pytest.approx(1.0)
            assert np.all(strategy >= 0)

    def test_custom_initial_condition(self):
        initial = (np.array([0.9, 0.1]), np.array([0.9, 0.1]))
        result = replicator_dynamics(coordination_game(), initial=initial,
                                     iterations=1000)
        assert result.strategies[0][0] > 0.95


class TestBestResponseDynamics:
    def test_finds_pure_equilibrium_in_pd(self):
        result = best_response_dynamics(prisoners_dilemma())
        assert result.converged
        assert np.argmax(result.strategies[0]) == 1
        assert np.argmax(result.strategies[1]) == 1

    def test_settles_in_coordination(self):
        result = best_response_dynamics(coordination_game(), initial=(0, 0))
        assert result.converged

    def test_cycles_in_matching_pennies(self):
        result = best_response_dynamics(matching_pennies())
        assert not result.converged

    def test_initial_profile_validated(self):
        with pytest.raises(GameError):
            best_response_dynamics(prisoners_dilemma(), initial=(5, 0))

    def test_cycle_detected_reports(self):
        result = best_response_dynamics(matching_pennies(), iterations=50)
        assert result.iterations <= 50
