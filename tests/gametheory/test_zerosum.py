"""Tests for the zero-sum LP solver."""

import numpy as np
import pytest

from tussle.errors import GameError
from tussle.gametheory.games import NormalFormGame
from tussle.gametheory.zerosum import minimax_value, solve_zero_sum
from tussle.gametheory.tussle_games import wiretap_hide_seek
from tussle.gametheory.repeated import prisoners_dilemma


def matching_pennies():
    a = np.array([[1.0, -1.0], [-1.0, 1.0]])
    return NormalFormGame([a, -a])


class TestSolver:
    def test_matching_pennies_value_zero(self):
        solution = solve_zero_sum(matching_pennies())
        assert solution.value == pytest.approx(0.0, abs=1e-6)
        assert solution.row_strategy == pytest.approx([0.5, 0.5], abs=1e-6)
        assert solution.col_strategy == pytest.approx([0.5, 0.5], abs=1e-6)

    def test_dominant_row_game(self):
        a = np.array([[3.0, 2.0], [1.0, 0.0]])
        game = NormalFormGame([a, -a])
        solution = solve_zero_sum(game)
        assert solution.value == pytest.approx(2.0, abs=1e-6)
        assert solution.row_strategy[0] == pytest.approx(1.0, abs=1e-6)

    def test_hide_and_seek_uniform(self):
        solution = solve_zero_sum(wiretap_hide_seek(4))
        assert solution.value == pytest.approx(-0.25, abs=1e-6)
        assert solution.row_strategy == pytest.approx([0.25] * 4, abs=1e-5)
        assert solution.col_strategy == pytest.approx([0.25] * 4, abs=1e-5)

    def test_support_helper(self):
        solution = solve_zero_sum(matching_pennies())
        assert solution.support(0) == (0, 1)
        assert solution.support(1) == (0, 1)

    def test_non_square_game(self):
        a = np.array([[1.0, -1.0, 0.5], [-1.0, 1.0, 0.5]])
        solution = solve_zero_sum(NormalFormGame([a, -a]))
        # Column player prefers column 0/1 mix; value bounded by +-0.5.
        assert -0.5 <= solution.value <= 0.5

    def test_rejects_general_sum(self):
        with pytest.raises(GameError):
            solve_zero_sum(prisoners_dilemma())

    def test_rejects_three_players(self):
        payoffs = [np.zeros((2, 2, 2)) for _ in range(3)]
        with pytest.raises(GameError):
            solve_zero_sum(NormalFormGame(payoffs))

    def test_value_guarantee_against_any_column(self):
        """The row strategy must guarantee at least the value."""
        game = wiretap_hide_seek(3)
        solution = solve_zero_sum(game)
        matrix = np.asarray(game.payoffs[0])
        guarantees = solution.row_strategy @ matrix
        assert np.all(guarantees >= solution.value - 1e-6)


class TestMinimaxValue:
    def test_saddle_point_game(self):
        matrix = np.array([[4.0, 2.0], [1.0, 3.0]])
        # Mixed value of this game: (4*3 - 2*1) / (4+3-2-1) = 10/4 = 2.5
        assert minimax_value(matrix) == pytest.approx(2.5, abs=1e-6)

    def test_requires_matrix(self):
        with pytest.raises(GameError):
            minimax_value(np.array([1.0, 2.0]))

    def test_shift_invariance_of_strategy(self):
        matrix = np.array([[1.0, -1.0], [-1.0, 1.0]])
        assert minimax_value(matrix + 10.0) == pytest.approx(
            minimax_value(matrix) + 10.0, abs=1e-6)
