"""Tests for repeated games, strategies and tournaments."""

import pytest

from tussle.errors import GameError
from tussle.gametheory.repeated import (
    COOPERATE,
    DEFECT,
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    Pavlov,
    RandomStrategy,
    TitForTat,
    cooperation_sustainable,
    play_match,
    prisoners_dilemma,
    round_robin,
)


class TestStageGame:
    def test_pd_parameter_validation(self):
        with pytest.raises(GameError):
            prisoners_dilemma(t=1.0, r=3.0, p=1.0, s=0.0)

    def test_default_pd_payoffs(self):
        game = prisoners_dilemma()
        assert game.payoff(0, (COOPERATE, COOPERATE)) == 3.0
        assert game.payoff(0, (DEFECT, COOPERATE)) == 5.0


class TestStrategies:
    def test_tit_for_tat_mirrors(self):
        tft = TitForTat()
        assert tft.first_move() == COOPERATE
        assert tft.next_move([COOPERATE], [DEFECT]) == DEFECT
        assert tft.next_move([COOPERATE, DEFECT], [DEFECT, COOPERATE]) == COOPERATE

    def test_grim_never_forgives(self):
        grim = GrimTrigger()
        assert grim.next_move([0, 0, 0], [0, 1, 0]) == DEFECT

    def test_pavlov_win_stay_lose_shift(self):
        pavlov = Pavlov()
        assert pavlov.next_move([COOPERATE], [COOPERATE]) == COOPERATE
        assert pavlov.next_move([COOPERATE], [DEFECT]) == DEFECT

    def test_random_strategy_seeded(self):
        a_strategy = RandomStrategy(0.5, seed=3)
        a = [a_strategy.first_move() for _ in range(10)]
        b_strategy = RandomStrategy(0.5, seed=3)
        b = [b_strategy.first_move() for _ in range(10)]
        assert a == b

    def test_random_probability_validated(self):
        with pytest.raises(GameError):
            RandomStrategy(1.5)


class TestMatches:
    def test_mutual_cooperation_score(self):
        result = play_match(AlwaysCooperate(), AlwaysCooperate(), rounds=10)
        assert result.score_a == 30.0
        assert result.cooperation_rate == 1.0

    def test_defector_exploits_cooperator(self):
        result = play_match(AlwaysDefect(), AlwaysCooperate(), rounds=10)
        assert result.score_a == 50.0
        assert result.score_b == 0.0

    def test_tft_holds_its_own_against_defector(self):
        result = play_match(TitForTat(), AlwaysDefect(), rounds=100)
        # TFT loses only the first round.
        assert result.score_b - result.score_a <= 5.0

    def test_tft_cooperates_with_itself(self):
        result = play_match(TitForTat(), TitForTat(), rounds=50)
        assert result.cooperation_rate == 1.0

    def test_grim_vs_pavlov_stays_cooperative(self):
        result = play_match(GrimTrigger(), Pavlov(), rounds=50)
        assert result.cooperation_rate == 1.0

    def test_match_requires_2x2_game(self):
        from tussle.gametheory.tussle_games import wiretap_hide_seek
        with pytest.raises(GameError):
            play_match(TitForTat(), TitForTat(), game=wiretap_hide_seek(3))


class TestTournament:
    def test_round_robin_scores_all_strategies(self):
        strategies = [TitForTat(), AlwaysDefect(), AlwaysCooperate(), Pavlov()]
        scores = round_robin(strategies, rounds=100)
        assert set(scores) == {"tit-for-tat", "always-defect",
                               "always-cooperate", "pavlov"}

    def test_nice_reciprocators_beat_always_defect_in_mixed_field(self):
        """The Axelrod result: among reciprocators, pure defection loses.

        (With an exploitable AlwaysCooperate in the field a lone defector
        can still win a round robin — so the field here is reciprocators.)
        """
        strategies = [TitForTat(), GrimTrigger(), Pavlov(), AlwaysDefect()]
        scores = round_robin(strategies, rounds=200)
        assert scores["tit-for-tat"] > scores["always-defect"]


class TestFolkTheorem:
    def test_cooperation_sustainable_with_patient_players(self):
        assert cooperation_sustainable(discount=0.9)

    def test_cooperation_unravels_with_impatient_players(self):
        assert not cooperation_sustainable(discount=0.1)

    def test_threshold_location(self):
        """T-R=2, R-P=2 => critical discount = 0.5."""
        assert cooperation_sustainable(discount=0.5)
        assert not cooperation_sustainable(discount=0.49)

    def test_discount_validated(self):
        with pytest.raises(GameError):
            cooperation_sustainable(discount=1.0)
