"""Tests for bounded-rationality agents."""

import random

import numpy as np
import pytest

from tussle.errors import GameError
from tussle.gametheory.bounded import (
    BoundedPlaySession,
    Imitator,
    MyopicBestResponder,
    Satisficer,
)
from tussle.gametheory.repeated import prisoners_dilemma


class TestMyopic:
    def test_tries_every_action_first(self):
        agent = MyopicBestResponder(3, exploration=0.0)
        rng = random.Random(0)
        first_choices = []
        for action in range(3):
            choice = agent.choose(rng)
            first_choices.append(choice)
            agent.observe(choice, payoff=float(choice))
        assert sorted(first_choices) == [0, 1, 2]

    def test_exploits_best_average(self):
        agent = MyopicBestResponder(2, exploration=0.0)
        rng = random.Random(0)
        agent.observe(0, 1.0)
        agent.observe(1, 5.0)
        assert agent.choose(rng) == 1

    def test_needs_actions(self):
        with pytest.raises(GameError):
            MyopicBestResponder(0)


class TestSatisficer:
    def test_stays_while_satisfied(self):
        agent = Satisficer(3, aspiration=1.0)
        rng = random.Random(0)
        first = agent.choose(rng)
        agent.observe(first, payoff=5.0)
        assert agent.choose(rng) == first

    def test_searches_when_dissatisfied(self):
        agent = Satisficer(10, aspiration=10.0, adaptation=0.0)
        rng = random.Random(1)
        first = agent.choose(rng)
        agent.observe(first, payoff=0.0)
        choices = {agent.choose(rng) for _ in range(20)}
        assert len(choices) > 1  # it moved

    def test_aspiration_adapts_toward_payoffs(self):
        agent = Satisficer(2, aspiration=0.0, adaptation=0.5)
        agent.observe(0, payoff=4.0)
        assert agent.aspiration == pytest.approx(2.0)


class TestImitator:
    def test_copies_best_seen(self):
        agent = Imitator(3)
        agent.observe_peer(2, payoff=9.0)
        agent.observe_peer(1, payoff=3.0)
        assert agent.choose(random.Random(0)) == 2


class TestSession:
    def test_two_player_only(self):
        import numpy as np
        from tussle.gametheory.games import NormalFormGame
        payoffs = [np.zeros((2, 2, 2)) for _ in range(3)]
        with pytest.raises(GameError):
            BoundedPlaySession(NormalFormGame(payoffs),
                               MyopicBestResponder(2), MyopicBestResponder(2))

    def test_myopic_agents_find_defection_in_pd(self):
        """Bounded learners land on the same equilibrium as theory."""
        session = BoundedPlaySession(
            prisoners_dilemma(),
            MyopicBestResponder(2, exploration=0.1),
            MyopicBestResponder(2, exploration=0.1),
            noise=0.3,
            seed=4,
        )
        session.run(400)
        row_freq, col_freq = session.empirical_distribution(tail=100)
        assert row_freq[1] > 0.7
        assert col_freq[1] > 0.7

    def test_satisficers_can_sustain_cooperation(self):
        """Satisficing (not optimizing) can settle on the Pareto outcome —
        the bounded-rationality point: the tussle need not reach Nash."""
        session = BoundedPlaySession(
            prisoners_dilemma(),
            Satisficer(2, aspiration=2.5, adaptation=0.0),
            Satisficer(2, aspiration=2.5, adaptation=0.0),
            noise=0.0,
            seed=0,
        )
        session.run(100)
        row_freq, _ = session.empirical_distribution(tail=50)
        assert row_freq[0] > 0.9  # cooperating

    def test_history_recorded(self):
        session = BoundedPlaySession(prisoners_dilemma(),
                                     MyopicBestResponder(2),
                                     MyopicBestResponder(2), seed=1)
        session.run(10)
        assert len(session.action_history) == 10

    def test_deterministic_under_seed(self):
        def run(seed):
            session = BoundedPlaySession(prisoners_dilemma(),
                                         MyopicBestResponder(2),
                                         MyopicBestResponder(2), seed=seed)
            return session.run(50)

        assert run(7) == run(7)
