"""Tests for normal-form games and the tussle taxonomy."""

import numpy as np
import pytest

from tussle.errors import GameError
from tussle.gametheory.games import NormalFormGame, TussleClass, classify_game
from tussle.gametheory.repeated import prisoners_dilemma


def coordination_game():
    a = np.array([[2.0, 0.0], [0.0, 1.0]])
    return NormalFormGame([a, a.copy()], name="coordination")


def matching_pennies():
    a = np.array([[1.0, -1.0], [-1.0, 1.0]])
    return NormalFormGame([a, -a], name="matching-pennies")


class TestConstruction:
    def test_shapes_must_match(self):
        with pytest.raises(GameError):
            NormalFormGame([np.zeros((2, 2)), np.zeros((2, 3))])

    def test_axes_must_match_players(self):
        with pytest.raises(GameError):
            NormalFormGame([np.zeros((2, 2))])  # one player, 2 axes

    def test_needs_players(self):
        with pytest.raises(GameError):
            NormalFormGame([])

    def test_labels_validated(self):
        a = np.zeros((2, 2))
        with pytest.raises(GameError):
            NormalFormGame([a, a], action_labels=[["x"], ["y", "z"]])

    def test_default_labels(self):
        game = NormalFormGame([np.zeros((2, 3)), np.zeros((2, 3))])
        assert game.action_labels[0] == ["a0", "a1"]
        assert game.action_labels[1] == ["a0", "a1", "a2"]

    def test_three_player_game(self):
        shape = (2, 2, 2)
        payoffs = [np.zeros(shape) for _ in range(3)]
        payoffs[0][1, 1, 1] = 1.0
        game = NormalFormGame(payoffs)
        assert game.n_players == 3
        assert game.payoff(0, (1, 1, 1)) == 1.0


class TestPureAnalysis:
    def test_pd_unique_defect_equilibrium(self):
        assert prisoners_dilemma().pure_nash_equilibria() == [(1, 1)]

    def test_coordination_two_equilibria(self):
        assert coordination_game().pure_nash_equilibria() == [(0, 0), (1, 1)]

    def test_matching_pennies_no_pure_equilibrium(self):
        assert matching_pennies().pure_nash_equilibria() == []

    def test_dominant_strategy_in_pd(self):
        game = prisoners_dilemma()
        assert game.dominant_strategy(0) == 1
        assert game.dominant_strategy(1) == 1

    def test_no_dominant_strategy_in_coordination(self):
        assert coordination_game().dominant_strategy(0) is None

    def test_best_response_check(self):
        game = coordination_game()
        assert game.is_best_response(0, (0, 0))
        assert not game.is_best_response(0, (1, 0))

    def test_three_player_pure_nash(self):
        shape = (2, 2, 2)
        payoffs = []
        for player in range(3):
            arr = np.zeros(shape)
            arr[1, 1, 1] = 1.0
            payoffs.append(arr)
        game = NormalFormGame(payoffs)
        assert (1, 1, 1) in game.pure_nash_equilibria()


class TestMixedPayoffs:
    def test_expected_payoff_uniform(self):
        game = matching_pennies()
        uniform = np.array([0.5, 0.5])
        assert game.expected_payoff(0, [uniform, uniform]) == pytest.approx(0.0)

    def test_expected_payoff_pure_via_mixed(self):
        game = prisoners_dilemma()
        cooperate = np.array([1.0, 0.0])
        defect = np.array([0.0, 1.0])
        assert game.expected_payoff(0, [defect, cooperate]) == pytest.approx(5.0)

    def test_wrong_strategy_length_rejected(self):
        game = prisoners_dilemma()
        with pytest.raises(GameError):
            game.expected_payoff(0, [np.array([1.0]), np.array([0.5, 0.5])])


class TestProperties:
    def test_zero_sum_detection(self):
        assert matching_pennies().is_zero_sum()
        assert not prisoners_dilemma().is_zero_sum()

    def test_constant_sum_counts_as_zero_sum(self):
        a = np.array([[3.0, 1.0], [2.0, 0.0]])
        game = NormalFormGame([a, 5.0 - a])
        assert game.is_zero_sum()

    def test_symmetry(self):
        assert prisoners_dilemma().is_symmetric()
        a = np.array([[1.0, 0.0], [0.0, 2.0]])
        b = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert not NormalFormGame([a, b]).is_symmetric()


class TestClassification:
    def test_zero_sum_class(self):
        assert classify_game(matching_pennies()) is TussleClass.ZERO_SUM

    def test_coordination_class(self):
        assert classify_game(coordination_game()) is TussleClass.COORDINATION

    def test_pd_is_mixed_motive(self):
        assert classify_game(prisoners_dilemma()) is TussleClass.MIXED_MOTIVE

    def test_harmony_class(self):
        a = np.array([[3.0, 2.0], [1.0, 0.0]])
        b = np.array([[3.0, 1.0], [2.0, 0.0]])
        game = NormalFormGame([a, b])
        assert classify_game(game) is TussleClass.HARMONY

    def test_classification_two_player_only(self):
        payoffs = [np.zeros((2, 2, 2)) for _ in range(3)]
        with pytest.raises(GameError):
            classify_game(NormalFormGame(payoffs))
