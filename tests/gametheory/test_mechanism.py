"""Tests for Vickrey auctions and VCG."""

import pytest

from tussle.errors import GameError
from tussle.gametheory.mechanism import (
    VCGMechanism,
    first_price_auction,
    is_truthful_dominant,
    vickrey_auction,
)


class TestVickrey:
    def test_highest_bid_wins_pays_second(self):
        result = vickrey_auction({"a": 10.0, "b": 7.0, "c": 3.0})
        assert result.winner == "a"
        assert result.price == 7.0

    def test_single_bidder_pays_zero(self):
        result = vickrey_auction({"a": 10.0})
        assert result.winner == "a"
        assert result.price == 0.0

    def test_tie_broken_by_name(self):
        result = vickrey_auction({"b": 5.0, "a": 5.0})
        assert result.winner == "a"
        assert result.price == 5.0

    def test_winner_utility_value_minus_price(self):
        values = {"a": 10.0, "b": 7.0}
        result = vickrey_auction({"a": 10.0, "b": 7.0}, values)
        assert result.utilities["a"] == pytest.approx(3.0)
        assert result.utilities["b"] == 0.0

    def test_negative_bid_rejected(self):
        with pytest.raises(GameError):
            vickrey_auction({"a": -1.0})

    def test_empty_auction_rejected(self):
        with pytest.raises(GameError):
            vickrey_auction({})


class TestTruthfulness:
    def test_vickrey_truthful(self):
        values = {"alice": 8.0, "bob": 5.0}
        assert is_truthful_dominant(vickrey_auction, values)

    def test_first_price_not_truthful(self):
        values = {"alice": 8.0, "bob": 5.0}
        assert not is_truthful_dominant(first_price_auction, values)

    def test_focal_bidder_selectable(self):
        values = {"alice": 8.0, "bob": 5.0}
        assert is_truthful_dominant(vickrey_auction, values, focal_bidder="bob")

    def test_unknown_focal_rejected(self):
        with pytest.raises(GameError):
            is_truthful_dominant(vickrey_auction, {"a": 1.0}, focal_bidder="x")


class TestVcg:
    def test_welfare_maximizing_outcome_chosen(self):
        vcg = VCGMechanism(["x", "y"])
        reports = {
            "p1": {"x": 5.0, "y": 0.0},
            "p2": {"x": 0.0, "y": 3.0},
        }
        chosen, payments = vcg.run(reports)
        assert chosen == "x"

    def test_clarke_pivot_payment(self):
        vcg = VCGMechanism(["x", "y"])
        reports = {
            "p1": {"x": 5.0, "y": 0.0},
            "p2": {"x": 0.0, "y": 3.0},
        }
        _, payments = vcg.run(reports)
        # Without p1, y (worth 3) would win; with p1, p2 gets 0 => p1 pays 3.
        assert payments["p1"] == pytest.approx(3.0)
        # p2 is not pivotal: x wins either way.
        assert payments["p2"] == pytest.approx(0.0)

    def test_non_pivotal_agents_pay_nothing(self):
        vcg = VCGMechanism(["x", "y"])
        reports = {
            "big": {"x": 10.0, "y": 0.0},
            "small1": {"x": 1.0, "y": 0.0},
            "small2": {"x": 1.0, "y": 0.0},
        }
        _, payments = vcg.run(reports)
        assert payments["small1"] == 0.0
        assert payments["small2"] == 0.0

    def test_truthful_reporting_weakly_dominant_spot_check(self):
        vcg = VCGMechanism(["x", "y"])
        true_values = {"x": 5.0, "y": 0.0}
        others = {"p2": {"x": 0.0, "y": 3.0}}
        truthful = vcg.utility("p1", true_values,
                               {"p1": true_values, **others})
        for lie in ({"x": 2.0, "y": 0.0}, {"x": 0.0, "y": 9.0},
                    {"x": 100.0, "y": 0.0}):
            lying = vcg.utility("p1", true_values, {"p1": lie, **others})
            assert lying <= truthful + 1e-9

    def test_missing_outcome_values_rejected(self):
        vcg = VCGMechanism(["x", "y"])
        with pytest.raises(GameError):
            vcg.run({"p1": {"x": 1.0}})

    def test_needs_agents_and_outcomes(self):
        with pytest.raises(GameError):
            VCGMechanism([])
        with pytest.raises(GameError):
            VCGMechanism(["x"]).run({})
