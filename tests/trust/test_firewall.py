"""Tests for the trust-aware firewall and control channel."""

import pytest

from tussle.netsim.middlebox import Action
from tussle.netsim.packets import make_packet
from tussle.trust.firewall import (
    ControlChannel,
    PolicyAuthority,
    TrustAwareFirewall,
)
from tussle.trust.identity import IdentityFramework, IdentityScheme, Principal
from tussle.trust.trustgraph import TrustGraph


@pytest.fixture
def trust_graph():
    graph = TrustGraph()
    graph.set_trust("me", "friend", 0.9)
    graph.set_trust("me", "acquaintance", 0.3)
    return graph


@pytest.fixture
def firewall(trust_graph):
    return TrustAwareFirewall("fw", protected="me", trust_graph=trust_graph,
                              trust_threshold=0.5)


class TestPacketDecisions:
    def test_trusted_sender_passes_any_application(self, firewall):
        packet = make_packet("friend", "me", application="novel-app")
        assert firewall.process(packet).action is Action.FORWARD

    def test_untrusted_sender_dropped_even_on_http(self, firewall):
        packet = make_packet("stranger", "me", application="http")
        verdict = firewall.process(packet)
        assert verdict.action is Action.DROP
        assert "trust" in verdict.reason

    def test_low_trust_below_threshold_dropped(self, firewall):
        packet = make_packet("acquaintance", "me")
        assert firewall.process(packet).action is Action.DROP

    def test_transit_traffic_forwarded(self, firewall):
        packet = make_packet("x", "y")
        assert firewall.process(packet).action is Action.FORWARD

    def test_outbound_traffic_checked_against_destination(self, firewall):
        outbound = make_packet("me", "friend")
        assert firewall.process(outbound).action is Action.FORWARD
        risky = make_packet("me", "stranger")
        assert firewall.process(risky).action is Action.DROP

    def test_pinhole_bypasses_trust_check(self, firewall):
        firewall.pinholes.add(("stranger", "me"))
        packet = make_packet("stranger", "me")
        assert firewall.process(packet).action is Action.FORWARD

    def test_blocklist_beats_everything(self, firewall):
        firewall.blocklist.add("friend")
        packet = make_packet("friend", "me")
        assert firewall.process(packet).action is Action.DROP

    def test_accountability_floor_refuses_anonymous(self, trust_graph):
        identities = IdentityFramework(seed=0)
        identities.register(Principal("anon", IdentityScheme.ANONYMOUS))
        trust_graph.set_trust("me", "anon", 0.9)  # trusted but anonymous
        firewall = TrustAwareFirewall(
            "fw", protected="me", trust_graph=trust_graph,
            identities=identities, accountability_floor=0.3)
        packet = make_packet("anon", "me")
        verdict = firewall.process(packet)
        assert verdict.action is Action.DROP
        assert "accountability" in verdict.reason

    def test_unregistered_counterparty_treated_as_unaccountable(self, trust_graph):
        identities = IdentityFramework(seed=0)
        firewall = TrustAwareFirewall(
            "fw", protected="me", trust_graph=trust_graph,
            identities=identities, accountability_floor=0.3)
        packet = make_packet("friend", "me")  # trusted but unregistered
        assert firewall.process(packet).action is Action.DROP


class TestRuleVisibility:
    def test_visible_rules_downloadable_by_user(self, firewall):
        rules = firewall.download_rules("me")
        assert any("trust" in rule for rule in rules)

    def test_admin_authority_hides_rules_from_user(self, trust_graph):
        firewall = TrustAwareFirewall(
            "fw", protected="me", trust_graph=trust_graph,
            authority=PolicyAuthority.ADMINISTRATOR, rules_visible=False)
        assert firewall.download_rules("me") == []
        assert firewall.download_rules("admin")  # admin still sees them


class TestControlChannel:
    def test_end_user_authority(self, firewall):
        channel = ControlChannel(firewall)
        granted = channel.request_pinhole("me", "stranger", "me")
        denied = channel.request_pinhole("admin", "x", "me")
        assert granted.granted
        assert not denied.granted
        assert ("stranger", "me") in firewall.pinholes

    def test_administrator_authority(self, trust_graph):
        firewall = TrustAwareFirewall(
            "fw", protected="me", trust_graph=trust_graph,
            authority=PolicyAuthority.ADMINISTRATOR)
        channel = ControlChannel(firewall, administrator="admin")
        assert not channel.request_pinhole("me", "x", "me").granted
        assert channel.request_pinhole("admin", "x", "me").granted

    def test_negotiated_authority_needs_both(self, trust_graph):
        firewall = TrustAwareFirewall(
            "fw", protected="me", trust_graph=trust_graph,
            authority=PolicyAuthority.NEGOTIATED)
        channel = ControlChannel(firewall, administrator="admin")
        first = channel.request_pinhole("me", "x", "me", "app")
        assert not first.granted
        second = channel.request_pinhole("admin", "x", "me", "app")
        assert second.granted

    def test_negotiated_ignores_third_parties(self, trust_graph):
        firewall = TrustAwareFirewall(
            "fw", protected="me", trust_graph=trust_graph,
            authority=PolicyAuthority.NEGOTIATED)
        channel = ControlChannel(firewall, administrator="admin")
        channel.request_pinhole("rando", "x", "me", "app")
        channel.request_pinhole("rando2", "x", "me", "app")
        assert ("x", "me") not in firewall.pinholes

    def test_grant_rate(self, firewall):
        channel = ControlChannel(firewall)
        channel.request_pinhole("me", "a", "me")
        channel.request_pinhole("intruder", "b", "me")
        assert channel.grant_rate() == pytest.approx(0.5)
