"""Tests for attackers and threat campaigns."""

import pytest

from tussle.netsim import (
    BlanketFirewall,
    ForwardingEngine,
    Network,
    NodeKind,
)
from tussle.trust.threats import AttackKind, Attacker, ThreatCampaign


def small_network():
    net = Network()
    net.add_node("victim")
    net.add_node("gw", kind=NodeKind.MIDDLEBOX)
    net.add_node("net", kind=NodeKind.ROUTER)
    for name in ("good", "bad"):
        net.add_node(name)
        net.add_link(name, "net")
    net.add_link("net", "gw")
    net.add_link("gw", "victim")
    engine = ForwardingEngine(net)
    engine.install_shortest_path_tables()
    return engine


class TestAttacker:
    def test_generates_requested_count(self):
        attacker = Attacker("bad", kind=AttackKind.SCAN, seed=0)
        packets = attacker.generate("victim", 7)
        assert len(packets) == 7
        assert all(p.header.dst == "victim" for p in packets)

    def test_payload_carries_ground_truth(self):
        attacker = Attacker("bad", kind=AttackKind.DOS_FLOOD, seed=0)
        packet = attacker.generate("victim", 1)[0]
        assert packet.payload == {"attack": "dos-flood"}

    def test_deterministic_under_seed(self):
        apps = lambda seed: [p.application for p in
                             Attacker("bad", AttackKind.SCAN, seed).generate("v", 10)]
        assert apps(3) == apps(3)

    def test_penetration_targets_services(self):
        attacker = Attacker("bad", kind=AttackKind.PENETRATION, seed=1)
        apps = {p.application for p in attacker.generate("v", 20)}
        assert apps <= {"http", "smtp"}


class TestCampaign:
    def test_open_network_admits_everything(self):
        engine = small_network()
        campaign = ThreatCampaign(
            engine, victim="victim",
            attackers=[Attacker("bad", AttackKind.PENETRATION, seed=0)],
            legit_senders=[("good", "http")],
            new_app_senders=[("good", "shiny-new")],
        )
        mix = campaign.run(5)
        assert mix.attack_admission_rate == 1.0
        assert mix.legit_success_rate == 1.0
        assert mix.new_app_success_rate == 1.0

    def test_blanket_firewall_blocks_new_apps_and_scans(self):
        engine = small_network()
        engine.attach_middlebox("gw", BlanketFirewall(
            "fw", allowed_applications={"http"}))
        campaign = ThreatCampaign(
            engine, victim="victim",
            attackers=[Attacker("bad", AttackKind.DOS_FLOOD, seed=0)],
            legit_senders=[("good", "http")],
            new_app_senders=[("good", "shiny-new")],
        )
        mix = campaign.run(5)
        assert mix.attack_admission_rate == 0.0  # floods use 'generic'
        assert mix.legit_success_rate == 1.0
        assert mix.new_app_success_rate == 0.0

    def test_rates_zero_when_nothing_sent(self):
        engine = small_network()
        campaign = ThreatCampaign(engine, victim="victim", attackers=[],
                                  legit_senders=[])
        mix = campaign.run(5)
        assert mix.attack_admission_rate == 0.0
        assert mix.legit_success_rate == 0.0
