"""Tests for the identity framework."""

import pytest

from tussle.errors import TrustError
from tussle.trust.identity import IdentityFramework, IdentityScheme, Principal


class TestPrincipal:
    def test_certificate_needs_voucher(self):
        with pytest.raises(TrustError):
            Principal("x", IdentityScheme.CERTIFICATE)

    def test_only_anonymous_can_disguise(self):
        with pytest.raises(TrustError):
            Principal("x", IdentityScheme.PSEUDONYM,
                      disguised_as=IdentityScheme.REAL_NAME)

    def test_claimed_scheme(self):
        shady = Principal("x", IdentityScheme.ANONYMOUS,
                          disguised_as=IdentityScheme.PSEUDONYM)
        assert shady.claimed_scheme is IdentityScheme.PSEUDONYM
        honest = Principal("y", IdentityScheme.ANONYMOUS)
        assert honest.claimed_scheme is IdentityScheme.ANONYMOUS

    def test_accountable_schemes(self):
        assert IdentityScheme.REAL_NAME.accountable
        assert IdentityScheme.CERTIFICATE.accountable
        assert not IdentityScheme.ANONYMOUS.accountable
        assert not IdentityScheme.PSEUDONYM.accountable


class TestFramework:
    def test_register_and_lookup(self):
        framework = IdentityFramework()
        principal = framework.register(Principal("a", IdentityScheme.REAL_NAME))
        assert framework.principal("a") is principal

    def test_duplicate_registration_rejected(self):
        framework = IdentityFramework()
        framework.register(Principal("a", IdentityScheme.REAL_NAME))
        with pytest.raises(TrustError):
            framework.register(Principal("a", IdentityScheme.PSEUDONYM))

    def test_unknown_principal_raises(self):
        with pytest.raises(TrustError):
            IdentityFramework().principal("ghost")

    def test_detection_rate_validated(self):
        with pytest.raises(TrustError):
            IdentityFramework(disguise_detection_rate=1.5)

    def test_undisguised_scheme_always_apparent(self):
        framework = IdentityFramework(seed=0)
        framework.register(Principal("a", IdentityScheme.ROLE, roles={"ops"}))
        for _ in range(20):
            assert framework.apparent_scheme("a") is IdentityScheme.ROLE

    def test_perfect_detection_always_unmasks(self):
        framework = IdentityFramework(disguise_detection_rate=1.0, seed=0)
        framework.register(Principal("x", IdentityScheme.ANONYMOUS,
                                     disguised_as=IdentityScheme.REAL_NAME))
        for _ in range(20):
            assert framework.apparent_scheme("x") is IdentityScheme.ANONYMOUS

    def test_zero_detection_never_unmasks(self):
        framework = IdentityFramework(disguise_detection_rate=0.0, seed=0)
        framework.register(Principal("x", IdentityScheme.ANONYMOUS,
                                     disguised_as=IdentityScheme.PSEUDONYM))
        for _ in range(20):
            assert framework.apparent_scheme("x") is IdentityScheme.PSEUDONYM


class TestAccountability:
    def test_ordering_of_schemes(self):
        framework = IdentityFramework(seed=0)
        framework.trust_voucher("good-ca")
        framework.register(Principal("real", IdentityScheme.REAL_NAME))
        framework.register(Principal("certified", IdentityScheme.CERTIFICATE,
                                     vouched_by="good-ca"))
        framework.register(Principal("sketchy-cert", IdentityScheme.CERTIFICATE,
                                     vouched_by="bad-ca"))
        framework.register(Principal("role", IdentityScheme.ROLE))
        framework.register(Principal("pseudo", IdentityScheme.PSEUDONYM))
        framework.register(Principal("anon", IdentityScheme.ANONYMOUS))
        levels = {name: framework.accountability_level(name)
                  for name in ("real", "certified", "sketchy-cert", "role",
                               "pseudo", "anon")}
        assert levels["real"] == levels["certified"] == 1.0
        assert levels["certified"] > levels["sketchy-cert"] > levels["pseudo"]
        assert levels["role"] > levels["pseudo"]
        assert levels["anon"] == 0.0

    def test_trusting_voucher_upgrades_certificate(self):
        framework = IdentityFramework(seed=0)
        framework.register(Principal("c", IdentityScheme.CERTIFICATE,
                                     vouched_by="new-ca"))
        before = framework.accountability_level("c")
        framework.trust_voucher("new-ca")
        after = framework.accountability_level("c")
        assert after > before

    def test_principals_sorted(self):
        framework = IdentityFramework()
        framework.register(Principal("b", IdentityScheme.REAL_NAME))
        framework.register(Principal("a", IdentityScheme.REAL_NAME))
        assert [p.name for p in framework.principals()] == ["a", "b"]
