"""Tests for the trust graph and propagation."""

import pytest

from tussle.errors import TrustError
from tussle.trust.trustgraph import TrustGraph


class TestEdges:
    def test_set_and_get(self):
        graph = TrustGraph()
        graph.set_trust("a", "b", 0.8)
        assert graph.direct_trust("a", "b") == 0.8
        assert graph.direct_trust("b", "a") is None  # directional

    def test_score_bounds(self):
        graph = TrustGraph()
        with pytest.raises(TrustError):
            graph.set_trust("a", "b", 1.5)
        with pytest.raises(TrustError):
            graph.set_trust("a", "b", -0.1)

    def test_self_trust_rejected(self):
        with pytest.raises(TrustError):
            TrustGraph().set_trust("a", "a", 1.0)

    def test_revoke(self):
        graph = TrustGraph()
        graph.set_trust("a", "b", 0.8)
        graph.revoke("a", "b")
        assert graph.direct_trust("a", "b") is None

    def test_parties_tracked(self):
        graph = TrustGraph()
        graph.set_trust("a", "b", 0.5)
        assert graph.parties == ["a", "b"]


class TestPropagation:
    def test_self_trust_is_one(self):
        assert TrustGraph().trust("a", "a") == 1.0

    def test_unreachable_is_zero(self):
        graph = TrustGraph()
        graph.set_trust("a", "b", 0.9)
        assert graph.trust("a", "z") == 0.0

    def test_two_hop_chain_decays(self):
        graph = TrustGraph(decay=0.8)
        graph.set_trust("a", "b", 0.9)
        graph.set_trust("b", "c", 0.9)
        assert graph.trust("a", "c") == pytest.approx(0.9 * 0.9 * 0.8)

    def test_direct_edge_beats_weak_chain(self):
        graph = TrustGraph()
        graph.set_trust("a", "c", 0.7)
        graph.set_trust("a", "b", 0.9)
        graph.set_trust("b", "c", 0.5)
        assert graph.trust("a", "c") == 0.7

    def test_strong_chain_beats_weak_direct(self):
        graph = TrustGraph(decay=1.0)
        graph.set_trust("a", "c", 0.1)
        graph.set_trust("a", "b", 0.95)
        graph.set_trust("b", "c", 0.95)
        assert graph.trust("a", "c") == pytest.approx(0.95 * 0.95)

    def test_max_hops_bounds_chains(self):
        graph = TrustGraph(decay=1.0, max_hops=2)
        graph.set_trust("a", "b", 1.0)
        graph.set_trust("b", "c", 1.0)
        graph.set_trust("c", "d", 1.0)
        assert graph.trust("a", "c") == 1.0
        assert graph.trust("a", "d") == 0.0  # needs three hops

    def test_best_of_multiple_chains(self):
        graph = TrustGraph(decay=1.0)
        graph.set_trust("a", "b", 0.5)
        graph.set_trust("b", "z", 0.5)
        graph.set_trust("a", "c", 0.9)
        graph.set_trust("c", "z", 0.9)
        assert graph.trust("a", "z") == pytest.approx(0.81)

    def test_threshold_decision(self):
        graph = TrustGraph()
        graph.set_trust("a", "b", 0.6)
        assert graph.trusts("a", "b", threshold=0.5)
        assert not graph.trusts("a", "b", threshold=0.7)

    def test_mutual_trust_is_minimum(self):
        graph = TrustGraph()
        graph.set_trust("a", "b", 0.9)
        graph.set_trust("b", "a", 0.3)
        assert graph.mutual_trust("a", "b") == pytest.approx(0.3)

    def test_erosion_scales_everything(self):
        graph = TrustGraph()
        graph.set_trust("a", "b", 0.8)
        graph.erode(0.5)
        assert graph.direct_trust("a", "b") == pytest.approx(0.4)

    def test_erosion_factor_validated(self):
        with pytest.raises(TrustError):
            TrustGraph().erode(1.5)

    def test_constructor_validation(self):
        with pytest.raises(TrustError):
            TrustGraph(decay=0.0)
        with pytest.raises(TrustError):
            TrustGraph(max_hops=0)
