"""Tests for third-party trust mediators."""

import pytest

from tussle.errors import TrustError
from tussle.trust.thirdparty import (
    CertificateAuthority,
    LiabilityShield,
    MediatedInteraction,
    ReputationService,
)


class TestCertificateAuthority:
    def test_certification_reduces_failure(self):
        ca = CertificateAuthority(impostor_fraction=0.5)
        ca.certify("shop")
        probability, loss = ca.mediate("shop", 0.6, 10.0)
        assert probability == pytest.approx(0.8)
        assert loss == 10.0

    def test_uncertified_unchanged(self):
        ca = CertificateAuthority()
        assert ca.mediate("shop", 0.6, 10.0) == (0.6, 10.0)

    def test_impostor_fraction_validated(self):
        with pytest.raises(TrustError):
            CertificateAuthority(impostor_fraction=2.0)


class TestReputationService:
    def test_score_aggregates_reports(self):
        service = ReputationService()
        service.report("shop", True)
        service.report("shop", True)
        service.report("shop", False)
        assert service.score("shop") == pytest.approx(2 / 3)

    def test_no_reports_no_score(self):
        service = ReputationService()
        assert service.score("shop") is None
        assert not service.warns_about("shop")

    def test_warning_threshold(self):
        service = ReputationService(warn_threshold=0.5)
        service.report("scam", False)
        service.report("scam", False)
        service.report("scam", True)
        assert service.warns_about("scam")

    def test_mediation_snaps_expectation_to_observed(self):
        service = ReputationService()
        for outcome in (False, False, True, False):
            service.report("scam", outcome)
        probability, _ = service.mediate("scam", 0.9, 5.0)
        assert probability == pytest.approx(0.25)


class TestLiabilityShield:
    def test_caps_loss(self):
        shield = LiabilityShield(cap=0.5)
        _, loss = shield.mediate("anyone", 0.9, 100.0)
        assert loss == 0.5

    def test_small_loss_unchanged(self):
        shield = LiabilityShield(cap=50.0)
        _, loss = shield.mediate("anyone", 0.9, 10.0)
        assert loss == 10.0

    def test_cap_validated(self):
        with pytest.raises(TrustError):
            LiabilityShield(cap=-1.0)


class TestMediatedInteraction:
    def test_unmediated_risky_deal_not_worth_doing(self):
        deal = MediatedInteraction("scam-shop", value=10.0,
                                   success_probability=0.5,
                                   loss_if_failure=30.0)
        assert deal.expected_utility() < 0
        assert not deal.worth_doing()

    def test_liability_shield_rescues_the_deal(self):
        """The paper's credit-card example: capping liability makes
        commerce with imperfectly-trusted parties rational."""
        deal = MediatedInteraction("scam-shop", value=10.0,
                                   success_probability=0.5,
                                   loss_if_failure=30.0,
                                   mediators=[LiabilityShield(fee=0.3, cap=0.5)])
        assert deal.worth_doing()

    def test_mediators_compose(self):
        ca = CertificateAuthority(fee=0.1, impostor_fraction=0.5)
        ca.certify("shop")
        deal = MediatedInteraction("shop", value=10.0,
                                   success_probability=0.6,
                                   loss_if_failure=20.0,
                                   mediators=[ca, LiabilityShield(fee=0.3, cap=1.0)])
        probability, loss, fees = deal.effective_profile()
        assert probability == pytest.approx(0.8)
        assert loss == 1.0
        assert fees == pytest.approx(0.4)

    def test_choosing_mediators_beats_forced_none(self):
        """Design-for-choice in the trust space: the chosen bundle
        dominates the bare interaction."""
        bare = MediatedInteraction("shop", value=10.0,
                                   success_probability=0.5,
                                   loss_if_failure=30.0)
        shielded = MediatedInteraction("shop", value=10.0,
                                       success_probability=0.5,
                                       loss_if_failure=30.0,
                                       mediators=[LiabilityShield(fee=0.3,
                                                                  cap=0.5)])
        assert shielded.expected_utility() > bare.expected_utility()

    def test_validation(self):
        with pytest.raises(TrustError):
            MediatedInteraction("x", value=1.0, success_probability=1.5,
                                loss_if_failure=0.0)
        with pytest.raises(TrustError):
            MediatedInteraction("x", value=1.0, success_probability=0.5,
                                loss_if_failure=-1.0)
