"""Integration tests: scenarios that cross subpackage boundaries."""

import random

import pytest

from tussle.core import (
    Mechanism,
    Stakeholder,
    StakeholderKind,
    TussleSimulator,
    TussleSpace,
    compare_outcomes,
    outcome_diversity,
)
from tussle.econ import ValueFlowLedger, CREDIT_CARD
from tussle.netsim import (
    ForwardingEngine,
    Network,
    NodeKind,
    PortFilterFirewall,
    make_packet,
)
from tussle.netsim.topology import random_as_graph
from tussle.policy import Negotiation, parse_policy
from tussle.routing import (
    LinkStateRouting,
    PathVectorRouting,
    SourceRoutingSystem,
    TransitTerms,
)
from tussle.trust import TrustAwareFirewall, TrustGraph


class TestRoutingOverRealTopology:
    def test_linkstate_tables_deliver_packets_end_to_end(self):
        net = Network()
        for name in ("a", "r1", "r2", "r3", "b"):
            kind = NodeKind.HOST if name in "ab" else NodeKind.ROUTER
            net.add_node(name, kind=kind)
        net.add_link("a", "r1", cost=1)
        net.add_link("r1", "r2", cost=1)
        net.add_link("r2", "b", cost=1)
        net.add_link("r1", "r3", cost=5)
        net.add_link("r3", "b", cost=5)
        routing = LinkStateRouting(net)
        routing.converge()
        engine = ForwardingEngine(net)
        engine.install_tables(routing.all_tables())
        receipt = engine.send(make_packet("a", "b"))
        assert receipt.delivered
        assert receipt.path == ["a", "r1", "r2", "b"]
        # Fail the cheap path; reconverge; traffic takes the dear one.
        net.fail_link("r1", "r2")
        routing.converge()
        engine.install_tables(routing.all_tables())
        receipt = engine.send(make_packet("a", "b"))
        assert receipt.delivered
        assert "r3" in receipt.path


class TestPaymentsUnlockUserRouting:
    def test_source_routing_payment_settles_through_ledger(self):
        """E04's story end to end: user choice + value flow + ledger."""
        net = random_as_graph(n_tier1=2, n_tier2=4, n_tier3=6,
                              rng=random.Random(1))
        stubs = [a.asn for a in net.ases if a.tier == 3]
        system = SourceRoutingSystem(net, payment_enabled=True)
        for autonomous_system in net.ases:
            system.set_terms(autonomous_system.asn,
                             TransitTerms(accepts_source_routes=False, price=1.0))
        attempt = system.best_affordable_route(stubs[0], stubs[1], budget=50.0)
        assert attempt is not None and attempt.succeeded
        # Settle what the routing layer charged through the value ledger.
        ledger = ValueFlowLedger()
        for asn, revenue in system.revenue.items():
            ledger.transfer("user", f"AS{asn}", revenue, CREDIT_CARD)
        assert ledger.total() == pytest.approx(0.0)
        assert ledger.volume() == pytest.approx(attempt.total_price)


class TestTrustFirewallOnPath:
    def test_trust_aware_beats_port_filter_for_new_apps(self):
        def build_engine():
            net = Network()
            net.add_node("me")
            net.add_node("gw", kind=NodeKind.MIDDLEBOX)
            net.add_node("friend")
            net.add_node("attacker")
            net.add_link("friend", "gw")
            net.add_link("attacker", "gw")
            net.add_link("gw", "me")
            engine = ForwardingEngine(net)
            engine.install_shortest_path_tables()
            return engine

        trust = TrustGraph()
        trust.set_trust("me", "friend", 0.9)

        trusted = build_engine()
        trusted.attach_middlebox("gw", TrustAwareFirewall(
            "tfw", protected="me", trust_graph=trust))
        port_filtered = build_engine()
        port_filtered.attach_middlebox("gw", PortFilterFirewall(
            "pfw", blocked_applications={"new-app"}))

        new_app = lambda: make_packet("friend", "me", application="new-app")
        attack = lambda: make_packet("attacker", "me", application="http")

        assert trusted.send(new_app()).delivered
        assert not trusted.send(attack()).delivered
        assert not port_filtered.send(new_app()).delivered
        assert port_filtered.send(attack()).delivered


class TestPolicyGatedInteraction:
    def test_negotiated_terms_drive_packet_posture(self):
        """Policies negotiate encryption; the packet honours the agreement."""
        user_policy = parse_policy("""
        permit if encrypted
        default deny
        """)
        isp_policy = parse_policy("""
        permit if payment >= 1
        default deny
        """)
        negotiation = Negotiation(
            user_policy, isp_policy,
            negotiable={"encrypted": [False, True], "payment": [0.0, 1.0]},
        )
        outcome = negotiation.run()
        assert outcome.succeeded
        packet = make_packet("user", "site", encrypted=outcome.agreement["encrypted"])
        assert packet.encrypted  # the mutually-acceptable posture


class TestDesignComparisonEndToEnd:
    def _run(self, knob_range):
        space = TussleSpace("arena", initial_state={"x": 0.5})
        space.add_mechanism(Mechanism(name="knob", variable="x",
                                      allowed_range=knob_range))
        users = Stakeholder("users", StakeholderKind.USER,
                            workaround_cost=0.05)
        users.add_interest("x", target=1.0)
        isps = Stakeholder("isps", StakeholderKind.COMMERCIAL_ISP,
                           workaround_cost=0.05)
        isps.add_interest("x", target=0.0)
        space.add_stakeholder(users)
        space.add_stakeholder(isps)
        return TussleSimulator(space).run(40), space

    def test_flexible_design_wins_the_comparison(self):
        rigid_outcome, _ = self._run((0.5, 0.5))
        flexible_outcome, _ = self._run((0.0, 1.0))
        comparison = compare_outcomes("rigid", rigid_outcome,
                                      "flexible", flexible_outcome)
        assert comparison.winner() == "flexible"

    def test_flexible_design_admits_outcome_diversity(self):
        """Run the same flexible design in two 'places' with different
        stakeholder balances: the outcomes differ (variation of outcome)."""
        final_states = []
        for user_weight in (0.5, 2.0):
            space = TussleSpace("arena", initial_state={"x": 0.5})
            space.add_mechanism(Mechanism(name="knob", variable="x"))
            users = Stakeholder("users", StakeholderKind.USER)
            users.add_interest("x", target=1.0, weight=user_weight)
            space.add_stakeholder(users)
            TussleSimulator(space).run(10)
            final_states.append(dict(space.state))
        # One place settles at the user target; different places may differ
        # when their stakeholder mixes differ.
        assert outcome_diversity(final_states) >= 0.0
        assert all(s["x"] == pytest.approx(1.0) for s in final_states)


class TestBgpAndSourceRoutingAgree:
    def test_bgp_path_is_among_valley_free_candidates(self):
        net = random_as_graph(n_tier1=2, n_tier2=3, n_tier3=4,
                              rng=random.Random(2))
        bgp = PathVectorRouting(net)
        bgp.converge()
        system = SourceRoutingSystem(net, payment_enabled=True)
        stubs = [a.asn for a in net.ases if a.tier == 3]
        src, dst = stubs[0], stubs[1]
        bgp_path = bgp.as_path(src, dst)
        if bgp_path is not None:
            candidates = {r.path for r in system.candidate_routes(src, dst)}
            assert bgp_path in candidates
