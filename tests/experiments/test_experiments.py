"""Every experiment must reproduce the paper's qualitative shape.

These are the repository's headline assertions: each ``run_eNN`` returns
explicit shape checks against the claims of the paper, and all of them
must hold.
"""

import pytest

from tussle.errors import ExperimentError
from tussle.experiments import ALL_EXPERIMENTS
from tussle.experiments.common import ExperimentResult, ShapeCheck, Table
from tussle.lint.seedcheck import fingerprint


@pytest.fixture(scope="module")
def results():
    return {eid: fn() for eid, fn in ALL_EXPERIMENTS.items()}


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_shape_holds(results, experiment_id):
    result = results[experiment_id]
    failing = [c for c in result.checks if not c.holds]
    assert result.shape_holds, (
        f"{experiment_id} failed checks: "
        + "; ".join(f"{c.claim} ({c.detail})" for c in failing)
    )


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_result_is_well_formed(results, experiment_id):
    result = results[experiment_id]
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.paper_claim
    assert result.tables, "every experiment reports at least one table"
    assert result.checks, "every experiment asserts at least one shape check"
    for table in result.tables:
        assert len(table) > 0


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_format_renders(results, experiment_id):
    text = results[experiment_id].format()
    assert experiment_id in text
    assert "HOLDS" in text
    assert "FAILS" not in text


def test_experiment_registry_complete():
    expected = (
        [f"E{i:02d}" for i in range(1, 13)]
        + ["L01", "L02"]
        + ["N01"]
        + ["P01", "P02"]
        + ["R01", "R02"]
        + ["T01", "T02"]
        + ["X01", "X02", "X03", "X04", "X05", "X06", "X07"]
    )
    assert sorted(ALL_EXPERIMENTS) == expected


def test_experiments_deterministic():
    """Re-running an experiment yields identical tables."""
    from tussle.experiments import run_e01

    first = run_e01()
    second = run_e01()
    assert first.tables[0].rows == second.tables[0].rows


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_double_run_bit_identical(results, experiment_id):
    """Determinism contract: same seed, bit-identical result (all tables,
    every cell, every shape-check verdict)."""
    rerun = ALL_EXPERIMENTS[experiment_id]()
    assert fingerprint(results[experiment_id]) == fingerprint(rerun)


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_entry_point_accepts_seed(experiment_id):
    """Every registered experiment exposes the run(seed=...) contract."""
    import inspect

    signature = inspect.signature(ALL_EXPERIMENTS[experiment_id])
    assert "seed" in signature.parameters


class TestTableHarness:
    def test_unknown_column_rejected(self):
        table = Table("t", ["a"])
        with pytest.raises(Exception):
            table.add_row(b=1)

    def test_unknown_column_is_experiment_error_naming_columns(self):
        table = Table("t", ["a"])
        with pytest.raises(ExperimentError) as excinfo:
            table.add_row(b=1, c=2)
        assert "['b', 'c']" in str(excinfo.value)

    def test_unknown_column_extraction_is_experiment_error(self):
        table = Table("t", ["a"])
        with pytest.raises(ExperimentError) as excinfo:
            table.column("missing")
        assert "missing" in str(excinfo.value)

    def test_empty_table_column_extraction(self):
        table = Table("t", ["a"])
        assert table.column("a") == []
        assert len(table) == 0

    def test_empty_table_still_formats_header(self):
        table = Table("empty", ["col_a", "col_b"])
        text = table.format()
        assert "empty" in text
        assert "col_a" in text

    def test_cell_formatting_conventions(self):
        table = Table("t", ["v"])
        table.add_row(v=True)
        table.add_row(v=None)
        table.add_row(v=0.12345)
        text = table.format()
        assert "yes" in text
        assert "-" in text
        assert "0.123" in text

    def test_column_extraction(self):
        table = Table("t", ["a", "b"])
        table.add_row(a=1, b=2)
        table.add_row(a=3)
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2, None]

    def test_format_alignment(self):
        table = Table("title", ["name", "value"])
        table.add_row(name="x", value=1.5)
        text = table.format()
        assert "title" in text
        assert "1.500" in text

    def test_needs_columns(self):
        with pytest.raises(Exception):
            Table("t", [])


class TestMonotoneHelpers:
    def test_monotone_decreasing(self):
        from tussle.experiments.common import monotone_decreasing

        assert monotone_decreasing([3.0, 2.0, 2.0, 1.0])
        assert not monotone_decreasing([1.0, 2.0])
        assert monotone_decreasing([3.0, 2.0, 1.0], strict=True)
        assert not monotone_decreasing([3.0, 2.0, 2.0], strict=True)
        assert monotone_decreasing([])
        assert monotone_decreasing([1.0])

    def test_monotone_increasing(self):
        from tussle.experiments.common import monotone_increasing

        assert monotone_increasing([1.0, 2.0, 2.0, 3.0])
        assert not monotone_increasing([2.0, 1.0])
        assert monotone_increasing([1.0, 2.0], strict=True)
        assert not monotone_increasing([1.0, 1.0], strict=True)

    def test_shape_check_records(self):
        from tussle.experiments.common import ExperimentResult

        result = ExperimentResult(experiment_id="T00", title="t",
                                  paper_claim="c")
        result.add_check("passes", True, detail="d")
        result.add_check("fails", False)
        assert not result.shape_holds
        text = result.format()
        assert "[HOLDS] passes" in text
        assert "[FAILS] fails" in text

    def test_failing_check_detail_is_rendered(self):
        result = ExperimentResult(experiment_id="T00", title="t",
                                  paper_claim="c")
        result.add_check("claim", False, detail="expected up, measured down")
        text = result.format()
        assert "[FAILS] claim" in text
        assert "expected up, measured down" in text

    def test_empty_result_shape_holds_vacuously(self):
        result = ExperimentResult(experiment_id="T00", title="t",
                                  paper_claim="c")
        assert result.shape_holds
        assert result.checks == []

    def test_shape_check_dataclass_fields(self):
        check = ShapeCheck(claim="c", holds=False)
        assert check.detail == ""
        assert not check.holds
