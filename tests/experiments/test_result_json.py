"""Edge cases for the ExperimentResult/Table JSON wire format.

The sweep cache and IPC layer depend on ``to_json`` being bit-stable
and ``from_json`` being lossless, including on the awkward corners:
``None`` cells, bool cells (which must not decay to ints), empty
tables, and float cells whose shortest repr carries many digits.
"""

import json
import math

import pytest

from tussle.errors import ExperimentError
from tussle.experiments.common import (
    ExperimentResult,
    Table,
    canonical_json,
)


def round_trip(table):
    return Table.from_json(table.to_json())


class TestTableEdgeCases:
    def test_empty_table_round_trips(self):
        table = Table("empty", ["a", "b"])
        revived = round_trip(table)
        assert revived.to_json() == table.to_json()
        assert revived.rows == []
        assert revived.columns == ["a", "b"]
        assert revived.title == "empty"

    def test_none_cells_survive_explicitly(self):
        table = Table("gaps", ["x", "y"])
        table.add_row(x=1)          # y omitted -> serialised as null
        table.add_row(x=None, y=2)  # explicit None
        revived = round_trip(table)
        assert revived.column("y") == [None, 2]
        assert revived.column("x") == [1, None]
        assert revived.to_json() == table.to_json()

    def test_bool_cells_keep_their_type(self):
        table = Table("flags", ["ok"])
        table.add_row(ok=True)
        table.add_row(ok=False)
        revived = round_trip(table)
        assert revived.column("ok") == [True, False]
        assert all(isinstance(v, bool) for v in revived.column("ok"))

    def test_float_cells_are_bit_exact(self):
        awkward = [0.1 + 0.2, 1e-17, math.pi, -0.0, 123456789.123456789]
        table = Table("floats", ["v"])
        for value in awkward:
            table.add_row(v=value)
        revived = round_trip(table)
        # Bit-equality, not approximate: compare IEEE-754 payloads.
        packed = [math.copysign(1.0, v) if v == 0 else v
                  for v in revived.column("v")]
        expected = [math.copysign(1.0, v) if v == 0 else v for v in awkward]
        assert packed == expected
        assert revived.to_json() == table.to_json()

    def test_nan_cell_rejected_at_serialisation(self):
        table = Table("bad", ["v"])
        table.add_row(v=float("nan"))
        with pytest.raises(ExperimentError):
            table.to_json()

    def test_json_is_canonical_bytes(self):
        table = Table("t", ["b", "a"])
        table.add_row(b=1, a=2)
        text = table.to_json()
        assert text == canonical_json(json.loads(text))
        assert "\n" not in text and ": " not in text


class TestExperimentResultEdgeCases:
    def make_result(self, **overrides):
        result = ExperimentResult(experiment_id="EXX", title="edge",
                                  paper_claim="claims survive the wire",
                                  **overrides)
        return result

    def test_result_with_no_tables_or_checks(self):
        result = self.make_result()
        revived = ExperimentResult.from_json(result.to_json())
        assert revived.to_json() == result.to_json()
        assert revived.tables == [] and revived.checks == []
        assert revived.shape_holds is True  # vacuously

    def test_result_with_empty_table_and_failed_check(self):
        result = self.make_result(tables=[Table("empty", ["c"])])
        result.add_check("never holds", False, detail="by construction")
        revived = ExperimentResult.from_json(result.to_json())
        assert revived.shape_holds is False
        assert revived.checks[0].detail == "by construction"
        assert revived.to_json() == result.to_json()

    def test_metrics_side_channel_round_trips(self):
        result = self.make_result(metrics={"counters": {"steps": 3}})
        revived = ExperimentResult.from_json(result.to_json())
        assert revived.metrics == {"counters": {"steps": 3}}

    def test_absent_metrics_stay_absent(self):
        result = self.make_result()
        assert "metrics" not in json.loads(result.to_json())
        revived = ExperimentResult.from_json(result.to_json())
        assert revived.metrics is None

    def test_check_detail_defaults_when_missing_on_the_wire(self):
        payload = json.loads(self.make_result().to_json())
        payload["checks"] = [{"claim": "terse", "holds": True}]
        revived = ExperimentResult.from_dict(payload)
        assert revived.checks[0].detail == ""

    def test_shape_holds_is_recomputed_not_trusted(self):
        result = self.make_result()
        result.add_check("fails", False)
        payload = json.loads(result.to_json())
        payload["shape_holds"] = True  # tampered wire value
        revived = ExperimentResult.from_dict(payload)
        assert revived.shape_holds is False
