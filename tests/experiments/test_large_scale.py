"""L01/L02 at population scale: the paper-claim shapes must survive N.

The 10^5 tier is part of the CI slow lane.  The 10^6 tier additionally
carries the ``large`` marker so it only runs where the slow lane opts in
with ``-m 'large or not large'`` — a full million-agent round is cheap
per-round (~0.2 s warm) but the first round pays numpy allocation.
"""

import pytest

from tussle.scale.large import (
    lockin_market_at_scale,
    run_l01,
    run_l02,
)


@pytest.mark.slow
class TestShapesAtHundredThousand:
    def test_l01_lockin_shape_holds_at_1e5(self):
        result = run_l01(tiers=(100_000,))
        assert result.shape_holds, result.format()

    def test_l02_value_pricing_shape_holds_at_1e5(self):
        result = run_l02(tiers=(100_000,))
        assert result.shape_holds, result.format()


@pytest.mark.slow
@pytest.mark.large
class TestMillionAgents:
    def test_million_agent_rounds_produce_sane_records(self):
        market = lockin_market_at_scale(3.0, 1_000_000, seed=7)
        history = market.run(3)
        assert len(history) == 3
        for record in history:
            assert record.mean_price > 0
            assert 0.0 < sum(record.shares.values()) <= 1.0 + 1e-9
        assert market.subscribed_fraction() > 0.9
        assert market.arrays.nbytes() > 8 * 1_000_000
