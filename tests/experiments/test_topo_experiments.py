"""Tests for the generated-topology experiments T01 and T02."""

from tussle.experiments import ALL_EXPERIMENTS, run_t01, run_t02


class TestT01:
    def setup_method(self):
        # Small graph: the claims are structural, not scale-dependent,
        # and the seed matrix already runs the 10^3-AS default.
        self.result = run_t01(n_ases=120, n_pairs=10, seed=0)

    def test_shape_holds(self):
        assert self.result.shape_holds, self.result.format()

    def test_tables_present(self):
        titles = [t.title for t in self.result.tables]
        assert any("tiered internet" in t for t in titles)
        assert any("path choice" in t for t in titles)
        assert any("valley-free" in t for t in titles)

    def test_bgp_single_path_and_overlay_choice(self):
        regimes = {r["regime"]: r for r in self.result.tables[1].rows}
        assert regimes["bgp"]["mean_paths_per_pair"] == 1.0
        assert regimes["overlay"]["mean_paths_per_pair"] > 1.0

    def test_result_serialises_canonically(self):
        text = self.result.to_json()
        assert run_t01(n_ases=120, n_pairs=10, seed=0).to_json() == text


class TestT02:
    def setup_method(self):
        self.result = run_t02(n_ases=40, seed=0)

    def test_shape_holds(self):
        assert self.result.shape_holds, self.result.format()

    def test_workload_is_derived_not_hand_built(self):
        derivation = self.result.tables[0]
        roles = {r["role"]: r for r in derivation.rows}
        assert roles["primary"]["provider_asn"] \
            != roles["standby"]["provider_asn"]
        assert roles["standby"]["router_hops"] \
            > roles["primary"]["router_hops"]

    def test_deterministic_per_seed(self):
        assert run_t02(n_ases=40, seed=0).to_json() == self.result.to_json()

    def test_single_homed_seed_still_yields_dual_homing(self):
        """Whatever the seed, _pick_user guarantees two providers."""
        for seed in (0, 1, 2):
            result = run_t02(n_ases=20, seed=seed)
            assert result.shape_holds, result.format()


class TestRegistry:
    def test_registered(self):
        assert ALL_EXPERIMENTS["T01"] is run_t01
        assert ALL_EXPERIMENTS["T02"] is run_t02
        assert len(ALL_EXPERIMENTS) == 28
