"""Seed-matrix tier: every experiment's shape claims hold on every seed.

This is the robustness tier ISSUE 3 calls for: the full 28-experiment
matrix (paper claims E01-E12, extensions X01-X07, at-scale L01-L02,
resilience R01-R02, substrate N01, topology T01-T02, peering P01-P02)
over >= 5 base seeds, run through the sweep engine's in-process
executor so the exact cell/seed-derivation path exercised here is the
one ``python -m tussle sweep`` uses.  A single-seed demo can pass by
luck; this tier is the evidence the headline claims are properties of
the models, not of seed 0.

Marked ``slow``: CI runs it (the ``sweep`` job), local quick runs can
deselect with ``-m 'not slow'``.
"""

import pytest

from tussle.experiments import ALL_EXPERIMENTS
from tussle.sweep import InProcessExecutor, SweepSpec, aggregate, run_sweep

N_SEEDS = 5


@pytest.fixture(scope="module")
def matrix_report():
    spec = SweepSpec(experiment_ids=sorted(ALL_EXPERIMENTS),
                     seeds=list(range(N_SEEDS)), grid={})
    return run_sweep(spec, executor=InProcessExecutor())


@pytest.mark.slow
class TestSeedMatrix:
    def test_matrix_covers_every_experiment_and_seed(self, matrix_report):
        assert matrix_report.stats["cells_total"] == \
            len(ALL_EXPERIMENTS) * N_SEEDS
        seen = {(c["experiment_id"], c["base_seed"])
                for c in matrix_report.cells}
        assert seen == {(eid, s) for eid in ALL_EXPERIMENTS
                        for s in range(N_SEEDS)}

    def test_no_cell_errors(self, matrix_report):
        assert matrix_report.ok, [
            (c["experiment_id"], c["base_seed"], c["error"])
            for c in matrix_report.failed]

    @pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
    def test_every_shape_check_holds_on_every_seed(self, matrix_report,
                                                   experiment_id):
        cells = [c for c in matrix_report.cells
                 if c["experiment_id"] == experiment_id]
        assert len(cells) == N_SEEDS
        broken = [
            (cell["base_seed"], check["claim"])
            for cell in cells
            for check in cell["result"]["checks"]
            if not check["holds"]
        ]
        assert broken == []

    def test_aggregate_declares_full_matrix_robust(self, matrix_report):
        aggregated = aggregate(matrix_report.cells)
        assert aggregated["robust"] is True
        assert len(aggregated["verdicts"]) == len(ALL_EXPERIMENTS)
        for verdict in aggregated["verdicts"]:
            assert f"shape holds on {N_SEEDS}/{N_SEEDS} seeds" in verdict
