"""R01/R02 resilience experiments: shape across seeds, table structure."""

import pytest

from tussle.experiments import run_r01, run_r02
from tussle.lint.seedcheck import fingerprint

SEEDS = [0, 1, 2, 3, 4]


class TestR01FaultBlame:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_shape_holds_across_seeds(self, seed):
        result = run_r01(seed=seed)
        failing = [c for c in result.checks if not c.holds]
        assert result.shape_holds, [c.claim for c in failing]

    def test_tables_and_columns(self):
        result = run_r01()
        structural, chaos = result.tables
        assert structural.columns == ["link", "on_primary", "delivered",
                                      "audience", "actionable", "recovered"]
        assert chaos.columns == ["time", "delivered", "location",
                                 "audience", "consistent"]
        # One structural row per link of the dual-homed topology.
        assert len(structural) == 7
        assert len(chaos) == 12

    def test_blame_splits_by_fault_location(self):
        result = run_r01()
        structural = result.tables[0]
        audiences = {row["link"]: row["audience"]
                     for row in structural.rows if not row["delivered"]}
        # Provider-internal faults blame the operator; the user's access
        # link blames the user, whose remedy is choice.
        assert audiences["aC-dst"] == "operator"
        assert audiences["aC-aE"] == "operator"
        assert audiences["aE-u"] == "end-user"

    def test_deterministic_per_seed(self):
        assert fingerprint(run_r01(seed=3)) == fingerprint(run_r01(seed=3))


class TestR02RetryRecovery:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_shape_holds_across_seeds(self, seed):
        result = run_r02(seed=seed)
        failing = [c for c in result.checks if not c.holds]
        assert result.shape_holds, [c.claim for c in failing]

    def test_regime_strategy_matrix_is_complete(self):
        result = run_r02()
        [table] = result.tables
        assert table.columns == ["regime", "strategy", "delivery_rate",
                                 "attempts", "refusals", "trips"]
        combos = {(r["regime"], r["strategy"]) for r in table.rows}
        assert combos == {(regime, strategy)
                          for regime in ("transient", "persistent")
                          for strategy in ("none", "retry", "breaker")}

    @pytest.mark.parametrize("seed", SEEDS)
    def test_retry_contract_quantities(self, seed):
        table = run_r02(seed=seed).tables[0]
        rows = {(r["regime"], r["strategy"]): r for r in table.rows}
        # Retry guarantees delivery through transients at any seed —
        # the jittered schedule always lands an attempt in an up-window.
        assert rows[("transient", "retry")]["delivery_rate"] == 1.0
        assert rows[("persistent", "retry")]["delivery_rate"] == 0.0
        # The breaker spends strictly less on a persistent fault.
        assert (rows[("persistent", "breaker")]["attempts"]
                < rows[("persistent", "retry")]["attempts"])
        assert rows[("persistent", "breaker")]["trips"] >= 1

    def test_deterministic_per_seed(self):
        assert fingerprint(run_r02(seed=2)) == fingerprint(run_r02(seed=2))
