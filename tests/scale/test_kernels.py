"""Kernel-level tests: each kernel equals its scalar counterpart bitwise."""

import random

import numpy as np

from tussle.econ.decision import TIE_EPSILON, amount_paid, effective_offer
from tussle.scale import kernels
from tussle.scale.arrays import ConsumerBatch, MarketArrays


def random_population(n=64, seed=5):
    rng = random.Random(seed)
    values_server = np.array([rng.random() < 0.4 for _ in range(n)])
    batch = ConsumerBatch(
        wtp=np.array([rng.uniform(10.0, 80.0) for _ in range(n)]),
        server_value=np.where(values_server, 25.0, 0.0),
        values_server=values_server,
        switching_cost=np.array([rng.uniform(0.0, 5.0) for _ in range(n)]),
        can_tunnel=np.array([rng.random() < 0.5 for _ in range(n)]),
        tunnel_cost=np.array([rng.uniform(1.0, 4.0) for _ in range(n)]),
    )
    return MarketArrays.from_batch(batch, ["p0", "p1", "p2"])


class TestEffectiveOfferColumn:
    def test_matches_scalar_rule_bitwise(self):
        arrays = random_population()
        for business_price, detects, prohibited in (
            (None, False, True),
            (45.0, False, True),
            (45.0, True, True),
            (45.0, False, False),
        ):
            surplus, tunnels = kernels.effective_offer_column(
                arrays, price=30.0, business_price=business_price,
                detects_tunnels=detects,
                server_prohibited_without_tier=prohibited)
            for i in range(len(arrays)):
                expected_surplus, expected_tunnel = effective_offer(
                    wtp=float(arrays.wtp[i]),
                    values_server=bool(arrays.values_server[i]),
                    server_value=float(arrays.server_value[i]),
                    can_tunnel=bool(arrays.can_tunnel[i]),
                    tunnel_cost=float(arrays.tunnel_cost[i]),
                    price=30.0,
                    business_price=business_price,
                    tiered=business_price is not None,
                    detects_tunnels=detects,
                    server_prohibited_without_tier=prohibited,
                )
                assert surplus[i] == expected_surplus
                assert bool(tunnels[i]) == expected_tunnel


class TestAmountPaidValues:
    def test_matches_scalar_rule_bitwise(self):
        arrays = random_population(seed=9)
        tunnels = arrays.can_tunnel & arrays.values_server
        for business_price, prohibited in ((None, True), (45.0, True),
                                           (45.0, False)):
            paid = kernels.amount_paid_values(
                arrays.wtp, arrays.server_value, arrays.values_server,
                tunnels, price=30.0, business_price=business_price,
                server_prohibited_without_tier=prohibited)
            for i in range(len(arrays)):
                assert paid[i] == amount_paid(
                    wtp=float(arrays.wtp[i]),
                    values_server=bool(arrays.values_server[i]),
                    server_value=float(arrays.server_value[i]),
                    tunnels=bool(tunnels[i]),
                    price=30.0,
                    business_price=business_price,
                    tiered=business_price is not None,
                    server_prohibited_without_tier=prohibited,
                )


class TestBestProvider:
    def test_equal_offers_pick_first_column(self):
        """The tie-breaking contract: equal surplus goes to the first
        (alphabetically-first) provider column."""
        n = 4
        offers = [np.full(n, 7.0), np.full(n, 7.0)]
        tunnels = [np.zeros(n, bool), np.zeros(n, bool)]
        column, raw, tun = kernels.best_provider(
            offers, tunnels, None, np.zeros(n), np.full(n, -1, np.int64))
        assert list(column) == [0] * n
        assert list(raw) == [7.0] * n
        assert not tun.any()

    def test_sub_epsilon_improvement_does_not_displace(self):
        n = 3
        offers = [np.full(n, 7.0), np.full(n, 7.0 + TIE_EPSILON / 2)]
        tunnels = [np.zeros(n, bool), np.zeros(n, bool)]
        column, _, _ = kernels.best_provider(
            offers, tunnels, None, np.zeros(n), np.full(n, -1, np.int64))
        assert list(column) == [0] * n

    def test_switching_cost_charged_only_for_leaving(self):
        offers = [np.array([10.0, 10.0]), np.array([11.0, 11.0])]
        tunnels = [np.zeros(2, bool), np.zeros(2, bool)]
        # Consumer 0 sits at column 1 (no charge to stay), consumer 1 at
        # column 0 (charged 5 to move to the better column 1 -> stays).
        assignment = np.array([1, 0], dtype=np.int64)
        column, _, _ = kernels.best_provider(
            offers, tunnels, None, np.full(2, 5.0), assignment)
        assert list(column) == [1, 0]

    def test_free_switch_ignores_switching_cost(self):
        offers = [np.array([10.0]), np.array([11.0])]
        tunnels = [np.zeros(1, bool), np.zeros(1, bool)]
        column, _, _ = kernels.best_provider(
            offers, tunnels, None, np.full(1, 5.0),
            np.zeros(1, dtype=np.int64), free_switch=True)
        assert list(column) == [1]

    def test_taste_breaks_symmetry(self):
        offers = [np.full(2, 7.0), np.full(2, 7.0)]
        tunnels = [np.zeros(2, bool), np.zeros(2, bool)]
        taste = np.array([[0.0, 1.0], [1.0, 0.0]])
        column, _, _ = kernels.best_provider(
            offers, tunnels, taste, np.zeros(2), np.full(2, -1, np.int64))
        assert list(column) == [1, 0]


class TestMasksAndReductions:
    def test_switching_masks(self):
        assignment = np.array([0, 1, -1, 2], dtype=np.int64)
        best = np.array([0, 0, 0, 1], dtype=np.int64)
        moved, switched = kernels.switching_masks(assignment, best)
        assert list(moved) == [False, True, True, True]
        assert list(switched) == [False, True, False, True]

    def test_ordered_total_matches_sequential_sum(self):
        rng = random.Random(3)
        deltas = np.array(
            [[rng.uniform(-1e6, 1e6) for _ in range(2)] for _ in range(257)])
        total = 0.0
        for row in deltas:
            total += row[0]
            total += row[1]
        assert kernels.ordered_total(deltas) == total

    def test_ordered_total_empty(self):
        assert kernels.ordered_total(np.empty((0, 2))) == 0.0

    def test_per_provider_revenue_matches_sequential_walk(self):
        rng = random.Random(8)
        n, p = 101, 3
        paid = np.array([rng.uniform(1.0, 60.0) for _ in range(n)])
        best = np.array([rng.randrange(p) for _ in range(n)], dtype=np.int64)
        stays = np.array([rng.random() < 0.8 for _ in range(n)])
        expected = [0.0] * p
        for i in range(n):
            if stays[i]:
                expected[best[i]] += paid[i]
        revenue = kernels.per_provider_revenue(paid, best, stays, p)
        assert list(revenue) == expected

    def test_subscriber_counts_ignore_unsubscribed(self):
        assignment = np.array([0, 0, 1, -1, -1, 2], dtype=np.int64)
        assert list(kernels.subscriber_counts(assignment, 4)) == [2, 1, 1, 0]

    def test_round_kernel_bytes_scales_with_population(self):
        small = kernels.round_kernel_bytes(1_000, 3, True)
        big = kernels.round_kernel_bytes(10_000, 3, True)
        assert big == 10 * small > 0
