"""Blocking scalar-vs-vector parity gate.

Every experiment-derived market configuration must produce *identical*
round records and final per-consumer state from ``Market`` and
``VectorMarket`` — across all parity seeds.  A single mismatch here
means the vector backend has diverged and L01/L02 results can no longer
be trusted as restatements of E01/E02.
"""

import pytest

from tussle.scale import __main__ as scale_cli
from tussle.scale.parity import (
    PARITY_SEEDS,
    parity_cases,
    run_parity,
    verify_case,
)


def test_case_catalog_covers_e01_e02_e03():
    labels = [case.label for case in parity_cases()]
    assert len(labels) == len(set(labels))
    assert sum(label.startswith("e01") for label in labels) == 4
    assert sum(label.startswith("e02") for label in labels) == 5
    assert sum(label.startswith("e03") for label in labels) == 6


def test_parity_holds_across_all_cases_and_seeds():
    reports = run_parity()
    assert len(reports) == len(parity_cases()) * len(PARITY_SEEDS)
    failures = [r for r in reports if not r.ok]
    assert not failures, "\n".join(
        f"{r.label} seed={r.seed}: {r.mismatches[:2]}" for r in failures)


def test_verify_case_reports_rounds_and_population():
    case = parity_cases()[0]
    report = verify_case(case, seed=PARITY_SEEDS[0])
    assert report.ok
    assert report.rounds == case.rounds
    assert report.n_consumers > 0
    # No divergence to localize on a clean case.
    assert report.divergence is None


def test_mismatch_is_localized_to_first_divergent_round():
    """A sabotaged vector history pinpoints the first bad round record."""
    from tussle.obs.diff import first_divergence
    from tussle.scale.parity import _round_lines
    from tussle.scale.vmarket import VectorMarket

    case = parity_cases()[0]
    market = VectorMarket(**case.spec(seed=PARITY_SEEDS[0]))
    market.run(case.rounds)
    healthy = _round_lines(market.history)
    perturbed_round = market.history[5]
    perturbed_round.switches += 1
    divergence = first_divergence(healthy, _round_lines(market.history))
    # _round_lines re-serializes from live objects, so the perturbation
    # shows up exactly at round 5 with the changed field named.
    assert divergence is not None and divergence.index == 5
    assert "switches" in divergence.changed_fields


class TestCli:
    def test_parity_subcommand_exits_clean(self, capsys):
        assert scale_cli.main(["parity", "--seeds", "7"]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out
        assert "report(s) clean" in out

    def test_json_output(self, capsys):
        import json

        assert scale_cli.main(["parity", "--seeds", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["seeds"] == [7]
        assert all(r["ok"] for r in payload["reports"])
