"""VectorMarket behaviour: drop-in surface, batch/object equivalence, obs."""

import numpy as np
import pytest

from tussle import obs
from tussle.econ.agents import Consumer, Provider
from tussle.econ.market import Market, MarketRound
from tussle.econ.pricing import UndercutPricing
from tussle.errors import MarketError, ScaleError
from tussle.scale.large import lockin_batch, lockin_market_at_scale
from tussle.scale.vmarket import VectorMarket


def two_provider_market(**kwargs):
    providers = [
        Provider(name="cheap", price=10.0, unit_cost=2.0),
        Provider(name="dear", price=30.0, unit_cost=2.0),
    ]
    consumers = [
        Consumer(name=f"c{i}", wtp=50.0, switching_cost=1.0)
        for i in range(4)
    ]
    return VectorMarket(providers=providers, consumers=consumers, **kwargs)


class TestConstruction:
    def test_needs_providers(self):
        with pytest.raises(MarketError):
            VectorMarket(providers=[], consumers=[])

    def test_unique_provider_names(self):
        providers = [Provider(name="p", price=1.0),
                     Provider(name="p", price=2.0)]
        with pytest.raises(MarketError):
            VectorMarket(providers=providers, consumers=[])

    def test_exactly_one_population_source(self):
        providers = [Provider(name="p", price=1.0)]
        batch = lockin_batch(1.0, 3, seed=0)
        with pytest.raises(ScaleError):
            VectorMarket(providers=providers)
        with pytest.raises(ScaleError):
            VectorMarket(providers=providers, consumers=[],
                         batch=batch)

    def test_initial_free_choice_picks_best(self):
        market = two_provider_market()
        assert list(market.arrays.assignment) == [0] * 4


class TestRounds:
    def test_step_emits_market_round(self):
        market = two_provider_market()
        record = market.step()
        assert isinstance(record, MarketRound)
        assert record.index == 0
        assert record.mean_price == 20.0
        assert set(record.shares) == {"cheap", "dear"}
        assert market.history == [record]

    def test_measurement_surface_matches_market(self):
        market = two_provider_market()
        market.run(3)
        assert len(market.history) == 3
        assert market.total_switches() >= 0
        assert market.mean_price() > 0
        assert market.subscribed_fraction() == 1.0
        assert market.total_consumer_surplus() > 0

    def test_negative_surplus_consumers_leave(self):
        providers = [Provider(name="only", price=60.0, unit_cost=2.0)]
        consumers = [Consumer(name="c0", wtp=10.0)]
        market = VectorMarket(providers=providers, consumers=consumers)
        market.step()
        assert market.subscribed_fraction() == 0.0
        assert market.arrays.provider_of(0) is None


class TestBatchEquivalence:
    def test_batch_and_object_paths_bitwise_identical(self):
        """A ConsumerBatch market equals the same population built from
        Consumer objects, round record for round record."""
        batch = lockin_batch(3.0, 50, seed=21)
        from_batch = lockin_market_at_scale(3.0, 50, seed=21)
        from_objects = VectorMarket(
            providers=[
                Provider(name="incumbent", price=45.0, unit_cost=5.0),
                Provider(name="rival-a", price=40.0, unit_cost=5.0),
                Provider(name="rival-b", price=42.0, unit_cost=5.0),
            ],
            consumers=batch.to_consumers(),
            strategies=dict(from_batch.strategies),
            seed=21,
        )
        # Strategies are stateless dataclasses here, but give each market
        # its own instances to be safe.
        from_batch.run(10)
        from_objects_history = from_objects.run(10)
        for ours, theirs in zip(from_batch.history, from_objects_history):
            assert ours == theirs


class TestObservability:
    def test_kernel_metrics_recorded_when_observing(self):
        with obs.observe(metrics=obs.Metrics()) as ctx:
            market = two_provider_market()
            market.run(2)
            snapshot = ctx.metrics.snapshot()
        scope = snapshot["scale.kernel"]
        assert scope["counters"]["rounds"] == 2
        assert "switches" in scope["counters"]
        assert scope["histograms"]["kernel_bytes"]["count"] == 2

    def test_disabled_by_default(self):
        market = two_provider_market()
        assert market._c_rounds is None
        market.run(1)
