"""Large-N builders and the L01/L02 experiments at their default tier."""

import numpy as np

from tussle.econ.market import Market
from tussle.experiments import ALL_EXPERIMENTS
from tussle.experiments.e01_lockin import lockin_market_spec
from tussle.experiments.e02_value_pricing import value_pricing_market_spec
from tussle.scale.large import (
    DEFAULT_TIERS,
    lockin_batch,
    lockin_market_at_scale,
    run_l01,
    run_l02,
    value_pricing_batch,
    value_pricing_market_at_scale,
)


class TestBuilders:
    def test_lockin_batch_matches_scalar_spec_population(self):
        """At matching N the batch replays the E01 spec's RNG stream."""
        n = 40
        batch = lockin_batch(3.0, n, seed=13)
        scalar = Market(**lockin_market_spec(3.0, n, seed=13))
        consumers = scalar.consumers
        assert len(consumers) == n
        np.testing.assert_array_equal(
            batch.wtp, [c.wtp for c in consumers])
        assert batch.initial_provider == "incumbent"
        assert float(batch.switching_cost[0]) == 3.0

    def test_value_pricing_batch_matches_scalar_spec_population(self):
        n = 45
        batch = value_pricing_batch(n, can_tunnel=True, seed=17)
        scalar = Market(
            **value_pricing_market_spec(2, True, False, n, seed=17))
        consumers = scalar.consumers
        np.testing.assert_array_equal(
            batch.wtp, [c.wtp for c in consumers])
        np.testing.assert_array_equal(
            batch.values_server, [c.values_server() for c in consumers])
        np.testing.assert_array_equal(
            batch.can_tunnel, [c.can_tunnel for c in consumers])

    def test_market_builders_wire_strategies(self):
        market = lockin_market_at_scale(2.0, 100, seed=3)
        assert set(market.providers) == {"incumbent", "rival-a", "rival-b"}
        assert "incumbent" in market.strategies
        market = value_pricing_market_at_scale(
            2, can_tunnel=True, detects_tunnels=False,
            n_consumers=100, seed=3)
        assert set(market.providers) == {"isp0", "isp1"}


class TestL01:
    def test_default_tier_claim_holds(self):
        result = run_l01()
        assert result.shape_holds
        assert all(c.holds for c in result.checks)
        table = result.tables[0]
        assert set(table.column("n")) == set(DEFAULT_TIERS)
        # One row per addressing scenario per tier.
        assert len(table.rows) == 4 * len(DEFAULT_TIERS)

    def test_registered_in_catalog(self):
        assert ALL_EXPERIMENTS["L01"] is run_l01
        assert ALL_EXPERIMENTS["L02"] is run_l02


class TestL02:
    def test_default_tier_claim_holds(self):
        result = run_l02()
        assert result.shape_holds
        assert all(c.holds for c in result.checks)
        table = result.tables[0]
        assert set(table.column("n")) == set(DEFAULT_TIERS)
        assert len(table.rows) == 5 * len(DEFAULT_TIERS)

    def test_seed_changes_numbers_not_shape(self):
        a = run_l02(seed=11)
        b = run_l02(seed=12)
        assert a.shape_holds and b.shape_holds
        assert a.tables[0].column("market") == b.tables[0].column("market")
