"""Tests for the structure-of-arrays population snapshots."""

import random

import numpy as np
import pytest

from tussle.econ.agents import Consumer, Provider
from tussle.econ.demand import Segment
from tussle.econ.market import Market
from tussle.errors import ScaleError
from tussle.scale.arrays import ConsumerBatch, MarketArrays


def make_consumers(n=6):
    consumers = []
    for i in range(n):
        business = i % 2 == 0
        consumers.append(Consumer(
            name=f"c{i}",
            wtp=20.0 + i,
            segment=Segment.BUSINESS if business else Segment.BASIC,
            switching_cost=1.5,
            server_value=10.0 if business else 0.0,
            can_tunnel=business,
            tunnel_cost=3.0,
            provider="alpha" if i < 3 else None,
        ))
    return consumers


class TestConsumerBatch:
    def test_columns_coerced_and_sized(self):
        batch = ConsumerBatch(
            wtp=[10.0, 20.0],
            server_value=[0.0, 5.0],
            values_server=[False, True],
            switching_cost=[1.0, 1.0],
            can_tunnel=[False, True],
            tunnel_cost=[2.0, 2.0],
        )
        assert len(batch) == 2
        assert batch.wtp.dtype == np.float64
        assert batch.values_server.dtype == bool

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ScaleError):
            ConsumerBatch(
                wtp=[10.0, 20.0],
                server_value=[0.0],
                values_server=[False, True],
                switching_cost=[1.0, 1.0],
                can_tunnel=[False, True],
                tunnel_cost=[2.0, 2.0],
            )

    def test_to_consumers_round_trips_attributes(self):
        batch = ConsumerBatch(
            wtp=[10.0, 20.0],
            server_value=[0.0, 5.0],
            values_server=[False, True],
            switching_cost=[1.0, 2.0],
            can_tunnel=[False, True],
            tunnel_cost=[2.0, 3.0],
            initial_provider="alpha",
            name_prefix="home",
        )
        consumers = batch.to_consumers()
        assert [c.name for c in consumers] == ["home0", "home1"]
        assert consumers[1].values_server()
        assert not consumers[0].values_server()
        assert consumers[0].provider == "alpha"
        assert consumers[1].wtp == 20.0
        assert consumers[1].tunnel_cost == 3.0


class TestMarketArrays:
    def test_from_consumers_snapshots_state(self):
        consumers = make_consumers()
        arrays = MarketArrays.from_consumers(consumers, ["alpha", "beta"])
        assert len(arrays) == 6
        assert arrays.n_providers == 2
        assert list(arrays.assignment[:3]) == [0, 0, 0]
        assert list(arrays.assignment[3:]) == [-1, -1, -1]
        assert arrays.provider_of(0) == "alpha"
        assert arrays.provider_of(3) is None
        np.testing.assert_array_equal(
            arrays.values_server,
            [c.values_server() for c in consumers])

    def test_unknown_initial_provider_rejected(self):
        consumer = Consumer(name="c0", wtp=10.0, provider="nowhere")
        with pytest.raises(ScaleError):
            MarketArrays.from_consumers([consumer], ["alpha"])

    def test_from_batch_unknown_provider_rejected(self):
        batch = ConsumerBatch(
            wtp=[10.0],
            server_value=[0.0],
            values_server=[False],
            switching_cost=[0.0],
            can_tunnel=[False],
            tunnel_cost=[2.0],
            initial_provider="nowhere",
        )
        with pytest.raises(ScaleError):
            MarketArrays.from_batch(batch, ["alpha"])

    def test_nbytes_counts_all_columns(self):
        arrays = MarketArrays.from_consumers(
            make_consumers(), ["alpha", "beta"],
            preference_noise=1.0, seed=4)
        without_taste = MarketArrays.from_consumers(
            make_consumers(), ["alpha", "beta"])
        assert arrays.nbytes() > without_taste.nbytes() > 0

    def test_taste_matrix_replays_the_scalar_stream(self):
        """Element [i, j] must be the scalar market's taste draw."""
        consumers = make_consumers()
        providers = [
            Provider(name="beta", price=10.0),
            Provider(name="alpha", price=11.0),
        ]
        for consumer in consumers:
            consumer.provider = None
        market = Market(providers=providers, consumers=consumers,
                        preference_noise=2.0, seed=99)
        taste = MarketArrays.taste_matrix(len(consumers), 2, 2.0, seed=99)
        for i, consumer in enumerate(consumers):
            for j, name in enumerate(sorted(market.providers)):
                assert taste[i, j] == market._taste[(consumer.name, name)]

    def test_taste_matrix_none_without_noise(self):
        assert MarketArrays.taste_matrix(5, 2, 0.0, seed=1) is None
