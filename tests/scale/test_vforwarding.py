"""Units for the netsim vector stack: arrays, engine, and flow backend."""

import numpy as np
import pytest

from tussle.errors import ScaleError
from tussle.netsim.topology import dumbbell_topology, line_topology, star_topology
from tussle.scale.flowsim import FlowArrays, FlowSim, random_flows
from tussle.scale.narrays import (
    FibArrays,
    LinkArrays,
    NetIndex,
    PacketArrays,
    packets_from_traffic,
    traffic_stream,
)
from tussle.scale.nkernels import DELIVERED, LINK_DOWN, NO_ROUTE
from tussle.scale.vforwarding import VectorForwardingEngine


class TestNetIndex:
    def test_follows_insertion_order(self):
        net = star_topology(3)
        index = NetIndex.from_network(net)
        assert index.names == net.node_names()
        assert index.of(index.names[0]) == 0

    def test_unknown_node_raises(self):
        index = NetIndex(["a", "b"])
        with pytest.raises(ScaleError):
            index.of("ghost")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ScaleError):
            NetIndex(["a", "a"])


class TestLinkArrays:
    def test_planes_are_symmetric(self):
        net = line_topology(4)
        links = LinkArrays.from_network(net, NetIndex.from_network(net))
        assert np.array_equal(links.latency, links.latency.T)
        assert np.array_equal(links.usable, links.usable.T)

    def test_failed_link_is_unusable(self):
        net = line_topology(3)
        net.fail_link("n0", "n1")
        index = NetIndex.from_network(net)
        links = LinkArrays.from_network(net, index)
        assert not links.usable[index.of("n0"), index.of("n1")]
        assert links.usable[index.of("n1"), index.of("n2")]


class TestTrafficStream:
    def test_is_deterministic_per_seed(self):
        names = star_topology(5).node_names()
        assert traffic_stream(names, 50, 7) == traffic_stream(names, 50, 7)
        assert traffic_stream(names, 50, 7) != traffic_stream(names, 50, 8)

    def test_never_sends_to_self(self):
        names = star_topology(5).node_names()
        assert all(src != dst
                   for src, dst, _ in traffic_stream(names, 200, 3))

    def test_scalar_and_vector_views_share_draws(self):
        net = star_topology(4)
        traffic = traffic_stream(net.node_names(), 30, 11)
        packets = packets_from_traffic(traffic)
        batch = PacketArrays.from_traffic(traffic,
                                          NetIndex.from_network(net))
        index = NetIndex.from_network(net)
        for i, packet in enumerate(packets):
            assert index.of(packet.header.src) == int(batch.src[i])
            assert index.of(packet.header.dst) == int(batch.dst[i])
            assert packet.header.tos == int(batch.tos[i])


class TestVectorEngine:
    def test_install_table_invalidates_fib_cache(self):
        net = line_topology(3)
        engine = VectorForwardingEngine(net)
        engine.install_shortest_path_tables()
        index = NetIndex.from_network(net)

        batch = PacketArrays.from_traffic([("n0", "n2", 0)], index)
        engine.send_batch(batch)
        assert int(batch.status[0]) == DELIVERED

        engine.install_table("n1", {})  # drop n1's routes
        batch = PacketArrays.from_traffic([("n0", "n2", 0)], index)
        engine.send_batch(batch)
        assert int(batch.status[0]) == NO_ROUTE

    def test_delivery_rate_matches_history(self):
        net = dumbbell_topology(3, 3)
        engine = VectorForwardingEngine(net)
        engine.install_shortest_path_tables()
        traffic = traffic_stream(net.node_names(), 60, 5)
        batch = PacketArrays.from_traffic(traffic,
                                          NetIndex.from_network(net))
        engine.send_batch(batch)
        delivered = int(np.count_nonzero(batch.status == DELIVERED))
        assert engine.delivery_rate() == delivered / 60

    def test_qos_round_zero_classification(self):
        net = line_topology(2)
        engine = VectorForwardingEngine(net)
        engine.install_shortest_path_tables()
        batch = PacketArrays.from_traffic(
            [("n0", "n1", 10), ("n0", "n1", 0), ("n1", "n0", 10)],
            NetIndex.from_network(net))
        rounds = engine.send_batch(batch, tos_threshold=8,
                                   bill_per_packet=0.5)
        assert rounds[0].prioritized == 2
        assert rounds[0].revenue == 1.0
        assert all(r.revenue == 0.0 for r in rounds[1:])
        assert list(batch.prioritized) == [True, False, True]


class TestFlowSim:
    def test_path_table_agrees_with_vector_engine(self):
        net = dumbbell_topology(4, 4)
        sim = FlowSim(net)
        engine = VectorForwardingEngine(net)
        engine.install_shortest_path_tables()
        index = NetIndex.from_network(net)

        pairs = [(src, dst) for src in index.names for dst in index.names
                 if src != dst]
        batch = PacketArrays.from_traffic(
            [(src, dst, 0) for src, dst in pairs], index)
        engine.send_batch(batch)
        for k, (src, dst) in enumerate(pairs):
            i, j = index.of(src), index.of(dst)
            assert sim.path_status(i, j) == int(batch.status[k])
            assert sim.path_latency(i, j) == float(batch.latency[k])

    def test_flow_population_is_conserved(self):
        net = dumbbell_topology(4, 4)
        sim = FlowSim(net)
        flows = random_flows(5_000, len(sim.index), seed=3)
        report = sim.route(flows)
        assert (report.delivered + report.no_route + report.link_down
                + report.ttl_exceeded) == len(flows)
        assert report.delivery_rate == 1.0
        assert report.demand_delivered == pytest.approx(
            report.demand_offered)

    def test_bottleneck_carries_all_cross_demand(self):
        net = dumbbell_topology(3, 3, bottleneck_capacity=1.0)
        sim = FlowSim(net)
        index = sim.index
        demand = np.full(4, 0.75)
        flows = FlowArrays(
            src=np.array([index.of("src0")] * 4),
            dst=np.array([index.of("dst0")] * 4),
            demand=demand,
        )
        report = sim.route(flows)
        assert report.utilization["L<->R"] == pytest.approx(3.0)
        assert report.oversubscribed() == ["L<->R"]

    def test_partitioned_flows_report_no_route(self):
        from tussle.netsim.topology import Network
        net = Network()
        for name in ("a0", "a1", "b0", "b1"):
            net.add_node(name)
        net.add_link("a0", "a1", latency=0.01)
        net.add_link("b0", "b1", latency=0.01)
        sim = FlowSim(net)
        flows = FlowArrays(
            src=np.array([sim.index.of("a0")]),
            dst=np.array([sim.index.of("b0")]),
            demand=np.array([1.0]),
        )
        report = sim.route(flows)
        assert report.no_route == 1
        assert report.delivered == 0

    def test_random_flows_reproducible_and_valid(self):
        one = random_flows(1_000, 10, seed=9)
        two = random_flows(1_000, 10, seed=9)
        assert np.array_equal(one.src, two.src)
        assert np.array_equal(one.dst, two.dst)
        assert np.array_equal(one.demand, two.demand)
        assert not np.any(one.src == one.dst)
        assert np.all(one.demand > 0)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ScaleError):
            FlowArrays(src=np.zeros(3, dtype=np.int64),
                       dst=np.zeros(2, dtype=np.int64),
                       demand=np.ones(3))
