"""The netsim parity gate, and the meta-test that proves it has teeth.

The gate itself (every topology configuration x every seed, byte
identity between scalar and vector round records) runs as a blocking
test.  The meta-tests then sabotage one kernel constant at a time and
assert the gate *catches* it with a localized first divergence — a gate
that cannot fail is not a gate.
"""

import numpy as np
import pytest

from tussle.netsim.decision import MAX_TTL
from tussle.obs.diff import format_divergence
from tussle.scale import nkernels
from tussle.scale.nparity import (
    NetParityCase,
    netsim_parity_cases,
    run_netsim_parity,
    verify_netsim_case,
)
from tussle.scale.parity import PARITY_SEEDS


def _fail_message(report):
    lines = [f"{report.label} seed={report.seed}:"] + report.mismatches
    if report.divergence is not None:
        lines.append(format_divergence(report.divergence, "scalar",
                                       "vector"))
    return "\n".join(lines)


class TestNetsimParityGate:
    def test_gate_covers_enough_configurations(self):
        cases = netsim_parity_cases()
        assert len(cases) >= 10
        assert len(PARITY_SEEDS) >= 5
        assert len({case.label for case in cases}) == len(cases)

    def test_vector_backend_is_byte_identical_everywhere(self):
        reports = run_netsim_parity()
        failures = [r for r in reports if not r.ok]
        assert not failures, "\n\n".join(
            _fail_message(report) for report in failures)
        assert len(reports) == len(netsim_parity_cases()) * len(PARITY_SEEDS)

    def test_adversarial_shapes_actually_exercise_failure_lanes(self):
        """The gate must compare failures, not only happy deliveries."""
        by_label = {case.label: case for case in netsim_parity_cases()}
        for label in ("partitioned", "star-14-failed-links",
                      "dumbbell-zero-capacity", "loop-tables"):
            report = verify_netsim_case(by_label[label], seed=7)
            assert report.ok, _fail_message(report)
        # The looping tables must drive packets all the way to the TTL
        # bound, so the TTL-exceeded lane is genuinely compared.
        report = verify_netsim_case(by_label["loop-tables"], seed=7)
        assert report.rounds == MAX_TTL + 1


def _qos_case():
    """The smallest QoS-billing case: divergences land in round 0."""
    return netsim_parity_cases()[0]  # line-8, bill_per_packet=0.75


class TestGateHasTeeth:
    def test_perturbed_priority_threshold_is_caught_in_round_zero(
            self, monkeypatch):
        real = nkernels.priority_mask

        def perturbed(tos, threshold):
            return real(tos, threshold + 1)

        monkeypatch.setattr(nkernels, "priority_mask", perturbed)
        report = verify_netsim_case(_qos_case(), seed=7)
        assert not report.ok
        assert any("prioritized" in line or "revenue" in line
                   for line in report.mismatches)
        assert report.divergence is not None
        assert report.divergence.index == 0
        assert {"prioritized", "revenue"} & set(
            report.divergence.changed_fields)

    def test_perturbed_latency_kernel_is_caught_and_localized(
            self, monkeypatch):
        real = nkernels.hop_latency_deltas

        def perturbed(latency, current, hop, moving):
            return real(latency, current, hop, moving) + np.where(
                moving, 1e-9, 0.0)

        monkeypatch.setattr(nkernels, "hop_latency_deltas", perturbed)
        report = verify_netsim_case(_qos_case(), seed=7)
        assert not report.ok
        assert any("latency" in line for line in report.mismatches)
        assert report.divergence is not None
        # Latency kernels only run from round 1 on; round 0 must agree.
        assert report.divergence.index >= 1
        assert "latency" in report.divergence.changed_fields

    def test_perturbed_ttl_bound_is_caught(self, monkeypatch):
        real = nkernels.no_route_mask

        def perturbed(active, hop):
            # Misroute: claim the first active packet has no route.
            mask = real(active, hop)
            out = mask.copy()
            active_idx = np.flatnonzero(active)
            if active_idx.size:
                out[active_idx[0]] = True
            return out

        monkeypatch.setattr(nkernels, "no_route_mask", perturbed)
        report = verify_netsim_case(_qos_case(), seed=7)
        assert not report.ok
        assert report.divergence is not None

    def test_unperturbed_rerun_is_clean(self):
        """Monkeypatches must not leak across tests."""
        report = verify_netsim_case(_qos_case(), seed=7)
        assert report.ok, _fail_message(report)


class TestOracleRefusesUnvectorizedSemantics:
    def test_middlebox_attachment_is_rejected(self):
        from tussle.errors import ScaleError
        from tussle.netsim.topology import line_topology
        from tussle.scale.vforwarding import VectorForwardingEngine

        engine = VectorForwardingEngine(line_topology(3))
        with pytest.raises(ScaleError):
            engine.attach_middlebox("n1", object())
