"""Tests for coupled tussle spaces (dynamic isolation)."""

import pytest

from tussle.errors import DesignError, TussleError
from tussle.core.coupling import MultiSpaceSimulator
from tussle.core.design import Design
from tussle.core.mechanisms import Mechanism
from tussle.core.stakeholders import Stakeholder, StakeholderKind
from tussle.core.tussle import TussleSpace


def hot_space(name="hot"):
    space = TussleSpace(name, initial_state={"x": 0.5})
    space.add_mechanism(Mechanism(name=f"{name}-knob", variable="x",
                                  allowed_range=(0.5, 0.5)))
    a = Stakeholder("a", StakeholderKind.USER, workaround_cost=0.05)
    a.add_interest("x", target=1.0)
    b = Stakeholder("b", StakeholderKind.COMMERCIAL_ISP, workaround_cost=0.05)
    b.add_interest("x", target=0.0)
    space.add_stakeholder(a)
    space.add_stakeholder(b)
    return space


def calm_space(name="calm"):
    space = TussleSpace(name, initial_state={"y": 0.2})
    space.add_mechanism(Mechanism(name=f"{name}-knob", variable="y"))
    solo = Stakeholder("solo", StakeholderKind.USER)
    solo.add_interest("y", target=0.9)
    space.add_stakeholder(solo)
    return space


def monolith_layout():
    design = Design("monolith")
    design.add_module("m")
    return design, {"hot": "m", "calm": "m"}


def split_layout():
    design = Design("split")
    design.add_module("m1")
    design.add_module("m2")
    return design, {"hot": "m1", "calm": "m2"}


class TestValidation:
    def test_placement_required_for_every_space(self):
        design, _ = monolith_layout()
        with pytest.raises(DesignError):
            MultiSpaceSimulator(design, [hot_space()], placement={})

    def test_placement_module_must_exist(self):
        design, _ = monolith_layout()
        with pytest.raises(DesignError):
            MultiSpaceSimulator(design, [hot_space()],
                                placement={"hot": "ghost"})

    def test_space_names_unique(self):
        design, placement = monolith_layout()
        with pytest.raises(TussleError):
            MultiSpaceSimulator(design, [hot_space("hot"), hot_space("hot")],
                                placement=placement)


class TestCoupling:
    def test_colocated_hot_space_breaks_bystander(self):
        design, placement = monolith_layout()
        simulator = MultiSpaceSimulator(design, [hot_space(), calm_space()],
                                        placement=placement,
                                        workaround_damage=0.1)
        result = simulator.run(20)
        calm = result.record_for("calm")
        assert calm.broken
        assert calm.own_workarounds == 0
        assert result.collateral_breakage() == ["calm"]

    def test_separated_bystander_untouched(self):
        design, placement = split_layout()
        simulator = MultiSpaceSimulator(design, [hot_space(), calm_space()],
                                        placement=placement,
                                        workaround_damage=0.1)
        result = simulator.run(20)
        calm = result.record_for("calm")
        assert not calm.broken
        assert calm.final_integrity == 1.0
        assert result.collateral_breakage() == []

    def test_hot_space_breaks_its_own_module_either_way(self):
        for layout in (monolith_layout, split_layout):
            design, placement = layout()
            simulator = MultiSpaceSimulator(design,
                                            [hot_space(), calm_space()],
                                            placement=placement,
                                            workaround_damage=0.1)
            result = simulator.run(20)
            assert result.record_for("hot").broken

    def test_broken_module_stops_running(self):
        design, placement = monolith_layout()
        simulator = MultiSpaceSimulator(design, [hot_space()],
                                        placement={"hot": "m"},
                                        workaround_damage=0.3)
        result = simulator.run(20)
        hot = result.record_for("hot")
        # Breaks after round 1 (2 workarounds x 0.3); no further damage.
        assert hot.broken
        assert hot.own_workarounds == 2

    def test_calm_space_settles_and_keeps_welfare(self):
        design, placement = split_layout()
        simulator = MultiSpaceSimulator(design, [hot_space(), calm_space()],
                                        placement=placement)
        result = simulator.run(20)
        assert result.record_for("calm").final_welfare == pytest.approx(0.0)

    def test_unknown_record_raises(self):
        design, placement = split_layout()
        simulator = MultiSpaceSimulator(design, [hot_space(), calm_space()],
                                        placement=placement)
        result = simulator.run(2)
        with pytest.raises(TussleError):
            result.record_for("ghost")
