"""Tests for the tussle adaptation simulator."""

import pytest

from tussle.core.mechanisms import Mechanism, MoveKind
from tussle.core.simulator import TussleSimulator
from tussle.core.stakeholders import Stakeholder, StakeholderKind
from tussle.core.tussle import TussleSpace


def contested_space(knob_range=(0.0, 1.0), can_workaround=True,
                    workaround_cost=0.05):
    space = TussleSpace("arena", initial_state={"x": 0.5})
    space.add_mechanism(Mechanism(name="knob", variable="x",
                                  allowed_range=knob_range))
    users = Stakeholder("users", StakeholderKind.USER,
                        can_workaround=can_workaround,
                        workaround_cost=workaround_cost)
    users.add_interest("x", target=1.0)
    providers = Stakeholder("providers", StakeholderKind.COMMERCIAL_ISP,
                            can_workaround=can_workaround,
                            workaround_cost=workaround_cost)
    providers.add_interest("x", target=0.0)
    space.add_stakeholder(providers)
    space.add_stakeholder(users)
    return space


def one_sided_space():
    space = TussleSpace("calm", initial_state={"x": 0.2})
    space.add_mechanism(Mechanism(name="knob", variable="x"))
    users = Stakeholder("users", StakeholderKind.USER)
    users.add_interest("x", target=0.9)
    space.add_stakeholder(users)
    return space


class TestFlexibleDesign:
    def test_endless_in_design_tussle_never_breaks(self):
        simulator = TussleSimulator(contested_space())
        outcome = simulator.run(50)
        assert outcome.survived
        assert outcome.final_integrity == 1.0
        assert outcome.total_workarounds == 0
        assert not outcome.settled  # "no final outcome"

    def test_moves_use_the_knob(self):
        simulator = TussleSimulator(contested_space())
        record = simulator.step()
        assert record.moves
        assert all(m.kind is MoveKind.WITHIN_DESIGN for m in record.moves)
        assert all(m.mechanism == "knob" for m in record.moves)


class TestRigidDesign:
    def test_workarounds_break_the_design(self):
        space = contested_space(knob_range=(0.5, 0.5))
        simulator = TussleSimulator(space, workaround_damage=0.1)
        outcome = simulator.run(50)
        assert outcome.broken
        assert outcome.total_workarounds > 0
        assert outcome.final_integrity < 0.5
        assert outcome.broken_at is not None

    def test_incapable_stakeholders_cannot_work_around(self):
        space = contested_space(knob_range=(0.5, 0.5), can_workaround=False)
        simulator = TussleSimulator(space)
        outcome = simulator.run(20)
        assert outcome.survived
        assert outcome.total_moves == 0
        assert outcome.settled  # nothing anyone can do: a frozen stalemate

    def test_expensive_workarounds_deter(self):
        space = contested_space(knob_range=(0.5, 0.5), workaround_cost=10.0)
        simulator = TussleSimulator(space)
        outcome = simulator.run(20)
        assert outcome.total_workarounds == 0
        assert outcome.survived


class TestSettlement:
    def test_uncontested_space_settles(self):
        simulator = TussleSimulator(one_sided_space())
        outcome = simulator.run(20)
        assert outcome.settled
        assert outcome.settled_at is not None
        assert simulator.space.state["x"] == pytest.approx(0.9)

    def test_settled_run_stops_early(self):
        simulator = TussleSimulator(one_sided_space(), settle_rounds=2)
        outcome = simulator.run(100)
        assert outcome.rounds_run < 100


class TestAccounting:
    def test_history_snapshots_are_copies(self):
        simulator = TussleSimulator(contested_space())
        simulator.run(3)
        states = [r.state for r in simulator.history]
        assert states[0] is not states[1]

    def test_workaround_fraction(self):
        space = contested_space(knob_range=(0.5, 0.5))
        simulator = TussleSimulator(space, workaround_damage=0.01)
        outcome = simulator.run(10)
        assert outcome.workaround_fraction == 1.0

    def test_stakeholder_move_counters(self):
        space = contested_space(knob_range=(0.5, 0.5))
        simulator = TussleSimulator(space, workaround_damage=0.01)
        simulator.run(5)
        users = space.stakeholder("users")
        assert users.moves_made > 0
        assert users.workarounds_made == users.moves_made
        assert users.total_move_costs > 0

    def test_controller_restrictions_respected(self):
        space = TussleSpace("arena", initial_state={"x": 0.5})
        space.add_mechanism(Mechanism(
            name="isp-only", variable="x",
            controllers=frozenset({StakeholderKind.COMMERCIAL_ISP})))
        users = Stakeholder("users", StakeholderKind.USER,
                            can_workaround=False)
        users.add_interest("x", target=1.0)
        space.add_stakeholder(users)
        simulator = TussleSimulator(space)
        outcome = simulator.run(5)
        assert outcome.total_moves == 0  # users cannot reach the knob
