"""Tests for design objects and principle metrics."""

import pytest

from tussle.errors import DesignError
from tussle.core.design import Design
from tussle.core.mechanisms import Mechanism
from tussle.core.principles import (
    choice_index,
    isolation_score,
    openness_score,
    rigidity,
    scorecard,
)


def entangled_design():
    design = Design("entangled")
    design.add_module("monolith")
    design.place_function("monolith", "resolve",
                          tussle_spaces=["trademark", "naming"])
    design.place_function("monolith", "cache")
    return design


def separated_design():
    design = Design("separated")
    design.add_module("directory")
    design.add_module("naming")
    design.place_function("directory", "resolve-human",
                          tussle_spaces=["trademark"])
    design.place_function("naming", "resolve-id", tussle_spaces=["naming"])
    design.connect("directory", "naming", open_=True, tussle_aware=True)
    return design


class TestDesign:
    def test_duplicate_module_rejected(self):
        design = Design()
        design.add_module("m")
        with pytest.raises(DesignError):
            design.add_module("m")

    def test_function_placed_once(self):
        design = Design()
        design.add_module("m1")
        design.add_module("m2")
        design.place_function("m1", "f")
        with pytest.raises(DesignError):
            design.place_function("m2", "f")

    def test_module_of(self):
        design = separated_design()
        assert design.module_of("resolve-human").name == "directory"
        with pytest.raises(DesignError):
            design.module_of("ghost")

    def test_self_interface_rejected(self):
        design = Design()
        design.add_module("m")
        with pytest.raises(DesignError):
            design.connect("m", "m")

    def test_tussle_space_queries(self):
        design = separated_design()
        assert design.tussle_spaces() == {"trademark", "naming"}
        assert [f.name for f in design.functions_in_space("trademark")] \
            == ["resolve-human"]
        assert [m.name for m in design.modules_touching_space("naming")] \
            == ["naming"]

    def test_interface_between(self):
        design = separated_design()
        assert design.interface_between("naming", "directory") is not None
        assert design.interface_between("naming", "ghost") is None


class TestIsolationScore:
    def test_separated_beats_entangled(self):
        assert isolation_score(separated_design()) > isolation_score(
            entangled_design())

    def test_perfectly_isolated_scores_one(self):
        assert isolation_score(separated_design()) == 1.0

    def test_uncontested_design_trivially_isolated(self):
        design = Design()
        design.add_module("m")
        design.place_function("m", "f")
        assert isolation_score(design) == 1.0

    def test_mixing_contested_and_uncontested_penalized(self):
        design = Design()
        design.add_module("m")
        design.place_function("m", "contested", tussle_spaces=["economics"])
        design.place_function("m", "plain")
        assert isolation_score(design) < 1.0


class TestChoiceIndex:
    def test_no_alternatives_scores_zero(self):
        assert choice_index({"isp": 1}) == 0.0

    def test_more_alternatives_score_higher(self):
        assert choice_index({"isp": 4}) > choice_index({"isp": 2})

    def test_mean_over_decisions(self):
        assert choice_index({"a": 2, "b": 1}) == pytest.approx(0.25)

    def test_empty_is_zero(self):
        assert choice_index({}) == 0.0

    def test_zero_alternatives_rejected(self):
        with pytest.raises(DesignError):
            choice_index({"isp": 0})


class TestRigidity:
    def test_all_exposed_is_zero(self):
        mechanisms = [Mechanism(name="m", variable="x")]
        assert rigidity(mechanisms, ["x"]) == 0.0

    def test_unexposed_variables_counted(self):
        mechanisms = [Mechanism(name="m", variable="x")]
        assert rigidity(mechanisms, ["x", "y"]) == pytest.approx(0.5)

    def test_degenerate_range_counts_as_fixed(self):
        mechanisms = [Mechanism(name="m", variable="x",
                                allowed_range=(0.5, 0.5))]
        assert rigidity(mechanisms, ["x"]) == 1.0

    def test_no_variables_zero(self):
        assert rigidity([], []) == 0.0


class TestOpennessAndScorecard:
    def test_openness_fractions(self):
        design = separated_design()
        scores = openness_score(design)
        assert scores["open"] == 1.0
        assert scores["tussle_aware"] == 1.0

    def test_no_interfaces_scores_zero(self):
        assert openness_score(entangled_design()) == {"open": 0.0,
                                                      "tussle_aware": 0.0}

    def test_scorecard_readiness_ranks_designs(self):
        mechanisms = [Mechanism(name="m", variable="x")]
        good = scorecard(separated_design(), mechanisms, ["x"], {"pick": 3})
        bad = scorecard(entangled_design(), [], ["x"], {"pick": 1})
        assert good.tussle_readiness() > bad.tussle_readiness()
        assert set(good.as_row()) == {"isolation", "choice", "rigidity",
                                      "open", "tussle_aware"}
