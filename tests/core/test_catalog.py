"""Tests for the ready-made tussle-space catalogue."""

import pytest

from tussle.core.catalog import economics_space, openness_space, trust_space
from tussle.core.principles import rigidity
from tussle.core.simulator import TussleSimulator


ALL_SPACES = [economics_space, trust_space, openness_space]


class TestConstruction:
    @pytest.mark.parametrize("factory", ALL_SPACES)
    def test_every_variable_has_a_mechanism(self, factory):
        space = factory()
        covered = {m.variable for m in space.mechanisms}
        assert covered == set(space.variables())

    @pytest.mark.parametrize("factory", ALL_SPACES)
    def test_flexible_by_default_rigid_on_request(self, factory):
        flexible = factory(flexible=True)
        rigid = factory(flexible=False)
        assert rigidity(flexible.mechanisms, flexible.variables()) == 0.0
        assert rigidity(rigid.mechanisms, rigid.variables()) == 1.0

    @pytest.mark.parametrize("factory", ALL_SPACES)
    def test_spaces_are_genuinely_contested(self, factory):
        assert factory().contested_variables()

    def test_arena_names(self):
        assert economics_space().name == "economics"
        assert trust_space().name == "trust"
        assert openness_space().name == "openness"


class TestDynamics:
    @pytest.mark.parametrize("factory", ALL_SPACES)
    def test_flexible_arena_survives_the_fight(self, factory):
        outcome = TussleSimulator(factory(flexible=True)).run(40)
        assert outcome.survived
        assert outcome.total_workarounds == 0
        assert outcome.total_moves > 0

    @pytest.mark.parametrize("factory", ALL_SPACES)
    def test_rigid_arena_is_broken(self, factory):
        outcome = TussleSimulator(factory(flexible=False)).run(40)
        assert outcome.broken
        assert outcome.total_workarounds > 0

    def test_trust_space_three_way_contention(self):
        """Anonymity is pulled three ways: users, government, bad guys."""
        space = trust_space()
        assert "anonymity" in space.contested_variables()
        assert space.conflict_intensity("anonymity") > 0.5

    def test_economics_contest_never_settles(self):
        outcome = TussleSimulator(economics_space()).run(40)
        assert not outcome.settled  # "no final outcome"
