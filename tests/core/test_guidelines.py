"""Tests for the application design guidelines (§VI-A)."""

import pytest

from tussle.core.guidelines import (
    GUIDELINES,
    ApplicationDesign,
    Severity,
    audit,
    tussle_readiness_grade,
)


def clean_design(**overrides):
    base = dict(
        name="clean",
        user_selectable_roles={"server"},
        third_parties={"ca"},
        third_parties_selectable=True,
        supports_encryption=True,
        encryption_user_controlled=True,
        reports_failures=True,
        interfaces_open=True,
        value_flow_designed=True,
        needs_value_flow=True,
        preconfigured_defaults=True,
    )
    base.update(overrides)
    return ApplicationDesign(**base)


class TestCatalogue:
    def test_eight_guidelines_with_citations(self):
        assert len(GUIDELINES) == 8
        for guideline in GUIDELINES:
            assert "§" in guideline.rationale  # every rule cites the paper

    def test_identifiers_unique(self):
        identifiers = [g.identifier for g in GUIDELINES]
        assert len(set(identifiers)) == len(identifiers)


class TestAudit:
    def test_clean_design_passes_everything(self):
        assert audit(clean_design()) == []
        assert tussle_readiness_grade(clean_design()) == "A"

    def test_fixed_roles_violate_g1(self):
        design = clean_design(fixed_roles={"locked-server"})
        violated = {f.guideline.identifier for f in audit(design)}
        assert "G1" in violated

    def test_forced_third_parties_violate_g2(self):
        design = clean_design(third_parties_selectable=False)
        violated = {f.guideline.identifier for f in audit(design)}
        assert "G2" in violated

    def test_no_third_parties_is_fine(self):
        design = clean_design(third_parties=set(),
                              third_parties_selectable=False)
        violated = {f.guideline.identifier for f in audit(design)}
        assert "G2" not in violated

    def test_missing_encryption_violates_g3_not_g4(self):
        design = clean_design(supports_encryption=False,
                              encryption_user_controlled=False)
        violated = {f.guideline.identifier for f in audit(design)}
        assert "G3" in violated
        assert "G4" not in violated  # nothing to control

    def test_provider_controlled_encryption_violates_g4(self):
        design = clean_design(encryption_user_controlled=False)
        violated = {f.guideline.identifier for f in audit(design)}
        assert violated == {"G4"}

    def test_undesigned_value_flow_violates_g7(self):
        design = clean_design(value_flow_designed=False)
        violated = {f.guideline.identifier for f in audit(design)}
        assert "G7" in violated

    def test_value_flow_not_needed_is_fine(self):
        design = clean_design(needs_value_flow=False,
                              value_flow_designed=False)
        violated = {f.guideline.identifier for f in audit(design)}
        assert "G7" not in violated

    def test_choice_without_defaults_violates_g8(self):
        design = clean_design(preconfigured_defaults=False)
        violated = {f.guideline.identifier for f in audit(design)}
        assert "G8" in violated

    def test_no_choice_needs_no_defaults(self):
        design = clean_design(user_selectable_roles=set(),
                              third_parties=set(),
                              preconfigured_defaults=False)
        violated = {f.guideline.identifier for f in audit(design)}
        assert "G8" not in violated


class TestGrading:
    def test_advisory_only_grades_b(self):
        design = clean_design(encryption_user_controlled=False)  # G4 advisory
        assert tussle_readiness_grade(design) == "B"

    def test_grades_degrade_with_serious_violations(self):
        one = clean_design(reports_failures=False)                      # G5
        two = clean_design(reports_failures=False, interfaces_open=False)  # +G6
        many = clean_design(reports_failures=False, interfaces_open=False,
                            supports_encryption=False,
                            fixed_roles={"x"})
        assert tussle_readiness_grade(one) == "C"
        assert tussle_readiness_grade(two) == "D"
        assert tussle_readiness_grade(many) == "F"

    def test_findings_know_their_severity(self):
        design = clean_design(reports_failures=False,
                              preconfigured_defaults=False)
        findings = audit(design)
        severities = {f.guideline.identifier: f.serious for f in findings}
        assert severities["G5"] is True
        assert severities["G8"] is False
