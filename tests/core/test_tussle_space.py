"""Tests for tussle spaces."""

import pytest

from tussle.errors import TussleError
from tussle.core.mechanisms import Mechanism
from tussle.core.stakeholders import Stakeholder, StakeholderKind
from tussle.core.tussle import TussleSpace


@pytest.fixture
def space():
    arena = TussleSpace("test", initial_state={"x": 0.5, "y": 0.5})
    users = Stakeholder("users", StakeholderKind.USER)
    users.add_interest("x", target=1.0)
    users.add_interest("y", target=1.0)
    providers = Stakeholder("providers", StakeholderKind.COMMERCIAL_ISP)
    providers.add_interest("x", target=0.0)
    arena.add_stakeholder(users)
    arena.add_stakeholder(providers)
    return arena


class TestConstruction:
    def test_duplicate_stakeholder_rejected(self, space):
        with pytest.raises(TussleError):
            space.add_stakeholder(Stakeholder("users", StakeholderKind.USER))

    def test_duplicate_mechanism_rejected(self, space):
        space.add_mechanism(Mechanism(name="knob", variable="x"))
        with pytest.raises(TussleError):
            space.add_mechanism(Mechanism(name="knob", variable="y"))

    def test_mechanism_creates_missing_variable(self, space):
        space.add_mechanism(Mechanism(name="knob", variable="z"))
        assert space.state["z"] == 0.5

    def test_unknown_lookups_raise(self, space):
        with pytest.raises(TussleError):
            space.stakeholder("ghost")
        with pytest.raises(TussleError):
            space.mechanism("ghost")


class TestConflictStructure:
    def test_contested_variables(self, space):
        assert space.contested_variables() == ["x"]  # y has one target only

    def test_conflict_intensity_scales_with_spread(self, space):
        assert space.conflict_intensity("x") == pytest.approx(1.0)
        assert space.conflict_intensity("y") == 0.0

    def test_mechanisms_for_respects_controllers(self, space):
        space.add_mechanism(Mechanism(
            name="user-knob", variable="x",
            controllers=frozenset({StakeholderKind.USER})))
        space.add_mechanism(Mechanism(name="open-knob", variable="x"))
        user_mechanisms = space.mechanisms_for("x", StakeholderKind.USER)
        isp_mechanisms = space.mechanisms_for("x", StakeholderKind.COMMERCIAL_ISP)
        assert {m.name for m in user_mechanisms} == {"user-knob", "open-knob"}
        assert {m.name for m in isp_mechanisms} == {"open-knob"}

    def test_total_welfare(self, space):
        # users: |0.5-1|+|0.5-1| = 1.0; providers: |0.5-0| = 0.5
        assert space.total_welfare() == pytest.approx(-1.5)
