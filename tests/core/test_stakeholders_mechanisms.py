"""Tests for stakeholders, interests and mechanisms."""

import pytest

from tussle.errors import TussleError
from tussle.core.mechanisms import Mechanism, Move, MoveKind
from tussle.core.stakeholders import Interest, Stakeholder, StakeholderKind


class TestInterest:
    def test_dissatisfaction_is_weighted_distance(self):
        interest = Interest(variable="x", target=1.0, weight=2.0)
        assert interest.dissatisfaction(0.25) == pytest.approx(1.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(TussleError):
            Interest(variable="x", target=0.0, weight=-1.0)


class TestStakeholder:
    def test_utility_sums_interests(self):
        stakeholder = Stakeholder("u", StakeholderKind.USER)
        stakeholder.add_interest("a", target=1.0, weight=1.0)
        stakeholder.add_interest("b", target=0.0, weight=2.0)
        assert stakeholder.utility({"a": 1.0, "b": 0.0}) == 0.0
        assert stakeholder.utility({"a": 0.5, "b": 0.5}) == pytest.approx(-1.5)

    def test_missing_variable_counts_fully(self):
        stakeholder = Stakeholder("u", StakeholderKind.USER)
        stakeholder.add_interest("a", target=1.0, weight=3.0)
        assert stakeholder.utility({}) == -3.0

    def test_cares_about(self):
        stakeholder = Stakeholder("u", StakeholderKind.USER)
        stakeholder.add_interest("a", target=1.0)
        stakeholder.add_interest("b", target=1.0, weight=0.0)
        assert stakeholder.cares_about("a")
        assert not stakeholder.cares_about("b")
        assert not stakeholder.cares_about("c")


class TestMechanism:
    def test_defaults_open_to_all_kinds(self):
        mechanism = Mechanism(name="m", variable="x")
        for kind in StakeholderKind:
            assert mechanism.controllable_by(kind)

    def test_restricted_controllers(self):
        mechanism = Mechanism(name="m", variable="x",
                              controllers=frozenset({StakeholderKind.USER}))
        assert mechanism.controllable_by(StakeholderKind.USER)
        assert not mechanism.controllable_by(StakeholderKind.GOVERNMENT)

    def test_controllers_coerced_to_frozenset(self):
        mechanism = Mechanism(name="m", variable="x",
                              controllers={StakeholderKind.USER})
        assert isinstance(mechanism.controllers, frozenset)

    def test_clamp_and_permits(self):
        mechanism = Mechanism(name="m", variable="x", allowed_range=(0.2, 0.8))
        assert mechanism.clamp(1.0) == 0.8
        assert mechanism.clamp(0.0) == 0.2
        assert mechanism.clamp(0.5) == 0.5
        assert mechanism.permits(0.5)
        assert not mechanism.permits(0.9)

    def test_inverted_range_rejected(self):
        with pytest.raises(TussleError):
            Mechanism(name="m", variable="x", allowed_range=(0.8, 0.2))

    def test_effectiveness_bounds(self):
        with pytest.raises(TussleError):
            Mechanism(name="m", variable="x", effectiveness=0.0)
        with pytest.raises(TussleError):
            Mechanism(name="m", variable="x", effectiveness=1.5)


class TestMove:
    def test_within_design_flag(self):
        move = Move(actor="u", variable="x", new_value=0.5,
                    kind=MoveKind.WITHIN_DESIGN)
        assert move.within_design
        workaround = Move(actor="u", variable="x", new_value=0.5,
                          kind=MoveKind.WORKAROUND)
        assert not workaround.within_design
