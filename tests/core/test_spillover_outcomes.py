"""Tests for spillover measurement and welfare accounting."""

import pytest

from tussle.errors import DesignError, TussleError
from tussle.core.design import Design
from tussle.core.outcomes import (
    WelfareLedger,
    outcome_diversity,
    pareto_dominates,
)
from tussle.core.spillover import dns_spillover, spillover_from_event
from tussle.netsim.dns import EntangledNameSystem, SeparatedNameSystem


def mixed_design():
    design = Design("mixed")
    design.add_module("shared")
    design.place_function("shared", "fight-zone", tussle_spaces=["economics"])
    design.place_function("shared", "bystander")
    design.add_module("clean")
    design.place_function("clean", "unrelated")
    return design


class TestStructuralSpillover:
    def test_collateral_counted_in_affected_modules_only(self):
        report = spillover_from_event(mixed_design(), "economics")
        assert report.direct == 1
        assert report.collateral == 1
        assert report.affected_modules == ["shared"]
        assert report.ratio == 1.0

    def test_isolated_space_has_zero_ratio(self):
        design = Design()
        design.add_module("arena")
        design.place_function("arena", "fight", tussle_spaces=["economics"])
        report = spillover_from_event(design, "economics")
        assert report.ratio == 0.0

    def test_unknown_space_rejected(self):
        with pytest.raises(DesignError):
            spillover_from_event(mixed_design(), "nonexistent")


class TestDnsSpillover:
    def test_entangled_breaks_services(self):
        result = dns_spillover(EntangledNameSystem(), n_names=10, seed=1)
        assert result.disputes == 3
        assert result.service_breakage > 0
        assert result.machine_bindings_broken > 0
        assert result.collateral_rate > 0

    def test_separated_contains_the_damage(self):
        result = dns_spillover(SeparatedNameSystem(), n_names=10, seed=1)
        assert result.service_breakage == 0
        assert result.machine_bindings_broken == 0
        # Human-name resolution is still disrupted (the fight is real).
        assert result.human_name_breakage > 0

    def test_same_seed_same_disputes(self):
        a = dns_spillover(EntangledNameSystem(), n_names=12, seed=5)
        b = dns_spillover(EntangledNameSystem(), n_names=12, seed=5)
        assert a.human_name_breakage == b.human_name_breakage


class TestWelfareLedger:
    def test_credit_debit(self):
        ledger = WelfareLedger()
        ledger.credit("users", 5.0)
        ledger.debit("users", 2.0)
        assert ledger.surplus("users") == 3.0
        assert ledger.total() == 3.0

    def test_as_row_includes_total(self):
        ledger = WelfareLedger()
        ledger.credit("a", 1.0)
        row = ledger.as_row()
        assert row["__total__"] == 1.0
        assert ledger.parties() == ["a"]


class TestPareto:
    def test_dominance(self):
        assert pareto_dominates({"a": 2.0, "b": 1.0}, {"a": 1.0, "b": 1.0})

    def test_no_dominance_on_tradeoff(self):
        assert not pareto_dominates({"a": 2.0, "b": 0.0}, {"a": 1.0, "b": 1.0})

    def test_equal_profiles_do_not_dominate(self):
        assert not pareto_dominates({"a": 1.0}, {"a": 1.0})

    def test_mismatched_parties_rejected(self):
        with pytest.raises(TussleError):
            pareto_dominates({"a": 1.0}, {"b": 1.0})


class TestOutcomeDiversity:
    def test_identical_outcomes_zero(self):
        states = [{"x": 0.5}, {"x": 0.5}, {"x": 0.5}]
        assert outcome_diversity(states) == 0.0

    def test_varied_outcomes_positive(self):
        states = [{"x": 0.0}, {"x": 1.0}]
        assert outcome_diversity(states) > 0.0

    def test_single_state_zero(self):
        assert outcome_diversity([{"x": 1.0}]) == 0.0

    def test_diversity_grows_with_spread(self):
        narrow = [{"x": 0.4}, {"x": 0.6}]
        wide = [{"x": 0.0}, {"x": 1.0}]
        assert outcome_diversity(wide) > outcome_diversity(narrow)


class TestOutcomeComparison:
    def test_tie_reported(self):
        from tussle.core.outcomes import compare_outcomes
        from tussle.core.simulator import TussleOutcome

        outcome = TussleOutcome(rounds_run=1, broken=False, broken_at=None,
                                settled=True, settled_at=0,
                                final_integrity=1.0, final_welfare=0.0,
                                total_moves=0, total_workarounds=0)
        comparison = compare_outcomes("a", outcome, "b", outcome)
        assert comparison.winner() == "tie"

    def test_survival_dominates_welfare(self):
        from tussle.core.outcomes import compare_outcomes
        from tussle.core.simulator import TussleOutcome

        survivor = TussleOutcome(rounds_run=1, broken=False, broken_at=None,
                                 settled=False, settled_at=None,
                                 final_integrity=0.8, final_welfare=-100.0,
                                 total_moves=5, total_workarounds=0)
        rich_wreck = TussleOutcome(rounds_run=1, broken=True, broken_at=0,
                                   settled=False, settled_at=None,
                                   final_integrity=0.2, final_welfare=50.0,
                                   total_moves=5, total_workarounds=5)
        comparison = compare_outcomes("survivor", survivor,
                                      "wreck", rich_wreck)
        assert comparison.winner() == "survivor"
