"""Tests for pricing strategies."""

import pytest

from tussle.errors import MarketError
from tussle.econ.agents import Provider
from tussle.econ.pricing import (
    FlatPricing,
    MonopolyPricing,
    UndercutPricing,
    ValuePricingStrategy,
)


def make_provider(price=40.0, unit_cost=5.0, business=None):
    return Provider(name="p", price=price, unit_cost=unit_cost,
                    business_price=business)


class TestFlat:
    def test_never_moves(self):
        provider = make_provider()
        FlatPricing().adjust(provider, {"p": 40.0, "rival": 10.0}, 0.5)
        assert provider.price == 40.0


class TestUndercut:
    def test_undercuts_cheapest_rival(self):
        provider = make_provider(price=40.0)
        UndercutPricing(undercut_by=1.0).adjust(
            provider, {"p": 40.0, "r1": 30.0, "r2": 35.0}, 0.3)
        assert provider.price == 29.0

    def test_floored_at_cost_plus_margin(self):
        provider = make_provider(price=40.0, unit_cost=20.0)
        UndercutPricing(margin_floor=0.5).adjust(
            provider, {"p": 40.0, "r": 10.0}, 0.3)
        assert provider.price == 20.5

    def test_no_rivals_no_change(self):
        provider = make_provider(price=40.0)
        UndercutPricing().adjust(provider, {"p": 40.0}, 1.0)
        assert provider.price == 40.0

    def test_business_tier_kept_above_basic(self):
        provider = make_provider(price=40.0, business=41.0)
        UndercutPricing().adjust(provider, {"p": 40.0, "r": 60.0}, 0.3)
        assert provider.business_price >= provider.price


class TestMonopoly:
    def test_creeps_up_while_share_holds(self):
        provider = make_provider(price=40.0)
        MonopolyPricing(creep=2.0).adjust(provider, {"p": 40.0}, 0.6)
        assert provider.price == 42.0

    def test_backs_off_when_share_collapses(self):
        provider = make_provider(price=40.0)
        MonopolyPricing(creep=2.0, share_floor=0.25).adjust(
            provider, {"p": 40.0}, 0.1)
        assert provider.price == 38.0

    def test_respects_cap_and_cost_floor(self):
        provider = make_provider(price=89.5)
        MonopolyPricing(creep=2.0, price_cap=90.0).adjust(
            provider, {"p": 89.5}, 0.6)
        assert provider.price == 90.0
        cheap = make_provider(price=5.5, unit_cost=5.0)
        MonopolyPricing(creep=2.0).adjust(cheap, {"p": 5.5}, 0.1)
        assert cheap.price == 5.0


class TestValuePricing:
    def test_maintains_tier_multiple(self):
        provider = make_provider(price=30.0, business=30.0)
        ValuePricingStrategy(tier_multiple=2.0).adjust(
            provider, {"p": 30.0}, 0.5)
        assert provider.business_price == 60.0

    def test_composes_with_base_strategy(self):
        provider = make_provider(price=40.0, business=40.0)
        strategy = ValuePricingStrategy(
            tier_multiple=2.0, base_strategy=UndercutPricing(undercut_by=1.0))
        strategy.adjust(provider, {"p": 40.0, "r": 30.0}, 0.3)
        assert provider.price == 29.0
        assert provider.business_price == 58.0

    def test_multiple_below_one_rejected(self):
        with pytest.raises(MarketError):
            ValuePricingStrategy(tier_multiple=0.5)
