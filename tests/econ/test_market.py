"""Tests for the round-based access market."""

import pytest

from tussle.errors import MarketError
from tussle.econ.agents import Consumer, Provider
from tussle.econ.demand import Segment
from tussle.econ.market import Market
from tussle.econ.pricing import UndercutPricing


def simple_market(switching_cost=0.0, **market_kwargs):
    providers = [
        Provider(name="cheap", price=10.0, unit_cost=2.0),
        Provider(name="dear", price=30.0, unit_cost=2.0),
    ]
    consumers = [
        Consumer(name=f"c{i}", wtp=50.0, switching_cost=switching_cost)
        for i in range(4)
    ]
    return Market(providers=providers, consumers=consumers, **market_kwargs)


class TestSetup:
    def test_needs_providers(self):
        with pytest.raises(MarketError):
            Market(providers=[], consumers=[])

    def test_unique_provider_names(self):
        providers = [Provider(name="p", price=1.0), Provider(name="p", price=2.0)]
        with pytest.raises(MarketError):
            Market(providers=providers, consumers=[])

    def test_initial_assignment_picks_best_offer(self):
        market = simple_market()
        assert all(c.provider == "cheap" for c in market.consumers)

    def test_preassigned_consumers_kept(self):
        providers = [Provider(name="a", price=10.0), Provider(name="b", price=10.0)]
        consumer = Consumer(name="c", wtp=50.0, provider="b")
        market = Market(providers=providers, consumers=[consumer])
        assert consumer.provider == "b"
        assert "c" in market.providers["b"].subscribers


class TestRounds:
    def test_switching_cost_prevents_churn(self):
        market = simple_market(switching_cost=100.0)
        # Move everyone to the dear provider artificially.
        for consumer in market.consumers:
            market.providers["cheap"].subscribers.discard(consumer.name)
            consumer.provider = "dear"
            market.providers["dear"].subscribers.add(consumer.name)
        market.step()
        assert market.total_switches() == 0

    def test_cheap_switching_enables_churn(self):
        market = simple_market(switching_cost=0.5)
        for consumer in market.consumers:
            market.providers["cheap"].subscribers.discard(consumer.name)
            consumer.provider = "dear"
            market.providers["dear"].subscribers.add(consumer.name)
        market.step()
        assert market.total_switches() == 4
        assert all(c.provider == "cheap" for c in market.consumers)

    def test_negative_surplus_consumer_leaves(self):
        providers = [Provider(name="p", price=100.0)]
        consumers = [Consumer(name="c", wtp=10.0)]
        market = Market(providers=providers, consumers=consumers)
        market.step()
        assert consumers[0].provider is None
        assert market.subscribed_fraction() == 0.0

    def test_revenue_equals_price_times_subscribers(self):
        market = simple_market()
        market.step()
        cheap = market.providers["cheap"]
        assert cheap.revenue_history[-1] == pytest.approx(10.0 * 4)

    def test_history_records_rounds(self):
        market = simple_market()
        market.run(3)
        assert len(market.history) == 3
        assert [r.index for r in market.history] == [0, 1, 2]

    def test_strategies_applied_each_round(self):
        market = simple_market(strategies={"dear": UndercutPricing()})
        market.step()
        assert market.providers["dear"].price == pytest.approx(9.0)


class TestValuePricingPath:
    def _business_market(self, can_tunnel, detects=False):
        providers = [Provider(name="p", price=20.0, business_price=50.0,
                              detects_tunnels=detects)]
        consumers = [Consumer(name="biz", wtp=40.0, segment=Segment.BUSINESS,
                              server_value=35.0, can_tunnel=can_tunnel,
                              tunnel_cost=2.0)]
        return Market(providers=providers, consumers=consumers)

    def test_business_consumer_pays_tier_when_no_tunnel(self):
        market = self._business_market(can_tunnel=False)
        market.step()
        # paid business rate: revenue 50
        assert market.providers["p"].revenue_history[-1] == pytest.approx(50.0)

    def test_tunneling_consumer_pays_basic_rate(self):
        market = self._business_market(can_tunnel=True)
        market.step()
        assert market.consumers[0].tunnelling
        assert market.providers["p"].revenue_history[-1] == pytest.approx(20.0)

    def test_detection_defeats_tunnelling(self):
        market = self._business_market(can_tunnel=True, detects=True)
        market.step()
        assert not market.consumers[0].tunnelling
        assert market.providers["p"].revenue_history[-1] == pytest.approx(50.0)

    def test_servers_free_when_not_prohibited(self):
        providers = [Provider(name="p", price=20.0, business_price=50.0)]
        consumers = [Consumer(name="biz", wtp=40.0, segment=Segment.BUSINESS,
                              server_value=35.0)]
        market = Market(providers=providers, consumers=consumers,
                        server_prohibited_without_tier=False)
        market.step()
        assert market.providers["p"].revenue_history[-1] == pytest.approx(20.0)


class TestPreferenceNoise:
    def test_noise_spreads_consumers_across_equal_providers(self):
        providers = [Provider(name=f"p{i}", price=10.0) for i in range(4)]
        consumers = [Consumer(name=f"c{i}", wtp=50.0) for i in range(40)]
        market = Market(providers=providers, consumers=consumers,
                        preference_noise=2.0, seed=1)
        counts = [len(p.subscribers) for p in market.providers.values()]
        assert max(counts) < 40  # not everyone on one provider

    def test_no_noise_concentrates(self):
        providers = [Provider(name=f"p{i}", price=10.0) for i in range(4)]
        consumers = [Consumer(name=f"c{i}", wtp=50.0) for i in range(40)]
        market = Market(providers=providers, consumers=consumers, seed=1)
        counts = sorted(len(p.subscribers) for p in market.providers.values())
        assert counts == [0, 0, 0, 40]


class TestRoundRecords:
    def test_shares_sum_to_subscribed_fraction(self):
        market = simple_market()
        record = market.step()
        assert sum(record.shares.values()) == pytest.approx(
            market.subscribed_fraction())

    def test_tunnelling_consumers_counted(self):
        providers = [Provider(name="p", price=20.0, business_price=50.0)]
        consumers = [
            Consumer(name=f"biz{i}", wtp=40.0, segment=Segment.BUSINESS,
                     server_value=35.0, can_tunnel=True, tunnel_cost=2.0)
            for i in range(3)
        ]
        market = Market(providers=providers, consumers=consumers)
        record = market.step()
        assert record.tunnelling_consumers == 3

    def test_mean_price_over_providers(self):
        market = simple_market()
        record = market.step()
        assert record.mean_price == pytest.approx((10.0 + 30.0) / 2)
