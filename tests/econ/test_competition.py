"""Tests for competition metrics."""

import pytest

from tussle.errors import MarketError
from tussle.econ.competition import (
    competition_report,
    effective_competitors,
    herfindahl_index,
    lerner_index,
)


class TestHhi:
    def test_monopoly_is_one(self):
        assert herfindahl_index([1.0]) == 1.0

    def test_symmetric_duopoly(self):
        assert herfindahl_index([0.5, 0.5]) == pytest.approx(0.5)

    def test_n_symmetric_firms(self):
        assert herfindahl_index([0.25] * 4) == pytest.approx(0.25)

    def test_normalizes_unnormalized_shares(self):
        assert herfindahl_index([2.0, 2.0]) == pytest.approx(0.5)

    def test_zero_shares_ignored(self):
        assert herfindahl_index([0.5, 0.5, 0.0]) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(MarketError):
            herfindahl_index([])
        with pytest.raises(MarketError):
            herfindahl_index([0.0, 0.0])

    def test_effective_competitors_inverse(self):
        assert effective_competitors([0.25] * 4) == pytest.approx(4.0)


class TestLerner:
    def test_competitive_pricing_zero(self):
        assert lerner_index(10.0, 10.0) == 0.0

    def test_monopoly_margin(self):
        assert lerner_index(20.0, 10.0) == pytest.approx(0.5)

    def test_clamped(self):
        assert lerner_index(5.0, 10.0) == 0.0  # below cost clamps to 0

    def test_price_must_be_positive(self):
        with pytest.raises(MarketError):
            lerner_index(0.0, 1.0)


class TestReport:
    def test_healthy_market(self):
        report = competition_report(
            shares={"a": 0.25, "b": 0.25, "c": 0.25, "d": 0.25},
            prices={k: 11.0 for k in "abcd"},
            marginal_costs={k: 10.0 for k in "abcd"},
        )
        assert report.healthy
        assert report.effective_competitors == pytest.approx(4.0)

    def test_unhealthy_duopoly(self):
        report = competition_report(
            shares={"a": 0.5, "b": 0.5},
            prices={"a": 40.0, "b": 40.0},
            marginal_costs={"a": 10.0, "b": 10.0},
        )
        assert not report.healthy
        assert report.mean_lerner == pytest.approx(0.75)

    def test_inactive_providers_excluded(self):
        report = competition_report(
            shares={"a": 1.0, "dead": 0.0},
            prices={"a": 10.0, "dead": 99.0},
            marginal_costs={"a": 10.0, "dead": 1.0},
        )
        assert report.hhi == 1.0
        assert report.mean_lerner == 0.0

    def test_no_active_share_rejected(self):
        with pytest.raises(MarketError):
            competition_report(shares={"a": 0.0}, prices={}, marginal_costs={})
