"""Tests for consumers and providers."""

import pytest

from tussle.errors import MarketError
from tussle.econ.agents import Consumer, Provider
from tussle.econ.demand import Segment


class TestConsumer:
    def test_basic_consumer_does_not_value_server(self):
        consumer = Consumer(name="c", wtp=30.0)
        assert not consumer.values_server()
        assert consumer.round_value(runs_server=True) == 30.0

    def test_business_consumer_gains_server_value(self):
        consumer = Consumer(name="c", wtp=30.0, segment=Segment.BUSINESS,
                            server_value=20.0)
        assert consumer.values_server()
        assert consumer.round_value(runs_server=True) == 50.0
        assert consumer.round_value(runs_server=False) == 30.0


class TestProvider:
    def test_negative_price_rejected(self):
        with pytest.raises(MarketError):
            Provider(name="p", price=-1.0)

    def test_business_tier_cannot_undercut_basic(self):
        with pytest.raises(MarketError):
            Provider(name="p", price=30.0, business_price=20.0)

    def test_tiered_flag(self):
        assert Provider(name="p", price=30.0, business_price=60.0).tiered
        assert not Provider(name="p", price=30.0).tiered

    def test_price_for_open_server_usage(self):
        provider = Provider(name="p", price=30.0, business_price=60.0)
        consumer = Consumer(name="c", wtp=50.0, segment=Segment.BUSINESS,
                            server_value=20.0)
        assert provider.price_for(consumer, runs_server_openly=True) == 60.0
        assert provider.price_for(consumer, runs_server_openly=False) == 30.0

    def test_untiered_provider_charges_basic_regardless(self):
        provider = Provider(name="p", price=30.0)
        consumer = Consumer(name="c", wtp=50.0)
        assert provider.price_for(consumer, runs_server_openly=True) == 30.0

    def test_record_round_accumulates_profit(self):
        provider = Provider(name="p", price=30.0, unit_cost=10.0)
        provider.record_round(revenue=100.0, n_subscribers=3)
        assert provider.profit == pytest.approx(70.0)
        assert provider.revenue_history == [100.0]

    def test_market_share(self):
        provider = Provider(name="p", price=30.0)
        provider.subscribers = {"a", "b"}
        assert provider.market_share(8) == pytest.approx(0.25)
        assert provider.market_share(0) == 0.0
