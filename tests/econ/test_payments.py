"""Tests for payment mechanisms and the value-flow ledger."""

import pytest

from tussle.errors import MarketError
from tussle.econ.payments import (
    AGGREGATOR,
    CREDIT_CARD,
    MICROPAYMENT,
    MUTUAL_AID,
    PaymentMechanism,
    ValueFlowLedger,
    cheapest_mechanism,
    viable_mechanisms,
)


class TestMechanisms:
    def test_fee_structure(self):
        mech = PaymentMechanism("m", fixed_fee=0.1, proportional_fee=0.02)
        assert mech.fee(10.0) == pytest.approx(0.3)
        assert mech.net(10.0) == pytest.approx(9.7)

    def test_negative_amount_rejected(self):
        with pytest.raises(MarketError):
            CREDIT_CARD.fee(-1.0)

    def test_credit_card_not_viable_for_micropayments(self):
        """The paper's case study: fees eat tiny transactions."""
        assert not CREDIT_CARD.viable_for(0.05)
        assert MICROPAYMENT.viable_for(0.05)

    def test_credit_card_viable_for_normal_purchases(self):
        assert CREDIT_CARD.viable_for(25.0)

    def test_minimum_transaction_enforced(self):
        assert not CREDIT_CARD.viable_for(0.4)

    def test_viable_mechanisms_for_tiny_amount(self):
        viable = {m.name for m in viable_mechanisms(0.05)}
        assert "micropayment" in viable
        assert "credit-card" not in viable

    def test_cheapest_mechanism_crossover(self):
        """Micropayments win small; proportional fees dominate large."""
        small = cheapest_mechanism(0.10)
        assert small.name == "micropayment"
        large = cheapest_mechanism(1000.0)
        assert large.name == "micropayment" or large.fee(1000.0) <= \
            MICROPAYMENT.fee(1000.0)

    def test_mutual_aid_excluded_when_monetary_required(self):
        chosen = cheapest_mechanism(10.0, monetary_only=True)
        assert chosen.monetary
        in_kind = cheapest_mechanism(10.0, monetary_only=False)
        assert in_kind.name == "mutual-aid"  # zero fees


class TestLedger:
    def test_transfer_conserves_value(self):
        ledger = ValueFlowLedger()
        ledger.transfer("user", "isp", 10.0, CREDIT_CARD)
        assert ledger.total() == pytest.approx(0.0)

    def test_payee_receives_net_of_fees(self):
        ledger = ValueFlowLedger()
        net = ledger.transfer("user", "isp", 10.0, CREDIT_CARD)
        assert net == pytest.approx(10.0 - CREDIT_CARD.fee(10.0))
        assert ledger.balance("isp") == pytest.approx(net)
        assert ledger.balance("user") == pytest.approx(-10.0)

    def test_nonviable_transfer_rejected(self):
        ledger = ValueFlowLedger()
        with pytest.raises(MarketError):
            ledger.transfer("user", "isp", 0.05, CREDIT_CARD)
        assert ledger.total() == 0.0
        assert ledger.volume() == 0.0

    def test_self_transfer_rejected(self):
        with pytest.raises(MarketError):
            ValueFlowLedger().transfer("a", "a", 1.0)

    def test_volume_and_parties(self):
        ledger = ValueFlowLedger()
        ledger.transfer("a", "b", 5.0, AGGREGATOR)
        ledger.transfer("b", "c", 2.0, AGGREGATOR)
        assert ledger.volume() == pytest.approx(7.0)
        assert ledger.parties() == ["a", "b", "c"]

    def test_mutual_aid_is_free(self):
        ledger = ValueFlowLedger()
        net = ledger.transfer("peer1", "peer2", 3.0, MUTUAL_AID)
        assert net == 3.0
        assert ledger.balance(ValueFlowLedger.FEE_ACCOUNT) == 0.0
