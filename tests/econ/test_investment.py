"""Tests for the fear-and-greed investment model (E07 substrate)."""

import pytest

from tussle.errors import MarketError
from tussle.econ.investment import (
    DeploymentChoice,
    InvestmentModel,
    qos_deployment_game,
)


class TestPayoffs:
    def test_open_revenue_needs_value_flow(self):
        model = InvestmentModel()
        assert model.direct_revenue(DeploymentChoice.DEPLOY_OPEN,
                                    value_flow_exists=False,
                                    users_can_choose=True) == 0.0

    def test_open_revenue_shrinks_without_user_choice(self):
        model = InvestmentModel(open_service_revenue=20.0, captive_fraction=0.3)
        full = model.direct_revenue(DeploymentChoice.DEPLOY_OPEN, True, True)
        captive = model.direct_revenue(DeploymentChoice.DEPLOY_OPEN, True, False)
        assert captive == pytest.approx(full * 0.3)

    def test_closed_revenue_unconditional(self):
        model = InvestmentModel(closed_service_revenue=35.0)
        for vf in (True, False):
            for uc in (True, False):
                assert model.direct_revenue(
                    DeploymentChoice.DEPLOY_CLOSED, vf, uc) == 35.0

    def test_churn_only_with_user_choice(self):
        model = InvestmentModel()
        with_choice = model.payoff(DeploymentChoice.NO_DEPLOY,
                                   DeploymentChoice.DEPLOY_OPEN, True, True)
        without_choice = model.payoff(DeploymentChoice.NO_DEPLOY,
                                      DeploymentChoice.DEPLOY_OPEN, True, False)
        assert with_choice < 0
        assert without_choice == 0.0

    def test_deployment_cost_charged_for_deploys_only(self):
        model = InvestmentModel(deployment_cost=100.0)
        assert model.payoff(DeploymentChoice.NO_DEPLOY,
                            DeploymentChoice.NO_DEPLOY, True, False) == 0.0
        assert model.payoff(DeploymentChoice.DEPLOY_OPEN,
                            DeploymentChoice.NO_DEPLOY, True, False) < (
            model.direct_revenue(DeploymentChoice.DEPLOY_OPEN, True, False)
            * model.horizon)

    def test_validation(self):
        with pytest.raises(MarketError):
            InvestmentModel(captive_fraction=2.0)
        with pytest.raises(MarketError):
            InvestmentModel(horizon=0)


class TestEquilibria:
    def test_both_factors_yield_unique_open_equilibrium(self):
        model = InvestmentModel()
        stable = model.symmetric_equilibria(True, True)
        assert stable == [DeploymentChoice.DEPLOY_OPEN]

    def test_closed_stable_without_user_choice(self):
        model = InvestmentModel()
        assert (model.equilibrium_outcome(True, False)
                is DeploymentChoice.DEPLOY_CLOSED)

    def test_all_closed_destabilized_by_open_deviation_under_choice(self):
        """Fear: with user choice and value flow, someone defects to open."""
        model = InvestmentModel()
        closed_payoff = model.payoff(DeploymentChoice.DEPLOY_CLOSED,
                                     DeploymentChoice.DEPLOY_CLOSED, True, True)
        open_deviation = model.payoff(DeploymentChoice.DEPLOY_OPEN,
                                      DeploymentChoice.DEPLOY_CLOSED, True, True)
        assert open_deviation > closed_payoff

    def test_factorial_shape(self):
        cells = {(c.value_flow, c.user_choice): c.outcome
                 for c in qos_deployment_game()}
        assert cells[(True, True)] is DeploymentChoice.DEPLOY_OPEN
        for key in [(False, False), (False, True), (True, False)]:
            assert cells[key] is DeploymentChoice.DEPLOY_CLOSED

    def test_ablation_no_closed_option(self):
        cells = {(c.value_flow, c.user_choice): c.outcome
                 for c in qos_deployment_game(allow_closed=False)}
        assert cells[(True, True)] is DeploymentChoice.DEPLOY_OPEN
        assert cells[(False, False)] is DeploymentChoice.NO_DEPLOY
        assert cells[(True, False)] is DeploymentChoice.NO_DEPLOY

    def test_describe(self):
        cell = qos_deployment_game()[0]
        assert "no-value-flow" in cell.describe()
