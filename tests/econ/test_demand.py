"""Tests for demand curves and willingness-to-pay distributions."""

import random

import pytest

from tussle.errors import MarketError
from tussle.econ.demand import DemandCurve, LogNormalWtp, Segment, UniformWtp


class TestDistributions:
    def test_uniform_bounds(self):
        dist = UniformWtp(10.0, 20.0)
        rng = random.Random(0)
        samples = [dist.sample(rng) for _ in range(100)]
        assert all(10.0 <= s <= 20.0 for s in samples)

    def test_uniform_validation(self):
        with pytest.raises(MarketError):
            UniformWtp(-1.0, 5.0)
        with pytest.raises(MarketError):
            UniformWtp(10.0, 5.0)

    def test_lognormal_positive(self):
        dist = LogNormalWtp(mu=3.0, sigma=0.5)
        rng = random.Random(0)
        assert all(dist.sample(rng) > 0 for _ in range(100))

    def test_lognormal_sigma_validation(self):
        with pytest.raises(MarketError):
            LogNormalWtp(sigma=0.0)

    def test_segments_exist(self):
        assert Segment.BASIC is not Segment.BUSINESS


class TestDemandCurve:
    def test_quantity_decreasing_in_price(self):
        curve = DemandCurve(100, UniformWtp(10.0, 100.0), seed=1)
        quantities = [curve.quantity(p) for p in (0, 20, 50, 90, 200)]
        assert quantities[0] == 100
        assert quantities == sorted(quantities, reverse=True)
        assert quantities[-1] == 0

    def test_quantity_at_zero_price_is_everyone(self):
        curve = DemandCurve(50, seed=0)
        assert curve.quantity(0.0) == 50

    def test_revenue_maximizing_price_beats_neighbours(self):
        curve = DemandCurve(200, UniformWtp(10.0, 100.0), seed=2)
        best = curve.revenue_maximizing_price()
        assert curve.revenue(best) >= curve.revenue(best * 0.8)
        assert curve.revenue(best) >= curve.revenue(best * 1.2)

    def test_consumer_surplus_falls_with_price(self):
        curve = DemandCurve(100, seed=3)
        assert curve.consumer_surplus(10.0) > curve.consumer_surplus(50.0)

    def test_deterministic_under_seed(self):
        a = DemandCurve(50, seed=9).wtps
        b = DemandCurve(50, seed=9).wtps
        assert a == b

    def test_needs_consumers(self):
        with pytest.raises(MarketError):
            DemandCurve(0)
