"""Edge cases for pricing strategies and the consumer decision contract.

Companion to ``test_pricing.py``: zero-consumer markets, floor/cap
clamping under extreme inputs, and the equal-surplus tie contract the
vector backend depends on.
"""

import pytest

from tussle.econ.agents import Consumer, Provider
from tussle.econ.decision import TIE_EPSILON
from tussle.econ.market import Market
from tussle.econ.pricing import (
    MonopolyPricing,
    UndercutPricing,
    ValuePricingStrategy,
)
from tussle.errors import MarketError


def provider(name="p", price=30.0, unit_cost=5.0, business_price=None):
    return Provider(name=name, price=price, unit_cost=unit_cost,
                    business_price=business_price)


class TestZeroConsumers:
    def test_market_share_with_no_consumers_is_zero(self):
        p = provider()
        assert p.market_share(0) == 0.0
        assert p.market_share(-1) == 0.0

    def test_empty_market_runs_and_reports_zeroes(self):
        market = Market(providers=[provider()], consumers=[])
        record = market.step()
        assert record.switches == 0
        assert record.consumer_surplus == 0.0
        assert record.shares == {"p": 0.0}
        assert market.subscribed_fraction() == 0.0
        assert market.total_consumer_surplus() == 0.0

    def test_monopoly_decays_when_everyone_has_left(self):
        """Zero subscribers means share 0 < share_floor: price retreats."""
        p = provider(price=30.0, unit_cost=5.0)
        MonopolyPricing(creep=2.0).adjust(p, {"p": 30.0}, own_share=0.0)
        assert p.price == 28.0

    def test_monopoly_decay_bottoms_out_at_unit_cost(self):
        p = provider(price=5.5, unit_cost=5.0)
        strategy = MonopolyPricing(creep=2.0)
        strategy.adjust(p, {"p": 5.5}, own_share=0.0)
        assert p.price == 5.0
        strategy.adjust(p, {"p": 5.0}, own_share=0.0)
        assert p.price == 5.0


class TestFloorAndCapClamping:
    def test_undercut_floor_binds_against_deep_discounter(self):
        p = provider(price=30.0, unit_cost=5.0)
        UndercutPricing(margin_floor=0.5).adjust(
            p, {"p": 30.0, "rival": 1.0}, own_share=0.5)
        assert p.price == 5.5

    def test_undercut_keeps_business_tier_at_least_basic(self):
        p = provider(price=30.0, unit_cost=5.0, business_price=35.0)
        UndercutPricing().adjust(
            p, {"p": 30.0, "rival": 50.0}, own_share=0.5)
        assert p.price == 49.0
        assert p.business_price == 49.0

    def test_monopoly_cap_binds(self):
        p = provider(price=199.5, unit_cost=5.0)
        MonopolyPricing(creep=2.0, price_cap=200.0).adjust(
            p, {"p": 199.5}, own_share=1.0)
        assert p.price == 200.0

    def test_monopoly_lifts_business_tier_with_basic(self):
        p = provider(price=100.0, unit_cost=5.0, business_price=100.5)
        MonopolyPricing(creep=2.0).adjust(p, {"p": 100.0}, own_share=1.0)
        assert p.price == 102.0
        assert p.business_price == 102.0

    def test_value_pricing_multiple_of_one_collapses_tier_to_basic(self):
        p = provider(price=30.0)
        ValuePricingStrategy(tier_multiple=1.0).adjust(
            p, {"p": 30.0}, own_share=1.0)
        assert p.business_price == 30.0

    def test_value_pricing_rejects_sub_unit_multiple(self):
        with pytest.raises(MarketError):
            ValuePricingStrategy(tier_multiple=0.99)


class TestEqualSurplusTies:
    def test_identical_providers_tie_to_alphabetically_first(self):
        market = Market(
            providers=[provider("zeta", price=10.0),
                       provider("alpha", price=10.0)],
            consumers=[Consumer(name="c0", wtp=50.0)],
        )
        market.step()
        assert market.consumers[0].provider == "alpha"

    def test_sub_epsilon_improvement_never_triggers_a_switch(self):
        market = Market(
            providers=[provider("alpha", price=10.0),
                       provider("beta", price=10.0 - TIE_EPSILON / 2)],
            consumers=[Consumer(name="c0", wtp=50.0, provider="alpha",
                                switching_cost=0.0)],
        )
        market.run(3)
        assert market.consumers[0].provider == "alpha"
        assert market.total_switches() == 0

    def test_meaningful_improvement_does_trigger_a_switch(self):
        market = Market(
            providers=[provider("alpha", price=10.0),
                       provider("beta", price=9.0)],
            consumers=[Consumer(name="c0", wtp=50.0, provider="alpha",
                                switching_cost=0.0)],
        )
        market.step()
        assert market.consumers[0].provider == "beta"
        assert market.total_switches() == 1
