"""Pinned outputs for the experiments the decision extraction touched.

PR 4 moved the consumer choice rule out of ``Market.step`` into the pure
functions in :mod:`tussle.econ.decision` so the vector backend could
share it.  These hashes pin the full deterministic fingerprint (tables +
shape checks) of E01-E03 to the pre-refactor values: any change to the
decision rule, the RNG streams, or the market loop that moves a single
bit of output fails here.

If a *deliberate* model change invalidates a hash, recompute it with::

    PYTHONPATH=src python - <<'PY'
    import hashlib
    from tussle.lint.seedcheck import fingerprint
    from tussle.experiments import ALL_EXPERIMENTS
    for eid in ("E01", "E02", "E03"):
        fp = fingerprint(ALL_EXPERIMENTS[eid]())
        print(eid, hashlib.sha256(repr(fp).encode()).hexdigest())
    PY
"""

import hashlib

import pytest

from tussle.experiments import ALL_EXPERIMENTS
from tussle.lint.seedcheck import fingerprint

PINNED = {
    "E01": "1888c685c7cc8f419e3bc62b562cdb3271e04ca5f4f97b26e6c22b2b9ae31942",
    "E02": "7870bc5105941ca0b0be4248dc5bb4209ecc835a3eacac7bc22c9f31b143d4e4",
    "E03": "ea28654d5e1eb204bde2f0872d07cb666fc954fc09ad7ed34c80555e06b5443c",
}


@pytest.mark.parametrize("experiment_id", sorted(PINNED))
def test_experiment_output_is_bit_stable(experiment_id):
    result = ALL_EXPERIMENTS[experiment_id]()
    digest = hashlib.sha256(
        repr(fingerprint(result)).encode()).hexdigest()
    assert digest == PINNED[experiment_id], (
        f"{experiment_id} output drifted; if intentional, recompute the "
        f"pinned hash (see module docstring)")
