"""Tests for the multicast coordination game (the §VII exercise)."""

import pytest

from tussle.econ.investment import (
    DeploymentChoice,
    MulticastModel,
    multicast_deployment_game,
)


class TestPayoffs:
    def test_solo_open_deployment_loses_money(self):
        model = MulticastModel()
        payoff = model.payoff(DeploymentChoice.DEPLOY_OPEN,
                              DeploymentChoice.NO_DEPLOY, True, True)
        assert payoff < 0

    def test_universal_open_deployment_profits(self):
        model = MulticastModel()
        payoff = model.payoff(DeploymentChoice.DEPLOY_OPEN,
                              DeploymentChoice.DEPLOY_OPEN, True, True)
        assert payoff > 0

    def test_network_effect_gates_open_revenue(self):
        model = MulticastModel()
        alone = model.payoff(DeploymentChoice.DEPLOY_OPEN,
                             DeploymentChoice.NO_DEPLOY, True, False)
        together = model.payoff(DeploymentChoice.DEPLOY_OPEN,
                                DeploymentChoice.DEPLOY_OPEN, True, False)
        assert together > alone

    def test_no_value_flow_means_no_open_revenue(self):
        model = MulticastModel()
        assert model.payoff(DeploymentChoice.DEPLOY_OPEN,
                            DeploymentChoice.DEPLOY_OPEN, False, False) \
            == pytest.approx(-model.deployment_cost)


class TestEquilibria:
    def test_best_cell_is_a_stag_hunt(self):
        """Open is stable AND closed/no-deploy is stable: coordination trap."""
        model = MulticastModel()
        stable = model.symmetric_equilibria(True, True)
        assert DeploymentChoice.DEPLOY_OPEN in stable
        assert len(stable) > 1

    def test_factorial_traps(self):
        cells = {(c.value_flow, c.user_choice): c
                 for c in multicast_deployment_game()}
        assert cells[(True, True)].coordination_trap
        # Without user choice there is no churn pressure toward open at
        # all; closed deployment is simply the unique equilibrium.
        assert not cells[(True, False)].coordination_trap
        assert cells[(True, False)].equilibria == [DeploymentChoice.DEPLOY_CLOSED]

    def test_contrast_with_qos(self):
        """QoS's best cell resolves to open; multicast's stays ambiguous."""
        from tussle.econ.investment import InvestmentModel

        qos_stable = InvestmentModel().symmetric_equilibria(True, True)
        multicast_stable = MulticastModel().symmetric_equilibria(True, True)
        assert qos_stable == [DeploymentChoice.DEPLOY_OPEN]
        assert len(multicast_stable) > len(qos_stable)

    def test_no_closed_option_still_trapped(self):
        cells = {(c.value_flow, c.user_choice): c
                 for c in multicast_deployment_game(allow_closed=False)}
        best = cells[(True, True)]
        assert DeploymentChoice.DEPLOY_OPEN in best.equilibria
        assert DeploymentChoice.NO_DEPLOY in best.equilibria
        assert best.coordination_trap

    def test_describe(self):
        cell = multicast_deployment_game()[0]
        assert "no-value-flow" in cell.describe()
