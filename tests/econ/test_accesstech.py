"""Tests for the broadband facilities market (E03 substrate)."""

import pytest

from tussle.errors import MarketError
from tussle.econ.accesstech import (
    AccessRegime,
    Facility,
    build_access_market,
    build_service_providers,
)
from tussle.econ.pricing import MonopolyPricing, UndercutPricing


DUOPOLY = [Facility("telco", wholesale_fee=8.0), Facility("cable", wholesale_fee=8.0)]


class TestProviderConstruction:
    def test_closed_regime_one_retailer_per_facility(self):
        providers, strategies = build_service_providers(DUOPOLY, AccessRegime.CLOSED)
        assert len(providers) == 2
        assert all(isinstance(s, MonopolyPricing) for s in strategies.values())

    def test_natural_open_regime_many_retailers(self):
        providers, strategies = build_service_providers(
            DUOPOLY, AccessRegime.OPEN_NATURAL_BOUNDARY, isps_per_open_facility=4)
        assert len(providers) == 8
        assert all(isinstance(s, UndercutPricing) for s in strategies.values())

    def test_wrong_boundary_entrants_carry_fatter_costs(self):
        providers, strategies = build_service_providers(
            DUOPOLY, AccessRegime.OPEN_WRONG_BOUNDARY)
        by_name = {p.name: p for p in providers}
        assert by_name["telco-isp1"].unit_cost > by_name["telco-isp0"].unit_cost
        assert isinstance(strategies["telco-isp0"], MonopolyPricing)
        assert isinstance(strategies["telco-isp1"], UndercutPricing)

    def test_retail_cost_includes_wholesale_fee(self):
        cheap = [Facility("muni", wholesale_fee=5.0)]
        dear = [Facility("telco", wholesale_fee=9.0)]
        cheap_providers, _ = build_service_providers(cheap, AccessRegime.CLOSED)
        dear_providers, _ = build_service_providers(dear, AccessRegime.CLOSED)
        assert cheap_providers[0].unit_cost < dear_providers[0].unit_cost

    def test_needs_facilities(self):
        with pytest.raises(MarketError):
            build_service_providers([], AccessRegime.CLOSED)


class TestMarketOutcomes:
    def test_open_natural_cheaper_than_closed(self):
        closed = build_access_market(DUOPOLY, AccessRegime.CLOSED,
                                     n_consumers=100, seed=0)
        closed.run(25)
        open_market = build_access_market(DUOPOLY,
                                          AccessRegime.OPEN_NATURAL_BOUNDARY,
                                          n_consumers=100, seed=0)
        open_market.run(25)
        assert open_market.mean_price() < closed.mean_price()

    def test_more_facilities_more_surplus(self):
        few = build_access_market(DUOPOLY[:1], AccessRegime.CLOSED,
                                  n_consumers=100, seed=0)
        few.run(25)
        many = build_access_market(
            [Facility(f"f{i}", wholesale_fee=8.0) for i in range(4)],
            AccessRegime.OPEN_NATURAL_BOUNDARY, n_consumers=100, seed=0)
        many.run(25)
        assert many.total_consumer_surplus() > few.total_consumer_surplus()

    def test_market_is_deterministic_under_seed(self):
        def run():
            market = build_access_market(DUOPOLY, AccessRegime.CLOSED,
                                         n_consumers=50, seed=5)
            market.run(10)
            return market.mean_price(), market.total_consumer_surplus()

        assert run() == run()
