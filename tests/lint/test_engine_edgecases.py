"""Engine robustness: broken sources, stale suppressions, stale baselines.

The analyzer is a gate; a gate that crashes on weird input fails open.
Every degenerate file shape must come back as a structured finding
(X304) or a clean pass — never a traceback.
"""

import json
import textwrap

import pytest

from tussle.errors import LintError
from tussle.lint import load_baseline, run_lint, update_baseline
from tussle.lint.cli import main
from tussle.lint.context import parse_module


def write_module(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


class TestBrokenSources:
    def test_syntax_error_becomes_x304_finding(self, tmp_path):
        write_module(tmp_path, "import random\n", name="good.py")
        bad = write_module(tmp_path, "def broken(:\n", name="bad.py")
        report = run_lint([tmp_path])
        assert report.files_scanned == 2
        x304 = [f for f in report.active if f.rule_id == "X304"]
        assert len(x304) == 1
        assert x304[0].path == str(bad)
        assert "syntax" in x304[0].message.lower()

    def test_non_utf8_source_becomes_x304_finding(self, tmp_path):
        bad = tmp_path / "latin.py"
        bad.write_bytes(b"# caf\xe9\nx = 1\n")
        report = run_lint([tmp_path])
        x304 = [f for f in report.active if f.rule_id == "X304"]
        assert len(x304) == 1
        assert "decode" in x304[0].message

    def test_empty_module_is_clean(self, tmp_path):
        write_module(tmp_path, "", name="empty.py")
        report = run_lint([tmp_path])
        assert report.files_scanned == 1
        assert report.clean

    def test_file_deleted_between_discovery_and_parse(self, tmp_path,
                                                      monkeypatch):
        write_module(tmp_path, "x = 1\n", name="stays.py")
        doomed = write_module(tmp_path, "y = 2\n", name="vanishes.py")

        import tussle.lint.engine as engine_mod
        real_parse = engine_mod.parse_module

        def racing_parse(path, root):
            if path == doomed:
                doomed.unlink()  # the race: gone before we read it
            return real_parse(path, root)

        monkeypatch.setattr(engine_mod, "parse_module", racing_parse)
        report = run_lint([tmp_path])
        assert report.files_scanned == 2
        x304 = [f for f in report.active if f.rule_id == "X304"]
        assert len(x304) == 1
        assert x304[0].path == str(doomed)

    def test_parse_module_raises_lint_error_not_unicode_error(self, tmp_path):
        bad = tmp_path / "latin.py"
        bad.write_bytes(b"x = '\xff\xfe'\n")
        with pytest.raises(LintError):
            parse_module(bad, tmp_path)

    def test_cli_broken_file_exits_one_not_two(self, tmp_path, capsys):
        write_module(tmp_path, "def broken(:\n")
        assert main([str(tmp_path)]) == 1
        assert "X304" in capsys.readouterr().out


class TestStaleSuppressions:
    def test_stale_disable_comment_fires_x303(self, tmp_path):
        path = write_module(tmp_path, """
            value = 41 + 1  # lint: disable=D101
        """)
        report = run_lint([path])
        x303 = [f for f in report.active if f.rule_id == "X303"]
        assert len(x303) == 1
        assert "D101" in x303[0].message

    def test_used_disable_comment_is_not_stale(self, tmp_path):
        path = write_module(tmp_path, """
            import random
            value = random.random()  # lint: disable=D101
        """)
        report = run_lint([path])
        assert not [f for f in report.active if f.rule_id == "X303"]

    def test_stale_noqa_is_never_audited(self, tmp_path):
        path = write_module(tmp_path, """
            value = 41 + 1  # noqa: E501
        """)
        report = run_lint([path])
        assert report.clean

    def test_mention_in_docstring_is_not_audited(self, tmp_path):
        path = write_module(tmp_path, '''
            """Suppress findings with `# lint: disable=D101` comments."""
            value = 1
        ''')
        report = run_lint([path])
        assert report.clean

    def test_stale_f_rule_id_is_left_to_the_flow_run(self, tmp_path):
        path = write_module(tmp_path, """
            value = 41 + 1  # lint: disable=F201
        """)
        report = run_lint([path])
        assert report.clean

    def test_stale_bare_disable_fires_x303(self, tmp_path):
        path = write_module(tmp_path, """
            value = 41 + 1  # lint: disable
        """)
        report = run_lint([path])
        x303 = [f for f in report.active if f.rule_id == "X303"]
        assert len(x303) == 1

    def test_x303_cannot_be_silenced_by_the_audited_comment(self, tmp_path):
        path = write_module(tmp_path, """
            value = 41 + 1  # lint: disable=X303
        """)
        report = run_lint([path])
        assert [f for f in report.active if f.rule_id == "X303"]


class TestStaleBaseline:
    def _baseline(self, tmp_path, entries):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": entries}))
        return path

    def test_stale_entry_reported_and_fails_the_gate(self, tmp_path, capsys):
        mod = write_module(tmp_path, "value = 1\n")
        baseline = self._baseline(tmp_path, [
            {"rule": "D101", "path": str(mod), "count": 2},
        ])
        assert main([str(mod), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        assert "--update-baseline" in out

    def test_partially_consumed_budget_reports_the_leftover(self, tmp_path):
        mod = write_module(tmp_path, """
            import random
            value = random.random()
        """)
        baseline = self._baseline(tmp_path, [
            {"rule": "D101", "path": str(mod), "count": 3},
        ])
        report = run_lint([mod], baseline=load_baseline(baseline))
        assert report.stale_baseline == [
            {"rule": "D101", "path": str(mod), "count": 2},
        ]
        assert not report.clean

    def test_exact_budget_is_clean(self, tmp_path):
        mod = write_module(tmp_path, """
            import random
            value = random.random()
        """)
        baseline = self._baseline(tmp_path, [
            {"rule": "D101", "path": str(mod), "count": 1},
        ])
        report = run_lint([mod], baseline=load_baseline(baseline))
        assert report.stale_baseline == []
        assert report.clean

    def test_update_baseline_prunes_stale_entries(self, tmp_path, capsys):
        mod = write_module(tmp_path, """
            import random
            value = random.random()
        """)
        baseline = self._baseline(tmp_path, [
            {"rule": "D101", "path": str(mod), "count": 1},
            {"rule": "D104", "path": str(mod), "count": 4},  # long fixed
        ])
        assert main([str(mod), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        rewritten = json.loads(baseline.read_text())
        rules = {e["rule"]: e["count"] for e in rewritten["entries"]}
        assert rules == {"D101": 1}
        # And the gate now passes against the pruned baseline.
        assert main([str(mod), "--baseline", str(baseline)]) == 0

    def test_update_baseline_keeps_grandfathered_findings(self, tmp_path):
        mod = write_module(tmp_path, """
            import random
            value = random.random()
        """)
        baseline = self._baseline(tmp_path, [
            {"rule": "D101", "path": str(mod), "count": 1},
        ])
        report = run_lint([mod], baseline=load_baseline(baseline))
        rewritten = update_baseline(baseline, report.findings)
        assert rewritten.budgets == {("D101", str(mod)): 1}

    def test_update_baseline_drops_inline_suppressed_findings(self, tmp_path):
        mod = write_module(tmp_path, """
            import random
            value = random.random()  # lint: disable=D101
        """)
        report = run_lint([mod])
        baseline_path = tmp_path / "baseline.json"
        rewritten = update_baseline(baseline_path, report.findings)
        assert ("D101", str(mod)) not in rewritten.budgets
