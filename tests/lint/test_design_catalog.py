"""DESIGN.md drift test: the rule catalog must track the registry.

Every rule that registers at import time (D/E/F/X families) must have a
row in the DESIGN.md catalog table, and every catalog row must name a
rule that still exists — documentation that lags the code misleads in
both directions.
"""

import re
from pathlib import Path

import pytest

import tussle.lint  # noqa: F401  (importing registers every rule family)
from tussle.lint import RULE_REGISTRY, rule_ids

DESIGN_PATH = Path(__file__).resolve().parents[2] / "DESIGN.md"

pytestmark = pytest.mark.skipif(
    not DESIGN_PATH.is_file(),
    reason="source checkout layout required",
)

_ROW_RE = re.compile(r"^\|\s*([A-Z]\d{3})\s*\|", re.MULTILINE)


def catalog_rows():
    return set(_ROW_RE.findall(DESIGN_PATH.read_text(encoding="utf-8")))


def test_every_registered_rule_has_a_catalog_row():
    missing = sorted(set(rule_ids()) - catalog_rows())
    assert not missing, (
        f"rules registered but absent from the DESIGN.md catalog: {missing} "
        "— add a `| ID | name | enforces |` row"
    )


def test_every_catalog_row_names_a_registered_rule():
    # E01/E02… experiment-index IDs use two digits; the three-digit rule
    # pattern keeps them out of this set by construction.
    ghost = sorted(catalog_rows() - set(rule_ids()))
    assert not ghost, (
        f"DESIGN.md catalog rows for rules that no longer exist: {ghost}"
    )


def test_catalog_families_are_documented():
    families = {rule_id[0] for rule_id in rule_ids()}
    assert families == {"D", "E", "F", "X"}
    for family in families:
        assert any(row.startswith(family) for row in catalog_rows())


def test_catalog_names_match_registry():
    text = DESIGN_PATH.read_text(encoding="utf-8")
    for rule_id in rule_ids():
        rule = RULE_REGISTRY[rule_id]
        row = re.search(rf"^\|\s*{rule_id}\s*\|\s*([^|]+)\|", text,
                        re.MULTILINE)
        assert row is not None
        assert row.group(1).strip() == rule.name, (
            f"{rule_id}: DESIGN.md names it {row.group(1).strip()!r} but "
            f"the registry says {rule.name!r}"
        )
