"""Positive + negative coverage for every flow rule (F201-F208).

Each test builds a miniature ``tussle``-shaped package tree under
tmp_path (the subsystem vocabulary of F202/F205/F207 keys off the
``tussle.<subsystem>`` dotted-name prefix) and runs the whole-program
analyzer over it.
"""

import textwrap

import pytest

from tussle.lint import run_flow


def write_tree(root, files):
    """Create a package tree: {relative_path: source} with __init__.py."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for ancestor in path.parents:
            if ancestor == root:
                break
            init = ancestor / "__init__.py"
            if not init.exists():
                init.write_text("")
        path.write_text(textwrap.dedent(source))
    return root / "tussle"


def rule_ids_of(report):
    return sorted({f.rule_id for f in report.active})


class TestF201SeedProvenance:
    def test_unseedlike_param_with_no_callers_fires(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/mod.py": """
                import random

                def build(knob):
                    return random.Random(knob)
            """,
        })
        report = run_flow([pkg])
        assert "F201" in rule_ids_of(report)

    def test_seed_named_param_is_a_terminal(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/mod.py": """
                import random

                def build(seed):
                    return random.Random(seed)
            """,
        })
        report = run_flow([pkg])
        assert "F201" not in rule_ids_of(report)

    def test_interprocedural_trace_through_caller(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/mod.py": """
                import random

                def build(knob):
                    return random.Random(knob)

                def top(seed):
                    return build(seed)
            """,
        })
        report = run_flow([pkg])
        assert "F201" not in rule_ids_of(report)

    def test_caller_passing_untraced_value_fires(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/mod.py": """
                import random
                import os

                def build(knob):
                    return random.Random(knob)

                def top():
                    return build(os.getpid())
            """,
        })
        report = run_flow([pkg])
        assert "F201" in rule_ids_of(report)

    def test_derive_seed_is_a_sanctioned_derivation(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/sweep/cells.py": """
                def derive_seed(base_seed, index):
                    return (base_seed * 31 + index) % (2 ** 63)
            """,
            "tussle/econ/mod.py": """
                import random

                from tussle.sweep.cells import derive_seed

                def build(seed, index):
                    return random.Random(derive_seed(seed, index))
            """,
        })
        report = run_flow([pkg])
        assert "F201" not in rule_ids_of(report)

    def test_explicit_none_seed_fires(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/mod.py": """
                import random

                def build():
                    return random.Random(None)
            """,
        })
        report = run_flow([pkg])
        assert "F201" in rule_ids_of(report)


class TestF202SharedStream:
    def test_rng_fanned_into_two_subsystems_fires(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/market.py": """
                def step_market(rng):
                    return rng.random()
            """,
            "tussle/netsim/sim.py": """
                def step_net(rng):
                    return rng.random()
            """,
            "tussle/experiments/run.py": """
                import random

                from tussle.econ.market import step_market
                from tussle.netsim.sim import step_net

                def run_both(seed):
                    rng = random.Random(seed)
                    return step_market(rng) + step_net(rng)
            """,
        })
        report = run_flow([pkg])
        assert "F202" in rule_ids_of(report)

    def test_one_subsystem_per_rng_is_clean(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/market.py": """
                def step_market(rng):
                    return rng.random()
            """,
            "tussle/netsim/sim.py": """
                def step_net(rng):
                    return rng.random()
            """,
            "tussle/experiments/run.py": """
                import random

                from tussle.econ.market import step_market
                from tussle.netsim.sim import step_net

                def run_both(seed):
                    market_rng = random.Random(seed)
                    net_rng = random.Random(seed + 1)
                    return step_market(market_rng) + step_net(net_rng)
            """,
        })
        report = run_flow([pkg])
        assert "F202" not in rule_ids_of(report)


class TestF203ExecutorBoundary:
    def test_rng_in_pool_map_payload_fires(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/sweep/par.py": """
                import random

                def work(item):
                    return item

                def fan_out(pool, seed):
                    rng = random.Random(seed)
                    return pool.map(work, [rng])
            """,
        })
        report = run_flow([pkg])
        assert "F203" in rule_ids_of(report)

    def test_seed_in_payload_is_clean(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/sweep/par.py": """
                def work(item):
                    return item

                def fan_out(pool, seed):
                    return pool.map(work, [seed])
            """,
        })
        report = run_flow([pkg])
        assert "F203" not in rule_ids_of(report)


class TestF204RngDefault:
    def test_rng_constructed_in_default_fires(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/mod.py": """
                import random

                def sample(rng=random.Random(0)):
                    return rng.random()
            """,
        })
        report = run_flow([pkg])
        assert "F204" in rule_ids_of(report)

    def test_none_default_is_clean(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/mod.py": """
                import random

                def sample(seed, rng=None):
                    rng = rng if rng is not None else random.Random(seed)
                    return rng.random()
            """,
        })
        report = run_flow([pkg])
        assert "F204" not in rule_ids_of(report)


class TestF205PureContract:
    def test_param_mutation_in_decision_module_fires(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/decision.py": """
                def pick(offers):
                    offers.sort()
                    return offers[0]
            """,
        })
        report = run_flow([pkg])
        assert "F205" in rule_ids_of(report)

    def test_transitive_mutation_fires(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/helpers.py": """
                def stamp(record):
                    record.append("seen")
            """,
            "tussle/econ/decision.py": """
                from tussle.econ.helpers import stamp

                def pick(offers):
                    stamp(offers)
                    return offers[0]
            """,
        })
        report = run_flow([pkg])
        assert "F205" in rule_ids_of(report)

    def test_pure_decision_module_is_clean(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/decision.py": """
                import math

                def effective(price, quality):
                    return price - math.log1p(quality)
            """,
        })
        report = run_flow([pkg])
        assert rule_ids_of(report) == []

    def test_local_mutation_stays_pure(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/decision.py": """
                def ranked(offers):
                    out = list(offers)
                    out.sort()
                    return out
            """,
        })
        report = run_flow([pkg])
        assert "F205" not in rule_ids_of(report)


class TestF206UnverifiablePurity:
    def test_unknown_external_call_fires(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/decision.py": """
                import frobnicate

                def pick(offers):
                    return frobnicate.munge(offers)
            """,
        })
        report = run_flow([pkg])
        assert "F206" in rule_ids_of(report)

    def test_known_pure_external_is_clean(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/decision.py": """
                import math

                def pick(x):
                    return math.sqrt(x)
            """,
        })
        report = run_flow([pkg])
        assert "F206" not in rule_ids_of(report)


class TestF207WorkerGlobalMutation:
    def test_global_write_reachable_from_experiment_fires(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/obs/stats.py": """
                COUNT = 0

                def bump():
                    global COUNT
                    COUNT += 1
            """,
            "tussle/experiments/e99.py": """
                from tussle.obs.stats import bump

                def run_e99(seed=0):
                    bump()
                    return seed
            """,
        })
        report = run_flow([pkg])
        assert "F207" in rule_ids_of(report)

    def test_unreachable_global_write_is_not_a_worker_finding(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/obs/stats.py": """
                COUNT = 0

                def bump():
                    global COUNT
                    COUNT += 1
            """,
            "tussle/experiments/e99.py": """
                def run_e99(seed=0):
                    return seed
            """,
        })
        report = run_flow([pkg])
        assert "F207" not in rule_ids_of(report)


class TestF208UnpicklableCapture:
    def test_lambda_through_pool_map_fires(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/sweep/par.py": """
                def fan_out(pool, items):
                    return pool.map(lambda item: item + 1, items)
            """,
        })
        report = run_flow([pkg])
        assert "F208" in rule_ids_of(report)

    def test_module_level_function_is_clean(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/sweep/par.py": """
                def work(item):
                    return item + 1

                def fan_out(pool, items):
                    return pool.map(work, items)
            """,
        })
        report = run_flow([pkg])
        assert "F208" not in rule_ids_of(report)


class TestFlowSuppressionsAndStaleness:
    def test_inline_suppression_by_id(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/mod.py": """
                import random

                def build(knob):
                    return random.Random(knob)  # lint: disable=F201
            """,
        })
        report = run_flow([pkg])
        assert "F201" not in rule_ids_of(report)
        assert any(f.rule_id == "F201" for f in report.suppressed)

    def test_stale_f_suppression_reported_by_flow_run(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/mod.py": """
                import random

                def build(seed):
                    return random.Random(seed)  # lint: disable=F201
            """,
        })
        report = run_flow([pkg])
        assert "X303" in rule_ids_of(report)

    def test_stale_d_suppression_ignored_by_flow_run(self, tmp_path):
        pkg = write_tree(tmp_path, {
            "tussle/econ/mod.py": """
                import random

                def build(seed):
                    return random.Random(seed)  # lint: disable=D999
            """,
        })
        report = run_flow([pkg])
        assert "X303" not in rule_ids_of(report)


def test_flow_rules_have_positive_and_negative_coverage():
    """Meta: this file exercises every F rule in both directions."""
    import pathlib

    source = pathlib.Path(__file__).read_text()
    for rule in ("F201", "F202", "F203", "F204",
                 "F205", "F206", "F207", "F208"):
        assert f'"{rule}" in rule_ids_of' in source
        assert f'"{rule}" not in rule_ids_of' in source
