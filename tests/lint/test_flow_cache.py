"""Incremental summary cache: hits, invalidation, pruning, tombstones."""

import textwrap

from tussle.lint import run_flow
from tussle.lint.flow.cache import SummaryCache, source_digest


def write_pkg(root, body="def f(seed):\n    return seed\n"):
    pkg = root / "tussle" / "econ"
    pkg.mkdir(parents=True, exist_ok=True)
    (root / "tussle" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(body)
    return root / "tussle"


class TestCacheLifecycle:
    def test_cold_then_warm(self, tmp_path):
        pkg = write_pkg(tmp_path)
        cache_dir = tmp_path / "cache"
        cold = run_flow([pkg], cache_dir=cache_dir)
        assert cold.cache_stats == {"hits": 0, "misses": 3}
        warm = run_flow([pkg], cache_dir=cache_dir)
        assert warm.cache_stats == {"hits": 3, "misses": 0}
        assert [f.to_dict() for f in warm.findings] == \
               [f.to_dict() for f in cold.findings]

    def test_edit_invalidates_only_the_edited_file(self, tmp_path):
        pkg = write_pkg(tmp_path)
        cache_dir = tmp_path / "cache"
        run_flow([pkg], cache_dir=cache_dir)
        (pkg / "econ" / "mod.py").write_text(
            "def g(seed):\n    return seed + 1\n")
        warm = run_flow([pkg], cache_dir=cache_dir)
        assert warm.cache_stats == {"hits": 2, "misses": 1}

    def test_stale_entries_are_pruned(self, tmp_path):
        pkg = write_pkg(tmp_path)
        cache_dir = tmp_path / "cache"
        run_flow([pkg], cache_dir=cache_dir)
        before = set(cache_dir.iterdir())
        (pkg / "econ" / "mod.py").write_text("VALUE = 3\n")
        run_flow([pkg], cache_dir=cache_dir)
        after = set(cache_dir.iterdir())
        assert len(after) == len(before)  # one replaced, old one pruned
        assert after != before

    def test_no_cache_dir_means_no_writes(self, tmp_path):
        pkg = write_pkg(tmp_path)
        report = run_flow([pkg], cache_dir=None)
        assert report.cache_stats["hits"] == 0
        assert not (tmp_path / "cache").exists()

    def test_broken_file_tombstone_is_cached(self, tmp_path):
        pkg = write_pkg(tmp_path, body="def broken(:\n")
        cache_dir = tmp_path / "cache"
        cold = run_flow([pkg], cache_dir=cache_dir)
        assert any(f.rule_id == "X304" for f in cold.active)
        warm = run_flow([pkg], cache_dir=cache_dir)
        assert warm.cache_stats == {"hits": 3, "misses": 0}
        assert any(f.rule_id == "X304" for f in warm.active)

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        pkg = write_pkg(tmp_path)
        cache_dir = tmp_path / "cache"
        run_flow([pkg], cache_dir=cache_dir)
        for entry in cache_dir.iterdir():
            entry.write_text("{not json")
        report = run_flow([pkg], cache_dir=cache_dir)
        assert report.cache_stats == {"hits": 0, "misses": 3}

    def test_digest_covers_analyzer_version(self, monkeypatch):
        from tussle.lint.flow import cache as cache_mod

        digest_now = source_digest(b"x = 1\n")
        monkeypatch.setattr(cache_mod, "ANALYZER_VERSION",
                            cache_mod.ANALYZER_VERSION + 1)
        assert source_digest(b"x = 1\n") != digest_now


def test_cache_lookup_rejects_version_mismatch(tmp_path):
    cache = SummaryCache(directory=tmp_path)
    digest = source_digest(b"y = 2\n")
    cache.store(digest, {"version": -1, "module": "m", "path": "p"})
    fresh = SummaryCache(directory=tmp_path)
    assert fresh.lookup(digest) is None
    assert fresh.misses == 1
