"""Engine plumbing: suppressions, baselines, CLI exit codes and formats."""

import json
import textwrap

import pytest

from tussle.errors import LintError
from tussle.lint import (
    Baseline,
    apply_baseline,
    load_baseline,
    run_lint,
    rule_ids,
    write_baseline,
)
from tussle.lint.cli import main


def write_module(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


DIRTY = """
    import random
    value = random.random()
"""


class TestInlineSuppressions:
    def test_lint_disable_comment(self, tmp_path):
        path = write_module(tmp_path, """
            import random
            value = random.random()  # lint: disable=D101
        """)
        report = run_lint([path])
        assert report.clean
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppression_source == "inline"

    def test_noqa_alias(self, tmp_path):
        path = write_module(tmp_path, """
            import random
            value = random.random()  # noqa: D101
        """)
        report = run_lint([path])
        assert report.clean

    def test_bare_disable_suppresses_all_rules_on_line(self, tmp_path):
        path = write_module(tmp_path, """
            import random
            value = random.random()  # lint: disable
        """)
        report = run_lint([path])
        assert report.clean

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        path = write_module(tmp_path, """
            import random
            value = random.random()  # lint: disable=D999
        """)
        report = run_lint([path])
        assert not report.clean


class TestBaseline:
    def test_roundtrip_suppresses_grandfathered(self, tmp_path):
        path = write_module(tmp_path, DIRTY)
        first = run_lint([path])
        assert len(first.active) == 1

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        baseline = load_baseline(baseline_path)
        second = run_lint([path], baseline=baseline)
        assert second.clean
        assert second.suppressed[0].suppression_source == "baseline"

    def test_budget_is_per_rule_and_path(self, tmp_path):
        path = write_module(tmp_path, """
            import random
            a = random.random()
            b = random.random()
        """)
        report = run_lint([path])
        assert len(report.active) == 2
        baseline = Baseline({("D101", str(path)): 1})
        apply_baseline(report.findings, baseline)
        active = [f for f in report.findings if not f.suppressed]
        assert len(active) == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{\"version\": 99}")
        with pytest.raises(LintError):
            load_baseline(bad)
        bad.write_text("not json")
        with pytest.raises(LintError):
            load_baseline(bad)


class TestSelect:
    def test_select_filters_families(self, tmp_path):
        path = write_module(tmp_path, """
            import random
            value = random.random()

            def check():
                raise ValueError("boom")
        """)
        everything = run_lint([path])
        assert {f.rule_id for f in everything.active} == {"D101", "X301"}
        only_d = run_lint([path], select=["D"])
        assert {f.rule_id for f in only_d.active} == {"D101"}


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write_module(tmp_path, "x = 1\n")
        assert main([str(path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = write_module(tmp_path, DIRTY)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "D101" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "tussle-lint" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys):
        path = write_module(tmp_path, DIRTY)
        assert main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "D101"

    def test_list_rules_has_catalog(self, capsys):
        assert main(["--list-rules", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        ids = {entry["id"] for entry in payload}
        assert len(ids) >= 10
        assert {"D101", "D107", "E201", "X301", "X302"} <= ids

    def test_write_then_read_baseline_gates_only_new(self, tmp_path, capsys):
        path = write_module(tmp_path, DIRTY)
        baseline_path = tmp_path / "lint-baseline.json"
        assert main([str(path), "--baseline", str(baseline_path),
                     "--write-baseline"]) == 0
        capsys.readouterr()
        # Old finding is grandfathered...
        assert main([str(path), "--baseline", str(baseline_path)]) == 0
        capsys.readouterr()
        # ...but a new finding in the same file still gates.
        path.write_text(path.read_text()
                        + "import os\nhome = os.environ['HOME']\n")
        assert main([str(path), "--baseline", str(baseline_path)]) == 1
        out = capsys.readouterr().out
        assert "D105" in out
        assert "suppressed" in out

    def test_show_suppressed(self, tmp_path, capsys):
        path = write_module(tmp_path, """
            import random
            value = random.random()  # lint: disable=D101
        """)
        assert main([str(path), "--show-suppressed"]) == 0
        out = capsys.readouterr().out
        assert "suppressed: inline" in out


def test_rule_ids_are_stable_and_plentiful():
    ids = rule_ids()
    assert len(ids) >= 10
    families = {i[0] for i in ids}
    assert families == {"D", "E", "F", "X"}
