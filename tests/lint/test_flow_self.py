"""The shipped tree must pass its own whole-program analysis.

This is the seed-provenance proof the flow analyzer exists to provide:
every RNG constructed anywhere in ``src/tussle`` traces to an explicit
seed, no stream crosses subsystem or executor boundaries, the
pure-contract modules verify pure, and nothing worker-reachable touches
module state.
"""

from pathlib import Path

import pytest

from tussle.lint import run_flow
from tussle.lint.flow.project import Program
from tussle.lint.flow.purity import infer_effects
from tussle.lint.flow.rngflow import trace_seed_expr

PACKAGE_DIR = Path(__file__).resolve().parents[2] / "src" / "tussle"

pytestmark = pytest.mark.skipif(
    not PACKAGE_DIR.is_dir(),
    reason="source checkout layout required",
)


@pytest.fixture(scope="module")
def report():
    return run_flow([PACKAGE_DIR])


def test_package_tree_is_flow_clean(report):
    offenders = "\n".join(f.format() for f in report.active)
    assert report.files_scanned > 100
    assert report.clean, f"flow findings in shipped tree:\n{offenders}"
    assert not report.suppressed, "the shipped tree must need no suppressions"


def test_every_rng_constructor_traces_to_an_explicit_seed(report):
    """Positive proof, independent of the F201 finding path."""
    from tussle.lint.engine import collect_files
    from tussle.lint.flow import _load_or_extract
    from tussle.lint.flow.cache import SummaryCache

    cache = SummaryCache(directory=None)
    summaries = [_load_or_extract(p, cache)
                 for p in collect_files([PACKAGE_DIR])]
    program = Program([s for s in summaries if "broken" not in s])

    checked = 0
    for qual, fn, _path in program.iter_functions():
        for ctor in fn["rng_ctors"]:
            if ctor["ctor"] == "random.SystemRandom":
                continue
            ok, reason = trace_seed_expr(program, fn, ctor["seed"])
            assert ok, f"{qual}: {ctor['ctor']} does not trace: {reason}"
            checked += 1
    # The tree really does construct RNGs in many places; an empty scan
    # would make this proof vacuous.
    assert checked >= 20


def test_kernel_candidates_include_netsim_and_routing(report):
    pure = [c for c in report.kernel_candidates if c["pure"]]
    assert len(pure) >= 5
    subsystems = {c["function"].split(".")[1] for c in pure}
    assert "netsim" in subsystems
    assert "routing" in subsystems
    for candidate in report.kernel_candidates:
        assert candidate["effects"]  # every entry carries its summary


def test_pure_contract_modules_verify_pure():
    from tussle.lint.engine import collect_files
    from tussle.lint.flow import _load_or_extract
    from tussle.lint.flow.cache import SummaryCache
    from tussle.lint.flow.purity import PURE_CONTRACT_PATHS

    cache = SummaryCache(directory=None)
    summaries = [_load_or_extract(p, cache)
                 for p in collect_files([PACKAGE_DIR])]
    program = Program([s for s in summaries if "broken" not in s])
    effects = infer_effects(program)

    verified = 0
    for qual, fn, path in program.iter_functions():
        if not any(path.endswith(suffix) for suffix in PURE_CONTRACT_PATHS):
            continue
        if fn["name"] == "<module>":
            continue
        effect = effects[qual]
        assert effect.is_pure, f"{qual}: {effect.describe()}"
        verified += 1
    assert verified >= 5  # decision.py + kernels.py define real functions


def test_worker_reachability_covers_experiments():
    from tussle.lint.engine import collect_files
    from tussle.lint.flow import _load_or_extract
    from tussle.lint.flow.cache import SummaryCache
    from tussle.lint.flow.workersafety import worker_entries

    cache = SummaryCache(directory=None)
    summaries = [_load_or_extract(p, cache)
                 for p in collect_files([PACKAGE_DIR])]
    program = Program([s for s in summaries if "broken" not in s])
    entries = worker_entries(program)
    assert "tussle.sweep.executors.run_cell" in entries
    reachable = program.reachable_from(entries)
    # Registry dispatch is synthetic, so experiment internals must be in.
    assert any(q.startswith("tussle.experiments.") for q in reachable)
    assert len(reachable) > 100
