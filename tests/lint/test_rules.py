"""Rule-level tests: each lint rule fires on the idiom it guards and
stays quiet on the blessed replacement."""

import textwrap

import pytest

from tussle.lint import run_lint


def lint_source(tmp_path, source, filename="mod.py"):
    """Write one module into a scratch package and lint it."""
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_lint([path])


def rule_ids_found(report):
    return sorted({f.rule_id for f in report.active})


class TestD101GlobalRandom:
    def test_fires_on_module_level_random(self, tmp_path):
        report = lint_source(tmp_path, """
            import random
            value = random.random()
        """)
        assert "D101" in rule_ids_found(report)

    def test_fires_through_alias(self, tmp_path):
        report = lint_source(tmp_path, """
            import random as rnd
            value = rnd.choice([1, 2])
        """)
        assert "D101" in rule_ids_found(report)

    def test_quiet_on_instance_methods(self, tmp_path):
        report = lint_source(tmp_path, """
            import random
            rng = random.Random(7)
            value = rng.random()
        """)
        assert rule_ids_found(report) == []


class TestD102LegacyNumpyRandom:
    def test_fires_on_legacy_api(self, tmp_path):
        report = lint_source(tmp_path, """
            import numpy as np
            values = np.random.rand(3)
        """)
        assert "D102" in rule_ids_found(report)

    def test_quiet_on_default_rng(self, tmp_path):
        report = lint_source(tmp_path, """
            import numpy as np
            rng = np.random.default_rng(3)
            values = rng.uniform(size=3)
        """)
        assert rule_ids_found(report) == []


class TestD103UnseededConstructor:
    def test_fires_on_unseeded_random(self, tmp_path):
        report = lint_source(tmp_path, """
            import random
            rng = random.Random()
        """)
        assert "D103" in rule_ids_found(report)

    def test_fires_on_unseeded_default_rng_imported_name(self, tmp_path):
        report = lint_source(tmp_path, """
            from numpy.random import default_rng
            rng = default_rng()
        """)
        assert "D103" in rule_ids_found(report)

    def test_fires_on_system_random(self, tmp_path):
        report = lint_source(tmp_path, """
            import random
            rng = random.SystemRandom(3)
        """)
        assert "D103" in rule_ids_found(report)

    def test_quiet_when_seeded(self, tmp_path):
        report = lint_source(tmp_path, """
            import random
            from numpy.random import default_rng

            def build(seed):
                return random.Random(seed), default_rng(seed)
        """)
        assert rule_ids_found(report) == []


class TestD104WallClock:
    def test_fires_on_time_time(self, tmp_path):
        report = lint_source(tmp_path, """
            import time
            stamp = time.time()
        """)
        assert "D104" in rule_ids_found(report)

    def test_fires_on_datetime_now(self, tmp_path):
        report = lint_source(tmp_path, """
            from datetime import datetime
            stamp = datetime.now()
        """)
        assert "D104" in rule_ids_found(report)


class TestD109WallClockOutsideProfiler:
    def test_fires_alongside_d104_on_timing_calls(self, tmp_path):
        report = lint_source(tmp_path, """
            import time
            start = time.perf_counter()
        """)
        ids = rule_ids_found(report)
        assert "D104" in ids and "D109" in ids

    def test_fires_on_time_time(self, tmp_path):
        report = lint_source(tmp_path, """
            import time
            stamp = time.time()
        """)
        assert "D109" in rule_ids_found(report)

    def test_quiet_on_datetime_now(self, tmp_path):
        # datetime reads are D104-only: they are not profiling idioms.
        report = lint_source(tmp_path, """
            from datetime import datetime
            stamp = datetime.now()
        """)
        assert "D109" not in rule_ids_found(report)

    def test_allowlisted_profiler_module_is_exempt(self, tmp_path):
        report = lint_source(tmp_path, """
            import time
            start = time.perf_counter()
        """, filename="tussle/obs/profiler.py")
        ids = rule_ids_found(report)
        assert "D104" not in ids and "D109" not in ids

    def test_other_obs_modules_not_exempt(self, tmp_path):
        report = lint_source(tmp_path, """
            import time
            start = time.perf_counter()
        """, filename="tussle/obs/tracer.py")
        assert "D109" in rule_ids_found(report)


class TestD110ParallelismOutsideExecutor:
    def test_fires_on_multiprocessing_pool(self, tmp_path):
        report = lint_source(tmp_path, """
            import multiprocessing
            pool = multiprocessing.Pool(processes=4)
        """)
        assert "D110" in rule_ids_found(report)

    def test_fires_on_concurrent_futures_pool(self, tmp_path):
        report = lint_source(tmp_path, """
            import concurrent.futures
            pool = concurrent.futures.ProcessPoolExecutor(max_workers=2)
        """)
        assert "D110" in rule_ids_found(report)

    def test_fires_on_thread_construction(self, tmp_path):
        report = lint_source(tmp_path, """
            import threading
            worker = threading.Thread(target=print)
        """)
        assert "D110" in rule_ids_found(report)

    def test_fires_through_from_import(self, tmp_path):
        report = lint_source(tmp_path, """
            from multiprocessing.pool import ThreadPool
            pool = ThreadPool(2)
        """)
        assert "D110" in rule_ids_found(report)

    def test_allowlisted_executors_module_is_exempt(self, tmp_path):
        report = lint_source(tmp_path, """
            import multiprocessing
            pool = multiprocessing.Pool(processes=4)
        """, filename="tussle/sweep/executors.py")
        assert "D110" not in rule_ids_found(report)

    def test_other_sweep_modules_not_exempt(self, tmp_path):
        report = lint_source(tmp_path, """
            import multiprocessing
            pool = multiprocessing.Pool(processes=4)
        """, filename="tussle/sweep/scheduler.py")
        assert "D110" in rule_ids_found(report)

    def test_quiet_on_unrelated_calls(self, tmp_path):
        report = lint_source(tmp_path, """
            import multiprocessing
            count = multiprocessing.cpu_count()
        """)
        assert "D110" not in rule_ids_found(report)


class TestD111PopulationLoopInKernel:
    KERNEL = "tussle/scale/kernels.py"

    def test_fires_on_loop_over_consumers(self, tmp_path):
        report = lint_source(tmp_path, """
            def kernel(consumers):
                total = 0.0
                for consumer in consumers:
                    total += consumer.wtp
                return total
        """, filename=self.KERNEL)
        assert "D111" in rule_ids_found(report)

    def test_fires_on_range_over_population_count(self, tmp_path):
        report = lint_source(tmp_path, """
            def kernel(n_consumers):
                return [i * 2 for i in range(n_consumers)]
        """, filename=self.KERNEL)
        assert "D111" in rule_ids_found(report)

    def test_fires_on_attribute_population(self, tmp_path):
        report = lint_source(tmp_path, """
            def kernel(arrays):
                out = []
                for row in arrays.agents:
                    out.append(row)
                return out
        """, filename=self.KERNEL)
        assert "D111" in rule_ids_found(report)

    def test_quiet_on_provider_column_loop(self, tmp_path):
        report = lint_source(tmp_path, """
            def kernel(offer_columns):
                best = None
                for j in range(len(offer_columns)):
                    best = offer_columns[j]
                return best
        """, filename=self.KERNEL)
        assert "D111" not in rule_ids_found(report)

    def test_quiet_outside_kernel_modules(self, tmp_path):
        report = lint_source(tmp_path, """
            def builder(consumers):
                return [c.wtp for c in consumers]
        """, filename="tussle/scale/large.py")
        assert "D111" not in rule_ids_found(report)

    def test_the_real_kernels_module_is_loop_free(self):
        from pathlib import Path

        import tussle.scale.kernels as kernels_module
        from tussle.lint import run_lint

        report = run_lint([Path(kernels_module.__file__)])
        assert "D111" not in rule_ids_found(report)


class TestD112SleepOutsideRetrySite:
    def test_fires_on_sleep_in_simulation_code(self, tmp_path):
        report = lint_source(tmp_path, """
            import time
            def wait_for_link():
                time.sleep(0.1)
        """)
        assert "D112" in rule_ids_found(report)

    def test_fires_through_alias(self, tmp_path):
        report = lint_source(tmp_path, """
            import time as t
            t.sleep(1)
        """)
        assert "D112" in rule_ids_found(report)

    def test_fires_through_from_import(self, tmp_path):
        report = lint_source(tmp_path, """
            from time import sleep
            sleep(0.5)
        """)
        assert "D112" in rule_ids_found(report)

    def test_allowlisted_executors_module_is_exempt(self, tmp_path):
        report = lint_source(tmp_path, """
            import time
            def supervise():
                time.sleep(0.02)
        """, filename="tussle/sweep/executors.py")
        assert "D112" not in rule_ids_found(report)

    def test_other_sweep_modules_not_exempt(self, tmp_path):
        report = lint_source(tmp_path, """
            import time
            time.sleep(0.02)
        """, filename="tussle/sweep/scheduler.py")
        assert "D112" in rule_ids_found(report)

    def test_quiet_on_simulated_waits(self, tmp_path):
        report = lint_source(tmp_path, """
            def schedule(engine, delay):
                engine.schedule_at(engine.now + delay)
        """)
        assert "D112" not in rule_ids_found(report)


class TestD105Environ:
    def test_fires_on_environ_and_getenv(self, tmp_path):
        report = lint_source(tmp_path, """
            import os
            a = os.environ["HOME"]
            b = os.getenv("DEBUG")
        """)
        findings = [f for f in report.active if f.rule_id == "D105"]
        assert len(findings) == 2


class TestD106SetOrder:
    def test_fires_on_list_of_set(self, tmp_path):
        report = lint_source(tmp_path, """
            items = list(set([3, 1, 2]))
        """)
        assert "D106" in rule_ids_found(report)

    def test_fires_on_for_over_set_literal(self, tmp_path):
        report = lint_source(tmp_path, """
            def walk():
                for item in {"b", "a"}:
                    print(item)
        """)
        assert "D106" in rule_ids_found(report)

    def test_fires_on_choice_over_set(self, tmp_path):
        report = lint_source(tmp_path, """
            import random
            rng = random.Random(0)
            pick = rng.choice(set([1, 2, 3]))
        """)
        assert "D106" in rule_ids_found(report)

    def test_fires_on_dict_comprehension_over_set(self, tmp_path):
        report = lint_source(tmp_path, """
            table = {k: 0 for k in set(["b", "a"])}
        """)
        assert "D106" in rule_ids_found(report)

    def test_quiet_on_sorted_set(self, tmp_path):
        report = lint_source(tmp_path, """
            items = sorted(set([3, 1, 2]))
            table = {k: 0 for k in sorted({"b", "a"})}
            total = sum({1, 2, 3})
        """)
        assert rule_ids_found(report) == []


class TestD107RngFallback:
    def test_fires_on_or_fallback(self, tmp_path):
        report = lint_source(tmp_path, """
            import random

            def build(rng=None):
                return rng or random.Random(0)
        """)
        assert "D107" in rule_ids_found(report)

    def test_fires_on_conditional_constant_fallback(self, tmp_path):
        report = lint_source(tmp_path, """
            from numpy.random import default_rng

            def build(rng=None):
                return rng if rng is not None else default_rng(0)
        """)
        assert "D107" in rule_ids_found(report)

    def test_quiet_on_threaded_seed(self, tmp_path):
        report = lint_source(tmp_path, """
            import random

            def build(rng=None, seed=0):
                if rng is None:
                    rng = random.Random(seed)
                return rng
        """)
        assert rule_ids_found(report) == []


class TestD108FunctionScopeImport:
    def test_fires_on_function_body_import(self, tmp_path):
        report = lint_source(tmp_path, """
            def run(seed=0):
                import random
                return random.Random(seed)
        """)
        assert "D108" in rule_ids_found(report)

    def test_quiet_on_module_level_import(self, tmp_path):
        report = lint_source(tmp_path, """
            import random

            def run(seed=0):
                return random.Random(seed)
        """)
        assert rule_ids_found(report) == []


class TestX301ExceptionTaxonomy:
    def test_fires_on_builtin_raise(self, tmp_path):
        report = lint_source(tmp_path, """
            def check(x):
                if x < 0:
                    raise ValueError("negative")
        """)
        assert "X301" in rule_ids_found(report)

    def test_fires_on_foreign_local_class(self, tmp_path):
        report = lint_source(tmp_path, """
            class LocalError(Exception):
                pass

            def check():
                raise LocalError("nope")
        """)
        assert "X301" in rule_ids_found(report)

    def test_quiet_on_taxonomy_and_control_flow(self, tmp_path):
        report = lint_source(tmp_path, """
            class TussleError(Exception):
                pass

            class SubError(TussleError):
                pass

            def check(kind):
                if kind == "abstract":
                    raise NotImplementedError
                raise SubError("framework failure")
        """)
        assert rule_ids_found(report) == []


class TestX302DunderAll:
    def test_fires_on_phantom_export(self, tmp_path):
        report = lint_source(tmp_path, """
            __all__ = ["exists", "phantom"]

            def exists():
                return 1
        """)
        findings = [f for f in report.active if f.rule_id == "X302"]
        assert len(findings) == 1
        assert "phantom" in findings[0].message

    def test_quiet_on_accurate_all_with_extension(self, tmp_path):
        report = lint_source(tmp_path, """
            __all__ = ["first"]

            def first():
                return 1

            def second():
                return 2

            __all__ += ["second"]
        """)
        assert rule_ids_found(report) == []


def write_fake_repo(tmp_path, *, run_src=None, register=True, bench=True,
                    tests_reference=True):
    """A minimal repo with one experiment module, for E-series tests."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='fake'\n")
    pkg = tmp_path / "src" / "pkg"
    experiments = pkg / "experiments"
    experiments.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    if run_src is None:
        run_src = (
            "def run_e01(seed: int = 0) -> 'ExperimentResult':\n"
            "    return None\n"
        )
    (experiments / "e01_sample.py").write_text(run_src)
    registry = (
        "from .e01_sample import run_e01\n"
        "ALL_EXPERIMENTS = {'E01': run_e01}\n" if register else
        "ALL_EXPERIMENTS = {}\n"
    )
    (experiments / "__init__.py").write_text(registry)
    benchmarks = tmp_path / "benchmarks"
    benchmarks.mkdir()
    if bench:
        (benchmarks / "bench_e01_sample.py").write_text("# bench\n")
    tests = tmp_path / "tests"
    tests.mkdir()
    if tests_reference:
        (tests / "test_experiments.py").write_text(
            "from pkg.experiments import ALL_EXPERIMENTS\n"
        )
    else:
        (tests / "test_other.py").write_text("def test_nothing(): pass\n")
    return pkg


class TestESeriesConformance:
    def test_clean_fake_repo(self, tmp_path):
        pkg = write_fake_repo(tmp_path)
        report = run_lint([pkg])
        assert rule_ids_found(report) == []

    def test_missing_seed_parameter(self, tmp_path):
        pkg = write_fake_repo(tmp_path, run_src=(
            "def run_e01(rounds: int = 3) -> 'ExperimentResult':\n"
            "    return None\n"
        ))
        report = run_lint([pkg])
        assert "E201" in rule_ids_found(report)

    def test_missing_return_annotation(self, tmp_path):
        pkg = write_fake_repo(tmp_path, run_src=(
            "def run_e01(seed: int = 0):\n"
            "    return None\n"
        ))
        report = run_lint([pkg])
        assert "E201" in rule_ids_found(report)

    def test_unregistered_experiment(self, tmp_path):
        pkg = write_fake_repo(tmp_path, register=False)
        report = run_lint([pkg])
        ids = rule_ids_found(report)
        assert "E202" in ids
        # Not registered and not named directly in tests -> also untested.
        assert "E204" in ids

    def test_missing_benchmark(self, tmp_path):
        pkg = write_fake_repo(tmp_path, bench=False)
        report = run_lint([pkg])
        assert rule_ids_found(report) == ["E203"]

    def test_registry_parametrized_suite_counts_as_tested(self, tmp_path):
        pkg = write_fake_repo(tmp_path, tests_reference=True)
        report = run_lint([pkg])
        assert "E204" not in rule_ids_found(report)

    def test_direct_reference_counts_as_tested(self, tmp_path):
        pkg = write_fake_repo(tmp_path, register=True, tests_reference=False)
        tests = tmp_path / "tests"
        (tests / "test_direct.py").write_text(
            "from pkg.experiments.e01_sample import run_e01\n"
        )
        report = run_lint([pkg])
        assert "E204" not in rule_ids_found(report)
