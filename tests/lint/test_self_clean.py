"""The repository gates on itself: linting src/tussle must be clean.

This is the acceptance criterion of the lint subsystem — every D/E/X
invariant holds on the shipped tree with no suppressions, so CI can run
``python -m tussle.lint`` as a blocking check.
"""

from pathlib import Path

import tussle
from tussle.lint import run_lint

PACKAGE_DIR = Path(tussle.__file__).parent


def test_package_tree_is_lint_clean():
    report = run_lint([PACKAGE_DIR])
    assert report.files_scanned > 100
    offenders = "\n".join(f.format() for f in report.active)
    assert report.clean, f"lint findings in shipped tree:\n{offenders}"


def test_no_inline_suppressions_needed():
    """The tree passes on its merits, not via scattered disables."""
    report = run_lint([PACKAGE_DIR])
    assert not report.suppressed
