"""Dynamic seed-check harness: fingerprints, double runs, divergence."""

import pytest

from tussle.errors import LintError
from tussle.experiments.common import ExperimentResult, Table
from tussle.lint.seedcheck import (
    SeedCheckOutcome,
    fingerprint,
    format_outcomes,
    main,
    run_seedcheck,
)


def make_result(cell_value=1.0, holds=True):
    table = Table("t", ["metric", "value"])
    table.add_row(metric="m", value=cell_value)
    result = ExperimentResult(experiment_id="T00", title="t",
                              paper_claim="c", tables=[table])
    result.add_check("claim", holds)
    return result


class TestFingerprint:
    def test_identical_results_match(self):
        assert fingerprint(make_result()) == fingerprint(make_result())

    def test_cell_difference_detected(self):
        assert fingerprint(make_result(1.0)) != fingerprint(make_result(1.0 + 1e-12))

    def test_verdict_difference_detected(self):
        assert fingerprint(make_result(holds=True)) != \
            fingerprint(make_result(holds=False))

    def test_container_cells_are_hashable(self):
        table = Table("t", ["value"])
        table.add_row(value={"k": [1, 2]})
        result = ExperimentResult(experiment_id="T00", title="t",
                                  paper_claim="c", tables=[table])
        hash(fingerprint(result))  # must not raise


class TestRunSeedcheck:
    def test_sample_experiments_are_deterministic(self):
        outcomes = run_seedcheck(["E01", "X05"])
        assert [o.experiment_id for o in outcomes] == ["E01", "X05"]
        assert all(o.deterministic for o in outcomes)
        assert all(o.shape_holds for o in outcomes)

    def test_explicit_seed_is_threaded(self):
        outcomes = run_seedcheck(["E12"], seed=42)
        assert outcomes[0].seed == 42
        assert outcomes[0].deterministic

    def test_default_seed_is_reported(self):
        outcomes = run_seedcheck(["E01"])
        assert outcomes[0].seed == 7  # run_e01's own default

    def test_unknown_experiment_rejected(self):
        with pytest.raises(LintError):
            run_seedcheck(["E99"])

    def test_needs_two_runs(self):
        with pytest.raises(LintError):
            run_seedcheck(["E01"], runs=1)


class TestReporting:
    def test_format_flags_divergence(self):
        outcomes = [
            SeedCheckOutcome("E01", 7, True, True),
            SeedCheckOutcome("E02", 11, False, True,
                             detail="first divergence in tables"),
        ]
        text = format_outcomes(outcomes)
        assert "E01: DETERMINISTIC" in text
        assert "E02: DIVERGENT" in text
        assert "1 divergent" in text

    def test_cli_runs_selected_experiment(self, capsys):
        assert main(["E12", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "E12: DETERMINISTIC (seed=5)" in out

    def test_cli_json(self, capsys):
        import json
        assert main(["E12", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment"] == "E12"
        assert payload[0]["deterministic"] is True
