"""Tests for user source routing: discovery, payment, verification."""

import pytest

from tussle.netsim.topology import Network, Relationship
from tussle.routing.sourcerouting import (
    SourceRoutingSystem,
    TransitTerms,
    valley_free_paths,
)


@pytest.fixture
def two_path_network():
    """Stubs 1 and 2 each buy transit from providers 10 and 11."""
    net = Network()
    for asn in (1, 2, 10, 11):
        net.add_as(asn)
    net.add_as_relationship(1, 10, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(1, 11, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(2, 10, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(2, 11, Relationship.CUSTOMER_PROVIDER)
    return net


class TestValleyFreePaths:
    def test_finds_both_provider_paths(self, two_path_network):
        paths = valley_free_paths(two_path_network, 1, 2)
        assert (1, 10, 2) in paths
        assert (1, 11, 2) in paths

    def test_no_valley_through_stub(self, two_path_network):
        # Paths from 10 to 11 must not descend into a stub and climb out.
        paths = valley_free_paths(two_path_network, 10, 11)
        for path in paths:
            assert 1 not in path[1:-1]
            assert 2 not in path[1:-1]

    def test_peer_at_top_allowed_once(self):
        net = Network()
        for asn in (1, 2, 10, 11):
            net.add_as(asn)
        net.add_as_relationship(1, 10, Relationship.CUSTOMER_PROVIDER)
        net.add_as_relationship(2, 11, Relationship.CUSTOMER_PROVIDER)
        net.add_as_relationship(10, 11, Relationship.PEER_PEER)
        paths = valley_free_paths(net, 1, 2)
        assert paths == [(1, 10, 11, 2)]

    def test_paths_deterministic_order(self, two_path_network):
        assert (valley_free_paths(two_path_network, 1, 2)
                == valley_free_paths(two_path_network, 1, 2))


class TestUsage:
    def test_route_succeeds_when_transits_accept(self, two_path_network):
        system = SourceRoutingSystem(two_path_network, payment_enabled=True)
        route = system.candidate_routes(1, 2)[0]
        attempt = system.use_route(route, budget=10.0)
        assert attempt.succeeded
        assert attempt.verified

    def test_refusal_without_payment(self, two_path_network):
        system = SourceRoutingSystem(two_path_network, payment_enabled=False)
        for asn in (10, 11):
            system.set_terms(asn, TransitTerms(accepts_source_routes=False))
        route = system.candidate_routes(1, 2)[0]
        attempt = system.use_route(route)
        assert not attempt.succeeded
        assert attempt.refused_by in (10, 11)

    def test_attested_path_truncated_at_refusal(self, two_path_network):
        system = SourceRoutingSystem(two_path_network, payment_enabled=False)
        system.set_terms(10, TransitTerms(accepts_source_routes=False))
        route = [r for r in system.candidate_routes(1, 2)
                 if r.path == (1, 10, 2)][0]
        attempt = system.use_route(route)
        assert attempt.attested_path == (1,)

    def test_payment_flows_to_transit(self, two_path_network):
        system = SourceRoutingSystem(two_path_network, payment_enabled=True)
        system.set_terms(10, TransitTerms(accepts_source_routes=False, price=2.5))
        route = [r for r in system.candidate_routes(1, 2)
                 if r.path == (1, 10, 2)][0]
        attempt = system.use_route(route, budget=5.0)
        assert attempt.succeeded
        assert attempt.total_price == 2.5
        assert system.revenue[10] == 2.5

    def test_budget_limits_route(self, two_path_network):
        system = SourceRoutingSystem(two_path_network, payment_enabled=True)
        system.set_terms(10, TransitTerms(price=5.0))
        system.set_terms(11, TransitTerms(price=5.0))
        route = system.candidate_routes(1, 2)[0]
        attempt = system.use_route(route, budget=1.0)
        assert not attempt.succeeded

    def test_altruistic_free_transit_works_without_payment(self, two_path_network):
        system = SourceRoutingSystem(two_path_network, payment_enabled=False)
        system.set_terms(10, TransitTerms(accepts_source_routes=True, price=0.0))
        route = [r for r in system.candidate_routes(1, 2)
                 if r.path == (1, 10, 2)][0]
        assert system.use_route(route).succeeded

    def test_best_affordable_route_picks_cheapest(self, two_path_network):
        system = SourceRoutingSystem(two_path_network, payment_enabled=True)
        system.set_terms(10, TransitTerms(price=5.0))
        system.set_terms(11, TransitTerms(price=1.0))
        attempt = system.best_affordable_route(1, 2, budget=100.0)
        assert attempt.path == (1, 11, 2)

    def test_path_diversity_counts_usable_paths(self, two_path_network):
        system = SourceRoutingSystem(two_path_network, payment_enabled=True)
        assert system.path_diversity(1, 2, budget=100.0) == 2
        system.set_terms(10, TransitTerms(price=1000.0))
        assert system.path_diversity(1, 2, budget=10.0) == 1

    def test_path_diversity_has_no_side_effects(self, two_path_network):
        system = SourceRoutingSystem(two_path_network, payment_enabled=True)
        system.path_diversity(1, 2, budget=100.0)
        assert system.revenue == {}
        assert system.attempts == []

    def test_success_rate(self, two_path_network):
        system = SourceRoutingSystem(two_path_network, payment_enabled=True)
        route = system.candidate_routes(1, 2)[0]
        system.use_route(route, budget=100.0)
        system.use_route(route, budget=0.0)
        assert system.success_rate() == pytest.approx(0.5)

    def test_unwilling_free_as_still_refuses(self, two_path_network):
        """An AS that rejects source routes and charges nothing is NOT a
        free ride — only actual compensation changes its mind."""
        system = SourceRoutingSystem(two_path_network, payment_enabled=True)
        system.set_terms(10, TransitTerms(accepts_source_routes=False,
                                          price=0.0))
        route = [r for r in system.candidate_routes(1, 2)
                 if r.path == (1, 10, 2)][0]
        assert not system.use_route(route, budget=100.0).succeeded
