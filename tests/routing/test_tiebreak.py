"""Regression pin for the documented deterministic tie-break order.

Selection ranks (class, AS-path length, lowest next-hop ASN,
lexicographic AS path).  The final key is what makes the order *total*:
two routes can share class, length and next hop while differing in
their tails, and without the path key the winner would depend on which
candidate happened to be the incumbent.
"""

from tussle.netsim.topology import Network, Relationship
from tussle.routing.base import Route
from tussle.routing.policies import GaoRexfordPolicy, OpenPolicy


def two_provider_net():
    net = Network()
    net.add_as(1)
    net.add_as(2)
    net.add_as_relationship(1, 2, Relationship.CUSTOMER_PROVIDER)
    return net


class TestTotalOrder:
    def test_same_next_hop_breaks_on_path(self):
        net = two_provider_net()
        policy = GaoRexfordPolicy()
        low = Route(destination=5, path=(1, 2, 3, 5))
        high = Route(destination=5, path=(1, 2, 4, 5))
        assert policy.prefer(net, 1, low, high) == low
        # Order-independent: swapping the incumbent changes nothing.
        assert policy.prefer(net, 1, high, low) == low

    def test_open_policy_same_tiebreak(self):
        net = two_provider_net()
        policy = OpenPolicy()
        low = Route(destination=5, path=(1, 2, 3, 5))
        high = Route(destination=5, path=(1, 2, 4, 5))
        assert policy.prefer(net, 1, low, high) == low
        assert policy.prefer(net, 1, high, low) == low

    def test_class_still_dominates_length(self):
        """A longer customer route beats a shorter provider route."""
        net = Network()
        for asn in (1, 2, 3, 4):
            net.add_as(asn)
        net.add_as_relationship(2, 1, Relationship.CUSTOMER_PROVIDER)  # 2 is 1's customer
        net.add_as_relationship(1, 3, Relationship.CUSTOMER_PROVIDER)  # 3 is 1's provider
        policy = GaoRexfordPolicy()
        via_customer = Route(destination=9, path=(1, 2, 4, 9))
        via_provider = Route(destination=9, path=(1, 3, 9))
        assert policy.prefer(net, 1, via_provider, via_customer) == via_customer

    def test_next_hop_still_dominates_path(self):
        net = Network()
        for asn in (1, 2, 3):
            net.add_as(asn)
        net.add_as_relationship(1, 2, Relationship.CUSTOMER_PROVIDER)
        net.add_as_relationship(1, 3, Relationship.CUSTOMER_PROVIDER)
        policy = GaoRexfordPolicy()
        low_hop = Route(destination=9, path=(1, 2, 8, 9))
        high_hop = Route(destination=9, path=(1, 3, 7, 9))
        assert policy.prefer(net, 1, high_hop, low_hop) == low_hop
