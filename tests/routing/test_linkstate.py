"""Tests for link-state routing and its full-visibility property."""

import pytest

from tussle.errors import RoutingError
from tussle.netsim.topology import Network, line_topology
from tussle.routing.linkstate import LinkStateDatabase, LinkStateRouting


@pytest.fixture
def diamond():
    net = Network()
    for name in "abcd":
        net.add_node(name)
    net.add_link("a", "b", cost=1.0)
    net.add_link("b", "d", cost=1.0)
    net.add_link("a", "c", cost=1.0)
    net.add_link("c", "d", cost=5.0)
    return net


class TestDatabase:
    def test_announce_and_list(self):
        db = LinkStateDatabase()
        db.announce("a", "b", 2.0)
        assert db.links() == [("a", "b", 2.0)]

    def test_announcement_canonicalized(self):
        db = LinkStateDatabase()
        db.announce("b", "a", 2.0)
        db.announce("a", "b", 3.0)
        assert len(db) == 1
        assert db.links()[0][2] == 3.0

    def test_negative_cost_rejected(self):
        with pytest.raises(RoutingError):
            LinkStateDatabase().announce("a", "b", -1.0)

    def test_withdraw(self):
        db = LinkStateDatabase()
        db.announce("a", "b", 1.0)
        db.withdraw("b", "a")
        assert len(db) == 0

    def test_everyone_sees_everything(self):
        db = LinkStateDatabase()
        db.announce("a", "b", 1.0)
        db.announce("b", "c", 1.0)
        assert db.visible_to("a") == db.visible_to("z") == db.links()


class TestRouting:
    def test_converges_in_one_iteration(self, diamond):
        proto = LinkStateRouting(diamond)
        assert proto.converge() == 1

    def test_chooses_min_cost_path(self, diamond):
        proto = LinkStateRouting(diamond)
        proto.converge()
        assert proto.path("a", "d") == ["a", "b", "d"]

    def test_cost_change_reroutes(self, diamond):
        diamond.link("b", "d").cost = 10.0
        proto = LinkStateRouting(diamond)
        proto.converge()
        assert proto.path("a", "d") == ["a", "c", "d"]

    def test_failed_links_excluded(self, diamond):
        diamond.fail_link("a", "b")
        proto = LinkStateRouting(diamond)
        proto.converge()
        assert proto.path("a", "d") == ["a", "c", "d"]

    def test_tables_usable_by_forwarding_engine(self):
        from tussle.netsim.forwarding import ForwardingEngine
        from tussle.netsim.packets import make_packet

        net = line_topology(4)
        proto = LinkStateRouting(net)
        proto.converge()
        engine = ForwardingEngine(net)
        engine.install_tables(proto.all_tables())
        assert engine.send(make_packet("n0", "n3")).delivered

    def test_reading_before_converge_rejected(self, diamond):
        proto = LinkStateRouting(diamond)
        with pytest.raises(RoutingError):
            proto.forwarding_table("a")
        with pytest.raises(RoutingError):
            proto.path("a", "d")

    def test_unknown_node_rejected(self, diamond):
        proto = LinkStateRouting(diamond)
        proto.converge()
        with pytest.raises(RoutingError):
            proto.forwarding_table("ghost")

    def test_disconnected_destination_absent(self):
        net = Network()
        net.add_node("a")
        net.add_node("b")
        proto = LinkStateRouting(net)
        proto.converge()
        assert "b" not in proto.forwarding_table("a")
        assert proto.path("a", "b") is None

    def test_path_to_self(self, diamond):
        proto = LinkStateRouting(diamond)
        proto.converge()
        assert proto.path("a", "a") == ["a"]

    def test_reconvergence_after_topology_change(self, diamond):
        proto = LinkStateRouting(diamond)
        proto.converge()
        assert proto.path("a", "d") == ["a", "b", "d"]
        diamond.fail_link("b", "d")
        proto.converge()
        assert proto.path("a", "d") == ["a", "c", "d"]
