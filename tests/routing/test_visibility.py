"""Tests for the visibility analysis (§IV-C)."""

import pytest

from tussle.netsim.topology import Network, Relationship, line_topology
from tussle.routing.linkstate import LinkStateRouting
from tussle.routing.pathvector import PathVectorRouting
from tussle.routing.visibility import (
    TUSSLE_INTERFACE_PROPERTIES,
    ChoiceVisibilityReport,
    linkstate_visibility,
    pathvector_visibility,
)


def bgp_chain():
    net = Network()
    for asn in (1, 2, 3):
        net.add_as(asn)
    net.add_as_relationship(1, 2, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(2, 3, Relationship.CUSTOMER_PROVIDER)
    proto = PathVectorRouting(net)
    proto.converge()
    return proto


class TestVisibilityMeasures:
    def test_linkstate_full_visibility(self):
        proto = LinkStateRouting(line_topology(4))
        proto.converge()
        assert linkstate_visibility(proto, "n0") == 1.0
        assert linkstate_visibility(proto, "n3") == 1.0

    def test_linkstate_empty_database(self):
        net = Network()
        net.add_node("a")
        proto = LinkStateRouting(net)
        proto.converge()
        assert linkstate_visibility(proto, "a") == 0.0

    def test_pathvector_partial_visibility(self):
        proto = bgp_chain()
        # AS3 (provider) sees only what customer AS2 announces to it:
        # customer routes, not AS2's route toward AS3 itself.
        visibility = pathvector_visibility(proto, observer=3, subject=2)
        assert 0.0 < visibility < 1.0

    def test_pathvector_nonadjacent_sees_nothing(self):
        proto = bgp_chain()
        assert pathvector_visibility(proto, observer=3, subject=1) <= 0.5
        # Not adjacent: AS1 announces nothing directly to AS3.
        assert proto.announced_routes(1, 3) == {}

    def test_linkstate_more_visible_than_pathvector(self):
        """The paper's §IV-C contrast, as numbers."""
        ls = LinkStateRouting(line_topology(4))
        ls.converge()
        pv = bgp_chain()
        assert (linkstate_visibility(ls, "n0")
                > pathvector_visibility(pv, observer=3, subject=2))


class TestScorecards:
    def test_property_names_fixed(self):
        assert len(TUSSLE_INTERFACE_PROPERTIES) == 4

    def test_score_bounds_enforced(self):
        report = ChoiceVisibilityReport("x")
        with pytest.raises(ValueError):
            report.set_score("visible_exchange_of_value", 1.5)
        with pytest.raises(ValueError):
            report.set_score("nonsense", 0.5)

    def test_overall_averages_over_all_properties(self):
        report = ChoiceVisibilityReport("x")
        report.set_score("visible_exchange_of_value", 1.0)
        assert report.overall() == pytest.approx(0.25)

    def test_canonical_ranking(self):
        """Payment-aware source routing is the most tussle-ready interface."""
        linkstate = ChoiceVisibilityReport.for_linkstate().overall()
        pathvector = ChoiceVisibilityReport.for_pathvector().overall()
        source_routing = (ChoiceVisibilityReport
                          .for_source_routing_with_payment().overall())
        assert source_routing > linkstate > pathvector
