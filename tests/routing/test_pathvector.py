"""Tests for path-vector routing with Gao-Rexford policy."""

import random

import pytest

from tussle.errors import RoutingError
from tussle.netsim.topology import Network, Relationship, random_as_graph
from tussle.routing.base import Route
from tussle.routing.pathvector import PathVectorRouting
from tussle.routing.policies import GaoRexfordPolicy, OpenPolicy


def chain_network():
    """AS1 <- customer of AS2 <- customer of AS3; AS4 peers with AS2."""
    net = Network()
    for asn in (1, 2, 3, 4):
        net.add_as(asn)
    net.add_as_relationship(1, 2, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(2, 3, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(2, 4, Relationship.PEER_PEER)
    return net


class TestConvergence:
    def test_converges_on_chain(self):
        proto = PathVectorRouting(chain_network())
        iterations = proto.converge()
        assert 1 <= iterations <= 10

    def test_full_reachability_on_chain(self):
        proto = PathVectorRouting(chain_network())
        proto.converge()
        for src in (1, 2, 3):
            for dst in (1, 2, 3):
                assert proto.reachable(src, dst)

    def test_reading_before_convergence_rejected(self):
        proto = PathVectorRouting(chain_network())
        with pytest.raises(RoutingError):
            proto.routes(1)

    def test_converges_on_random_hierarchy(self):
        net = random_as_graph(rng=random.Random(3))
        proto = PathVectorRouting(net)
        proto.converge()
        # Everything should reach everything in a connected hierarchy.
        matrix = proto.reachability_matrix()
        assert all(matrix.values())


class TestValleyFree:
    def test_peer_routes_not_exported_to_peers(self):
        """AS4 (peer of AS2) must not learn AS3 routes through AS2."""
        proto = PathVectorRouting(chain_network())
        proto.converge()
        # AS2 learns AS3 from its provider; exporting to peer AS4 would be
        # a valley. AS4 therefore cannot reach AS3.
        assert not proto.reachable(4, 3)

    def test_customer_routes_exported_everywhere(self):
        proto = PathVectorRouting(chain_network())
        proto.converge()
        # AS1 is AS2's customer: AS4 (peer) and AS3 (provider) learn it.
        assert proto.reachable(4, 1)
        assert proto.reachable(3, 1)

    def test_prefer_customer_over_peer_route(self):
        net = Network()
        for asn in (1, 2, 3):
            net.add_as(asn)
        # Destination 3 is reachable from 1 both via customer and peer.
        net.add_as_relationship(3, 1, Relationship.CUSTOMER_PROVIDER)  # 3 customer of 1
        net.add_as_relationship(1, 2, Relationship.PEER_PEER)
        net.add_as_relationship(3, 2, Relationship.CUSTOMER_PROVIDER)  # 3 customer of 2
        proto = PathVectorRouting(net)
        proto.converge()
        # AS1 should use its direct customer route to 3.
        assert proto.as_path(1, 3) == (1, 3)

    def test_open_policy_gives_peer_transit(self):
        proto = PathVectorRouting(chain_network(), policy=OpenPolicy())
        proto.converge()
        # Without export restrictions AS4 reaches AS3 through AS2.
        assert proto.reachable(4, 3)
        assert proto.as_path(4, 3) == (4, 2, 3)


class TestAnnouncementsAndLoad:
    def test_announcements_recorded(self):
        proto = PathVectorRouting(chain_network())
        proto.converge()
        announced = proto.announced_routes(2, 3)
        assert 1 in announced  # AS2 announces its customer AS1 to provider AS3

    def test_no_loops_in_selected_paths(self):
        net = random_as_graph(rng=random.Random(9))
        proto = PathVectorRouting(net)
        proto.converge()
        for asn in (a.asn for a in net.ases):
            for route in proto.routes(asn).values():
                assert len(set(route.path)) == len(route.path)

    def test_transit_load_counts_middle_hops(self):
        proto = PathVectorRouting(chain_network())
        proto.converge()
        # AS2 sits between 1 and 3 (both directions) and between 4 and 1.
        assert proto.transit_load(2) >= 3
        # Stub AS1 carries no transit.
        assert proto.transit_load(1) == 0


class TestRouteObject:
    def test_route_validates_destination(self):
        with pytest.raises(RoutingError):
            Route(destination=5, path=(1, 2))

    def test_route_rejects_loops(self):
        with pytest.raises(RoutingError):
            Route(destination=1, path=(1, 2, 1))

    def test_route_properties(self):
        route = Route(destination=3, path=(1, 2, 3))
        assert route.length == 2
        assert route.next_hop == 2
        assert route.through(2)
        assert not route.through(1)
        assert not route.through(3)

    def test_local_route(self):
        route = Route(destination=1, path=(1,))
        assert route.length == 0
        assert route.next_hop == 1
