"""Tests for Gao-Rexford policy preference and export rules."""

import pytest

from tussle.netsim.topology import Network, Relationship
from tussle.routing.base import ControlPoint, Route
from tussle.routing.policies import (
    GaoRexfordPolicy,
    NeighborClass,
    OpenPolicy,
    classify_neighbor,
)


@pytest.fixture
def net():
    network = Network()
    for asn in (1, 2, 3, 4, 5):
        network.add_as(asn)
    # From AS1's view: 2 is customer, 3 is provider, 4 is peer, 5 unknown.
    network.add_as_relationship(2, 1, Relationship.CUSTOMER_PROVIDER)
    network.add_as_relationship(1, 3, Relationship.CUSTOMER_PROVIDER)
    network.add_as_relationship(1, 4, Relationship.PEER_PEER)
    return network


class TestClassification:
    def test_all_classes(self, net):
        assert classify_neighbor(net, 1, 2) is NeighborClass.CUSTOMER
        assert classify_neighbor(net, 1, 3) is NeighborClass.PROVIDER
        assert classify_neighbor(net, 1, 4) is NeighborClass.PEER
        assert classify_neighbor(net, 1, 5) is NeighborClass.UNKNOWN

    def test_preference_ordering(self):
        assert (NeighborClass.CUSTOMER < NeighborClass.PEER
                < NeighborClass.PROVIDER)


class TestPreference:
    def test_customer_beats_shorter_provider_path(self, net):
        policy = GaoRexfordPolicy()
        via_customer = Route(destination=9, path=(1, 2, 8, 9))
        via_provider = Route(destination=9, path=(1, 3, 9))
        assert policy.prefer(net, 1, via_customer, via_provider) is via_customer

    def test_length_breaks_ties_within_class(self, net):
        policy = GaoRexfordPolicy()
        net.add_as(6)
        net.add_as_relationship(6, 1, Relationship.CUSTOMER_PROVIDER)
        short = Route(destination=9, path=(1, 2, 9))
        long = Route(destination=9, path=(1, 6, 8, 9))
        assert policy.prefer(net, 1, long, short) is short

    def test_next_hop_breaks_final_ties(self, net):
        policy = GaoRexfordPolicy()
        net.add_as(6)
        net.add_as_relationship(6, 1, Relationship.CUSTOMER_PROVIDER)
        a = Route(destination=9, path=(1, 2, 9))
        b = Route(destination=9, path=(1, 6, 9))
        assert policy.prefer(net, 1, b, a) is a  # lower next-hop ASN


class TestExport:
    def test_customer_routes_exported_to_everyone(self, net):
        policy = GaoRexfordPolicy()
        route = Route(destination=9, path=(1, 2, 9))  # learned from customer
        assert policy.may_export(net, 1, route, 3)  # to provider
        assert policy.may_export(net, 1, route, 4)  # to peer
        assert policy.may_export(net, 1, route, 2)  # to customer

    def test_provider_routes_only_to_customers(self, net):
        policy = GaoRexfordPolicy()
        route = Route(destination=9, path=(1, 3, 9))  # learned from provider
        assert policy.may_export(net, 1, route, 2)       # to customer: yes
        assert not policy.may_export(net, 1, route, 4)   # to peer: no
        assert not policy.may_export(net, 1, route, 3)   # to provider: no

    def test_peer_routes_only_to_customers(self, net):
        policy = GaoRexfordPolicy()
        route = Route(destination=9, path=(1, 4, 9))
        assert policy.may_export(net, 1, route, 2)
        assert not policy.may_export(net, 1, route, 3)

    def test_own_prefix_always_exported(self, net):
        policy = GaoRexfordPolicy()
        own = Route(destination=1, path=(1,))
        for neighbor in (2, 3, 4):
            assert policy.may_export(net, 1, own, neighbor)

    def test_open_policy_exports_everything(self, net):
        policy = OpenPolicy()
        route = Route(destination=9, path=(1, 3, 9))
        for neighbor in (2, 3, 4):
            assert policy.may_export(net, 1, route, neighbor)

    def test_open_policy_prefers_shortest(self, net):
        policy = OpenPolicy()
        short = Route(destination=9, path=(1, 3, 9))
        long = Route(destination=9, path=(1, 2, 8, 9))
        assert policy.prefer(net, 1, long, short) is short


class TestControlPoint:
    def test_route_defaults_to_provider_control(self):
        route = Route(destination=2, path=(1, 2))
        assert route.selected_by is ControlPoint.PROVIDER
