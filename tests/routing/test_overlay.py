"""Tests for overlay routing and its economic distortion."""

import pytest

from tussle.netsim.topology import Network, Relationship
from tussle.routing.overlay import OverlayNetwork
from tussle.routing.pathvector import PathVectorRouting


@pytest.fixture
def valley_network():
    """Peers 10-11 at the top; stubs 1, 2, 3 below.

    AS1 buys from 10 only, AS2 from 11 only, AS3 from both. Direct BGP
    connectivity between 1 and 2 crosses the 10-11 peering.
    """
    net = Network()
    for asn in (1, 2, 3, 10, 11):
        net.add_as(asn)
    net.add_as_relationship(1, 10, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(2, 11, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(3, 10, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(3, 11, Relationship.CUSTOMER_PROVIDER)
    net.add_as_relationship(10, 11, Relationship.PEER_PEER)
    return net


@pytest.fixture
def converged(valley_network):
    proto = PathVectorRouting(valley_network)
    proto.converge()
    return proto


class TestPaths:
    def test_direct_path_mirrors_underlay(self, converged):
        overlay = OverlayNetwork(converged, members=[1, 2, 3])
        direct = overlay.direct_path(1, 2)
        assert direct is not None
        assert direct.underlay_path == converged.as_path(1, 2)
        assert direct.overlay_hops == 1

    def test_one_relay_path_composes_underlay_legs(self, converged):
        overlay = OverlayNetwork(converged, members=[1, 2, 3])
        relayed = overlay.one_relay_paths(1, 2)
        assert len(relayed) == 1
        path = relayed[0]
        assert path.relays == (1, 3, 2)
        assert path.underlay_path[0] == 1
        assert path.underlay_path[-1] == 2
        assert 3 in path.underlay_path

    def test_path_choice_count_exceeds_bgp(self, converged):
        overlay = OverlayNetwork(converged, members=[1, 2, 3])
        assert overlay.path_choice_count(1, 2) >= 2

    def test_overlay_reaches_around_underlay_gaps(self, valley_network):
        """A relay with universal connectivity heals pairs BGP cannot serve."""
        # Remove the peering: 1 and 2 become mutually unreachable via BGP,
        # but both still reach multihomed AS3.
        net = Network()
        for asn in (1, 2, 3, 10, 11):
            net.add_as(asn)
        net.add_as_relationship(1, 10, Relationship.CUSTOMER_PROVIDER)
        net.add_as_relationship(2, 11, Relationship.CUSTOMER_PROVIDER)
        net.add_as_relationship(3, 10, Relationship.CUSTOMER_PROVIDER)
        net.add_as_relationship(3, 11, Relationship.CUSTOMER_PROVIDER)
        proto = PathVectorRouting(net)
        proto.converge()
        assert not proto.reachable(1, 2)
        overlay = OverlayNetwork(proto, members=[1, 2, 3])
        assert overlay.direct_path(1, 2) is None
        assert overlay.reachable_via_overlay(1, 2)

    def test_uncompensated_transit_counts_middle_ases(self, converged):
        overlay = OverlayNetwork(converged, members=[1, 2, 3])
        distortion = overlay.uncompensated_transit(1, 2)
        # Providers 10 and 11 carry overlay paths they were not paid for.
        assert distortion.get(10, 0) > 0
        assert distortion.get(11, 0) > 0
        # Endpoints are not transit.
        assert 1 not in distortion
        assert 2 not in distortion

    def test_members_validated(self, converged):
        with pytest.raises(Exception):
            OverlayNetwork(converged, members=[999])
