"""Domain-level property tests: routing, markets, and the simulator.

These complement tests/test_properties.py (data-structure invariants)
with properties of the *modeled systems*: valley-freedom of discovered
paths, Gao-Rexford convergence, market value conservation, and integrity
monotonicity in the tussle simulator.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tussle.core.mechanisms import Mechanism
from tussle.core.simulator import TussleSimulator
from tussle.core.stakeholders import Stakeholder, StakeholderKind
from tussle.core.tussle import TussleSpace
from tussle.econ.agents import Consumer, Provider
from tussle.econ.market import Market
from tussle.netsim.topology import random_as_graph
from tussle.routing.pathvector import PathVectorRouting
from tussle.routing.policies import NeighborClass, classify_neighbor
from tussle.routing.sourcerouting import valley_free_paths

seeds = st.integers(min_value=0, max_value=10_000)


def _is_valley_free(network, path):
    """Independent checker: up* peer? down* with at most one peer edge."""
    state = "up"
    for current, nxt in zip(path, path[1:]):
        relation = classify_neighbor(network, current, nxt)
        if relation is NeighborClass.PROVIDER:      # climbing
            if state != "up":
                return False
        elif relation is NeighborClass.PEER:
            if state != "up":
                return False
            state = "peered"
        elif relation is NeighborClass.CUSTOMER:    # descending
            state = "down"
        else:
            return False
    return True


class TestRoutingProperties:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seeds)
    def test_discovered_paths_are_valley_free(self, seed):
        network = random_as_graph(n_tier1=2, n_tier2=3, n_tier3=5,
                                  rng=random.Random(seed))
        stubs = [a.asn for a in network.ases if a.tier == 3]
        for src in stubs[:2]:
            for dst in stubs[2:4]:
                if src == dst:
                    continue
                for path in valley_free_paths(network, src, dst,
                                              max_length=6):
                    assert _is_valley_free(network, path), path

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seeds)
    def test_pathvector_always_converges_on_gao_rexford(self, seed):
        network = random_as_graph(n_tier1=2, n_tier2=4, n_tier3=6,
                                  rng=random.Random(seed))
        routing = PathVectorRouting(network)
        iterations = routing.converge()
        assert iterations < routing.max_iterations

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seeds)
    def test_selected_bgp_paths_are_valley_free(self, seed):
        network = random_as_graph(n_tier1=2, n_tier2=3, n_tier3=4,
                                  rng=random.Random(seed))
        routing = PathVectorRouting(network)
        routing.converge()
        for autonomous_system in network.ases:
            for route in routing.routes(autonomous_system.asn).values():
                if route.length >= 1:
                    assert _is_valley_free(network, route.path), route.path


class TestMarketProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=30),
           seeds)
    def test_revenue_equals_subscriber_payments(self, n_providers,
                                                n_consumers, seed):
        """Value conservation: provider revenue comes only from prices
        actually charged to subscribed consumers."""
        rng = random.Random(seed)
        providers = [
            Provider(name=f"p{i}", price=rng.uniform(5, 30), unit_cost=2.0)
            for i in range(n_providers)
        ]
        consumers = [
            Consumer(name=f"c{i}", wtp=rng.uniform(1, 60),
                     switching_cost=rng.uniform(0, 5))
            for i in range(n_consumers)
        ]
        market = Market(providers=providers, consumers=consumers, seed=seed)
        market.step()
        for provider in market.providers.values():
            revenue = provider.revenue_history[-1]
            expected = provider.price * len(provider.subscribers)
            assert revenue == pytest.approx(expected)

    @settings(max_examples=20, deadline=None)
    @given(seeds)
    def test_subscribed_consumers_never_have_negative_surplus_offers(self, seed):
        rng = random.Random(seed)
        providers = [Provider(name="p", price=rng.uniform(10, 80))]
        consumers = [Consumer(name=f"c{i}", wtp=rng.uniform(1, 100))
                     for i in range(20)]
        market = Market(providers=providers, consumers=consumers, seed=seed)
        market.step()
        for consumer in market.consumers:
            if consumer.provider is not None:
                assert consumer.wtp >= providers[0].price - 1e-9


class TestSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.floats(min_value=0.01, max_value=0.2, allow_nan=False))
    def test_integrity_never_increases(self, target_a, target_b, damage):
        space = TussleSpace("arena", initial_state={"x": 0.5})
        space.add_mechanism(Mechanism(name="knob", variable="x",
                                      allowed_range=(0.5, 0.5)))
        a = Stakeholder("a", StakeholderKind.USER, workaround_cost=0.01)
        a.add_interest("x", target=target_a)
        b = Stakeholder("b", StakeholderKind.COMMERCIAL_ISP,
                        workaround_cost=0.01)
        b.add_interest("x", target=target_b)
        space.add_stakeholder(a)
        space.add_stakeholder(b)
        simulator = TussleSimulator(space, workaround_damage=damage)
        outcome = simulator.run(15)
        integrities = [record.integrity for record in outcome.history]
        assert all(x >= y - 1e-12 for x, y in zip(integrities, integrities[1:]))
        assert all(0.0 <= value <= 1.0 for value in integrities)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_uncontested_space_settles_at_the_target(self, target):
        space = TussleSpace("calm", initial_state={"x": 0.5})
        space.add_mechanism(Mechanism(name="knob", variable="x"))
        solo = Stakeholder("solo", StakeholderKind.USER)
        solo.add_interest("x", target=target)
        space.add_stakeholder(solo)
        outcome = TussleSimulator(space).run(10)
        assert outcome.settled
        assert space.state["x"] == pytest.approx(target)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.0, max_value=0.45, allow_nan=False),
           st.floats(min_value=0.55, max_value=1.0, allow_nan=False))
    def test_flexible_design_never_takes_damage(self, low_target, high_target):
        space = TussleSpace("arena", initial_state={"x": 0.5})
        space.add_mechanism(Mechanism(name="knob", variable="x"))
        a = Stakeholder("a", StakeholderKind.USER, workaround_cost=0.01)
        a.add_interest("x", target=high_target)
        b = Stakeholder("b", StakeholderKind.COMMERCIAL_ISP,
                        workaround_cost=0.01)
        b.add_interest("x", target=low_target)
        space.add_stakeholder(a)
        space.add_stakeholder(b)
        outcome = TussleSimulator(space).run(20)
        assert outcome.final_integrity == 1.0
        assert outcome.total_workarounds == 0
