"""Property-based tests (hypothesis) on core data structures and invariants."""

import math
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tussle.core.outcomes import outcome_diversity, pareto_dominates
from tussle.econ.competition import herfindahl_index
from tussle.econ.payments import AGGREGATOR, CREDIT_CARD, MICROPAYMENT, ValueFlowLedger
from tussle.errors import MarketError
from tussle.gametheory.games import NormalFormGame
from tussle.gametheory.zerosum import solve_zero_sum
from tussle.netsim.engine import Simulator
from tussle.netsim.metrics import summarize
from tussle.netsim.transport import fairness_index
from tussle.trust.trustgraph import TrustGraph

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=-10.0, max_value=10.0,
                         allow_nan=False, allow_infinity=False)


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=30))
    def test_events_always_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired_times = []
        for delay in delays:
            sim.schedule(delay, lambda: fired_times.append(sim.now))
        sim.run()
        assert fired_times == sorted(fired_times)
        assert len(fired_times) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=20),
           st.integers(min_value=0, max_value=19))
    def test_cancellation_removes_exactly_one_event(self, delays, cancel_index):
        sim = Simulator()
        handles = [sim.schedule(d, lambda: None) for d in delays]
        victim = handles[cancel_index % len(handles)]
        victim.cancel()
        assert sim.run() == len(delays) - 1


class TestFairnessProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=20))
    def test_fairness_bounded(self, allocations):
        index = fairness_index(allocations)
        assert 0.0 <= index <= 1.0 + 1e-9

    @given(st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
           st.integers(min_value=1, max_value=20))
    def test_equal_allocations_perfectly_fair(self, value, count):
        assert fairness_index([value] * count) == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=20),
           st.floats(min_value=0.1, max_value=100.0))
    def test_fairness_scale_invariant(self, allocations, scale):
        original = fairness_index(allocations)
        scaled = fairness_index([a * scale for a in allocations])
        assert original == pytest.approx(scaled, abs=1e-9)


class TestHhiProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=1.0,
                              allow_nan=False), min_size=1, max_size=15))
    def test_hhi_bounds(self, shares):
        hhi = herfindahl_index(shares)
        assert 1.0 / len(shares) - 1e-9 <= hhi <= 1.0 + 1e-9

    @given(st.integers(min_value=1, max_value=50))
    def test_symmetric_market_hhi(self, n):
        assert herfindahl_index([1.0 / n] * n) == pytest.approx(1.0 / n)


class TestLedgerProperties:
    @given(st.lists(
        st.tuples(st.sampled_from(["a", "b", "c", "d"]),
                  st.sampled_from(["a", "b", "c", "d"]),
                  st.floats(min_value=1.0, max_value=1000.0,
                            allow_nan=False)),
        max_size=25))
    def test_value_is_conserved(self, transfers):
        ledger = ValueFlowLedger()
        for payer, payee, amount in transfers:
            if payer == payee:
                continue
            ledger.transfer(payer, payee, amount, CREDIT_CARD)
        assert ledger.total() == pytest.approx(0.0, abs=1e-6)

    @given(st.floats(min_value=0.001, max_value=1e5, allow_nan=False))
    def test_fees_never_negative(self, amount):
        for mechanism in (MICROPAYMENT, CREDIT_CARD, AGGREGATOR):
            assert mechanism.fee(amount) >= 0.0
            assert mechanism.net(amount) <= amount


class TestTrustProperties:
    @given(st.lists(
        st.tuples(st.sampled_from("abcde"), st.sampled_from("abcde"),
                  st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        max_size=20))
    def test_trust_bounded_and_self_trust_one(self, edges):
        graph = TrustGraph()
        for truster, trustee, score in edges:
            if truster != trustee:
                graph.set_trust(truster, trustee, score)
        for party in "abcde":
            assert graph.trust(party, party) == 1.0
            for other in "abcde":
                assert 0.0 <= graph.trust(party, other) <= 1.0

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_indirect_trust_never_exceeds_weakest_link(self, s1, s2):
        graph = TrustGraph(decay=1.0)
        graph.set_trust("a", "b", s1)
        graph.set_trust("b", "c", s2)
        assert graph.trust("a", "c") <= min(s1, s2) + 1e-9


class TestZeroSumProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.lists(small_floats, min_size=2, max_size=4),
                    min_size=2, max_size=4).filter(
                        lambda rows: len({len(r) for r in rows}) == 1))
    def test_minimax_strategies_guarantee_the_value(self, rows):
        matrix = np.array(rows)
        game = NormalFormGame([matrix, -matrix])
        solution = solve_zero_sum(game)
        # Row strategy guarantees >= value against every column.
        guarantees = solution.row_strategy @ matrix
        assert np.all(guarantees >= solution.value - 1e-6)
        # Column strategy holds the row player to <= value.
        exposures = matrix @ solution.col_strategy
        assert np.all(exposures <= solution.value + 1e-6)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.lists(small_floats, min_size=2, max_size=3),
                    min_size=2, max_size=3).filter(
                        lambda rows: len({len(r) for r in rows}) == 1))
    def test_strategies_are_distributions(self, rows):
        matrix = np.array(rows)
        solution = solve_zero_sum(NormalFormGame([matrix, -matrix]))
        for strategy in (solution.row_strategy, solution.col_strategy):
            assert strategy.sum() == pytest.approx(1.0, abs=1e-6)
            assert np.all(strategy >= -1e-12)


class TestOutcomeProperties:
    @given(st.dictionaries(st.sampled_from("abc"), finite_floats,
                           min_size=1, max_size=3))
    def test_pareto_dominance_irreflexive(self, profile):
        assert not pareto_dominates(profile, profile)

    @given(st.lists(st.dictionaries(st.sampled_from("xy"),
                                    st.floats(min_value=0.0, max_value=1.0,
                                              allow_nan=False),
                                    min_size=1, max_size=2),
                    min_size=2, max_size=8))
    def test_diversity_nonnegative(self, states):
        assert outcome_diversity(states) >= 0.0


class TestSummaryProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_summary_invariants(self, values):
        summary = summarize(values)
        # The mean of n identical floats can land 1 ulp outside [min, max].
        tolerance = 1e-9 * max(1.0, abs(summary.mean))
        assert summary.count == len(values)
        assert summary.minimum - tolerance <= summary.mean \
            <= summary.maximum + tolerance
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.stdev >= 0.0
