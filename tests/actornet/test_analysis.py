"""Tests for the networkx-based actor-network analysis."""

import pytest

from tussle.actornet.actors import Actor, ActorKind
from tussle.actornet.analysis import (
    anchor_scores,
    central_anchor,
    fragmentation_if_removed,
    technology_is_central_anchor,
    to_networkx,
)
from tussle.actornet.churn import seed_internet_network
from tussle.actornet.network import ActorNetwork


def hub_network():
    """A technology hub with human spokes."""
    net = ActorNetwork()
    net.add_actor(Actor.make("protocols", ActorKind.TECHNOLOGY,
                             values=(0.0, 0.0)))
    for i in range(4):
        name = f"user{i}"
        net.add_actor(Actor.make(name, ActorKind.USER, values=(0.0, 0.0)))
        net.commit(name, "protocols", 0.8)
    return net


class TestExport:
    def test_nodes_and_edges(self):
        graph = to_networkx(hub_network())
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4
        assert graph.nodes["protocols"]["human"] is False
        assert graph.edges["user0", "protocols"]["weight"] == 0.8


class TestAnchors:
    def test_hub_is_the_central_anchor(self):
        assert central_anchor(hub_network()) == "protocols"

    def test_technology_is_central_in_seeded_internet(self):
        """Latour's claim holds for the stylized Internet network."""
        network = seed_internet_network()
        assert technology_is_central_anchor(network)
        assert central_anchor(network) == "internet-protocols"

    def test_empty_network_has_no_anchor(self):
        assert central_anchor(ActorNetwork()) is None
        assert not technology_is_central_anchor(ActorNetwork())

    def test_scores_cover_all_actors(self):
        network = hub_network()
        scores = anchor_scores(network)
        assert set(scores) == {a.name for a in network.actors}
        assert scores["protocols"] == max(scores.values())

    def test_edgeless_network_scores_zero(self):
        net = ActorNetwork()
        net.add_actor(Actor.make("lone", ActorKind.USER, values=(0.0,)))
        assert anchor_scores(net) == {"lone": 0.0}


class TestFragmentation:
    def test_anchor_removal_shatters_the_network(self):
        network = hub_network()
        assert fragmentation_if_removed(network, "protocols") == 4

    def test_spoke_removal_is_harmless(self):
        network = hub_network()
        assert fragmentation_if_removed(network, "user0") == 1

    def test_unknown_actor_rejected(self):
        with pytest.raises(Exception):
            fragmentation_if_removed(hub_network(), "ghost")

    def test_anchor_fragments_more_than_any_spoke(self):
        """'Technology, by its durability, provides an important source of
        structure' — its removal costs the most structure."""
        network = seed_internet_network()
        anchor = central_anchor(network)
        anchor_pieces = fragmentation_if_removed(network, anchor)
        for actor in network.human_actors():
            assert fragmentation_if_removed(network, actor.name) <= anchor_pieces
