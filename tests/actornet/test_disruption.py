"""Tests for the Christensen disruption scenario."""

import pytest

from tussle.errors import ActorNetworkError
from tussle.actornet.disruption import (
    DisruptionScenario,
    EntryStrategy,
)


class TestDisruption:
    def test_head_on_entry_fails(self):
        """Attacking the incumbent's customers with inferior tech dies."""
        scenario = DisruptionScenario(seed=0)
        outcome = scenario.run(EntryStrategy.HEAD_ON, rounds=40)
        assert not outcome.entrant_survived or not outcome.overthrow

    def test_new_market_entry_eventually_overthrows(self):
        """Christensen's path: build durability outside, then overthrow."""
        scenario = DisruptionScenario(improvement_rate=0.15, seed=0)
        outcome = scenario.run(EntryStrategy.NEW_MARKET, rounds=60)
        assert outcome.entrant_survived
        assert outcome.overthrow
        assert outcome.rounds_to_overthrow is not None

    def test_new_market_beats_head_on(self):
        scenario = DisruptionScenario(improvement_rate=0.15, seed=0)
        head_on = scenario.run(EntryStrategy.HEAD_ON, rounds=60)
        scenario2 = DisruptionScenario(improvement_rate=0.15, seed=0)
        new_market = scenario2.run(EntryStrategy.NEW_MARKET, rounds=60)
        assert (new_market.incumbent_customers_lost
                > head_on.incumbent_customers_lost)

    def test_slow_improvement_delays_overthrow(self):
        fast = DisruptionScenario(improvement_rate=0.3, seed=0).run(
            EntryStrategy.NEW_MARKET, rounds=80)
        slow = DisruptionScenario(improvement_rate=0.05, seed=0).run(
            EntryStrategy.NEW_MARKET, rounds=80)
        if fast.overthrow and slow.overthrow:
            assert fast.rounds_to_overthrow <= slow.rounds_to_overthrow
        else:
            assert fast.overthrow or not slow.overthrow

    def test_entrant_network_durability_grows_in_new_market(self):
        scenario = DisruptionScenario(seed=0)
        outcome = scenario.run(EntryStrategy.NEW_MARKET, rounds=30)
        assert outcome.final_entrant_durability > 0.2

    def test_validation(self):
        with pytest.raises(ActorNetworkError):
            DisruptionScenario(n_incumbent_customers=0)

    def test_deterministic_under_seed(self):
        def run():
            return DisruptionScenario(seed=5).run(EntryStrategy.NEW_MARKET,
                                                  rounds=30)

        a, b = run(), run()
        assert a.incumbent_customers_lost == b.incumbent_customers_lost
        assert a.rounds_to_overthrow == b.rounds_to_overthrow
