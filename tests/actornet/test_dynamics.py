"""Tests for alignment dynamics, durability and freezing."""

import numpy as np
import pytest

from tussle.errors import ActorNetworkError
from tussle.actornet.actors import Actor, ActorKind
from tussle.actornet.alignment import AlignmentConfig, AlignmentDynamics
from tussle.actornet.churn import ChurnSimulation, seed_internet_network
from tussle.actornet.durability import (
    changeability,
    cost_to_change,
    durability,
    is_frozen,
)
from tussle.actornet.network import ActorNetwork


def pair_network(distance=1.0, strength=0.5):
    net = ActorNetwork()
    net.add_actor(Actor.make("a", ActorKind.USER, values=(0.0, 0.0)))
    net.add_actor(Actor.make("b", ActorKind.USER, values=(distance, 0.0)))
    net.commit("a", "b", strength)
    return net


class TestAlignment:
    def test_committed_actors_converge(self):
        net = pair_network(distance=1.0)
        dynamics = AlignmentDynamics(net)
        dynamics.run(100)
        assert net.mean_pairwise_distance() < 0.05

    def test_technology_anchors_pull_less(self):
        net = ActorNetwork()
        net.add_actor(Actor.make("tech", ActorKind.TECHNOLOGY,
                                 values=(0.0, 0.0)))
        net.add_actor(Actor.make("user", ActorKind.USER, values=(1.0, 0.0)))
        net.commit("tech", "user", 0.8)
        dynamics = AlignmentDynamics(net)
        dynamics.run(50)
        # The user moved to the technology, not the other way.
        assert abs(net.actor("tech").values[0]) < 0.2
        assert net.actor("user").values[0] < 0.3

    def test_aligned_commitments_strengthen(self):
        net = pair_network(distance=0.1, strength=0.5)
        AlignmentDynamics(net).run(20)
        assert net.commitment("a", "b").strength > 0.5

    def test_tense_commitments_dissolve(self):
        config = AlignmentConfig(pull_rate=0.0, weaken_rate=0.2,
                                 tension_distance=0.5)
        net = pair_network(distance=5.0, strength=0.4)
        dynamics = AlignmentDynamics(net, config=config)
        dynamics.run(20)
        assert not net.has_commitment("a", "b")
        assert ("a", "b") in dynamics.dissolved

    def test_run_settles_early(self):
        net = pair_network(distance=0.0)
        steps = AlignmentDynamics(net).run(100, settle_tolerance=1e-9)
        assert steps < 100

    def test_isolated_actor_does_not_move(self):
        net = ActorNetwork()
        net.add_actor(Actor.make("lone", ActorKind.USER, values=(1.0, 2.0)))
        AlignmentDynamics(net).run(10)
        assert np.allclose(net.actor("lone").values, (1.0, 2.0))


class TestDurability:
    def test_empty_network_not_durable(self):
        assert durability(ActorNetwork()) == 0.0

    def test_aligned_strong_network_is_durable(self):
        net = pair_network(distance=0.0, strength=1.0)
        assert durability(net) > 0.9

    def test_unaligned_network_less_durable(self):
        near = pair_network(distance=0.1, strength=0.8)
        far = pair_network(distance=5.0, strength=0.8)
        assert durability(near) > durability(far)

    def test_changeability_complements(self):
        net = pair_network()
        assert changeability(net) == pytest.approx(1.0 - durability(net))

    def test_cost_to_change_sums_commitments(self):
        net = ActorNetwork()
        net.add_actor(Actor.make("tech", ActorKind.TECHNOLOGY, values=(0.0, 0.0)))
        for i, strength in enumerate((0.5, 0.9)):
            name = f"u{i}"
            net.add_actor(Actor.make(name, ActorKind.USER, values=(0.0, 0.0)))
            net.commit("tech", name, strength)
        assert cost_to_change(net, "tech") == pytest.approx(1.4)

    def test_cost_to_change_with_replacement_distance(self):
        net = ActorNetwork()
        net.add_actor(Actor.make("tech", ActorKind.TECHNOLOGY, values=(0.0, 0.0)))
        net.add_actor(Actor.make("u", ActorKind.USER, values=(0.0, 0.0)))
        net.commit("tech", "u", 1.0)
        near = Actor.make("new", ActorKind.TECHNOLOGY, values=(0.0, 0.0))
        far = Actor.make("new2", ActorKind.TECHNOLOGY, values=(10.0, 0.0))
        assert cost_to_change(net, "tech", near) < cost_to_change(net, "tech", far)

    def test_cost_to_change_rejects_humans(self):
        net = pair_network()
        with pytest.raises(ActorNetworkError):
            cost_to_change(net, "a")

    def test_frozen_requires_no_arrivals(self):
        net = pair_network(distance=0.0, strength=0.9)
        assert is_frozen(net, recent_arrivals=0)
        assert not is_frozen(net, recent_arrivals=1)

    def test_frozen_requires_harmony(self):
        net = pair_network(distance=5.0, strength=0.9)
        assert not is_frozen(net, recent_arrivals=0)


class TestChurn:
    def test_seed_network_structure(self):
        net = seed_internet_network()
        names = {a.name for a in net.actors}
        assert "internet-protocols" in names
        assert any(n.startswith("isp") for n in names)

    def test_entrants_grow_the_network(self):
        simulation = ChurnSimulation(seed_internet_network(), arrival_rate=2.0,
                                     seed=1)
        before = len(simulation.network.actors)
        simulation.run(10)
        assert len(simulation.network.actors) >= before + 15

    def test_zero_rate_freezes_eventually(self):
        simulation = ChurnSimulation(seed_internet_network(), arrival_rate=0.0,
                                     seed=1)
        simulation.run(30)
        assert simulation.froze_at() is not None

    def test_high_rate_stays_changeable(self):
        simulation = ChurnSimulation(seed_internet_network(), arrival_rate=2.0,
                                     seed=1)
        simulation.run(30)
        assert simulation.froze_at() is None
        assert simulation.final_changeability() > 0.1

    def test_negative_rate_rejected(self):
        with pytest.raises(ActorNetworkError):
            ChurnSimulation(seed_internet_network(), arrival_rate=-1.0)

    def test_deterministic_under_seed(self):
        def run(seed):
            simulation = ChurnSimulation(seed_internet_network(),
                                         arrival_rate=1.0, seed=seed)
            simulation.run(10)
            return [(r.arrivals, r.n_actors) for r in simulation.history]

        assert run(4) == run(4)
