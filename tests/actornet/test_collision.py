"""Tests for actor-network collision (§II-C, VoIP)."""

import numpy as np
import pytest

from tussle.errors import ActorNetworkError
from tussle.actornet.actors import Actor, ActorKind
from tussle.actornet.collision import collide, merge_networks
from tussle.actornet.network import ActorNetwork


def small_network(prefix, center, tight=False):
    network = ActorNetwork()
    tech = Actor.make(f"{prefix}-tech", ActorKind.TECHNOLOGY,
                      values=np.array(center, dtype=float),
                      inertia=0.95 if tight else 0.85)
    network.add_actor(tech)
    for i in range(2):
        name = f"{prefix}-user{i}"
        offset = 0.02 if tight else 0.5
        values = np.array(center, dtype=float) + (i - 0.5) * offset
        network.add_actor(Actor.make(name, ActorKind.USER, values=values))
        network.commit(name, f"{prefix}-tech", 0.9 if tight else 0.4)
    return network


class TestMerge:
    def test_merge_preserves_everything(self):
        a = small_network("a", (0.0, 0.0))
        b = small_network("b", (2.0, 2.0))
        merged = merge_networks(a, b)
        assert len(merged.actors) == 6
        assert len(merged.commitments) == 4

    def test_name_overlap_rejected(self):
        a = small_network("x", (0.0, 0.0))
        b = small_network("x", (2.0, 2.0))
        with pytest.raises(ActorNetworkError):
            merge_networks(a, b)


class TestCollide:
    def test_bridge_names_validated(self):
        a = small_network("a", (0.0, 0.0))
        b = small_network("b", (2.0, 2.0))
        with pytest.raises(ActorNetworkError):
            collide(a, b, bridges=[("a-user0", "ghost")])

    def test_collision_pulls_sides_together(self):
        a = small_network("a", (0.0, 0.0))
        b = small_network("b", (2.0, 2.0))
        merged, result = collide(
            a, b, bridges=[("a-user0", "b-user0")], settle_rounds=80)
        assert result.drift_side_a + result.drift_side_b > 0.1

    def test_looser_side_yields_more(self):
        loose = small_network("loose", (0.0, 0.0), tight=False)
        tight = small_network("tight", (2.0, 2.0), tight=True)
        _, result = collide(
            loose, tight,
            bridges=[("loose-user0", "tight-user0"),
                     ("loose-tech", "tight-tech")],
            settle_rounds=60,
        )
        assert result.drift_side_a > result.drift_side_b
        assert result.softer_side() == "a"

    def test_distant_weak_bridges_dissolve(self):
        a = small_network("a", (0.0, 0.0), tight=True)
        b = small_network("b", (5.0, 5.0), tight=True)
        _, result = collide(a, b, bridges=[("a-user0", "b-user0")],
                            bridge_strength=0.1, settle_rounds=40)
        assert result.turbulent  # the lone tense bridge snapped

    def test_durabilities_reported(self):
        a = small_network("a", (0.0, 0.0), tight=False)
        b = small_network("b", (2.0, 2.0), tight=True)
        _, result = collide(a, b, bridges=[("a-user0", "b-user0")],
                            settle_rounds=10)
        before_a, before_b = result.durability_before
        assert before_b > before_a
        assert 0.0 <= result.durability_after <= 1.0
