"""Tests for actors and the actor network graph."""

import numpy as np
import pytest

from tussle.errors import ActorNetworkError
from tussle.actornet.actors import Actor, ActorKind, value_distance
from tussle.actornet.network import ActorNetwork


def make_actor(name, kind=ActorKind.USER, values=(0.0, 0.0)):
    return Actor.make(name, kind, values=values)


class TestActors:
    def test_human_vs_nonhuman(self):
        assert ActorKind.USER.human
        assert ActorKind.GOVERNMENT.human
        assert not ActorKind.TECHNOLOGY.human
        assert not ActorKind.STANDARD.human

    def test_only_humans_hold_intentions(self):
        user = make_actor("u")
        tech = Actor.make("t", ActorKind.TECHNOLOGY, values=(0.0, 0.0),
                          expresses_intention_of="u")
        assert user.has_intentions()
        assert not tech.has_intentions()
        assert tech.expresses_intention_of == "u"

    def test_technology_defaults_to_high_inertia(self):
        tech = Actor.make("t", ActorKind.TECHNOLOGY, values=(0.0,))
        human = Actor.make("h", ActorKind.USER, values=(0.0,))
        assert tech.inertia > human.inertia

    def test_inertia_bounds(self):
        with pytest.raises(ActorNetworkError):
            Actor(name="x", kind=ActorKind.USER, values=np.zeros(2), inertia=1.0)

    def test_values_must_be_vector(self):
        with pytest.raises(ActorNetworkError):
            Actor(name="x", kind=ActorKind.USER, values=np.zeros((2, 2)))

    def test_value_distance(self):
        a = make_actor("a", values=(0.0, 0.0))
        b = make_actor("b", values=(3.0, 4.0))
        assert value_distance(a, b) == pytest.approx(5.0)

    def test_value_distance_requires_same_space(self):
        a = Actor.make("a", ActorKind.USER, values=(0.0,))
        b = Actor.make("b", ActorKind.USER, values=(0.0, 0.0))
        with pytest.raises(ActorNetworkError):
            value_distance(a, b)

    def test_random_values_seeded(self):
        rng = np.random.default_rng(5)
        a = Actor.make("a", ActorKind.USER, rng=rng)
        rng2 = np.random.default_rng(5)
        b = Actor.make("b", ActorKind.USER, rng=rng2)
        assert np.allclose(a.values, b.values)


class TestNetwork:
    def test_add_and_commit(self):
        net = ActorNetwork()
        net.add_actor(make_actor("a"))
        net.add_actor(make_actor("b"))
        commitment = net.commit("a", "b", 0.5)
        assert commitment.strength == 0.5
        assert net.has_commitment("b", "a")

    def test_duplicate_actor_rejected(self):
        net = ActorNetwork()
        net.add_actor(make_actor("a"))
        with pytest.raises(ActorNetworkError):
            net.add_actor(make_actor("a"))

    def test_self_commitment_rejected(self):
        net = ActorNetwork()
        net.add_actor(make_actor("a"))
        with pytest.raises(ActorNetworkError):
            net.commit("a", "a")

    def test_strength_bounds(self):
        net = ActorNetwork()
        net.add_actor(make_actor("a"))
        net.add_actor(make_actor("b"))
        with pytest.raises(ActorNetworkError):
            net.commit("a", "b", 0.0)
        with pytest.raises(ActorNetworkError):
            net.commit("a", "b", 1.5)

    def test_recommit_strengthens_never_weakens(self):
        net = ActorNetwork()
        net.add_actor(make_actor("a"))
        net.add_actor(make_actor("b"))
        net.commit("a", "b", 0.7)
        net.commit("a", "b", 0.3)
        assert net.commitment("a", "b").strength == 0.7
        net.commit("a", "b", 0.9)
        assert net.commitment("a", "b").strength == 0.9

    def test_remove_actor_removes_commitments(self):
        net = ActorNetwork()
        for name in "abc":
            net.add_actor(make_actor(name))
        net.commit("a", "b")
        net.commit("b", "c")
        net.remove_actor("b")
        assert not net.has_commitment("a", "b")
        assert net.degree("a") == 0

    def test_commitment_weight(self):
        net = ActorNetwork()
        for name in "abc":
            net.add_actor(make_actor(name))
        net.commit("a", "b", 0.5)
        net.commit("a", "c", 0.3)
        assert net.commitment_weight("a") == pytest.approx(0.8)

    def test_kind_queries(self):
        net = ActorNetwork()
        net.add_actor(make_actor("u", ActorKind.USER))
        net.add_actor(Actor.make("t", ActorKind.TECHNOLOGY, values=(0.0, 0.0)))
        assert [a.name for a in net.human_actors()] == ["u"]
        assert [a.name for a in net.technology_actors()] == ["t"]

    def test_components(self):
        net = ActorNetwork()
        for name in "abcd":
            net.add_actor(make_actor(name))
        net.commit("a", "b")
        net.commit("c", "d")
        components = net.components()
        assert {"a", "b"} in components
        assert {"c", "d"} in components

    def test_value_variance_zero_when_harmonized(self):
        net = ActorNetwork()
        net.add_actor(make_actor("a", values=(1.0, 1.0)))
        net.add_actor(make_actor("b", values=(1.0, 1.0)))
        assert net.value_variance() == 0.0

    def test_mean_pairwise_distance_over_commitments(self):
        net = ActorNetwork()
        net.add_actor(make_actor("a", values=(0.0, 0.0)))
        net.add_actor(make_actor("b", values=(3.0, 4.0)))
        net.commit("a", "b")
        assert net.mean_pairwise_distance() == pytest.approx(5.0)
