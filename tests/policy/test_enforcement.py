"""Tests for the policy enforcement point."""

import pytest

from tussle.errors import OntologyError
from tussle.netsim.forwarding import ForwardingEngine
from tussle.netsim.middlebox import Action
from tussle.netsim.packets import make_packet
from tussle.netsim.topology import line_topology
from tussle.policy.enforcement import PolicyEnforcementPoint, packet_to_request
from tussle.policy.ontology import standard_access_ontology
from tussle.policy.parser import parse_policy


PERMIT_WEB = parse_policy("""
permit if application in {"http", "https"}
permit if encrypted
default deny
""")


class TestRequestTranslation:
    def test_basic_fields(self):
        packet = make_packet("a", "b", application="http")
        request = packet_to_request(packet)
        assert request["src"] == "a"
        assert request["dst"] == "b"
        assert request["port"] == 80.0
        assert request["application"] == "http"
        assert request["encrypted"] is False

    def test_opaque_traffic_has_no_application(self):
        packet = make_packet("a", "b", application="mystery", encrypted=True)
        request = packet_to_request(packet)
        assert "application" not in request
        assert request["encrypted"] is True

    def test_extra_context_merged(self):
        packet = make_packet("a", "b")
        request = packet_to_request(packet, extra={"purpose": "backup"})
        assert request["purpose"] == "backup"

    def test_tunnel_classifies_as_cover(self):
        packet = make_packet("a", "b", application="p2p").tunnel_to(
            "gw", application="https")
        request = packet_to_request(packet)
        assert request["application"] == "https"


class TestEnforcement:
    def test_permit_forwards(self):
        pep = PolicyEnforcementPoint("pep", PERMIT_WEB)
        verdict = pep.process(make_packet("a", "b", application="http"))
        assert verdict.action is Action.FORWARD

    def test_deny_drops_with_rule_in_reason(self):
        pep = PolicyEnforcementPoint("pep", PERMIT_WEB)
        verdict = pep.process(make_packet("a", "b", application="p2p"))
        assert verdict.action is Action.DROP
        assert "policy denied" in verdict.reason

    def test_encrypted_traffic_matches_second_rule(self):
        pep = PolicyEnforcementPoint("pep", PERMIT_WEB)
        packet = make_packet("a", "b", application="mystery", encrypted=True)
        assert pep.process(packet).action is Action.FORWARD

    def test_permit_rate(self):
        pep = PolicyEnforcementPoint("pep", PERMIT_WEB)
        pep.process(make_packet("a", "b", application="http"))
        pep.process(make_packet("a", "b", application="p2p"))
        assert pep.permit_rate() == pytest.approx(0.5)

    def test_ontology_validation_at_construction(self):
        policy = parse_policy("permit if carbon.footprint < 5")
        with pytest.raises(OntologyError):
            PolicyEnforcementPoint("pep", policy,
                                   ontology=standard_access_ontology())

    def test_blind_spots_recorded(self):
        policy = parse_policy("""
        permit if purpose == "research"
        default deny
        """)
        pep = PolicyEnforcementPoint("pep", policy)
        pep.process(make_packet("a", "b", application="http"))
        pep.process(make_packet("a", "b", application="http"))
        assert pep.blind_spot_report() == {"purpose": 2}

    def test_context_fills_blind_spots(self):
        policy = parse_policy("""
        permit if purpose == "research"
        default deny
        """)
        pep = PolicyEnforcementPoint("pep", policy,
                                     context={"purpose": "research"})
        verdict = pep.process(make_packet("a", "b"))
        assert verdict.action is Action.FORWARD
        assert pep.blind_spot_report() == {}

    def test_works_on_a_forwarding_path(self):
        engine = ForwardingEngine(line_topology(3))
        engine.install_shortest_path_tables()
        engine.attach_middlebox("n1", PolicyEnforcementPoint("pep", PERMIT_WEB))
        allowed = engine.send(make_packet("n0", "n2", application="http"))
        denied = engine.send(make_packet("n0", "n2", application="p2p"))
        assert allowed.delivered
        assert not denied.delivered

    def test_steganography_evades_policy_enforcement(self):
        """The §VI-A escalation reaches the policy layer too."""
        pep = PolicyEnforcementPoint("pep", PERMIT_WEB)
        hidden = make_packet("a", "b", application="p2p").hide_in("http")
        assert pep.process(hidden).action is Action.FORWARD
