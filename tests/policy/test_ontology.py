"""Tests for ontology bounds and expressiveness reporting."""

import pytest

from tussle.errors import OntologyError
from tussle.policy.ontology import (
    Ontology,
    check_policy,
    expressiveness_report,
    standard_access_ontology,
)
from tussle.policy.parser import parse_policy


class TestOntology:
    def test_declare_and_admit(self):
        ontology = Ontology("test")
        ontology.declare("foo", "number")
        assert ontology.admits("foo")
        assert not ontology.admits("bar")

    def test_unknown_type_rejected(self):
        with pytest.raises(OntologyError):
            Ontology("test", attributes={"foo": "widget"})
        with pytest.raises(OntologyError):
            Ontology("test").declare("foo", "widget")

    def test_value_conformance(self):
        ontology = Ontology("test", attributes={
            "n": "number", "s": "string", "b": "bool",
        })
        assert ontology.value_conforms("n", 1.5)
        assert not ontology.value_conforms("n", True)  # bool is not a number
        assert ontology.value_conforms("s", "x")
        assert ontology.value_conforms("b", False)
        assert not ontology.value_conforms("missing", 1.0)

    def test_standard_ontology_covers_basics(self):
        ontology = standard_access_ontology()
        for attribute in ("application", "encrypted", "port",
                          "identity.accountability"):
            assert ontology.admits(attribute)


class TestCheckPolicy:
    def test_in_bounds_policy_passes(self):
        policy = parse_policy('permit if application == "http"')
        check_policy(policy, standard_access_ontology())

    def test_out_of_bounds_policy_rejected(self):
        """A policy about an unanticipated dimension cannot be written."""
        policy = parse_policy("permit if carbon.footprint < 10")
        with pytest.raises(OntologyError) as excinfo:
            check_policy(policy, standard_access_ontology())
        assert "carbon.footprint" in str(excinfo.value)


class TestExpressiveness:
    def test_full_coverage(self):
        ontology = standard_access_ontology()
        requests = [{"application": "http", "port": 80.0}]
        report = expressiveness_report(ontology, requests)
        assert report.coverage == 1.0
        assert report.fully_expressive

    def test_blind_spots_detected(self):
        """The paper's 'defeating' case: tussles the language cannot see."""
        ontology = standard_access_ontology()
        requests = [
            {"application": "http", "drm.license": "strict"},
            {"application": "voip", "net.neutrality_tier": "fast-lane"},
        ]
        report = expressiveness_report(ontology, requests)
        assert not report.fully_expressive
        assert report.blind_spots == ["drm.license", "net.neutrality_tier"]
        assert report.coverage == pytest.approx(1 / 3)

    def test_empty_requests_trivially_covered(self):
        report = expressiveness_report(standard_access_ontology(), [])
        assert report.coverage == 1.0
