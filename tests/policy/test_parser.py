"""Tests for the policy-language parser."""

import pytest

from tussle.errors import PolicyParseError
from tussle.policy.language import (
    AndExpr,
    Attribute,
    Comparison,
    Effect,
    Literal,
    Membership,
    NotExpr,
    OrExpr,
)
from tussle.policy.parser import parse_expression, parse_policy, parse_rule


class TestExpressions:
    def test_comparison(self):
        expr = parse_expression("port == 80")
        assert isinstance(expr, Comparison)
        assert expr.op == "=="
        assert expr.left == Attribute("port")
        assert expr.right == Literal(80.0)

    def test_all_comparison_operators(self):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            expr = parse_expression(f"x {op} 1")
            assert isinstance(expr, Comparison)
            assert expr.op == op

    def test_string_literal(self):
        expr = parse_expression('application == "http"')
        assert expr.right == Literal("http")

    def test_boolean_literals(self):
        expr = parse_expression("encrypted == true")
        assert expr.right == Literal(True)

    def test_dotted_attribute(self):
        expr = parse_expression("identity.accountability >= 0.5")
        assert expr.left == Attribute("identity.accountability")

    def test_membership(self):
        expr = parse_expression('application in {"http", "smtp"}')
        assert isinstance(expr, Membership)
        assert expr.collection == frozenset({"http", "smtp"})

    def test_numeric_membership(self):
        expr = parse_expression("port in {80, 443}")
        assert expr.collection == frozenset({80.0, 443.0})

    def test_boolean_connectives(self):
        expr = parse_expression("a == 1 and b == 2 or not c == 3")
        assert isinstance(expr, OrExpr)
        assert isinstance(expr.operands[0], AndExpr)
        assert isinstance(expr.operands[1], NotExpr)

    def test_parentheses_override_precedence(self):
        expr = parse_expression("a == 1 and (b == 2 or c == 3)")
        assert isinstance(expr, AndExpr)
        assert isinstance(expr.operands[1], OrExpr)

    def test_bare_attribute_condition(self):
        expr = parse_expression("encrypted")
        assert expr == Attribute("encrypted")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_expression("a == 1 extra")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_expression("(a == 1")

    def test_bad_character_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_expression("a ~ 1")

    def test_set_members_must_be_literals(self):
        with pytest.raises(PolicyParseError):
            parse_expression("a in {b}")


class TestRules:
    def test_unconditional_permit(self):
        rule = parse_rule("permit")
        assert rule.effect is Effect.PERMIT
        assert rule.condition is None

    def test_conditional_deny(self):
        rule = parse_rule('deny if purpose == "marketing"')
        assert rule.effect is Effect.DENY
        assert rule.condition is not None
        assert rule.source == 'deny if purpose == "marketing"'

    def test_rule_must_start_with_effect(self):
        with pytest.raises(PolicyParseError):
            parse_rule("allow if x == 1")

    def test_condition_requires_if_keyword(self):
        with pytest.raises(PolicyParseError):
            parse_rule("permit x == 1")


class TestPolicies:
    POLICY_TEXT = """
    # A representative access policy
    deny if purpose == "marketing"
    permit if identity.accountability >= 0.5 and application in {"http", "smtp"}
    permit if encrypted
    default deny
    """

    def test_parse_full_policy(self):
        policy = parse_policy(self.POLICY_TEXT, name="access")
        assert len(policy) == 3
        assert policy.default is Effect.DENY
        assert policy.name == "access"

    def test_comments_and_blank_lines_ignored(self):
        policy = parse_policy("# nothing\n\npermit\n")
        assert len(policy) == 1

    def test_default_line_variants(self):
        assert parse_policy("default permit").default is Effect.PERMIT
        with pytest.raises(PolicyParseError):
            parse_policy("default maybe")

    def test_attributes_collected(self):
        policy = parse_policy(self.POLICY_TEXT)
        assert policy.attributes() == {
            "purpose", "identity.accountability", "application", "encrypted",
        }
