"""Tests for two-party policy negotiation."""

import pytest

from tussle.errors import PolicyError
from tussle.policy.negotiation import Negotiation
from tussle.policy.parser import parse_policy


USER_POLICY = parse_policy("""
# The user insists on privacy for sensitive apps and will pay a little.
deny if application == "banking" and not encrypted
permit if payment <= 2
default deny
""")

ISP_POLICY = parse_policy("""
# The provider wants compensation and dislikes opaque traffic unless paid.
permit if payment >= 1
permit if not encrypted
default deny
""")


class TestNegotiation:
    def test_agreement_found_in_joint_space(self):
        negotiation = Negotiation(
            USER_POLICY, ISP_POLICY,
            fixed={"application": "banking"},
            negotiable={"encrypted": [True, False],
                        "payment": [0.0, 1.0, 2.0, 3.0]},
        )
        outcome = negotiation.run()
        assert outcome.succeeded
        agreement = outcome.agreement
        # Banking must end up encrypted AND paid (>=1), and affordable (<=2).
        assert agreement["encrypted"] is True
        assert 1.0 <= agreement["payment"] <= 2.0

    def test_choice_count_measures_latitude(self):
        negotiation = Negotiation(
            USER_POLICY, ISP_POLICY,
            fixed={"application": "banking"},
            negotiable={"encrypted": [True, False],
                        "payment": [0.0, 1.0, 2.0, 3.0]},
        )
        outcome = negotiation.run()
        assert outcome.choice_count == 2  # encrypted with payment 1 or 2

    def test_failure_when_interests_truly_adverse(self):
        strict_isp = parse_policy("permit if not encrypted\ndefault deny")
        negotiation = Negotiation(
            USER_POLICY, strict_isp,
            fixed={"application": "banking"},
            negotiable={"encrypted": [True, False], "payment": [0.0, 1.0]},
        )
        outcome = negotiation.run()
        assert not outcome.succeeded
        assert outcome.agreement is None

    def test_preference_selects_among_acceptable(self):
        negotiation = Negotiation(
            USER_POLICY, ISP_POLICY,
            fixed={"application": "banking"},
            negotiable={"encrypted": [True], "payment": [1.0, 2.0]},
        )
        cheapest = negotiation.run(preference=lambda r: -r["payment"])
        assert cheapest.agreement["payment"] == 1.0
        dearest = negotiation.run(preference=lambda r: r["payment"])
        assert dearest.agreement["payment"] == 2.0

    def test_no_negotiable_space_still_evaluates_fixed(self):
        permit_all = parse_policy("permit")
        negotiation = Negotiation(permit_all, permit_all,
                                  fixed={"application": "http"})
        outcome = negotiation.run()
        assert outcome.succeeded
        assert outcome.rounds_searched == 1

    def test_empty_candidate_list_rejected(self):
        permit_all = parse_policy("permit")
        with pytest.raises(PolicyError):
            Negotiation(permit_all, permit_all, negotiable={"x": []})

    def test_search_is_exhaustive(self):
        permit_all = parse_policy("permit")
        negotiation = Negotiation(
            permit_all, permit_all,
            negotiable={"a": [1.0, 2.0], "b": [1.0, 2.0, 3.0]},
        )
        outcome = negotiation.run()
        assert outcome.rounds_searched == 6
        assert outcome.choice_count == 6
