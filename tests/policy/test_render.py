"""Tests for policy rendering, including the hypothesis round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tussle.errors import PolicyError
from tussle.policy.language import (
    AndExpr,
    Attribute,
    Comparison,
    Effect,
    Literal,
    Membership,
    NotExpr,
    OrExpr,
    Policy,
    Rule,
)
from tussle.policy.parser import parse_expression, parse_policy, parse_rule
from tussle.policy.render import render_expression, render_policy, render_rule


class TestBasicRendering:
    def test_comparison(self):
        expr = Comparison("==", Attribute("port"), Literal(80.0))
        assert render_expression(expr) == "port == 80.0"

    def test_string_and_bool_literals(self):
        expr = Comparison("==", Attribute("app"), Literal("http"))
        assert render_expression(expr) == 'app == "http"'
        expr = Comparison("==", Attribute("enc"), Literal(True))
        assert render_expression(expr) == "enc == true"

    def test_membership_sorted(self):
        expr = Membership(Attribute("app"), frozenset({"smtp", "http"}))
        assert render_expression(expr) == 'app in {"http", "smtp"}'

    def test_not_over_connective_parenthesized(self):
        inner = OrExpr((Attribute("a"), Attribute("b")))
        expr = NotExpr(inner)
        text = render_expression(expr)
        assert text == "not (a or b)"
        assert parse_expression(text) == expr

    def test_or_inside_and_parenthesized(self):
        expr = AndExpr((Attribute("a"), OrExpr((Attribute("b"), Attribute("c")))))
        text = render_expression(expr)
        assert text == "a and (b or c)"
        assert parse_expression(text) == expr

    def test_nested_and_keeps_grouping(self):
        expr = AndExpr((AndExpr((Attribute("a"), Attribute("b"))),
                        Attribute("c")))
        text = render_expression(expr)
        assert parse_expression(text) == expr

    def test_quote_in_string_rejected(self):
        with pytest.raises(PolicyError):
            render_expression(Literal('has "quotes"'))

    def test_rule_rendering(self):
        rule = Rule(effect=Effect.DENY,
                    condition=Comparison("==", Attribute("x"), Literal(1.0)))
        assert render_rule(rule) == "deny if x == 1.0"
        assert render_rule(Rule(effect=Effect.PERMIT)) == "permit"

    def test_policy_round_trip(self):
        source = """
        deny if purpose == "marketing"
        permit if encrypted
        default permit
        """
        policy = parse_policy(source)
        rendered = render_policy(policy)
        reparsed = parse_policy(rendered)
        assert reparsed.default == policy.default
        assert [r.effect for r in reparsed.rules] == [r.effect for r in policy.rules]
        assert [r.condition for r in reparsed.rules] \
            == [r.condition for r in policy.rules]


# ----------------------------------------------------------------------
# Hypothesis round-trip on randomly generated ASTs.
# ----------------------------------------------------------------------
_names = st.sampled_from(["app", "port", "encrypted", "identity.level",
                          "purpose", "src.zone"])
_numbers = st.floats(min_value=-1e6, max_value=1e6,
                     allow_nan=False, allow_infinity=False)
_strings = st.text(alphabet="abcxyz-._ ", min_size=0, max_size=8)
_values = st.one_of(st.booleans(), _numbers, _strings)


def _terms():
    return st.one_of(_values.map(Literal), _names.map(Attribute))


def _comparisons():
    return st.builds(
        Comparison,
        op=st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        left=_terms(),
        right=_terms(),
    )


def _memberships():
    return st.builds(
        Membership,
        item=_terms(),
        collection=st.frozensets(_values, min_size=1, max_size=4),
    )


_expressions = st.recursive(
    st.one_of(_comparisons(), _memberships(), _names.map(Attribute),
              st.booleans().map(Literal)),
    lambda children: st.one_of(
        children.map(NotExpr),
        st.tuples(children, children).map(AndExpr),
        st.tuples(children, children).map(OrExpr),
        st.tuples(children, children, children).map(OrExpr),
    ),
    max_leaves=12,
)


class TestRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(_expressions)
    def test_render_parse_round_trip(self, expr):
        assert parse_expression(render_expression(expr)) == expr

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.builds(Rule,
                              effect=st.sampled_from(list(Effect)),
                              condition=st.one_of(st.none(), _expressions)),
                    max_size=4),
           st.sampled_from(list(Effect)))
    def test_policy_round_trip(self, rules, default):
        policy = Policy(rules=list(rules), default=default)
        reparsed = parse_policy(render_policy(policy))
        assert reparsed.default == policy.default
        assert [r.condition for r in reparsed.rules] \
            == [r.condition for r in policy.rules]
        assert [r.effect for r in reparsed.rules] \
            == [r.effect for r in policy.rules]
