"""Tests for policy evaluation."""

import pytest

from tussle.errors import PolicyError
from tussle.policy.evaluator import evaluate_expression, evaluate_policy
from tussle.policy.parser import parse_expression, parse_policy


class TestExpressionEvaluation:
    def test_numeric_comparisons(self):
        assert evaluate_expression(parse_expression("port >= 80"), {"port": 80.0})
        assert not evaluate_expression(parse_expression("port < 80"), {"port": 80.0})

    def test_string_equality(self):
        expr = parse_expression('application == "http"')
        assert evaluate_expression(expr, {"application": "http"})
        assert not evaluate_expression(expr, {"application": "smtp"})

    def test_string_ordering(self):
        assert evaluate_expression(parse_expression('name < "m"'), {"name": "alice"})

    def test_boolean_attribute(self):
        assert evaluate_expression(parse_expression("encrypted"),
                                   {"encrypted": True})
        assert not evaluate_expression(parse_expression("encrypted"),
                                       {"encrypted": False})

    def test_membership(self):
        expr = parse_expression('application in {"http", "smtp"}')
        assert evaluate_expression(expr, {"application": "smtp"})
        assert not evaluate_expression(expr, {"application": "ftp"})

    def test_connectives(self):
        expr = parse_expression("a == 1 and not b == 2")
        assert evaluate_expression(expr, {"a": 1.0, "b": 3.0})
        assert not evaluate_expression(expr, {"a": 1.0, "b": 2.0})

    def test_missing_attribute_is_false(self):
        expr = parse_expression("nonexistent == 1")
        assert not evaluate_expression(expr, {})

    def test_missing_under_not_is_false_not_true(self):
        """NOT over a missing attribute must not accidentally match."""
        expr = parse_expression("not nonexistent == 1")
        assert not evaluate_expression(expr, {})

    def test_cross_type_equality_is_false(self):
        expr = parse_expression("port == 80")
        assert not evaluate_expression(expr, {"port": "80"})

    def test_cross_type_ordering_raises(self):
        expr = parse_expression("port < 80")
        with pytest.raises(PolicyError):
            evaluate_expression(expr, {"port": "eighty"})

    def test_non_boolean_bare_attribute_raises(self):
        expr = parse_expression("port")
        with pytest.raises(PolicyError):
            evaluate_expression(expr, {"port": 80.0})

    def test_boolean_ordering_rejected(self):
        expr = parse_expression("encrypted < true")
        with pytest.raises(PolicyError):
            evaluate_expression(expr, {"encrypted": False})


class TestPolicyEvaluation:
    POLICY = parse_policy("""
    deny if purpose == "marketing"
    permit if identity.accountability >= 0.5
    permit if encrypted
    default deny
    """)

    def test_first_match_wins(self):
        decision = evaluate_policy(self.POLICY, {
            "purpose": "marketing",
            "identity.accountability": 1.0,
        })
        assert not decision.permitted
        assert decision.matched_rule.effect.value == "deny"

    def test_fallthrough_to_later_rule(self):
        decision = evaluate_policy(self.POLICY, {
            "purpose": "service",
            "identity.accountability": 0.8,
        })
        assert decision.permitted

    def test_default_applies_when_nothing_matches(self):
        decision = evaluate_policy(self.POLICY, {
            "purpose": "service",
            "identity.accountability": 0.1,
            "encrypted": False,
        })
        assert not decision.permitted
        assert decision.defaulted

    def test_missing_attributes_recorded(self):
        decision = evaluate_policy(self.POLICY, {"purpose": "service"})
        assert "identity.accountability" in decision.missing_attributes
        assert "encrypted" in decision.missing_attributes

    def test_unconditional_rule_always_matches(self):
        policy = parse_policy("permit")
        assert evaluate_policy(policy, {}).permitted

    def test_default_default_is_deny(self):
        policy = parse_policy("permit if x == 1")
        assert not evaluate_policy(policy, {}).permitted
