"""Backoff / Deadline / CircuitBreaker unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tussle.errors import ResilienceError
from tussle.resil import Backoff, BreakerState, CircuitBreaker, Deadline

seeds = st.integers(min_value=0, max_value=2**32 - 1)
policies = st.fixed_dictionaries({
    "base": st.floats(min_value=0.01, max_value=2.0),
    "factor": st.floats(min_value=1.0, max_value=4.0),
    "max_retries": st.integers(min_value=0, max_value=12),
    "jitter": st.floats(min_value=0.0, max_value=1.0),
})


def _make(policy, seed):
    cap = max(policy["base"], 8.0)
    return Backoff(base=policy["base"], factor=policy["factor"], cap=cap,
                   max_retries=policy["max_retries"],
                   jitter=policy["jitter"], seed=seed)


class TestBackoffProperties:
    @given(policy=policies, seed=seeds)
    @settings(max_examples=60)
    def test_same_seed_same_jitter_sequence(self, policy, seed):
        first = _make(policy, seed).delays()
        second = _make(policy, seed).delays()
        assert first == second

    @given(policy=policies, seed=seeds)
    @settings(max_examples=60)
    def test_reset_replays_the_sequence(self, policy, seed):
        schedule = _make(policy, seed)
        first = schedule.delays()
        schedule.reset()
        assert schedule.delays() == first

    @given(policy=policies, seed=seeds)
    @settings(max_examples=60)
    def test_nominal_monotone_and_capped(self, policy, seed):
        schedule = _make(policy, seed)
        nominals = [schedule.nominal(n)
                    for n in range(policy["max_retries"] + 4)]
        assert all(a <= b for a, b in zip(nominals, nominals[1:]))
        assert all(n <= schedule.cap for n in nominals)

    @given(policy=policies, seed=seeds)
    @settings(max_examples=60)
    def test_each_delay_bounded_by_nominal(self, policy, seed):
        schedule = _make(policy, seed)
        for attempt, delay in enumerate(schedule.delays()):
            nominal = schedule.nominal(attempt)
            assert delay <= nominal + 1e-12
            assert delay >= nominal * (1.0 - policy["jitter"]) - 1e-12

    @given(policy=policies, seed=seeds)
    @settings(max_examples=60)
    def test_total_delay_bounded(self, policy, seed):
        schedule = _make(policy, seed)
        bound = schedule.total_bound()
        assert sum(schedule.delays()) <= bound + 1e-9

    @given(seed=seeds, other=seeds)
    @settings(max_examples=30)
    def test_spawn_keeps_policy_changes_stream(self, seed, other):
        parent = Backoff(base=0.5, factor=3.0, cap=9.0, max_retries=5,
                         jitter=0.4, seed=seed)
        child = parent.spawn(other)
        assert (child.base, child.factor, child.cap, child.max_retries,
                child.jitter) == (0.5, 3.0, 9.0, 5, 0.4)
        assert child.seed == other


class TestBackoffBudget:
    def test_exhaustion_raises(self):
        schedule = Backoff(max_retries=2, seed=1)
        schedule.next_delay()
        schedule.next_delay()
        assert schedule.exhausted
        with pytest.raises(ResilienceError):
            schedule.next_delay()

    def test_zero_retries_is_immediately_exhausted(self):
        schedule = Backoff(max_retries=0, seed=1)
        assert schedule.exhausted
        assert schedule.delays() == []

    @pytest.mark.parametrize("kwargs", [
        {"base": 0.0}, {"base": -1.0}, {"factor": 0.5}, {"cap": 0.1},
        {"jitter": 1.5}, {"jitter": -0.1}, {"max_retries": -1},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ResilienceError):
            Backoff(**kwargs)


class TestDeadline:
    def test_remaining_and_expiry_on_caller_clock(self):
        deadline = Deadline(now=10.0, timeout=5.0)
        assert deadline.remaining(10.0) == 5.0
        assert deadline.remaining(14.0) == pytest.approx(1.0)
        assert not deadline.expired(14.9)
        assert deadline.expired(15.0)
        assert deadline.remaining(20.0) == 0.0

    def test_clamp_never_overshoots(self):
        deadline = Deadline(now=0.0, timeout=2.0)
        assert deadline.clamp(1.5, 10.0) == pytest.approx(0.5)
        assert deadline.clamp(0.0, 1.0) == 1.0

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ResilienceError):
            Deadline(now=0.0, timeout=0.0)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recloses(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=5.0)
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        # Open: attempts refused until the window elapses.
        assert not breaker.allow(2.0)
        assert breaker.refusals == 1
        # Window elapsed: one half-open probe admitted.
        assert breaker.allow(6.5)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0

    def test_failed_probe_reopens_for_full_window(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=4.0)
        breaker.record_failure(0.0)
        assert breaker.allow(4.0)  # half-open probe
        breaker.record_failure(4.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert not breaker.allow(7.9)
        assert breaker.allow(8.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ResilienceError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ResilienceError):
            CircuitBreaker(reset_timeout=0.0)
