"""ChaosSchedule / FaultPlan / ChaosInjector tests, incl. JSON round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tussle.errors import ResilienceError
from tussle.netsim.forwarding import ForwardingEngine
from tussle.netsim.packets import make_packet
from tussle.netsim.topology import Network
from tussle.resil import (
    ChaosInjector,
    ChaosSchedule,
    FaultEvent,
    FaultKind,
    FaultPlan,
    link_target,
    parse_link_target,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
rates = st.floats(min_value=0.0, max_value=2.0)


def ring_network(n=5):
    net = Network()
    names = [f"n{i}" for i in range(n)]
    for name in names:
        net.add_node(name)
    for i in range(n):
        net.add_link(names[i], names[(i + 1) % n])
    return net


def line_engine():
    net = Network()
    for name in ("a", "b", "c"):
        net.add_node(name)
    net.add_link("a", "b")
    net.add_link("b", "c")
    engine = ForwardingEngine(net)
    engine.install_shortest_path_tables()
    return engine


def schedules_strategy():
    return st.builds(
        ChaosSchedule,
        seed=seeds,
        horizon=st.floats(min_value=1.0, max_value=20.0),
        link_failure_rate=rates,
        node_crash_rate=rates,
        loss_spike_rate=rates,
        delay_spike_rate=rates,
        middlebox_rate=st.floats(min_value=0.0, max_value=0.5),
    )


class TestLinkTargets:
    def test_canonical_and_parseable(self):
        assert link_target("b", "a") == link_target("a", "b") == "a|b"
        assert parse_link_target("a|b") == ("a", "b")

    def test_bad_target_rejected(self):
        with pytest.raises(ResilienceError):
            parse_link_target("no-separator")


class TestFaultPlanRoundTrip:
    @given(schedule=schedules_strategy())
    @settings(max_examples=40, deadline=None)
    def test_plan_roundtrips_through_canonical_json(self, schedule):
        plan = schedule.plan(ring_network())
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_json(plan.to_json()).to_json() == plan.to_json()

    @given(schedule=schedules_strategy())
    @settings(max_examples=40, deadline=None)
    def test_schedule_roundtrips_and_replans_identically(self, schedule):
        clone = ChaosSchedule.from_json(schedule.to_json())
        assert clone.to_json() == schedule.to_json()
        net = ring_network()
        assert clone.plan(net) == schedule.plan(net)

    @given(schedule=schedules_strategy())
    @settings(max_examples=40, deadline=None)
    def test_plan_is_pure_function_of_seed(self, schedule):
        assert schedule.plan(ring_network()) == schedule.plan(ring_network())

    def test_different_seeds_differ(self):
        a = ChaosSchedule(seed=1, horizon=50.0, link_failure_rate=1.0)
        b = ChaosSchedule(seed=2, horizon=50.0, link_failure_rate=1.0)
        net = ring_network()
        assert a.plan(net) != b.plan(net)

    def test_schema_checked(self):
        with pytest.raises(ResilienceError):
            FaultPlan.from_dict({"schema": 99, "events": []})
        with pytest.raises(ResilienceError):
            ChaosSchedule.from_dict({"schema": 99})


class TestFaultPlanOrdering:
    def test_events_sorted_and_queryable(self):
        plan = FaultPlan()
        plan.add(FaultEvent(2.0, FaultKind.LINK_UP, "a|b"))
        plan.add(FaultEvent(1.0, FaultKind.LINK_DOWN, "a|b"))
        assert [e.time for e in plan.events] == [1.0, 2.0]
        assert len(plan.until(1.5)) == 1
        assert plan.of_kind(FaultKind.LINK_DOWN)[0].time == 1.0
        assert plan.horizon == 2.0


class TestChaosInjector:
    def test_link_flap_breaks_and_heals_delivery(self):
        engine = line_engine()
        plan = FaultPlan(events=[
            FaultEvent(1.0, FaultKind.LINK_DOWN, link_target("b", "c")),
            FaultEvent(2.0, FaultKind.LINK_UP, link_target("b", "c")),
        ])
        injector = ChaosInjector(engine, plan)
        injector.advance(0.5)
        assert engine.send(make_packet("a", "c")).delivered
        injector.advance(1.5)
        assert not engine.send(make_packet("a", "c")).delivered
        injector.advance(2.5)
        assert engine.send(make_packet("a", "c")).delivered

    def test_node_crash_downs_incident_links_and_recovers(self):
        engine = line_engine()
        plan = FaultPlan(events=[
            FaultEvent(1.0, FaultKind.NODE_CRASH, "b"),
            FaultEvent(2.0, FaultKind.NODE_RECOVER, "b"),
        ])
        injector = ChaosInjector(engine, plan)
        injector.advance(1.0)
        links = {l.key(): l.up for l in engine.network.links}
        assert links == {("a", "b"): False, ("b", "c"): False}
        injector.advance(2.0)
        assert all(l.up for l in engine.network.links)

    def test_delay_spike_scales_latency_then_restores(self):
        engine = line_engine()
        original = engine.network.link("a", "b").latency
        plan = FaultPlan(events=[
            FaultEvent(1.0, FaultKind.DELAY_SPIKE, link_target("a", "b"),
                       params=(("duration", 1.0), ("factor", 10.0))),
        ])
        injector = ChaosInjector(engine, plan)
        injector.advance(1.5)
        assert engine.network.link("a", "b").latency == pytest.approx(
            original * 10.0)
        injector.advance(2.5)
        assert engine.network.link("a", "b").latency == pytest.approx(original)

    def test_loss_spike_visible_while_active(self):
        engine = line_engine()
        plan = FaultPlan(events=[
            FaultEvent(1.0, FaultKind.LOSS_SPIKE, "*",
                       params=(("duration", 1.0), ("probability", 0.7))),
        ])
        injector = ChaosInjector(engine, plan)
        injector.advance(1.5)
        assert injector.active_loss() == pytest.approx(0.7)
        injector.advance(3.0)
        assert injector.active_loss() == 0.0

    def test_middlebox_insertion_blocks_application(self):
        engine = line_engine()
        plan = FaultPlan(events=[
            FaultEvent(1.0, FaultKind.MIDDLEBOX_INSERT, "b",
                       params=(("application", "voip"),
                               ("discloses", True))),
        ])
        injector = ChaosInjector(engine, plan)
        injector.advance(1.0)
        assert not engine.send(
            make_packet("a", "c", application="voip")).delivered
        assert engine.send(
            make_packet("a", "c", application="web")).delivered

    def test_rewind_rejected_and_events_apply_once(self):
        engine = line_engine()
        plan = FaultPlan(events=[
            FaultEvent(1.0, FaultKind.LINK_DOWN, link_target("a", "b"))])
        injector = ChaosInjector(engine, plan)
        injector.advance(2.0)
        assert len(injector.applied) == 1
        injector.advance(3.0)
        assert len(injector.applied) == 1
        with pytest.raises(ResilienceError):
            injector.advance(1.0)
