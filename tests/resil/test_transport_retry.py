"""ReliableSender: retry/timeout/breaker behaviour on simulated time."""

import pytest

from tussle.netsim.forwarding import ForwardingEngine
from tussle.netsim.topology import Network
from tussle.netsim.transport import ReliableSender
from tussle.resil import (
    Backoff,
    ChaosInjector,
    CircuitBreaker,
    FaultEvent,
    FaultKind,
    FaultPlan,
    link_target,
)


def line_engine():
    net = Network()
    for name in ("a", "b", "c"):
        net.add_node(name)
    net.add_link("a", "b")
    net.add_link("b", "c")
    engine = ForwardingEngine(net)
    engine.install_shortest_path_tables()
    return engine


def backoff(**overrides):
    kwargs = dict(base=0.25, factor=2.0, cap=2.0, max_retries=4,
                  jitter=0.5, seed=7)
    kwargs.update(overrides)
    return Backoff(**kwargs)


class TestHealthyPath:
    def test_one_attempt_no_waiting(self):
        engine = line_engine()
        sender = ReliableSender(engine, "a", "c", backoff=backoff())
        outcome = sender.send(now=0.0)
        assert outcome.delivered
        assert outcome.attempts == 1
        assert outcome.gave_up is None
        assert outcome.final_receipt.delivered
        # Only path latency elapses — no backoff waits on first success.
        assert outcome.elapsed == pytest.approx(
            outcome.final_receipt.latency)


class TestRetryThroughTransientFault:
    def test_recovers_once_injector_heals_link(self):
        engine = line_engine()
        plan = FaultPlan(events=[
            FaultEvent(0.0, FaultKind.LINK_DOWN, link_target("b", "c")),
            FaultEvent(0.2, FaultKind.LINK_UP, link_target("b", "c")),
        ])
        injector = ChaosInjector(engine, plan)
        sender = ReliableSender(engine, "a", "c", backoff=backoff(),
                                on_advance=injector.advance)
        outcome = sender.send(now=0.0)
        assert outcome.delivered
        assert outcome.attempts > 1
        assert outcome.gave_up is None
        # Earlier attempts really failed before the heal.
        assert not outcome.receipts[0].delivered
        assert outcome.final_receipt.delivered

    def test_fresh_packet_per_attempt(self):
        engine = line_engine()
        plan = FaultPlan(events=[
            FaultEvent(0.0, FaultKind.LINK_DOWN, link_target("b", "c")),
            FaultEvent(0.2, FaultKind.LINK_UP, link_target("b", "c")),
        ])
        injector = ChaosInjector(engine, plan)
        sender = ReliableSender(engine, "a", "c", backoff=backoff(),
                                on_advance=injector.advance)
        outcome = sender.send(now=0.0)
        packets = [r.packet for r in outcome.receipts]
        assert len(set(map(id, packets))) == len(packets)

    def test_sender_is_reusable_across_sends(self):
        engine = line_engine()
        sender = ReliableSender(engine, "a", "c", backoff=backoff())
        first = sender.send(now=0.0)
        second = sender.send(now=10.0)
        assert first.delivered and second.delivered
        assert first.attempts == second.attempts == 1


class TestGivingUp:
    def test_persistent_fault_exhausts_retries(self):
        engine = line_engine()
        engine.network.fail_link("b", "c")
        sender = ReliableSender(engine, "a", "c",
                                backoff=backoff(max_retries=3))
        outcome = sender.send(now=0.0)
        assert not outcome.delivered
        assert outcome.gave_up == "retries"
        # max_retries waits => max_retries + 1 attempts.
        assert outcome.attempts == 4
        assert outcome.elapsed > 0.0

    def test_deadline_bounds_total_simulated_time(self):
        engine = line_engine()
        engine.network.fail_link("b", "c")
        sender = ReliableSender(
            engine, "a", "c", timeout=0.5,
            backoff=backoff(base=0.4, jitter=0.0, max_retries=50))
        outcome = sender.send(now=0.0)
        assert not outcome.delivered
        assert outcome.gave_up == "deadline"
        # Waits are clamped to the deadline; only the final attempt's
        # path latency may overshoot it.
        assert outcome.elapsed <= 0.5 + outcome.receipts[-1].latency + 1e-9

    def test_open_breaker_refuses_before_any_attempt(self):
        engine = line_engine()
        engine.network.fail_link("b", "c")
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=100.0)
        sender = ReliableSender(engine, "a", "c",
                                backoff=backoff(max_retries=5),
                                breaker=breaker)
        first = sender.send(now=0.0)
        assert not first.delivered
        assert first.gave_up == "breaker"
        # Breaker tripped after threshold failures, capping attempts.
        assert first.attempts == 2
        assert breaker.trips == 1
        # A later send against the still-open breaker makes no attempts.
        second = sender.send(now=1.0)
        assert second.gave_up == "breaker"
        assert second.attempts == 0
        assert breaker.refusals >= 1

    def test_breaker_success_resets(self):
        engine = line_engine()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1.0)
        sender = ReliableSender(engine, "a", "c", backoff=backoff(),
                                breaker=breaker)
        outcome = sender.send(now=0.0)
        assert outcome.delivered
        assert breaker.consecutive_failures == 0
        assert breaker.trips == 0
