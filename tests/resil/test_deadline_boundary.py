"""Boundary semantics of Deadline/Backoff and the sender's use of them.

The deadline boundary is closed: ``now == expires_at`` means expired,
zero remaining, zero clamp.  The sender must honour that *after a
clamped wait*, not only after a failed attempt — a wait that lands
exactly on the deadline spends the whole budget, so firing one more
attempt at ``t == deadline`` would exceed it.  These tests pin the
boundary on the primitives and then on the sender loop.
"""

import pytest

from tussle.errors import ResilienceError
from tussle.netsim.forwarding import ForwardingEngine
from tussle.netsim.topology import Network
from tussle.netsim.transport import ReliableSender
from tussle.resil.backoff import Backoff, Deadline


def broken_line_engine():
    """a-b with the only link down: every attempt fails with latency 0."""
    net = Network()
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", latency=0.5)
    net.fail_link("a", "b")
    engine = ForwardingEngine(net)
    engine.install_shortest_path_tables()
    return engine


class TestDeadlineBoundary:
    def test_exactly_at_expiry_is_expired(self):
        deadline = Deadline(10.0, 5.0)
        assert not deadline.expired(14.999999)
        assert deadline.expired(15.0)
        assert deadline.expired(15.000001)

    def test_remaining_is_zero_at_expiry_never_negative(self):
        deadline = Deadline(0.0, 2.0)
        assert deadline.remaining(2.0) == 0.0
        assert deadline.remaining(3.0) == 0.0
        assert deadline.remaining(1.5) == pytest.approx(0.5)

    def test_clamp_at_boundary_returns_zero(self):
        deadline = Deadline(0.0, 2.0)
        assert deadline.clamp(2.0, 1.0) == 0.0
        assert deadline.clamp(1.75, 1.0) == pytest.approx(0.25)
        assert deadline.clamp(0.0, 1.0) == 1.0

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ResilienceError):
            Deadline(0.0, 0.0)
        with pytest.raises(ResilienceError):
            Deadline(0.0, -1.0)


class TestBackoffBoundary:
    def test_exhausted_exactly_at_max_retries(self):
        backoff = Backoff(base=0.1, max_retries=2, jitter=0.0)
        assert not backoff.exhausted
        backoff.next_delay()
        assert not backoff.exhausted
        backoff.next_delay()
        assert backoff.exhausted
        with pytest.raises(ResilienceError):
            backoff.next_delay()

    def test_zero_retries_is_born_exhausted(self):
        backoff = Backoff(base=0.1, max_retries=0)
        assert backoff.exhausted
        with pytest.raises(ResilienceError):
            backoff.next_delay()


class TestSenderDeadlineBoundary:
    def test_clamped_wait_landing_on_deadline_stops_without_extra_attempt(
            self):
        # First attempt fails instantly (latency only accrues on
        # successful moves); the nominal wait (1.0) overshoots the 0.4
        # budget, so the clamp lands the clock exactly on expires_at.
        # The sender must give up there — not fire an attempt at
        # t == deadline.
        sender = ReliableSender(
            broken_line_engine(), "a", "b",
            backoff=Backoff(base=1.0, factor=1.0, cap=1.0, max_retries=50,
                            jitter=0.0),
            timeout=0.4,
        )
        outcome = sender.send(now=0.0)
        assert not outcome.delivered
        assert outcome.gave_up == "deadline"
        assert outcome.attempts == 1
        assert outcome.elapsed == pytest.approx(0.4)

    def test_waits_summing_exactly_to_timeout_stop_at_the_boundary(self):
        # Constant 0.2 waits against a 0.4 budget: attempts at t=0 and
        # t=0.2, then the third wait lands exactly on 0.4 and the sender
        # stops — the boundary attempt at t == 0.4 must not happen.
        sender = ReliableSender(
            broken_line_engine(), "a", "b",
            backoff=Backoff(base=0.2, factor=1.0, cap=0.2, max_retries=50,
                            jitter=0.0),
            timeout=0.4,
        )
        outcome = sender.send(now=0.0)
        assert outcome.gave_up == "deadline"
        assert outcome.attempts == 2
        assert outcome.elapsed == pytest.approx(0.4)

    def test_deadline_start_offset_does_not_shift_the_boundary(self):
        sender = ReliableSender(
            broken_line_engine(), "a", "b",
            backoff=Backoff(base=1.0, factor=1.0, cap=1.0, max_retries=50,
                            jitter=0.0),
            timeout=0.4,
        )
        outcome = sender.send(now=100.0)
        assert outcome.gave_up == "deadline"
        assert outcome.attempts == 1
        assert outcome.elapsed == pytest.approx(0.4)

    def test_retry_budget_still_wins_when_it_exhausts_first(self):
        sender = ReliableSender(
            broken_line_engine(), "a", "b",
            backoff=Backoff(base=0.01, factor=1.0, cap=0.01, max_retries=3,
                            jitter=0.0),
            timeout=1000.0,
        )
        outcome = sender.send(now=0.0)
        assert outcome.gave_up == "retries"
        assert outcome.attempts == 4  # initial try + 3 retries
