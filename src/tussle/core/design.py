"""Design objects: modules, functions, tussle spaces, interfaces.

"Modularize the design along tussle boundaries, so that one tussle does
not spill over and distort unrelated issues... Functions that are within a
tussle space should be logically separated from functions outside of that
space, even if there is no compelling technical reason to do so" (§IV-A).

A :class:`Design` assigns *functions* (units of capability, each labelled
with the tussle spaces it participates in) to *modules*, and declares
typed interfaces between modules. The boundary analysis in
:mod:`tussle.core.principles` and the damage model in
:mod:`tussle.core.spillover` are computed from this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import DesignError

__all__ = ["Function", "Module", "Interface", "Design"]


@dataclass(frozen=True)
class Function:
    """A unit of system capability.

    ``tussle_spaces`` names the arenas this function is contested in —
    e.g. the DNS name-resolution function sits in {"trademark",
    "machine-naming"} in the entangled design, which is precisely the
    problem.
    """

    name: str
    tussle_spaces: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if not isinstance(self.tussle_spaces, frozenset):
            object.__setattr__(self, "tussle_spaces", frozenset(self.tussle_spaces))

    @property
    def contested(self) -> bool:
        return bool(self.tussle_spaces)


@dataclass
class Module:
    """A deployable unit holding functions."""

    name: str
    functions: Dict[str, Function] = field(default_factory=dict)

    def add_function(self, function: Function) -> None:
        if function.name in self.functions:
            raise DesignError(
                f"module {self.name!r} already holds function {function.name!r}"
            )
        self.functions[function.name] = function

    def tussle_spaces(self) -> Set[str]:
        spaces: Set[str] = set()
        for function in self.functions.values():
            spaces |= function.tussle_spaces
        return spaces

    def __len__(self) -> int:
        return len(self.functions)


@dataclass(frozen=True)
class Interface:
    """A declared connection between two modules.

    ``open_`` marks the interface as open/well-specified (replaceable
    parts, run-time choice); ``tussle_aware`` marks it as designed for
    tussle (value exchange, cost exposure, visibility, fault tools —
    §IV-C).
    """

    a: str
    b: str
    open_: bool = True
    tussle_aware: bool = False

    def key(self) -> Tuple[str, str]:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


class Design:
    """A complete modular decomposition."""

    def __init__(self, name: str = ""):
        self.name = name
        self._modules: Dict[str, Module] = {}
        self._interfaces: Dict[Tuple[str, str], Interface] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_module(self, name: str) -> Module:
        if name in self._modules:
            raise DesignError(f"duplicate module {name!r}")
        module = Module(name=name)
        self._modules[name] = module
        return module

    def module(self, name: str) -> Module:
        try:
            return self._modules[name]
        except KeyError:
            raise DesignError(f"unknown module {name!r}") from None

    def place_function(self, module_name: str, function_name: str,
                       tussle_spaces: Iterable[str] = ()) -> Function:
        """Create a function inside a module."""
        for existing in self._modules.values():
            if function_name in existing.functions:
                raise DesignError(
                    f"function {function_name!r} already placed in "
                    f"module {existing.name!r}"
                )
        function = Function(name=function_name,
                            tussle_spaces=frozenset(tussle_spaces))
        self.module(module_name).add_function(function)
        return function

    def connect(self, a: str, b: str, open_: bool = True,
                tussle_aware: bool = False) -> Interface:
        self.module(a)
        self.module(b)
        if a == b:
            raise DesignError(f"module {a!r} cannot interface with itself")
        interface = Interface(a=a, b=b, open_=open_, tussle_aware=tussle_aware)
        self._interfaces[interface.key()] = interface
        return interface

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def modules(self) -> List[Module]:
        return [self._modules[k] for k in sorted(self._modules)]

    @property
    def interfaces(self) -> List[Interface]:
        return [self._interfaces[k] for k in sorted(self._interfaces)]

    def functions(self) -> List[Function]:
        result: List[Function] = []
        for module in self.modules:
            result.extend(module.functions[k] for k in sorted(module.functions))
        return result

    def module_of(self, function_name: str) -> Module:
        for module in self._modules.values():
            if function_name in module.functions:
                return module
        raise DesignError(f"function {function_name!r} not placed in any module")

    def tussle_spaces(self) -> Set[str]:
        spaces: Set[str] = set()
        for module in self._modules.values():
            spaces |= module.tussle_spaces()
        return spaces

    def functions_in_space(self, space: str) -> List[Function]:
        return [f for f in self.functions() if space in f.tussle_spaces]

    def modules_touching_space(self, space: str) -> List[Module]:
        return [m for m in self.modules if space in m.tussle_spaces()]

    def interface_between(self, a: str, b: str) -> Optional[Interface]:
        key = (a, b) if a <= b else (b, a)
        return self._interfaces.get(key)
