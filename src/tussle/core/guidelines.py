"""Application design guidelines (§VI-A).

"If application designers want to preserve choice and end user
empowerment, they should be given advice about how to design applications
to achieve this goal. This observation suggests that we should generate
'application design guidelines' that would help designers avoid pitfalls,
and deal with the tussles of success."

This module is that advice, executable: an :class:`ApplicationDesign`
describes an application's structure (which roles the user can choose,
what third parties mediate, how data is protected, what happens on
failure), and :func:`audit` checks it against the guidelines distilled
from the paper. Each guideline cites its source passage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Set


__all__ = [
    "Severity",
    "Guideline",
    "Finding",
    "ApplicationDesign",
    "GUIDELINES",
    "audit",
]


class Severity(Enum):
    """How badly a violation undermines tussle-readiness."""

    ADVISORY = "advisory"
    SERIOUS = "serious"


@dataclass(frozen=True)
class Guideline:
    """One rule, its rationale, and the predicate that checks it."""

    identifier: str
    title: str
    rationale: str
    severity: Severity
    check: Callable[["ApplicationDesign"], bool] = field(compare=False)


@dataclass
class Finding:
    """A guideline violation found by the audit."""

    guideline: Guideline
    detail: str

    @property
    def serious(self) -> bool:
        return self.guideline.severity is Severity.SERIOUS


@dataclass
class ApplicationDesign:
    """Structural description of an application, for auditing.

    Attributes
    ----------
    user_selectable_roles:
        Service roles the end user can point at an alternative provider
        (the mail system's SMTP and POP servers are the paper's example).
    fixed_roles:
        Roles hard-wired to one provider (no choice).
    third_parties:
        Mediator roles the application involves (certificates,
        reputation, payment).
    third_parties_selectable:
        Whether the user can choose *which* third parties mediate.
    supports_encryption / encryption_user_controlled:
        Can the data be end-to-end encrypted, and does the *user* decide?
    reports_failures:
        Does the application surface interference/failures usefully?
    interfaces_open:
        Are the protocols between components open and well-specified?
    value_flow_designed:
        If the application needs compensation to flow, is there a
        mechanism for it?
    needs_value_flow:
        Whether the application economically requires compensation at all.
    preconfigured_defaults:
        Whether naive users get working defaults despite all the choice
        ("for naive users, choice may be a burden, not a blessing").
    """

    name: str
    user_selectable_roles: Set[str] = field(default_factory=set)
    fixed_roles: Set[str] = field(default_factory=set)
    third_parties: Set[str] = field(default_factory=set)
    third_parties_selectable: bool = True
    supports_encryption: bool = False
    encryption_user_controlled: bool = False
    reports_failures: bool = False
    interfaces_open: bool = True
    value_flow_designed: bool = False
    needs_value_flow: bool = False
    preconfigured_defaults: bool = False

    def all_roles(self) -> Set[str]:
        return self.user_selectable_roles | self.fixed_roles


def _choice_of_services(design: ApplicationDesign) -> bool:
    # "Protocols must permit all the parties to express choice" — every
    # service role should be user-selectable.
    return not design.fixed_roles


def _third_party_choice(design: ApplicationDesign) -> bool:
    return not design.third_parties or design.third_parties_selectable


def _encryption_available(design: ApplicationDesign) -> bool:
    return design.supports_encryption


def _encryption_user_controlled(design: ApplicationDesign) -> bool:
    return not design.supports_encryption or design.encryption_user_controlled


def _failure_reporting(design: ApplicationDesign) -> bool:
    return design.reports_failures


def _open_interfaces(design: ApplicationDesign) -> bool:
    return design.interfaces_open


def _value_flow(design: ApplicationDesign) -> bool:
    return not design.needs_value_flow or design.value_flow_designed


def _defaults_for_naive_users(design: ApplicationDesign) -> bool:
    if not design.user_selectable_roles and not design.third_parties:
        return True
    return design.preconfigured_defaults


#: The guideline catalogue, each citing the paper.
GUIDELINES: List[Guideline] = [
    Guideline(
        identifier="G1",
        title="Every service role is user-selectable",
        rationale=("'It is important that protocols be designed in such a "
                   "way that all the parties to an interaction have the "
                   "ability to express preference about which other parties "
                   "they interact with' (§IV-B)"),
        severity=Severity.SERIOUS,
        check=_choice_of_services,
    ),
    Guideline(
        identifier="G2",
        title="Third-party mediators are chosen by the user",
        rationale=("'There should be explicit ability to select what third "
                   "parties are used to mediate an interaction' (§V-B)"),
        severity=Severity.SERIOUS,
        check=_third_party_choice,
    ),
    Guideline(
        identifier="G3",
        title="End-to-end encryption is available",
        rationale=("'The ultimate defense of the end-to-end mode is "
                   "end-to-end encryption' (§VI-A)"),
        severity=Severity.SERIOUS,
        check=_encryption_available,
    ),
    Guideline(
        identifier="G4",
        title="The user controls whether data is encrypted",
        rationale=("'If the user has control over whether the data is "
                   "encrypted or not, the user can decide if the ISP "
                   "actions are a benefit or a hindrance' (§VI-A)"),
        severity=Severity.ADVISORY,
        check=_encryption_user_controlled,
    ),
    Guideline(
        identifier="G5",
        title="Failures of transparency are reported usefully",
        rationale=("'Failures of transparency will occur — design what "
                   "happens then... report the problem to the right person "
                   "in the right language' (§VI-A)"),
        severity=Severity.SERIOUS,
        check=_failure_reporting,
    ),
    Guideline(
        identifier="G6",
        title="Interfaces between components are open",
        rationale=("'Open interfaces have played a critical role in the "
                   "evolution of the Internet, by allowing for competition' "
                   "(§IV-C)"),
        severity=Severity.SERIOUS,
        check=_open_interfaces,
    ),
    Guideline(
        identifier="G7",
        title="If compensation must flow, a value-flow mechanism exists",
        rationale=("'Whatever the compensation, recognize that it must "
                   "flow, just as much as data must flow... If this value "
                   "flow requires a protocol, design it' (§IV-C)"),
        severity=Severity.SERIOUS,
        check=_value_flow,
    ),
    Guideline(
        identifier="G8",
        title="Naive users get working defaults despite the choice",
        rationale=("'For naive users, choice may be a burden, not a "
                   "blessing... parties that provide pre-configured "
                   "software relieve the user of the details of choice' "
                   "(§IV-B)"),
        severity=Severity.ADVISORY,
        check=_defaults_for_naive_users,
    ),
]


def audit(design: ApplicationDesign) -> List[Finding]:
    """Audit a design against every guideline; returns violations only."""
    findings: List[Finding] = []
    for guideline in GUIDELINES:
        if not guideline.check(design):
            findings.append(Finding(
                guideline=guideline,
                detail=f"{design.name!r} violates {guideline.identifier}: "
                       f"{guideline.title}",
            ))
    return findings


def tussle_readiness_grade(design: ApplicationDesign) -> str:
    """Letter grade: A (clean) .. F (multiple serious violations)."""
    findings = audit(design)
    serious = sum(1 for f in findings if f.serious)
    advisory = len(findings) - serious
    if serious == 0 and advisory == 0:
        return "A"
    if serious == 0:
        return "B"
    if serious == 1:
        return "C"
    if serious == 2:
        return "D"
    return "F"


__all__.append("tussle_readiness_grade")
