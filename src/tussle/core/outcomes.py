"""Welfare accounting across tussle outcomes.

Utilities for comparing runs: per-stakeholder surplus ledgers, Pareto
comparisons between outcome states, and the variation-of-outcome measure
behind "the outcome can be different in different places" (§IV) — a
design for tussle should *admit* heterogeneous settlements, which
:func:`outcome_diversity` quantifies across a set of runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import math

from ..errors import TussleError
from .simulator import TussleOutcome

__all__ = [
    "WelfareLedger",
    "pareto_dominates",
    "outcome_diversity",
    "compare_outcomes",
]


class WelfareLedger:
    """Accumulates per-party surplus over a scenario."""

    def __init__(self) -> None:
        self._surplus: Dict[str, float] = {}

    def credit(self, party: str, amount: float) -> None:
        self._surplus[party] = self._surplus.get(party, 0.0) + amount

    def debit(self, party: str, amount: float) -> None:
        self.credit(party, -amount)

    def surplus(self, party: str) -> float:
        return self._surplus.get(party, 0.0)

    def total(self) -> float:
        return sum(self._surplus.values())

    def parties(self) -> List[str]:
        return sorted(self._surplus)

    def as_row(self) -> Dict[str, float]:
        row = {party: self._surplus[party] for party in self.parties()}
        row["__total__"] = self.total()
        return row


def pareto_dominates(a: Mapping[str, float], b: Mapping[str, float]) -> bool:
    """Does utility profile ``a`` Pareto-dominate ``b``?

    Requires the same parties in both profiles: everyone at least as well
    off, someone strictly better.
    """
    if set(a) != set(b):
        raise TussleError("profiles must cover the same parties")
    at_least = all(a[k] >= b[k] - 1e-12 for k in a)
    strictly = any(a[k] > b[k] + 1e-12 for k in a)
    return at_least and strictly


def outcome_diversity(states: Sequence[Mapping[str, float]]) -> float:
    """Variation of outcome across runs/places (mean per-variable stdev).

    "Design for tussle — for variation in outcome — so that the outcome
    can be different in different places." A rigid design yields 0 (every
    place ends identically); a design for choice yields positive
    diversity.
    """
    if len(states) < 2:
        return 0.0
    variables = sorted({v for state in states for v in state})
    if not variables:
        return 0.0
    total = 0.0
    for variable in variables:
        values = [state.get(variable, 0.0) for state in states]
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        total += math.sqrt(variance)
    return total / len(variables)


@dataclass
class OutcomeComparison:
    """Side-by-side of two tussle runs (e.g. rigid vs flexible design)."""

    label_a: str
    label_b: str
    survived: Tuple[bool, bool]
    integrity: Tuple[float, float]
    welfare: Tuple[float, float]
    workaround_fraction: Tuple[float, float]

    def winner(self) -> str:
        """Which run the paper's principles favour.

        Survival first, then integrity, then welfare.
        """
        score_a = (self.survived[0], self.integrity[0], self.welfare[0])
        score_b = (self.survived[1], self.integrity[1], self.welfare[1])
        if score_a == score_b:
            return "tie"
        return self.label_a if score_a > score_b else self.label_b


def compare_outcomes(label_a: str, outcome_a: TussleOutcome,
                     label_b: str, outcome_b: TussleOutcome) -> OutcomeComparison:
    """Build an :class:`OutcomeComparison` from two runs."""
    return OutcomeComparison(
        label_a=label_a,
        label_b=label_b,
        survived=(outcome_a.survived, outcome_b.survived),
        integrity=(outcome_a.final_integrity, outcome_b.final_integrity),
        welfare=(outcome_a.final_welfare, outcome_b.final_welfare),
        workaround_fraction=(outcome_a.workaround_fraction,
                             outcome_b.workaround_fraction),
    )


__all__.append("OutcomeComparison")
