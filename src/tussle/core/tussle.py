"""Tussle spaces: arenas where stakeholders and mechanisms meet.

A :class:`TussleSpace` bundles the state variables under contention, the
stakeholders who care about them, and the mechanisms (knobs and
workarounds) through which they act. It is the unit the simulator runs and
the unit the modularity principle isolates.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..errors import TussleError
from .mechanisms import Mechanism
from .stakeholders import Stakeholder, StakeholderKind

__all__ = ["TussleSpace"]


class TussleSpace:
    """A named arena of contention.

    Parameters
    ----------
    name:
        The arena ("economics", "trust", "openness", ...).
    initial_state:
        Starting values of the contested variables (conventionally in
        [0, 1]).
    """

    def __init__(self, name: str, initial_state: Optional[Mapping[str, float]] = None):
        self.name = name
        self.state: Dict[str, float] = dict(initial_state or {})
        self._stakeholders: Dict[str, Stakeholder] = {}
        self._mechanisms: Dict[str, Mechanism] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_stakeholder(self, stakeholder: Stakeholder) -> Stakeholder:
        if stakeholder.name in self._stakeholders:
            raise TussleError(f"duplicate stakeholder {stakeholder.name!r}")
        self._stakeholders[stakeholder.name] = stakeholder
        return stakeholder

    def add_mechanism(self, mechanism: Mechanism) -> Mechanism:
        if mechanism.name in self._mechanisms:
            raise TussleError(f"duplicate mechanism {mechanism.name!r}")
        if mechanism.variable not in self.state:
            self.state[mechanism.variable] = 0.5
        self._mechanisms[mechanism.name] = mechanism
        return mechanism

    def set_variable(self, variable: str, value: float) -> None:
        self.state[variable] = value

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def stakeholders(self) -> List[Stakeholder]:
        return [self._stakeholders[k] for k in sorted(self._stakeholders)]

    @property
    def mechanisms(self) -> List[Mechanism]:
        return [self._mechanisms[k] for k in sorted(self._mechanisms)]

    def stakeholder(self, name: str) -> Stakeholder:
        try:
            return self._stakeholders[name]
        except KeyError:
            raise TussleError(f"unknown stakeholder {name!r}") from None

    def mechanism(self, name: str) -> Mechanism:
        try:
            return self._mechanisms[name]
        except KeyError:
            raise TussleError(f"unknown mechanism {name!r}") from None

    def variables(self) -> List[str]:
        return sorted(self.state)

    def mechanisms_for(self, variable: str,
                       kind: Optional[StakeholderKind] = None) -> List[Mechanism]:
        """Mechanisms moving a variable, optionally usable by a kind."""
        result = []
        for mechanism in self.mechanisms:
            if mechanism.variable != variable:
                continue
            if kind is not None and not mechanism.controllable_by(kind):
                continue
            result.append(mechanism)
        return result

    # ------------------------------------------------------------------
    # Conflict structure
    # ------------------------------------------------------------------
    def contested_variables(self) -> List[str]:
        """Variables at least two stakeholders pull in different directions."""
        contested = []
        for variable in self.variables():
            targets = {
                round(s.interests[variable].target, 9)
                for s in self.stakeholders
                if s.cares_about(variable)
            }
            if len(targets) >= 2:
                contested.append(variable)
        return contested

    def conflict_intensity(self, variable: str) -> float:
        """Spread of weighted targets for a variable (0 = no conflict)."""
        entries = [
            (s.interests[variable].target, s.interests[variable].weight)
            for s in self.stakeholders
            if s.cares_about(variable)
        ]
        if len(entries) < 2:
            return 0.0
        targets = [t for t, _ in entries]
        weights = [w for _, w in entries]
        spread = max(targets) - min(targets)
        return spread * (sum(weights) / len(weights))

    def total_welfare(self) -> float:
        """Sum of stakeholder utilities at the current state."""
        return sum(s.utility(self.state) for s in self.stakeholders)
