"""The paper's design principles as measurable quantities.

* :func:`isolation_score` — "modularize along tussle boundaries": 1 when
  every tussle space is confined to its own modules and no module mixes
  contested and uncontested functions;
* :func:`choice_index` — "design for choice": how many real alternatives
  each party has at each decision point;
* :func:`rigidity` — "design for variation in outcome": the fraction of
  tussle-relevant variables the design fixes rather than exposes;
* :func:`openness_score` — the open-interface fraction, split by
  plain-open vs tussle-aware interfaces.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Set

from ..errors import DesignError
from .design import Design
from .mechanisms import Mechanism

__all__ = [
    "isolation_score",
    "choice_index",
    "rigidity",
    "openness_score",
    "PrincipleScorecard",
    "scorecard",
]


def isolation_score(design: Design) -> float:
    """How well the design separates tussle spaces (in [0, 1]).

    Two penalties, averaged:

    * *entanglement* — functions sitting in more than one tussle space
      (the DNS trademark/machine-naming case);
    * *co-location* — modules mixing functions from different tussle
      spaces, or mixing contested with uncontested functions, so that a
      fight in one space shakes the other's machinery.

    A design with no contested functions scores 1.0 trivially.
    """
    functions = design.functions()
    contested = [f for f in functions if f.contested]
    if not contested:
        return 1.0

    entangled = sum(1 for f in contested if len(f.tussle_spaces) > 1)
    entanglement_penalty = entangled / len(contested)

    mixed_modules = 0
    modules_with_contested = 0
    for module in design.modules:
        spaces = module.tussle_spaces()
        if not spaces:
            continue
        modules_with_contested += 1
        has_uncontested = any(not f.contested for f in module.functions.values())
        if len(spaces) > 1 or has_uncontested:
            mixed_modules += 1
    colocation_penalty = (
        mixed_modules / modules_with_contested if modules_with_contested else 0.0
    )
    return 1.0 - (entanglement_penalty + colocation_penalty) / 2.0


def choice_index(alternatives: Mapping[str, int]) -> float:
    """Design-for-choice over decision points.

    ``alternatives`` maps each decision a party faces (pick SMTP server,
    pick route, pick mediator...) to the number of real alternatives. The
    index is the mean of ``1 - 1/n`` per decision: 0 when every decision
    has a single forced outcome, approaching 1 as alternatives abound.
    """
    if not alternatives:
        return 0.0
    total = 0.0
    for decision, count in alternatives.items():
        if count < 1:
            raise DesignError(
                f"decision {decision!r} must have at least 1 alternative"
            )
        total += 1.0 - 1.0 / count
    return total / len(alternatives)


def rigidity(mechanisms: Sequence[Mechanism],
             tussle_variables: Iterable[str]) -> float:
    """Fraction of tussle-relevant variables the design fails to expose.

    A variable is *exposed* when some mechanism moves it and that
    mechanism's allowed range is non-degenerate. "Rigid designs will be
    broken; designs that permit variation will flex under pressure and
    survive" — E09 sweeps exactly this quantity.
    """
    variables = sorted(set(tussle_variables))
    if not variables:
        return 0.0
    exposed: Set[str] = set()
    for mechanism in mechanisms:
        low, high = mechanism.allowed_range
        if high > low:
            exposed.add(mechanism.variable)
    unexposed = [v for v in variables if v not in exposed]
    return len(unexposed) / len(variables)


def openness_score(design: Design) -> Dict[str, float]:
    """Open and tussle-aware interface fractions of a design."""
    interfaces = design.interfaces
    if not interfaces:
        return {"open": 0.0, "tussle_aware": 0.0}
    open_count = sum(1 for i in interfaces if i.open_)
    aware_count = sum(1 for i in interfaces if i.tussle_aware)
    return {
        "open": open_count / len(interfaces),
        "tussle_aware": aware_count / len(interfaces),
    }


class PrincipleScorecard:
    """Bundled principle metrics for one design, printable as a table row."""

    def __init__(self, design_name: str, isolation: float, choice: float,
                 rigidity_value: float, open_fraction: float,
                 tussle_aware_fraction: float):
        self.design_name = design_name
        self.isolation = isolation
        self.choice = choice
        self.rigidity = rigidity_value
        self.open_fraction = open_fraction
        self.tussle_aware_fraction = tussle_aware_fraction

    def as_row(self) -> Dict[str, float]:
        return {
            "isolation": self.isolation,
            "choice": self.choice,
            "rigidity": self.rigidity,
            "open": self.open_fraction,
            "tussle_aware": self.tussle_aware_fraction,
        }

    def tussle_readiness(self) -> float:
        """A single headline number: mean of the pro-tussle metrics.

        Rigidity counts against; the rest count for.
        """
        return (
            self.isolation + self.choice + (1.0 - self.rigidity)
            + self.open_fraction + self.tussle_aware_fraction
        ) / 5.0


def scorecard(
    design: Design,
    mechanisms: Sequence[Mechanism],
    tussle_variables: Iterable[str],
    alternatives: Mapping[str, int],
) -> PrincipleScorecard:
    """Compute the full scorecard for a design + mechanism set."""
    openness = openness_score(design)
    return PrincipleScorecard(
        design_name=design.name,
        isolation=isolation_score(design),
        choice=choice_index(alternatives),
        rigidity_value=rigidity(mechanisms, tussle_variables),
        open_fraction=openness["open"],
        tussle_aware_fraction=openness["tussle_aware"],
    )
