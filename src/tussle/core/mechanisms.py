"""Mechanisms: the technology the tussle is fought with and over.

"Different parties adapt a mix of mechanisms to try to achieve their
conflicting goals, and others respond by adapting the mechanisms to push
back" (§I). A :class:`Mechanism` is a named control point over one state
variable; whether it is a *knob the design exposes* (variation designed
in) or a *workaround* (a move that distorts the design) is the heart of
the design-for-tussle principle.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from ..errors import TussleError
from .stakeholders import StakeholderKind

__all__ = ["MoveKind", "Mechanism", "Move"]


class MoveKind(Enum):
    """How a move relates to the design.

    WITHIN_DESIGN:
        Exercising a choice the design deliberately exposes ("the tussle
        takes place within the design").
    WORKAROUND:
        Distorting or violating the design (tunnels, overlays, DNS
        kludges); damages architectural integrity.
    EXTERNAL:
        Non-technical moves — laws, public opinion, market exit. They
        change state without touching the architecture.
    """

    WITHIN_DESIGN = "within-design"
    WORKAROUND = "workaround"
    EXTERNAL = "external"


@dataclass(frozen=True)
class Mechanism:
    """A control point over one state variable.

    Attributes
    ----------
    variable:
        The state variable this mechanism moves.
    controllers:
        Which stakeholder kinds can operate it. Protocols "must permit all
        the parties to express choice" — a variable only some parties can
        reach is itself a tussle statement.
    allowed_range:
        The variation the design permits; attempts outside it require a
        workaround.
    effectiveness:
        Fraction of the intended change a single move achieves (1.0 =
        full control).
    open_interface:
        Whether the mechanism's interface is open (replaceable,
        competitively supplied) — feeds the choice metrics.
    """

    name: str
    variable: str
    controllers: FrozenControllers = None  # type: ignore[assignment]
    allowed_range: Tuple[float, float] = (0.0, 1.0)
    effectiveness: float = 1.0
    open_interface: bool = True

    def __post_init__(self) -> None:
        low, high = self.allowed_range
        if low > high:
            raise TussleError(f"allowed_range inverted for {self.name!r}")
        if not 0.0 < self.effectiveness <= 1.0:
            raise TussleError(
                f"effectiveness must be in (0, 1], got {self.effectiveness}"
            )
        if self.controllers is None:
            object.__setattr__(self, "controllers", frozenset(StakeholderKind))
        elif not isinstance(self.controllers, frozenset):
            object.__setattr__(self, "controllers", frozenset(self.controllers))

    def controllable_by(self, kind: StakeholderKind) -> bool:
        return kind in self.controllers

    def clamp(self, value: float) -> float:
        low, high = self.allowed_range
        return min(high, max(low, value))

    def permits(self, value: float) -> bool:
        low, high = self.allowed_range
        return low <= value <= high


# Typing helper: a frozenset of StakeholderKind or None at construction.
FrozenControllers = Optional[frozenset]


@dataclass(frozen=True)
class Move:
    """One adaptation by one stakeholder."""

    actor: str
    variable: str
    new_value: float
    kind: MoveKind
    mechanism: Optional[str] = None
    round_index: int = 0

    @property
    def within_design(self) -> bool:
        return self.kind is MoveKind.WITHIN_DESIGN
