"""Spillover: damage a tussle inflicts outside its own space.

"Doing this allows a tussle to be played out with minimal distortion of
other aspects of the system's function" (§IV-A) — so the quality of a
modularization is measured by how much a fight in one tussle space breaks
functions that are *not* in that space.

:func:`spillover_from_event` computes structural spillover on a
:class:`~tussle.core.design.Design`; :func:`dns_spillover` runs the E08
scenario end-to-end on the two name-system designs from
:mod:`tussle.netsim.dns`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..errors import DesignError
from ..netsim.dns import DisputeOutcome, NameSystem
from .design import Design

__all__ = ["SpilloverReport", "spillover_from_event", "dns_spillover", "DnsScenarioResult"]


@dataclass
class SpilloverReport:
    """Structural spillover of one tussle event on a design.

    ``direct`` counts functions inside the contested space (legitimate
    battleground); ``collateral`` counts functions outside it that live in
    affected modules (innocent bystanders). ``ratio`` is collateral per
    direct — 0 for a perfectly modularized design.
    """

    space: str
    direct: int
    collateral: int
    affected_modules: List[str]

    @property
    def ratio(self) -> float:
        if self.direct == 0:
            return 0.0
        return self.collateral / self.direct


def spillover_from_event(design: Design, space: str) -> SpilloverReport:
    """Structural spillover of a dispute in ``space``.

    The event disables every module containing a function in the space;
    all functions in those modules stop working. Functions not in the
    space that stop anyway are collateral.
    """
    affected_modules = design.modules_touching_space(space)
    direct = 0
    collateral = 0
    for module in affected_modules:
        for function in module.functions.values():
            if space in function.tussle_spaces:
                direct += 1
            else:
                collateral += 1
    if direct == 0:
        raise DesignError(f"no function in design participates in space {space!r}")
    return SpilloverReport(
        space=space,
        direct=direct,
        collateral=collateral,
        affected_modules=[m.name for m in affected_modules],
    )


@dataclass
class DnsScenarioResult:
    """E08 end-to-end result for one name-system design."""

    design_name: str
    names_registered: int
    disputes: int
    human_name_breakage: int       # human names that stopped resolving
    service_breakage: int          # dependent services knocked out
    machine_bindings_broken: int   # identifier/machine-level bindings broken

    @property
    def collateral_rate(self) -> float:
        """Broken bystander services per dispute."""
        if self.disputes == 0:
            return 0.0
        return self.service_breakage / self.disputes


def dns_spillover(
    system: NameSystem,
    n_names: int = 20,
    n_dependents_per_name: int = 3,
    dispute_fraction: float = 0.3,
    seed: int = 0,
) -> DnsScenarioResult:
    """Run the trademark-dispute workload on a name system (E08).

    Registers ``n_names`` human names each carrying dependents, disputes a
    seeded random fraction of them (transfer or freeze), and counts the
    damage. The entangled design breaks dependents; the separated design
    confines breakage to the directory.
    """
    rng = random.Random(seed)
    names = [f"brand{i}" for i in range(n_names)]
    for i, name in enumerate(names):
        system.register(name, holder=f"holder{i}", machine=f"machine{i}")
        for j in range(n_dependents_per_name):
            system.add_dependent(name, f"{name}-service{j}")  # type: ignore[attr-defined]

    n_disputes = int(n_names * dispute_fraction)
    disputed = rng.sample(names, n_disputes)
    for name in disputed:
        outcome = rng.choice([DisputeOutcome.TRANSFERRED, DisputeOutcome.FROZEN])
        system.dispute(name, challenger=f"trademark-holder-of-{name}", outcome=outcome)

    human_breakage = sum(
        1 for i, name in enumerate(names)
        if system.resolve(name) != f"machine{i}"
    )
    service_breakage = len(system.collateral_services())  # type: ignore[attr-defined]
    return DnsScenarioResult(
        design_name=type(system).__name__,
        names_registered=n_names,
        disputes=n_disputes,
        human_name_breakage=human_breakage,
        service_breakage=service_breakage,
        machine_bindings_broken=system.machine_bindings_broken(),
    )
