"""Coupled tussle spaces: dynamic spillover through shared modules.

§IV-A's isolation principle is about *dynamics*, not just structure:
"Functions that are within a tussle space should be logically separated
from functions outside of that space... Doing this allows a tussle to be
played out with minimal distortion of other aspects of the system's
function."

:class:`MultiSpaceSimulator` runs several :class:`~tussle.core.tussle.TussleSpace`
arenas side by side over a shared :class:`~tussle.core.design.Design`.
Each space is hosted by the design module(s) implementing it. Workaround
damage is *local to the module*: a workaround in space S degrades the
integrity of S's module — and therefore of **every space co-located with
S** — while spaces in their own modules are untouched. Comparing a
co-located layout against a separated one turns the modularity principle
into a measured welfare difference (experiment X04).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..errors import DesignError, TussleError
from .design import Design
from .mechanisms import MoveKind
from .simulator import TussleSimulator
from .tussle import TussleSpace

__all__ = ["SpaceRecord", "MultiSpaceResult", "MultiSpaceSimulator"]


@dataclass
class SpaceRecord:
    """Per-space outcome of a coupled run."""

    space: str
    module: str
    own_workarounds: int
    final_integrity: float
    final_welfare: float
    broken: bool


@dataclass
class MultiSpaceResult:
    """Outcome of a multi-space run."""

    records: List[SpaceRecord] = field(default_factory=list)

    def record_for(self, space: str) -> SpaceRecord:
        for record in self.records:
            if record.space == space:
                return record
        raise TussleError(f"no record for space {space!r}")

    def collateral_breakage(self) -> List[str]:
        """Spaces broken without making a single workaround of their own."""
        return [r.space for r in self.records
                if r.broken and r.own_workarounds == 0]


class MultiSpaceSimulator:
    """Run several tussle spaces whose integrity is shared per module.

    Parameters
    ----------
    design:
        The modular decomposition; each space is assigned to the module
        given in ``placement``.
    spaces:
        The arenas to run.
    placement:
        space name -> module name hosting it. Spaces sharing a module
        share an integrity pool (that is the coupling).
    workaround_damage / integrity_floor:
        As in :class:`~tussle.core.simulator.TussleSimulator`; damage is
        applied to the hosting module's pool.
    """

    def __init__(
        self,
        design: Design,
        spaces: Sequence[TussleSpace],
        placement: Mapping[str, str],
        workaround_damage: float = 0.06,
        integrity_floor: float = 0.5,
    ):
        self.design = design
        self.spaces = {space.name: space for space in spaces}
        if len(self.spaces) != len(spaces):
            raise TussleError("space names must be unique")
        self.placement: Dict[str, str] = {}
        for space_name in self.spaces:
            if space_name not in placement:
                raise DesignError(f"space {space_name!r} has no module placement")
            module = placement[space_name]
            design.module(module)  # validates existence
            self.placement[space_name] = module
        self.workaround_damage = workaround_damage
        self.integrity_floor = integrity_floor
        self.module_integrity: Dict[str, float] = {
            module: 1.0 for module in sorted(set(self.placement.values()))
        }
        self._simulators: Dict[str, TussleSimulator] = {
            name: TussleSimulator(space, workaround_damage=0.0,
                                  integrity_floor=0.0)
            for name, space in self.spaces.items()
        }
        self._workarounds: Dict[str, int] = {name: 0 for name in self.spaces}

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def step(self) -> None:
        """One round in every space; workaround damage hits the module."""
        for name in sorted(self.spaces):
            module = self.placement[name]
            if self.module_integrity[module] < self.integrity_floor:
                continue  # this module's spaces are broken; nothing runs
            record = self._simulators[name].step()
            workarounds = sum(
                1 for move in record.moves if move.kind is MoveKind.WORKAROUND
            )
            self._workarounds[name] += workarounds
            if workarounds:
                self.module_integrity[module] = max(
                    0.0,
                    self.module_integrity[module]
                    - workarounds * self.workaround_damage,
                )

    def run(self, rounds: int) -> MultiSpaceResult:
        for _ in range(rounds):
            self.step()
        result = MultiSpaceResult()
        for name in sorted(self.spaces):
            module = self.placement[name]
            integrity = self.module_integrity[module]
            result.records.append(SpaceRecord(
                space=name,
                module=module,
                own_workarounds=self._workarounds[name],
                final_integrity=integrity,
                final_welfare=self.spaces[name].total_welfare(),
                broken=integrity < self.integrity_floor,
            ))
        return result
