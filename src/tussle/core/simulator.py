"""The tussle simulator: adaptation, counter-adaptation, and survival.

The core loop implements the paper's definition of tussle: "Different
parties adapt a mix of mechanisms to try to achieve their conflicting
goals, and others respond by adapting the mechanisms to push back" (§I).

Each round, every stakeholder (in deterministic order) considers one
move:

* a **within-design** move — use a mechanism it controls to pull the
  variable toward its target, limited to the mechanism's allowed range.
  Costless to the architecture: this is "tussle within the design";
* a **workaround** — when the design gives it no (or insufficient) knob,
  a capable stakeholder can still force part of the change outside the
  design (tunnel, overlay, kludge). Workarounds cost the actor
  ``workaround_cost`` and inflict ``workaround_damage`` on architectural
  *integrity*;
* **no move** when neither improves its utility net of costs.

A design is **broken** when integrity falls below ``integrity_floor`` —
"rigid designs will be broken" — while a flexible design absorbs the same
pressure as endless but harmless in-design adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.runtime import current as _obs_current
from .mechanisms import Move, MoveKind
from .stakeholders import Stakeholder
from .tussle import TussleSpace

__all__ = ["RoundRecord", "TussleOutcome", "TussleSimulator"]

#: Minimum utility gain for a move to be worth making.
GAIN_EPSILON = 1e-6


@dataclass
class RoundRecord:
    """What happened in one simulator round."""

    index: int
    moves: List[Move]
    integrity: float
    welfare: float
    state: Dict[str, float]

    @property
    def quiet(self) -> bool:
        """No stakeholder moved — a (possibly temporary) settlement."""
        return not self.moves


@dataclass
class TussleOutcome:
    """Summary of a full simulation run."""

    rounds_run: int
    broken: bool
    broken_at: Optional[int]
    settled: bool
    settled_at: Optional[int]
    final_integrity: float
    final_welfare: float
    total_moves: int
    total_workarounds: int
    history: List[RoundRecord] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        return not self.broken

    @property
    def workaround_fraction(self) -> float:
        if self.total_moves == 0:
            return 0.0
        return self.total_workarounds / self.total_moves


class TussleSimulator:
    """Round-based tussle over one :class:`TussleSpace`.

    Parameters
    ----------
    space:
        The arena (mutated in place).
    workaround_damage:
        Integrity lost per workaround move.
    workaround_effectiveness:
        Fraction of the desired change a workaround achieves.
    integrity_floor:
        Below this, the design is broken and the run stops.
    settle_rounds:
        Consecutive quiet rounds after which the tussle is declared
        settled (note the paper expects many tussles never to settle).
    """

    def __init__(
        self,
        space: TussleSpace,
        workaround_damage: float = 0.06,
        workaround_effectiveness: float = 0.6,
        integrity_floor: float = 0.5,
        settle_rounds: int = 3,
    ):
        self.space = space
        self.workaround_damage = workaround_damage
        self.workaround_effectiveness = workaround_effectiveness
        self.integrity_floor = integrity_floor
        self.settle_rounds = settle_rounds
        self.integrity = 1.0
        self.history: List[RoundRecord] = []
        ctx = _obs_current()
        self._trace = ctx.tracer if ctx.tracer.enabled else None
        if ctx.metrics.enabled:
            scope = ctx.metrics.scope("core.simulator")
            self._c_rounds = scope.counter("rounds")
            self._c_moves = scope.counter("moves")
            self._c_workarounds = scope.counter("workarounds")
            self._g_integrity = scope.gauge("integrity")
        else:
            self._c_rounds = None
            self._c_moves = None
            self._c_workarounds = None
            self._g_integrity = None

    # ------------------------------------------------------------------
    # Move selection
    # ------------------------------------------------------------------
    def _choose_moves(self, stakeholder: Stakeholder, round_index: int) -> List[Move]:
        """The stakeholder's moves this round — one per improvable variable.

        The paper: parties "adapt a mix of mechanisms" — so a stakeholder
        adjusts every variable it can profitably move, preferring the
        design's own knobs and falling back to a workaround only when the
        design offers no (sufficient) variation.
        """
        state = self.space.state
        moves: List[Move] = []

        for variable in sorted(stakeholder.interests):
            interest = stakeholder.interests[variable]
            if interest.weight <= 0 or variable not in state:
                continue
            current = state[variable]
            target = interest.target
            if abs(current - target) < GAIN_EPSILON:
                continue

            best: Optional[Tuple[float, Move]] = None
            baseline = interest.dissatisfaction(current)

            # Within-design option: the best mechanism this party controls.
            for mechanism in self.space.mechanisms_for(variable, stakeholder.kind):
                reachable = mechanism.clamp(target)
                achieved = current + (reachable - current) * mechanism.effectiveness
                gain = baseline - interest.dissatisfaction(achieved)
                if gain > GAIN_EPSILON and (best is None or gain > best[0]):
                    best = (gain, Move(
                        actor=stakeholder.name,
                        variable=variable,
                        new_value=achieved,
                        kind=MoveKind.WITHIN_DESIGN,
                        mechanism=mechanism.name,
                        round_index=round_index,
                    ))

            # Workaround option: force partial change outside the design.
            if stakeholder.can_workaround:
                achieved = current + (target - current) * self.workaround_effectiveness
                gain = (baseline - interest.dissatisfaction(achieved)
                        - stakeholder.workaround_cost)
                if gain > GAIN_EPSILON and (best is None or gain > best[0]):
                    best = (gain, Move(
                        actor=stakeholder.name,
                        variable=variable,
                        new_value=achieved,
                        kind=MoveKind.WORKAROUND,
                        mechanism=None,
                        round_index=round_index,
                    ))
            if best is not None:
                moves.append(best[1])
        return moves

    def _apply(self, move: Move, stakeholder: Stakeholder) -> None:
        self.space.state[move.variable] = move.new_value
        stakeholder.moves_made += 1
        if move.kind is MoveKind.WORKAROUND:
            stakeholder.workarounds_made += 1
            stakeholder.total_move_costs += stakeholder.workaround_cost
            self.integrity = max(0.0, self.integrity - self.workaround_damage)

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def step(self) -> RoundRecord:
        """One round: every stakeholder gets one adaptation opportunity."""
        index = len(self.history)
        span = (self._trace.begin("core.simulator", "round", float(index))
                if self._trace is not None else None)
        moves: List[Move] = []
        for stakeholder in self.space.stakeholders:
            for move in self._choose_moves(stakeholder, index):
                self._apply(move, stakeholder)
                moves.append(move)
                if self._trace is not None:
                    self._trace.event(
                        "core.simulator", "move", float(index),
                        actor=move.actor, variable=move.variable,
                        kind=move.kind.name.lower(),
                        mechanism=move.mechanism)
        workarounds = sum(1 for m in moves if m.kind is MoveKind.WORKAROUND)
        if self._c_rounds is not None:
            self._c_rounds.inc()
            self._c_moves.inc(len(moves))
            self._c_workarounds.inc(workarounds)
            self._g_integrity.set(self.integrity)
        if span is not None:
            span.end(float(index + 1), moves=len(moves),
                     workarounds=workarounds, integrity=self.integrity)
        record = RoundRecord(
            index=index,
            moves=moves,
            integrity=self.integrity,
            welfare=self.space.total_welfare(),
            state=dict(self.space.state),
        )
        self.history.append(record)
        return record

    def run(self, rounds: int) -> TussleOutcome:
        """Run up to ``rounds`` rounds; stop early on breakage/settlement."""
        broken_at: Optional[int] = None
        settled_at: Optional[int] = None
        quiet_streak = 0
        for _ in range(rounds):
            record = self.step()
            if record.quiet:
                quiet_streak += 1
                if quiet_streak >= self.settle_rounds and settled_at is None:
                    settled_at = record.index
                    break
            else:
                quiet_streak = 0
            if self.integrity < self.integrity_floor:
                broken_at = record.index
                break

        total_moves = sum(len(r.moves) for r in self.history)
        total_workarounds = sum(
            1 for r in self.history for m in r.moves
            if m.kind is MoveKind.WORKAROUND
        )
        return TussleOutcome(
            rounds_run=len(self.history),
            broken=broken_at is not None,
            broken_at=broken_at,
            settled=settled_at is not None,
            settled_at=settled_at,
            final_integrity=self.integrity,
            final_welfare=self.space.total_welfare(),
            total_moves=total_moves,
            total_workarounds=total_workarounds,
            history=list(self.history),
        )
