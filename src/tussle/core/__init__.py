"""The paper's primary contribution, made executable.

Stakeholders with conflicting interests, mechanisms as control points,
tussle spaces, the round-based adaptation simulator, the design principles
(tussle isolation, design for choice, rigidity, openness) as metrics,
spillover measurement, and welfare accounting.
"""

from .stakeholders import Interest, Stakeholder, StakeholderKind
from .mechanisms import Mechanism, Move, MoveKind
from .tussle import TussleSpace
from .design import Design, Function, Interface, Module
from .principles import (
    PrincipleScorecard,
    choice_index,
    isolation_score,
    openness_score,
    rigidity,
    scorecard,
)
from .spillover import (
    DnsScenarioResult,
    SpilloverReport,
    dns_spillover,
    spillover_from_event,
)
from .simulator import RoundRecord, TussleOutcome, TussleSimulator
from .outcomes import (
    OutcomeComparison,
    WelfareLedger,
    compare_outcomes,
    outcome_diversity,
    pareto_dominates,
)
from .catalog import economics_space, openness_space, trust_space
from .coupling import MultiSpaceResult, MultiSpaceSimulator, SpaceRecord
from .guidelines import (
    GUIDELINES,
    ApplicationDesign,
    Finding,
    Guideline,
    Severity,
    audit,
    tussle_readiness_grade,
)

__all__ = [
    "Interest", "Stakeholder", "StakeholderKind",
    "Mechanism", "Move", "MoveKind",
    "TussleSpace",
    "Design", "Function", "Interface", "Module",
    "PrincipleScorecard", "choice_index", "isolation_score",
    "openness_score", "rigidity", "scorecard",
    "DnsScenarioResult", "SpilloverReport", "dns_spillover",
    "spillover_from_event",
    "RoundRecord", "TussleOutcome", "TussleSimulator",
    "OutcomeComparison", "WelfareLedger", "compare_outcomes",
    "outcome_diversity", "pareto_dominates",
    "GUIDELINES", "ApplicationDesign", "Finding", "Guideline", "Severity",
    "audit", "tussle_readiness_grade",
    "MultiSpaceResult", "MultiSpaceSimulator", "SpaceRecord",
    "economics_space", "openness_space", "trust_space",
]
