"""A catalogue of ready-made tussle spaces from the paper's §V.

Each constructor assembles the stakeholders, interests and mechanisms of
one of the paper's headline tussle spaces, so library users can run the
simulator on a faithful arena in three lines:

>>> from tussle.core.catalog import economics_space
>>> from tussle.core import TussleSimulator
>>> outcome = TussleSimulator(economics_space()).run(40)

Variables are normalized to [0, 1]; docstrings state what each endpoint
means. Every stakeholder's targets and weights are drawn from the
corresponding prose of the paper and noted inline.
"""

from __future__ import annotations

from .mechanisms import Mechanism
from .stakeholders import Stakeholder, StakeholderKind
from .tussle import TussleSpace

__all__ = ["economics_space", "trust_space", "openness_space"]


def economics_space(flexible: bool = True) -> TussleSpace:
    """The §V-A economics arena.

    Variables:

    * ``price-level`` — 0 = marginal-cost pricing, 1 = monopoly pricing;
    * ``switching-ease`` — 0 = locked in (static addressing), 1 = free to
      move (DHCP/DDNS, portable identity);
    * ``usage-restrictions`` — 0 = none, 1 = heavy tiering/AUP policing.

    Consumers want low prices, high mobility and no restrictions;
    providers the reverse ("they look at the user, and each other, as a
    customer and a source of revenue"). With ``flexible=False`` the
    design pins the knobs — the pre-competition world.
    """
    full = (0.0, 1.0) if flexible else (0.5, 0.5)
    space = TussleSpace("economics", initial_state={
        "price-level": 0.5,
        "switching-ease": 0.5,
        "usage-restrictions": 0.5,
    })
    space.add_mechanism(Mechanism(name="pricing", variable="price-level",
                                  allowed_range=full))
    space.add_mechanism(Mechanism(name="portability",
                                  variable="switching-ease",
                                  allowed_range=full))
    space.add_mechanism(Mechanism(name="acceptable-use",
                                  variable="usage-restrictions",
                                  allowed_range=full))

    consumers = Stakeholder("consumers", StakeholderKind.USER,
                            workaround_cost=0.1)
    consumers.add_interest("price-level", target=0.0, weight=1.0)
    consumers.add_interest("switching-ease", target=1.0, weight=0.8)
    consumers.add_interest("usage-restrictions", target=0.0, weight=0.6)
    space.add_stakeholder(consumers)

    providers = Stakeholder("providers", StakeholderKind.COMMERCIAL_ISP,
                            workaround_cost=0.1)
    providers.add_interest("price-level", target=1.0, weight=1.0)
    providers.add_interest("switching-ease", target=0.0, weight=0.8)
    providers.add_interest("usage-restrictions", target=1.0, weight=0.6)
    space.add_stakeholder(providers)
    return space


def trust_space(flexible: bool = True) -> TussleSpace:
    """The §V-B trust arena.

    Variables:

    * ``transparency`` — 0 = "that which is not permitted is forbidden",
      1 = transparent packet carriage;
    * ``anonymity`` — 0 = mandatory strong identity, 1 = free anonymity;
    * ``interception`` — 0 = no third-party observation, 1 = pervasive
      wiretap.

    Users want protection *and* privacy (moderate transparency, high
    anonymity, no interception); governments want accountability and
    observability; the "bad guys" want maximal transparency and
    anonymity — which is exactly why the space is contested.
    """
    full = (0.0, 1.0) if flexible else (0.5, 0.5)
    space = TussleSpace("trust", initial_state={
        "transparency": 0.8,
        "anonymity": 0.8,
        "interception": 0.1,
    })
    for name, variable in (("firewalling", "transparency"),
                           ("identity-regime", "anonymity"),
                           ("lawful-intercept", "interception")):
        space.add_mechanism(Mechanism(name=name, variable=variable,
                                      allowed_range=full))

    users = Stakeholder("users", StakeholderKind.USER, workaround_cost=0.1)
    users.add_interest("transparency", target=0.6, weight=0.8)
    users.add_interest("anonymity", target=0.8, weight=0.7)
    users.add_interest("interception", target=0.0, weight=1.0)
    space.add_stakeholder(users)

    government = Stakeholder("government", StakeholderKind.GOVERNMENT,
                             workaround_cost=0.05)
    government.add_interest("anonymity", target=0.1, weight=0.9)
    government.add_interest("interception", target=0.8, weight=1.0)
    space.add_stakeholder(government)

    bad_guys = Stakeholder("bad-guys", StakeholderKind.USER,
                           workaround_cost=0.02)
    bad_guys.add_interest("transparency", target=1.0, weight=0.5)
    bad_guys.add_interest("anonymity", target=1.0, weight=1.0)
    space.add_stakeholder(bad_guys)
    return space


def openness_space(flexible: bool = True) -> TussleSpace:
    """The §V-C openness arena.

    Variables:

    * ``interface-openness`` — 0 = closed/proprietary, 1 = open and
      well-specified;
    * ``vertical-integration`` — 0 = unbundled, 1 = fully bundled
      infrastructure + services;
    * ``innovation-barrier`` — 0 = new applications deploy freely, 1 =
      the network is tailored to incumbent applications.

    Incumbent providers "may long for a return to those less open, high
    margin days"; innovators and users need the net open for the
    unproven idea.
    """
    full = (0.0, 1.0) if flexible else (0.5, 0.5)
    space = TussleSpace("openness", initial_state={
        "interface-openness": 0.7,
        "vertical-integration": 0.3,
        "innovation-barrier": 0.2,
    })
    for name, variable in (("interface-specs", "interface-openness"),
                           ("bundling", "vertical-integration"),
                           ("deployment-friction", "innovation-barrier")):
        space.add_mechanism(Mechanism(name=name, variable=variable,
                                      allowed_range=full))

    incumbents = Stakeholder("incumbents", StakeholderKind.COMMERCIAL_ISP,
                             workaround_cost=0.1)
    incumbents.add_interest("interface-openness", target=0.2, weight=0.8)
    incumbents.add_interest("vertical-integration", target=0.9, weight=1.0)
    incumbents.add_interest("innovation-barrier", target=0.6, weight=0.4)
    space.add_stakeholder(incumbents)

    innovators = Stakeholder("innovators", StakeholderKind.CONTENT_PROVIDER,
                             workaround_cost=0.1)
    innovators.add_interest("interface-openness", target=1.0, weight=1.0)
    innovators.add_interest("innovation-barrier", target=0.0, weight=1.0)
    space.add_stakeholder(innovators)

    users = Stakeholder("users", StakeholderKind.USER, workaround_cost=0.15)
    users.add_interest("vertical-integration", target=0.0, weight=0.6)
    users.add_interest("innovation-barrier", target=0.0, weight=0.8)
    space.add_stakeholder(users)
    return space
