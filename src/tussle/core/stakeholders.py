"""Stakeholders: the contending parties of the tussle.

"At a minimum these players include users... commercial ISPs... private
sector network providers... governments... intellectual property rights
holders... and providers of content and higher level services" (§I).

A stakeholder has *interests* — weighted targets over named state
variables — and a utility that falls with distance from those targets.
The tussle simulator (:mod:`tussle.core.simulator`) has stakeholders adapt
the mechanisms available to them to pull state toward their targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping

from ..errors import TussleError

__all__ = ["StakeholderKind", "Interest", "Stakeholder"]


class StakeholderKind(Enum):
    """The paper's stakeholder taxonomy (§I)."""

    USER = "user"
    COMMERCIAL_ISP = "commercial-isp"
    PRIVATE_NETWORK_PROVIDER = "private-network-provider"
    GOVERNMENT = "government"
    RIGHTS_HOLDER = "rights-holder"
    CONTENT_PROVIDER = "content-provider"
    DESIGNER = "designer"
    THIRD_PARTY = "third-party"


@dataclass(frozen=True)
class Interest:
    """A weighted target for one state variable.

    ``target`` is where this stakeholder wants the variable (in the
    variable's own units, conventionally [0, 1]); ``weight`` is how much
    they care.
    """

    variable: str
    target: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise TussleError(f"interest weight must be >= 0, got {self.weight}")

    def dissatisfaction(self, value: float) -> float:
        """Weighted distance from target."""
        return self.weight * abs(value - self.target)


@dataclass
class Stakeholder:
    """A party to the tussle.

    Attributes
    ----------
    interests:
        variable name -> :class:`Interest`.
    workaround_cost:
        Per-move cost this stakeholder pays to act *outside* the design
        (tunnel, overlay, kludge). High for naive users, low for
        sophisticated ones.
    can_workaround:
        Whether the stakeholder has workarounds at all; the paper notes
        "most individual players' inability to make technical
        modifications" as a stabilizer.
    """

    name: str
    kind: StakeholderKind
    interests: Dict[str, Interest] = field(default_factory=dict)
    workaround_cost: float = 0.3
    can_workaround: bool = True
    total_move_costs: float = 0.0
    moves_made: int = 0
    workarounds_made: int = 0

    def add_interest(self, variable: str, target: float, weight: float = 1.0) -> None:
        self.interests[variable] = Interest(variable=variable, target=target,
                                            weight=weight)

    def utility(self, state: Mapping[str, float]) -> float:
        """Negative weighted dissatisfaction over all interests.

        Missing state variables count at maximal distance 1.0.
        """
        total = 0.0
        for variable, interest in self.interests.items():
            if variable in state:
                total += interest.dissatisfaction(state[variable])
            else:
                total += interest.weight * 1.0
        return -total

    def cares_about(self, variable: str) -> bool:
        return variable in self.interests and self.interests[variable].weight > 0
