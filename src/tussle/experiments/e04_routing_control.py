"""E04 — Who controls the route: provider vs user (§V-A-4).

Paper claims:

* provider control (BGP) won historically; under it the user has exactly
  one path per destination and no say in it;
* "source routes do not work effectively today" because transit ISPs get
  no benefit from carrying them — without payment, user routing fails;
* "the design for provider-level source routing must incorporate a
  recognition of the need for payment" — with payment, user choice works
  and providers earn revenue;
* overlays give users path choice without provider cooperation, but
  create "economic distortion" (uncompensated transit).

Workload: a seeded hierarchical AS graph. We compare four regimes on the
same stub-to-stub traffic: BGP only; source routing without payment;
source routing with payment; overlay over BGP.
"""

from __future__ import annotations

from ..routing import (
    OverlayNetwork,
    PathVectorRouting,
    SourceRoutingSystem,
    TransitTerms,
)
from ..topogen.presets import e04_reference_graph, stub_pairs
from .common import ExperimentResult, Table

__all__ = ["run_e04"]


def run_e04(n_pairs: int = 8, seed: int = 5) -> ExperimentResult:
    network = e04_reference_graph(seed)
    bgp = PathVectorRouting(network)
    bgp.converge()
    pairs = stub_pairs(network, n_pairs)

    table = Table(
        "E04: routing control regime vs user path choice and revenue",
        ["regime", "control", "mean_paths_per_pair", "success_rate",
         "transit_revenue", "uncompensated_transit"],
    )

    # --- Regime 1: BGP (provider control): one selected path per pair.
    bgp_paths = [1 if bgp.reachable(s, d) else 0 for s, d in pairs]
    table.add_row(
        regime="bgp", control="provider",
        mean_paths_per_pair=sum(bgp_paths) / len(pairs),
        success_rate=sum(bgp_paths) / len(pairs),
        transit_revenue=0.0,
        uncompensated_transit=0,
    )

    # --- Regime 2: source routing, no payment (today's reality).
    no_pay = SourceRoutingSystem(network, payment_enabled=False)
    for autonomous_system in network.ases:
        no_pay.set_terms(autonomous_system.asn,
                         TransitTerms(accepts_source_routes=False, price=1.0))
    no_pay_success = 0
    no_pay_diversity = 0
    for src, dst in pairs:
        attempt = no_pay.best_affordable_route(src, dst, budget=100.0)
        if attempt is not None:
            no_pay_success += 1
        no_pay_diversity += no_pay.path_diversity(src, dst, budget=100.0)
    table.add_row(
        regime="source-routing/no-payment", control="user",
        mean_paths_per_pair=no_pay_diversity / len(pairs),
        success_rate=no_pay_success / len(pairs),
        transit_revenue=sum(no_pay.revenue.values()),
        uncompensated_transit=0,
    )

    # --- Regime 3: source routing with payment.
    paid = SourceRoutingSystem(network, payment_enabled=True)
    for autonomous_system in network.ases:
        paid.set_terms(autonomous_system.asn,
                       TransitTerms(accepts_source_routes=False, price=1.0))
    paid_success = 0
    paid_diversity = 0
    for src, dst in pairs:
        attempt = paid.best_affordable_route(src, dst, budget=100.0)
        if attempt is not None and attempt.succeeded:
            paid_success += 1
        paid_diversity += paid.path_diversity(src, dst, budget=100.0)
    table.add_row(
        regime="source-routing/payment", control="user",
        mean_paths_per_pair=paid_diversity / len(pairs),
        success_rate=paid_success / len(pairs),
        transit_revenue=sum(paid.revenue.values()),
        uncompensated_transit=0,
    )

    # --- Regime 4: overlay over BGP (the workaround).
    members = sorted({asn for pair in pairs for asn in pair})
    overlay = OverlayNetwork(bgp, members=members)
    overlay_choices = 0
    overlay_success = 0
    uncompensated = 0
    for src, dst in pairs:
        choices = overlay.path_choice_count(src, dst)
        overlay_choices += choices
        if overlay.reachable_via_overlay(src, dst):
            overlay_success += 1
        uncompensated += sum(overlay.uncompensated_transit(src, dst).values())
    table.add_row(
        regime="overlay", control="user",
        mean_paths_per_pair=overlay_choices / len(pairs),
        success_rate=overlay_success / len(pairs),
        transit_revenue=0.0,
        uncompensated_transit=uncompensated,
    )

    result = ExperimentResult(
        experiment_id="E04",
        title="Provider-controlled vs user-controlled routing",
        paper_claim=("BGP gives the user one path and no choice; unpaid source "
                     "routes are refused; payment makes user routing work and "
                     "compensates providers; overlays give choice but ride "
                     "uncompensated transit."),
        tables=[table],
    )

    rows = {row["regime"]: row for row in table.rows}
    result.add_check(
        "unpaid source routing fails where BGP succeeds",
        rows["source-routing/no-payment"]["success_rate"]
        < rows["bgp"]["success_rate"],
        detail=(f"success {rows['source-routing/no-payment']['success_rate']:.2f} "
                f"vs bgp {rows['bgp']['success_rate']:.2f}"),
    )
    result.add_check(
        "payment unlocks user routing (success and diversity beat BGP)",
        rows["source-routing/payment"]["success_rate"]
        >= rows["bgp"]["success_rate"]
        and rows["source-routing/payment"]["mean_paths_per_pair"]
        > rows["bgp"]["mean_paths_per_pair"],
        detail=(f"paid diversity "
                f"{rows['source-routing/payment']['mean_paths_per_pair']:.1f} "
                f"paths/pair vs bgp 1"),
    )
    result.add_check(
        "value flows to transit providers only under the payment design",
        rows["source-routing/payment"]["transit_revenue"] > 0
        and rows["source-routing/no-payment"]["transit_revenue"] == 0,
        detail=(f"revenue {rows['source-routing/payment']['transit_revenue']:.1f} "
                f"with payment"),
    )
    result.add_check(
        "overlays give the user extra paths without provider cooperation",
        rows["overlay"]["mean_paths_per_pair"]
        > rows["bgp"]["mean_paths_per_pair"],
        detail=f"overlay {rows['overlay']['mean_paths_per_pair']:.1f} paths/pair",
    )
    result.add_check(
        "but overlays create uncompensated transit (economic distortion)",
        rows["overlay"]["uncompensated_transit"] > 0,
        detail=f"{rows['overlay']['uncompensated_transit']} uncompensated transit hops",
    )
    return result
