"""E09 — Rigid designs break; flexible designs flex and survive (§IV).

Paper claim (the headline principle): "Do not design so as to dictate the
outcome. Rigid designs will be broken; designs that permit variation will
flex under pressure and survive."

Workload: a tussle space with several contested variables and two
stakeholder blocs pulling each variable opposite ways. We sweep *rigidity*
— the fraction of contested variables the design fixes (no usable knob) —
and run the adaptation simulator. In rigid designs, stakeholders who can
work around the design do, damaging architectural integrity until the
design breaks; flexible designs absorb the same pressure as harmless
in-design adjustment.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import (
    Mechanism,
    Stakeholder,
    StakeholderKind,
    TussleSimulator,
    TussleSpace,
)
from ..core.principles import rigidity as rigidity_metric
from .common import ExperimentResult, Table, monotone_decreasing

__all__ = ["run_e09", "build_contested_space"]

#: Contested variables in the synthetic design.
VARIABLES = ["transparency", "pricing-tier", "route-control",
             "content-filtering", "qos-level"]


def build_contested_space(n_fixed: int, design_value: float = 0.5) -> TussleSpace:
    """A space where ``n_fixed`` of the contested variables have no knob.

    Fixed variables get a degenerate mechanism range pinned at
    ``design_value`` (the designer "dictated the outcome"); the rest get
    full-range mechanisms usable by every stakeholder kind.
    """
    space = TussleSpace("synthetic", initial_state={v: design_value for v in VARIABLES})
    for index, variable in enumerate(VARIABLES):
        if index < n_fixed:
            allowed = (design_value, design_value)  # dictated outcome
        else:
            allowed = (0.0, 1.0)                    # designed-in variation
        space.add_mechanism(Mechanism(
            name=f"knob-{variable}",
            variable=variable,
            allowed_range=allowed,
        ))

    users = Stakeholder("users", StakeholderKind.USER,
                        workaround_cost=0.05, can_workaround=True)
    providers = Stakeholder("providers", StakeholderKind.COMMERCIAL_ISP,
                            workaround_cost=0.05, can_workaround=True)
    for variable in VARIABLES:
        users.add_interest(variable, target=1.0, weight=1.0)
        providers.add_interest(variable, target=0.0, weight=1.0)
    space.add_stakeholder(users)
    space.add_stakeholder(providers)
    return space


def run_e09(rounds: int = 60, seed: int = 0) -> ExperimentResult:
    # `seed` satisfies the uniform run(seed=...) harness contract; the
    # rigidity sweep is fully deterministic.
    table = Table(
        "E09: design rigidity vs survival",
        ["fixed_vars", "rigidity", "survived", "final_integrity",
         "workaround_fraction", "broken_at"],
    )
    integrities: List[float] = []
    survivals: List[bool] = []
    final_states: List[Dict[str, float]] = []
    for n_fixed in range(len(VARIABLES) + 1):
        space = build_contested_space(n_fixed)
        r = rigidity_metric(space.mechanisms, VARIABLES)
        simulator = TussleSimulator(space)
        outcome = simulator.run(rounds)
        integrities.append(outcome.final_integrity)
        survivals.append(outcome.survived)
        final_states.append(dict(space.state))
        table.add_row(
            fixed_vars=n_fixed,
            rigidity=r,
            survived=outcome.survived,
            final_integrity=outcome.final_integrity,
            workaround_fraction=outcome.workaround_fraction,
            broken_at=outcome.broken_at,
        )

    result = ExperimentResult(
        experiment_id="E09",
        title="Design for variation in outcome",
        paper_claim=("Rigid designs are broken by workarounds; designs that "
                     "permit variation keep the tussle inside the design and "
                     "survive."),
        tables=[table],
    )

    result.add_check(
        "the fully flexible design survives with full integrity",
        survivals[0] and integrities[0] == 1.0,
        detail=f"integrity {integrities[0]:.2f} at rigidity 0",
    )
    result.add_check(
        "the fully rigid design is broken",
        not survivals[-1],
        detail=f"integrity {integrities[-1]:.2f} at rigidity 1",
    )
    broken_ats = [row["broken_at"] for row in table.rows if row["broken_at"] is not None]
    result.add_check(
        "more rigidity breaks the design sooner",
        all(not s for s in survivals[1:])
        and monotone_decreasing([float(b) for b in broken_ats]),
        detail=f"broken_at by rigidity {[row['broken_at'] for row in table.rows]}",
    )
    result.add_check(
        "workarounds appear exactly when variation is designed out",
        table.rows[0]["workaround_fraction"] == 0.0
        and table.rows[-1]["workaround_fraction"] > 0.5,
        detail=(f"workaround fraction 0-fixed "
                f"{table.rows[0]['workaround_fraction']:.2f} vs all-fixed "
                f"{table.rows[-1]['workaround_fraction']:.2f}"),
    )
    return result
