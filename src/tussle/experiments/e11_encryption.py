"""E11 — Peeking, encryption and the blocking escalation (§VI-A).

Paper claims:

* "Peeking is irresistible. If there is information visible in the
  packet, there is no way to keep an intermediate node from looking at
  it" — end-to-end encryption is the ultimate defence;
* "encrypting the stream might just be the first step in an escalating
  tussle... the response of the provider is to refuse to carry encrypted
  data";
* "In the U.S., competition would probably discipline a provider that
  tried to block encryption. But a conservative government with a
  state-run monopoly ISP might [not]";
* there is "no final outcome" — under weak competition the game has no
  stable point at all.

Workload: (a) a wiretap observation measurement over plaintext vs
encrypted traffic; (b) the escalation game swept over competition level,
solved for pure equilibria and probed with best-response dynamics for
cycles.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..gametheory import (
    best_response_dynamics,
    encryption_escalation_game,
    minimax_value,
)
from ..netsim import ForwardingEngine, Network, NodeKind, Wiretap, make_packet
from .common import ExperimentResult, Table

__all__ = ["run_e11"]

COMPETITION_LEVELS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def _wiretap_measurement() -> Table:
    table = Table(
        "E11a: what a wiretap sees, by user posture",
        ["posture", "content_visible_rate", "application_visible_rate"],
    )
    for posture in ("plaintext", "encrypted", "tunnelled", "covert"):
        net = Network()
        net.add_node("user", kind=NodeKind.HOST)
        net.add_node("tap", kind=NodeKind.MIDDLEBOX)
        net.add_node("site", kind=NodeKind.SERVER)
        net.add_node("vpn-gw", kind=NodeKind.ROUTER)
        net.add_link("user", "tap")
        net.add_link("tap", "site")
        net.add_link("tap", "vpn-gw")
        engine = ForwardingEngine(net)
        engine.install_shortest_path_tables()
        tap = Wiretap("tap-box")
        engine.attach_middlebox("tap", tap)
        for i in range(20):
            packet = make_packet("user", "site", application="p2p")
            if posture == "encrypted":
                packet.encrypted = True
            elif posture == "tunnelled":
                packet = packet.tunnel_to("vpn-gw", application="https")
            elif posture == "covert":
                packet = packet.hide_in("http")
            engine.send(packet)
        app_visible = sum(
            1 for o in tap.observations if o["application"] == "p2p"
        ) / max(1, len(tap.observations))
        table.add_row(
            posture=posture,
            content_visible_rate=tap.content_visibility_rate(),
            application_visible_rate=app_visible,
        )
    return table


def run_e11(seed: int = 0) -> ExperimentResult:
    # `seed` satisfies the uniform run(seed=...) harness contract; the
    # wiretap/encryption measurement is fully deterministic.
    wiretap_table = _wiretap_measurement()

    game_table = Table(
        "E11b: escalation game equilibria vs competition",
        ["competition", "pure_equilibria", "transparent_carriage_stable",
         "br_dynamics_converged", "br_cycle"],
    )
    stable_levels: List[bool] = []
    cycles: List[bool] = []
    for competition in COMPETITION_LEVELS:
        game = encryption_escalation_game(competition)
        pure = game.pure_nash_equilibria()
        # (plaintext, carry) is profile (0, 0).
        transparent_stable = (0, 0) in pure
        dynamics = best_response_dynamics(game, iterations=200)
        cycle = not dynamics.converged
        stable_levels.append(transparent_stable)
        cycles.append(cycle)
        labels = [
            f"({game.action_labels[0][r]},{game.action_labels[1][c]})"
            for r, c in pure
        ]
        game_table.add_row(
            competition=competition,
            pure_equilibria="; ".join(labels) if labels else "none",
            transparent_carriage_stable=transparent_stable,
            br_dynamics_converged=dynamics.converged,
            br_cycle=cycle,
        )

    # --- The next rung: steganography raises the user's guaranteed payoff.
    steg_table = Table(
        "E11c: user maximin payoff, with and without steganography",
        ["competition", "maximin_without_steg", "maximin_with_steg"],
    )
    steg_gains: List[float] = []
    for competition in (0.0, 0.5, 1.0):
        without = minimax_value(
            np.asarray(encryption_escalation_game(competition).payoffs[0]))
        with_steg = minimax_value(
            np.asarray(encryption_escalation_game(
                competition, steganography=True).payoffs[0]))
        steg_gains.append(with_steg - without)
        steg_table.add_row(competition=competition,
                           maximin_without_steg=without,
                           maximin_with_steg=with_steg)

    result = ExperimentResult(
        experiment_id="E11",
        title="Encryption vs blocking: escalation and competition",
        paper_claim=("Encryption defeats peeking; under weak competition the "
                     "user/ISP game escalates endlessly (no stable outcome); "
                     "sufficient competition makes transparent carriage the "
                     "stable equilibrium."),
        tables=[wiretap_table, game_table, steg_table],
    )

    rows = {row["posture"]: row for row in wiretap_table.rows}
    result.add_check(
        "plaintext exposes content and application to the wiretap",
        rows["plaintext"]["content_visible_rate"] == 1.0
        and rows["plaintext"]["application_visible_rate"] == 1.0,
    )
    result.add_check(
        "encryption removes content visibility; tunnelling also hides the app",
        rows["encrypted"]["content_visible_rate"] == 0.0
        and rows["tunnelled"]["application_visible_rate"] == 0.0,
        detail=(f"encrypted content {rows['encrypted']['content_visible_rate']:.2f}, "
                f"tunnelled app {rows['tunnelled']['application_visible_rate']:.2f}"),
    )
    result.add_check(
        "weak competition yields NO stable outcome (perpetual escalation)",
        not stable_levels[0] and cycles[0],
        detail=f"competition 0.0: equilibria={game_table.rows[0]['pure_equilibria']}",
    )
    result.add_check(
        "strong competition stabilizes transparent carriage",
        stable_levels[-1],
        detail=f"competition 1.0: {game_table.rows[-1]['pure_equilibria']}",
    )
    result.add_check(
        "there is a competition crossover (unstable below, stable above)",
        (False in stable_levels) and (True in stable_levels)
        and stable_levels.index(True) > 0,
        detail=(f"stability by competition "
                f"{list(zip(COMPETITION_LEVELS, stable_levels))}"),
    )
    result.add_check(
        "steganography (the next escalation rung) raises the user's "
        "guaranteed payoff against every ISP posture",
        all(g > 0.5 for g in steg_gains),
        detail=(f"maximin gains by competition "
                f"{['%.2f' % g for g in steg_gains]}"),
    )
    result.add_check(
        "a covert (steganographic) flow is invisible to the wiretap",
        rows["covert"]["content_visible_rate"] == 0.0
        and rows["covert"]["application_visible_rate"] == 0.0,
        detail=f"covert observed as {rows['covert']}",
    )
    return result
