"""X02 — Who sets the firewall's policy? (§V-B ablation).

"Who gets to set the policy in the firewall? The end user may certainly
have opinions, but a network administrator may as well. Who is 'in
charge'? There is no single answer, and we better not think we are going
to design it. All we can design is the space for the tussle."

This ablation runs the same pinhole-request workload against the three
authority designs the framework supports (END_USER, ADMINISTRATOR,
NEGOTIATED — the OPES/IAB both-must-concur position) and measures whose
requests get honoured, plus the visibility question: can the affected
user download and examine the rules?
"""

from __future__ import annotations

from typing import Dict

from ..trust.firewall import ControlChannel, PolicyAuthority, TrustAwareFirewall
from ..trust.trustgraph import TrustGraph
from .common import ExperimentResult, Table

__all__ = ["run_x02"]

#: The request workload: (requester, flow) pairs.
REQUESTS = [
    ("me", ("game-server", "me")),       # the user wants their game through
    ("me", ("voip-peer", "me")),         # and their calls
    ("admin", ("backup-host", "me")),    # the admin wants backups through
    ("admin", ("monitor", "me")),        # and monitoring
    ("outsider", ("botnet", "me")),      # a third party tries its luck
]


def _run_authority(authority: PolicyAuthority, rules_visible: bool):
    trust = TrustGraph()
    firewall = TrustAwareFirewall(
        "fw", protected="me", trust_graph=trust,
        authority=authority, rules_visible=rules_visible)
    channel = ControlChannel(firewall, administrator="admin")
    user_granted = admin_granted = outsider_granted = 0
    for requester, (src, dst) in REQUESTS:
        request = channel.request_pinhole(requester, src, dst, "app")
        if request.granted:
            if requester == "me":
                user_granted += 1
            elif requester == "admin":
                admin_granted += 1
            else:
                outsider_granted += 1
    if authority is PolicyAuthority.NEGOTIATED:
        # Concurrence round: each side endorses the other's flows.
        for requester, (src, dst) in REQUESTS:
            if requester == "me":
                if channel.request_pinhole("admin", src, dst, "app").granted:
                    user_granted += 1
            elif requester == "admin":
                if channel.request_pinhole("me", src, dst, "app").granted:
                    admin_granted += 1
    rules_for_user = firewall.download_rules("me")
    return {
        "user_granted": user_granted,
        "admin_granted": admin_granted,
        "outsider_granted": outsider_granted,
        "user_can_see_rules": bool(rules_for_user),
    }


def run_x02(seed: int = 0) -> ExperimentResult:
    # `seed` satisfies the uniform run(seed=...) harness contract; the
    # authority ablation is fully deterministic.
    table = Table(
        "X02: firewall policy authority vs whose requests are honoured",
        ["authority", "rules_visible", "user_granted", "admin_granted",
         "outsider_granted", "user_can_see_rules"],
    )
    outcomes: Dict[str, Dict[str, object]] = {}
    cells = [
        (PolicyAuthority.END_USER, True),
        (PolicyAuthority.ADMINISTRATOR, True),
        (PolicyAuthority.ADMINISTRATOR, False),
        (PolicyAuthority.NEGOTIATED, True),
    ]
    for authority, rules_visible in cells:
        stats = _run_authority(authority, rules_visible)
        key = f"{authority.value}/{'visible' if rules_visible else 'hidden'}"
        outcomes[key] = stats
        table.add_row(authority=authority.value, rules_visible=rules_visible,
                      **stats)

    result = ExperimentResult(
        experiment_id="X02",
        title="Who sets the firewall policy (design the space, not the answer)",
        paper_claim=("There is no single answer to who is in charge; each "
                     "authority design empowers a different party, "
                     "negotiated control requires concurrence, and hiding "
                     "the rules from the affected user is a design choice "
                     "with visibility consequences."),
        tables=[table],
    )

    user_cell = outcomes["end-user/visible"]
    admin_cell = outcomes["administrator/visible"]
    hidden_cell = outcomes["administrator/hidden"]
    negotiated_cell = outcomes["negotiated/visible"]

    result.add_check(
        "end-user authority honours the user and nobody else",
        user_cell["user_granted"] == 2 and user_cell["admin_granted"] == 0
        and user_cell["outsider_granted"] == 0,
        detail=str(user_cell),
    )
    result.add_check(
        "administrator authority flips the empowerment",
        admin_cell["admin_granted"] == 2 and admin_cell["user_granted"] == 0,
        detail=str(admin_cell),
    )
    result.add_check(
        "negotiated authority grants only flows both parties endorsed",
        negotiated_cell["user_granted"] == 2
        and negotiated_cell["admin_granted"] == 2
        and negotiated_cell["outsider_granted"] == 0,
        detail=str(negotiated_cell),
    )
    result.add_check(
        "outsiders are never granted under any design",
        all(o["outsider_granted"] == 0 for o in outcomes.values()),
    )
    result.add_check(
        "the hidden-rules design denies the affected user visibility",
        not hidden_cell["user_can_see_rules"]
        and admin_cell["user_can_see_rules"],
        detail="visibility of decision-making is itself a design choice",
    )
    return result
