"""X06 — QoS bound to ports vs explicit ToS bits (§IV-A).

Paper claim: binding QoS to well-known ports entangles "what application
is running" with "what service is desired", so the surrounding tussles
distort the architecture — users avoid encryption to keep ports visible,
or encapsulate applications inside other applications "simply to receive
better service". Explicit ToS bits isolate the two questions; ToS
freeloading then becomes a billing matter (value flow), not a structural
distortion.

Workload eras:

* **honest era** — VoIP plain with ToS set; web plain without. Both
  classifiers are perfect.
* **tussle era** — the surrounding tussles have happened: privacy-minded
  VoIP users tunnel through a VPN (the §V-B firewall counter-move), and
  freeloading bulk-transfer users encapsulate inside VoIP framing to grab
  priority. Port-bound QoS misses the tunnelled VoIP *and* rewards the
  freeloaders; ToS-bound QoS keeps perfect recall and bills the
  ToS-setting freeloaders instead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..netsim.packets import Packet, make_packet
from ..netsim.qos import (
    PRIORITY_TOS,
    PortQosClassifier,
    QosScheduler,
    TosQosClassifier,
)
from .common import ExperimentResult, Table

__all__ = ["run_x06"]


def _honest_workload(n: int) -> List[Packet]:
    packets: List[Packet] = []
    for i in range(n):
        packets.append(make_packet("caller", "callee", application="voip",
                                   tos=PRIORITY_TOS))
        packets.append(make_packet("reader", "site", application="http",
                                   tos=0))
    return packets


def _tussle_workload(n: int) -> List[Packet]:
    """The same traffic after the surrounding tussles have played out."""
    packets: List[Packet] = []
    for i in range(n):
        # Privacy-seeking VoIP rides a VPN; ToS bits survive in the outer
        # header, the port does not.
        voip = make_packet("caller", "callee", application="voip",
                           tos=PRIORITY_TOS)
        packets.append(voip.tunnel_to("vpn-gw", application="vpn"))
        # Bulk transfer masquerades inside VoIP framing for better service
        # under the port-bound design ("encapsulation of applications
        # inside other applications simply to receive better service").
        bulk = make_packet("leech", "peer", application="p2p", tos=0)
        packets.append(bulk.tunnel_to("relay", application="voip",
                                      encrypt=False))
        # Honest web traffic continues.
        packets.append(make_packet("reader", "site", application="http",
                                   tos=0))
    return packets


def _score(classifier_factory, workload: List[Packet]) -> QosScheduler:
    scheduler = QosScheduler("qos", classifier_factory)
    for packet in workload:
        scheduler.process(packet)
    return scheduler


def run_x06(n: int = 40, seed: int = 0) -> ExperimentResult:
    # `seed` satisfies the uniform run(seed=...) harness contract; the
    # classification sweep is fully deterministic.
    table = Table(
        "X06: QoS binding vs classification quality, by era",
        ["era", "binding", "recall", "false_priority_rate", "accuracy",
         "tos_billing_revenue"],
    )
    results: Dict[Tuple[str, str], QosScheduler] = {}
    billing: Dict[Tuple[str, str], float] = {}

    for era, workload_fn in (("honest", _honest_workload),
                             ("tussle", _tussle_workload)):
        for binding in ("port", "tos"):
            if binding == "port":
                classifier = PortQosClassifier()
            else:
                classifier = TosQosClassifier(bill_per_packet=0.01)
            scheduler = _score(classifier, workload_fn(n))
            results[(era, binding)] = scheduler
            billing[(era, binding)] = getattr(classifier, "revenue", 0.0)
            table.add_row(
                era=era, binding=binding,
                recall=scheduler.recall(),
                false_priority_rate=scheduler.false_priority_rate(),
                accuracy=scheduler.accuracy(),
                tos_billing_revenue=billing[(era, binding)],
            )

    result = ExperimentResult(
        experiment_id="X06",
        title="QoS bound to ports vs explicit ToS bits",
        paper_claim=("Binding QoS to ports lets the surrounding tussles "
                     "(encryption, encapsulation) destroy the service "
                     "decision; explicit ToS bits keep it intact, and ToS "
                     "freeloading becomes billable rather than structural."),
        tables=[table],
    )

    honest_port = results[("honest", "port")]
    honest_tos = results[("honest", "tos")]
    tussle_port = results[("tussle", "port")]
    tussle_tos = results[("tussle", "tos")]

    result.add_check(
        "both bindings are perfect while everyone is honest",
        honest_port.accuracy() == 1.0 and honest_tos.accuracy() == 1.0,
    )
    result.add_check(
        "under tussle, port binding misses tunnelled VoIP entirely",
        tussle_port.recall() == 0.0,
        detail=f"port recall {tussle_port.recall():.2f}",
    )
    result.add_check(
        "under tussle, port binding rewards the encapsulation freeloaders",
        tussle_port.false_priority_rate() > 0.0,
        detail=(f"false priority rate "
                f"{tussle_port.false_priority_rate():.2f}"),
    )
    result.add_check(
        "ToS binding keeps perfect recall and zero freeloading through "
        "the same tussle",
        tussle_tos.recall() == 1.0
        and tussle_tos.false_priority_rate() == 0.0,
        detail=f"tos accuracy {tussle_tos.accuracy():.2f}",
    )
    result.add_check(
        "prioritized ToS traffic is billed (value flows instead of "
        "the structure distorting)",
        billing[("tussle", "tos")] > 0.0,
        detail=f"revenue {billing[('tussle', 'tos')]:.2f}",
    )
    return result
