"""P02 — a depeering war on a 10^3-AS internet (§V-A-4 at scale).

The paper's run-time-tussle claim, stress-tested where it is hardest:
a generated 1000-AS internet whose whole peering mesh is bargained into
existence by :class:`~tussle.peering.PeeringDynamics`, then shocked by
the depeering of its single busiest settlement.  One experiment run is
the full coupling loop, end to end:

* **Bargain-in** — from the generator's seed topology, the market
  iterates to a fixed point: hundreds of agreements struck over
  exclusive-cone gravity traffic, unprofitable generator peerings
  abandoned, the rest re-priced at the volumes the converged routes
  actually deliver.
* **War** — the busiest peer pair tears its link down and embargoes
  re-bargaining.  The valley-free RIB reconverges
  (:meth:`~tussle.routing.pathvector.PathVectorRouting.converge_fast`),
  demand reroutes through paid transit, and both combatants' accounts
  lose value — money and routes moving together, which is the point.
* **Peace** — the embargo lifts; re-bargaining restores the agreement
  and the exact pre-war accounts.  The restoration is byte-exact
  because the fixed point is a pure function of ``(network, seed,
  economics)`` — the determinism contract that makes a 10^3-AS
  tussle experiment reproducible at all (``tests/peering/`` double-runs
  this experiment and compares canonical JSON bytes).
"""

from __future__ import annotations

import numpy as np

from ..peering import PeeringDynamics, PeeringEconomics
from ..topogen import TopogenConfig, generate_internet
from .common import ExperimentResult, Table

__all__ = ["run_p02"]


def run_p02(n_ases: int = 1000, seed: int = 0) -> ExperimentResult:
    config = TopogenConfig(n_ases=n_ases, router_detail="none")
    network = generate_internet(config, seed=seed)
    econ = PeeringEconomics()
    dyn = PeeringDynamics(network, seed=seed, econ=econ)

    # --- Bargain the 10^3-AS peering mesh into existence.
    initial = dyn.run()
    rounds = Table(
        "P02: bargaining rounds to the initial fixed point",
        ["iteration", "agreements", "peered", "depeered",
         "total_transit_cost", "total_transfers"],
    )
    for rec in initial.history:
        row = rec.to_dict()
        row.pop("routing_levels")
        rounds.add_row(**row)

    # The busiest settlement on the mesh: the war target.
    rib = dyn.routing.fast_rib
    busiest, busiest_volume = None, -1.0
    for pair in sorted(initial.agreements):
        ra, rb = rib.index.of(pair[0]), rib.index.of(pair[1])
        volume = float(dyn.volumes[ra, rb] + dyn.volumes[rb, ra])
        if volume > busiest_volume:
            busiest, busiest_volume = pair, volume
    a, b = busiest
    agreement_before = initial.agreements[busiest]
    volumes_before = dyn.volumes.copy()
    accounts_before = dyn.accounts()
    reach_before = float((rib.cls != 3).mean())
    transit_before = initial.history[-1].total_transit_cost

    # --- War: the link comes down, the market re-settles around it.
    dyn.depeer(a, b)
    war = dyn.run()
    rerouted = float(np.abs(dyn.volumes - volumes_before).sum())
    accounts_war = dyn.accounts()
    reach_war = float((dyn.routing.fast_rib.cls != 3).mean())
    transit_war = war.history[-1].total_transit_cost

    # --- Peace: embargo lifted, agreement re-bargained.
    dyn.lift_embargo(a, b)
    peace = dyn.run()
    accounts_peace = dyn.accounts()
    reach_peace = float((dyn.routing.fast_rib.cls != 3).mean())
    restored = peace.agreements.get(busiest)

    def net(accounts, asn):
        return accounts[asn].net

    phases = Table(
        "P02: the war, phase by phase",
        ["phase", "agreements", "reachability", "transit_cost",
         "net_a", "net_b"],
    )
    phases.add_row(phase="fixed-point", agreements=len(initial.agreements),
                   reachability=reach_before, transit_cost=transit_before,
                   net_a=net(accounts_before, a), net_b=net(accounts_before, b))
    phases.add_row(phase="war", agreements=len(war.agreements),
                   reachability=reach_war, transit_cost=transit_war,
                   net_a=net(accounts_war, a), net_b=net(accounts_war, b))
    phases.add_row(phase="peace", agreements=len(peace.agreements),
                   reachability=reach_peace,
                   transit_cost=peace.history[-1].total_transit_cost,
                   net_a=net(accounts_peace, a), net_b=net(accounts_peace, b))

    shock = Table("P02: the depeering shock", ["metric", "value"])
    shock.add_row(metric="war_pair", value=f"{a}-{b}")
    shock.add_row(metric="edge_volume_before", value=busiest_volume)
    shock.add_row(metric="volume_rerouted_l1", value=rerouted)
    shock.add_row(metric="initial_iterations", value=initial.iterations)
    shock.add_row(metric="war_iterations", value=war.iterations)
    shock.add_row(metric="peace_iterations", value=peace.iterations)

    result = ExperimentResult(
        experiment_id="P02",
        title="Depeering war on a 10^3-AS bargained peering mesh",
        paper_claim=("§V-A-4: interconnection is a run-time tussle — "
                     "agreements are struck and torn down while the network "
                     "operates, each depeering rerouting real traffic and "
                     "repricing both combatants' interconnection value, yet "
                     "never touching the reachability users pay for."),
        tables=[rounds, phases, shock],
    )
    result.add_check(
        "the 10^3-AS market bargains to a fixed point within the cap",
        initial.converged and initial.verdict == "fixed-point",
        detail=(f"{len(initial.agreements)} agreements after "
                f"{initial.iterations} rounds on {n_ases} ASes"),
    )
    result.add_check(
        "depeering the busiest settlement measurably reroutes traffic",
        rerouted > busiest_volume,
        detail=(f"{rerouted:.0f} volume-units moved (edge carried "
                f"{busiest_volume:.0f})"),
    )
    result.add_check(
        "the war reprices both combatants and destroys joint value",
        net(accounts_war, a) != net(accounts_before, a)
        and net(accounts_war, b) != net(accounts_before, b)
        and (net(accounts_war, a) + net(accounts_war, b))
        < (net(accounts_before, a) + net(accounts_before, b)),
        detail=(f"AS {a}: {net(accounts_before, a):.0f}->"
                f"{net(accounts_war, a):.0f}, AS {b}: "
                f"{net(accounts_before, b):.0f}->{net(accounts_war, b):.0f}; "
                "a side can win a war, but the pair never does"),
    )
    result.add_check(
        "war traffic detours onto paid transit",
        transit_war > transit_before,
        detail=f"transit bill {transit_before:.0f}->{transit_war:.0f}",
    )
    result.add_check(
        "reachability never moves: the tussle is isolated on peer edges",
        reach_before == 1.0 and reach_war == 1.0 and reach_peace == 1.0,
        detail="customer/provider DAG untouched through the war",
    )
    result.add_check(
        "peace re-bargains the identical agreement at the identical "
        "fixed point",
        peace.converged and restored is not None
        and restored.to_dict() == agreement_before.to_dict()
        and all(net(accounts_peace, x) == net(accounts_before, x)
                for x in (a, b)),
        detail="restoration is byte-exact: the fixed point is a pure "
               "function of (network, seed, economics)",
    )
    return result
