"""E01 — Provider lock-in from IP addressing (§V-A-1).

Paper claim: provider-based addresses lock customers in; mechanisms that
make renumbering cheap (DHCP, dynamic DNS) restore the consumer's ability
to switch, which disciplines prices; provider-independent space also frees
the customer but inflates the core forwarding table.

Workload: an access market with one price-creeping incumbent and two
undercutting rivals. Consumer switching cost is derived from the
addressing substrate (:class:`~tussle.netsim.addressing.RenumberingModel`)
per addressing mode. We sweep the mode and report switching, prices,
surplus and core-table cost.
"""

from __future__ import annotations

import random

from ..econ import Consumer, Market, MonopolyPricing, Provider, UndercutPricing
from ..econ.demand import Segment, UniformWtp
from ..netsim.addressing import AddressingMode, AddressRegistry, RenumberingModel
from .common import ExperimentResult, Table

__all__ = ["run_e01", "LOCKIN_SCENARIOS", "lockin_market_spec"]

#: (label, addressing mode or None for provider-independent space)
LOCKIN_SCENARIOS = [
    ("static", AddressingMode.STATIC),
    ("dhcp", AddressingMode.DHCP),
    ("dhcp+ddns", AddressingMode.DHCP_DDNS),
    ("provider-independent", None),
]


def lockin_market_spec(switching_cost: float, n_consumers: int,
                       seed: int) -> dict:
    """Constructor kwargs for one E01 lock-in market cell.

    Returns fresh provider/consumer objects on every call so the same
    spec can build both the scalar :class:`~tussle.econ.market.Market`
    and the vectorized ``tussle.scale`` backend (the parity harness
    does exactly that).
    """
    providers = [
        Provider(name="incumbent", price=45.0, unit_cost=5.0),
        Provider(name="rival-a", price=40.0, unit_cost=5.0),
        Provider(name="rival-b", price=42.0, unit_cost=5.0),
    ]
    strategies = {
        "incumbent": MonopolyPricing(price_cap=90.0),
        "rival-a": UndercutPricing(),
        "rival-b": UndercutPricing(),
    }
    rng = random.Random(seed)
    wtp = UniformWtp(35.0, 110.0)
    consumers = [
        Consumer(
            name=f"site{i}",
            wtp=wtp.sample(rng),
            segment=Segment.BASIC,
            switching_cost=switching_cost,
            provider="incumbent",   # everyone starts locked to the incumbent
        )
        for i in range(n_consumers)
    ]
    return dict(providers=providers, consumers=consumers,
                strategies=strategies, seed=seed)


def _market_with_switching_cost(switching_cost: float, n_consumers: int,
                                rounds: int, seed: int) -> Market:
    market = Market(**lockin_market_spec(switching_cost, n_consumers, seed))
    market.run(rounds)
    return market


def run_e01(
    n_consumers: int = 120,
    n_hosts_per_site: int = 20,
    rounds: int = 30,
    seed: int = 7,
) -> ExperimentResult:
    """Run the lock-in sweep and check the paper's shape."""
    model = RenumberingModel()
    table = Table(
        "E01: addressing mode vs lock-in, switching, price, surplus",
        ["mode", "switch_cost", "lockin_index", "switch_rate",
         "final_price", "consumer_surplus", "core_table"],
    )

    for label, mode in LOCKIN_SCENARIOS:
        provider_independent = mode is None
        cost = model.switching_cost(
            n_hosts_per_site,
            mode or AddressingMode.STATIC,
            provider_independent=provider_independent,
        )
        lockin = (0.0 if provider_independent
                  else model.lock_in_index(n_hosts_per_site, mode))
        market = _market_with_switching_cost(cost, n_consumers, rounds, seed)

        # Core-table cost: 3 provider aggregates, plus one PI entry per
        # customer when customers hold provider-independent space.
        registry = AddressRegistry()
        for asn in (1, 2, 3):
            registry.allocate_aggregate(asn)
        for i in range(n_consumers):
            if provider_independent:
                registry.assign_provider_independent(f"site{i}")
            else:
                registry.assign_customer_block(f"site{i}", provider_asn=1)

        table.add_row(
            mode=label,
            switch_cost=cost,
            lockin_index=lockin,
            switch_rate=market.total_switches() / (n_consumers * rounds),
            final_price=market.mean_price(),
            consumer_surplus=market.total_consumer_surplus(),
            core_table=registry.core_table_size(),
        )

    result = ExperimentResult(
        experiment_id="E01",
        title="Provider lock-in from IP addressing",
        paper_claim=("Easy renumbering (DHCP/DDNS) or PI addressing frees the "
                     "customer to switch, disciplining prices; PI space "
                     "inflates the core forwarding table."),
        tables=[table],
    )

    switch_rates = table.column("switch_rate")
    prices = table.column("final_price")
    surpluses = table.column("consumer_surplus")
    core_tables = table.column("core_table")

    result.add_check(
        "switching rises as renumbering gets cheaper (static -> ddns/PI)",
        switch_rates[0] <= switch_rates[1] <= switch_rates[2]
        and switch_rates[0] < switch_rates[2],
        detail=f"switch rates {['%.4f' % s for s in switch_rates]}",
    )
    result.add_check(
        "prices are highest under static lock-in",
        prices[0] >= max(prices[1:]) - 1e-9,
        detail=f"final prices {['%.2f' % p for p in prices]}",
    )
    result.add_check(
        "consumer surplus improves when switching is freed",
        surpluses[2] > surpluses[0] and surpluses[3] > surpluses[0],
        detail=f"surplus {['%.0f' % s for s in surpluses]}",
    )
    result.add_check(
        "PI addressing blows up the core table relative to PA",
        core_tables[3] > 10 * core_tables[0],
        detail=f"core table entries {core_tables}",
    )
    return result
