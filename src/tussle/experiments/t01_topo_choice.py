"""T01 — E04's path-choice claim at internet scale (§V-A-4).

E04 established on an 21-AS toy graph that provider-controlled routing
gives the user exactly one path while overlays restore choice at the
price of uncompensated transit.  T01 re-runs that claim where it was
actually made — on an internet: a generated tiered topology
(:func:`tussle.topogen.generate_internet`, 10^3 ASes by default) with a
tier-1 clique, regional transit and multihomed stubs, converged through
the valley-free fast path
(:meth:`~tussle.routing.pathvector.PathVectorRouting.converge_fast`).

Beyond re-checking E04's shape, scale adds claims the toy graph could
not express:

* every selected path is **valley-free** — the business structure, not
  shortest-path geometry, shapes routes;
* stub ASes carry **zero transit**: Gao-Rexford export rules mean an AS
  with no customers never forwards third-party traffic, however densely
  it is connected;
* transit concentrates in the provider core (tiers 1-2) — the
  provider-interest outcome the paper says BGP's economics drove.
"""

from __future__ import annotations

from ..routing import OverlayNetwork, PathVectorRouting, is_valley_free
from ..topogen import TopogenConfig, generate_internet
from ..topogen.presets import stub_pairs
from .common import ExperimentResult, Table

__all__ = ["run_t01"]


def run_t01(n_ases: int = 1000, n_pairs: int = 20,
            seed: int = 0) -> ExperimentResult:
    config = TopogenConfig(n_ases=n_ases, router_detail="none")
    network = generate_internet(config, seed=seed)
    bgp = PathVectorRouting(network)
    levels = bgp.converge_fast()
    pairs = stub_pairs(network, n_pairs)

    # --- Topology shape (provenance for the claims below).
    shape = Table(
        "T01: generated tiered internet",
        ["tier", "ases", "mean_providers", "mean_peers"],
    )
    for tier in (1, 2, 3):
        members = [a.asn for a in network.ases if a.tier == tier]
        shape.add_row(
            tier=tier, ases=len(members),
            mean_providers=sum(len(network.providers_of(a)) for a in members)
            / len(members),
            mean_peers=sum(len(network.peers_of(a)) for a in members)
            / len(members),
        )

    # --- E04's regimes, at scale: BGP vs overlay on stub-to-stub pairs.
    regimes = Table(
        "T01: path choice per regime on stub-to-stub traffic",
        ["regime", "control", "mean_paths_per_pair", "success_rate",
         "uncompensated_transit"],
    )
    bgp_success = sum(1 for s, d in pairs if bgp.reachable(s, d))
    regimes.add_row(
        regime="bgp", control="provider",
        mean_paths_per_pair=bgp_success / len(pairs),
        success_rate=bgp_success / len(pairs),
        uncompensated_transit=0,
    )
    members = sorted({asn for pair in pairs for asn in pair})
    overlay = OverlayNetwork(bgp, members=members)
    overlay_choices = 0
    overlay_success = 0
    uncompensated = 0
    for src, dst in pairs:
        overlay_choices += overlay.path_choice_count(src, dst)
        if overlay.reachable_via_overlay(src, dst):
            overlay_success += 1
        uncompensated += sum(overlay.uncompensated_transit(src, dst).values())
    regimes.add_row(
        regime="overlay", control="user",
        mean_paths_per_pair=overlay_choices / len(pairs),
        success_rate=overlay_success / len(pairs),
        uncompensated_transit=uncompensated,
    )

    # --- Valley-free structure of the selected routes.
    pair_paths = [bgp.as_path(s, d) for s, d in pairs]
    violations = sum(1 for p in pair_paths if not is_valley_free(network, p))
    transit = {a.asn: bgp.transit_load(a.asn) for a in network.ases}
    stub_transit = max(transit[a.asn]
                       for a in network.ases if a.tier == 3)
    core_transit = max(transit[a.asn]
                       for a in network.ases if a.tier in (1, 2))
    total_transit = sum(transit.values())
    core_share = (sum(transit[a.asn]
                      for a in network.ases if a.tier in (1, 2))
                  / total_transit if total_transit else 0.0)
    structure = Table(
        "T01: valley-free structure of selected routes",
        ["metric", "value"],
    )
    structure.add_row(metric="convergence_levels", value=levels)
    structure.add_row(metric="pair_paths_checked", value=len(pair_paths))
    structure.add_row(metric="valley_violations", value=violations)
    structure.add_row(metric="max_stub_transit", value=stub_transit)
    structure.add_row(metric="max_core_transit", value=core_transit)
    structure.add_row(metric="core_transit_share", value=core_share)

    result = ExperimentResult(
        experiment_id="T01",
        title="Provider routing vs user choice on a generated internet",
        paper_claim=("§V-A-4 at scale: BGP still gives the user one "
                     "provider-chosen, valley-free path per destination; "
                     "overlays still restore choice by riding uncompensated "
                     "transit; and the export economics keep all transit in "
                     "the provider core."),
        tables=[shape, regimes, structure],
    )

    rows = {row["regime"]: row for row in regimes.rows}
    result.add_check(
        "BGP reaches every stub pair with exactly one path",
        rows["bgp"]["success_rate"] == 1.0
        and rows["bgp"]["mean_paths_per_pair"] == 1.0,
        detail=f"{len(pairs)} stub pairs on {n_ases} ASes",
    )
    result.add_check(
        "every provider-selected path is valley-free",
        violations == 0,
        detail=f"{len(pair_paths)} selected paths checked",
    )
    result.add_check(
        "stub ASes carry zero transit (no customers, nothing to sell)",
        stub_transit == 0,
        detail=f"max stub transit {stub_transit}, max core {core_transit}",
    )
    result.add_check(
        "all transit rides the provider core (tiers 1-2)",
        core_share == 1.0 and core_transit > 0,
        detail=f"core share {core_share:.3f}",
    )
    result.add_check(
        "overlays restore user path choice without provider cooperation",
        rows["overlay"]["mean_paths_per_pair"]
        > rows["bgp"]["mean_paths_per_pair"],
        detail=(f"overlay {rows['overlay']['mean_paths_per_pair']:.1f} "
                f"paths/pair vs bgp 1"),
    )
    result.add_check(
        "and still create uncompensated transit at scale",
        rows["overlay"]["uncompensated_transit"] > 0,
        detail=(f"{rows['overlay']['uncompensated_transit']} uncompensated "
                f"transit hops"),
    )
    return result
