"""T02 — Blame routing on a *derived* dual-homed workload (§VI-A).

R01 established blame routing — operator for faults inside the
provider, end user at the edge — on a hand-drawn 7-node network.  T02
derives the same workload from a generated tiered internet instead: it
picks a multihomed stub on a :func:`tussle.topogen.generate_internet`
graph, reads its two provider-level paths out of the converged
valley-free RIB, and lowers them to a node-level network (one router
chain per AS path, chains node-disjoint by construction).  The blame
claims then re-run unchanged: if they only held on R01's hand-picked
geometry, this is where that would show.

The standby chain is padded one hop longer than the primary whenever
the two AS paths tie, so shortest-path forwarding deterministically
prefers the primary — same trick R01's hand-built net used (3-hop
primary, 4-hop standby).
"""

from __future__ import annotations

from typing import Tuple

from ..netsim.faults import Audience, FaultReporter
from ..netsim.forwarding import ForwardingEngine
from ..netsim.packets import make_packet
from ..netsim.topology import Network, Relationship
from ..resil import ChaosInjector, ChaosSchedule
from ..routing import PathVectorRouting, RouteRecovery
from ..topogen import TopogenConfig, generate_internet
from .common import ExperimentResult, Table

__all__ = ["run_t02"]


def _pick_user(network: Network) -> int:
    """Lowest-ASN multihomed stub; single-homed graphs get a second
    provider grafted on (deterministically) so the workload always
    exists."""
    stubs = sorted(a.asn for a in network.ases if a.tier == 3)
    for asn in stubs:
        if len(network.providers_of(asn)) >= 2:
            return asn
    user = stubs[0]
    region = network.autonomous_system(user).metadata["region"]
    pool = sorted(a.asn for a in network.ases
                  if a.tier == 2 and a.metadata["region"] == region
                  and a.asn not in network.providers_of(user))
    network.add_as_relationship(user, pool[0],
                                Relationship.CUSTOMER_PROVIDER)
    return user


def _derive_paths(network: Network,
                  user: int) -> Tuple[Tuple[int, ...], Tuple[int, ...], int]:
    """(primary AS path, standby AS path, destination) for the user.

    Primary is the user's selected route to the lowest-ASN stub in
    another region; standby goes through the user's other provider.
    Stubs carry no transit, so the standby tail can never loop back
    through the user.
    """
    bgp = PathVectorRouting(network)
    bgp.converge_fast()
    region = network.autonomous_system(user).metadata["region"]
    stubs = sorted(a.asn for a in network.ases
                   if a.tier == 3 and a.asn != user)
    remote = [a for a in stubs
              if network.autonomous_system(a).metadata["region"] != region]
    dst = (remote or stubs)[0]
    primary = bgp.as_path(user, dst)
    standby_provider = min(p for p in network.providers_of(user)
                           if p != primary[1])
    standby = (user,) + bgp.as_path(standby_provider, dst)
    return primary, standby, dst


def _lower_to_nodes(primary: Tuple[int, ...],
                    standby: Tuple[int, ...]) -> Network:
    """One router per interior AS of each path, chains node-disjoint.

    An AS appearing on both paths becomes two distinct routers (one per
    chain), mirroring how a provider dedicates different ports to
    different customers' paths.
    """
    n_standby = len(standby) - 2
    if len(standby) <= len(primary):
        n_standby = len(primary) - 1  # pad: standby must lose ties
    net = Network()
    net.add_node("u")
    net.add_node("dst")
    for prefix, count, path in (("p", len(primary) - 2, primary),
                                ("s", n_standby, standby)):
        previous = "u"
        for i in range(count):
            interior = path[1:-1]
            asn = int(interior[min(i, len(interior) - 1)])
            name = f"{prefix}{i}"
            net.add_node(name, asn=asn)
            net.add_link(previous, name)
            previous = name
        net.add_link(previous, "dst")
    return net


def _provider_nodes(net: Network) -> Tuple[str, ...]:
    return tuple(sorted(n.name for n in net.nodes
                        if n.name not in ("u", "dst")))


def _engine(net: Network) -> ForwardingEngine:
    engine = ForwardingEngine(net)
    engine.install_shortest_path_tables()
    return engine


def _structural_table(build, providers: Tuple[str, ...],
                      primary_links: Tuple[Tuple[str, str], ...]) -> Table:
    reporter = FaultReporter()
    table = Table(
        "T02: single-link faults, blame routing, and recovery",
        ["link", "on_primary", "delivered", "audience", "actionable",
         "recovered"],
    )
    links = sorted(build().links, key=lambda l: l.key())
    for link in links:
        engine = _engine(build())
        engine.network.fail_link(link.a, link.b)
        receipt = engine.send(make_packet("u", "dst"))
        audience = None
        actionable = None
        if not receipt.delivered:
            report = reporter.route(receipt, providers)
            audience = report.audience.value
            actionable = report.actionable
        recovered = RouteRecovery(engine).reconverge(1.0, probe=("u", "dst"))
        table.add_row(link="-".join(link.key()),
                      on_primary=link.key() in primary_links,
                      delivered=receipt.delivered, audience=audience,
                      actionable=actionable, recovered=recovered)
    return table


def _chaos_table(build, providers: Tuple[str, ...], seed: int,
                 probes: int) -> Table:
    reporter = FaultReporter()
    engine = _engine(build())
    schedule = ChaosSchedule(seed=seed, horizon=float(probes),
                             link_failure_rate=0.4, link_repair=(0.5, 2.0))
    injector = ChaosInjector(engine, schedule.plan(engine.network))
    table = Table(
        "T02: seeded chaos probes",
        ["time", "delivered", "location", "audience", "consistent"],
    )
    for i in range(probes):
        now = i + 0.5
        injector.advance(now)
        receipt = engine.send(make_packet("u", "dst"))
        location = None
        audience = None
        consistent = True
        if not receipt.delivered:
            report = reporter.route(receipt, providers)
            location = report.location
            audience = report.audience.value
            consistent = (
                (audience == Audience.OPERATOR.value)
                == (location in providers)
                and report.actionable
            )
        table.add_row(time=now, delivered=receipt.delivered,
                      location=location, audience=audience,
                      consistent=consistent)
    return table


def run_t02(n_ases: int = 60, probes: int = 12,
            seed: int = 0) -> ExperimentResult:
    config = TopogenConfig(n_ases=n_ases, router_detail="none")
    network = generate_internet(config, seed=seed)
    user = _pick_user(network)
    primary, standby, dst = _derive_paths(network, user)
    workload = _lower_to_nodes(primary, standby)
    providers = _provider_nodes(workload)
    primary_names = ["u"] + [f"p{i}" for i in range(len(primary) - 2)] + ["dst"]
    primary_links = tuple(sorted(
        tuple(sorted(pair)) for pair in zip(primary_names, primary_names[1:])))

    def build() -> Network:
        return _lower_to_nodes(primary, standby)

    derivation = Table(
        "T02: workload derived from the generated internet",
        ["role", "provider_asn", "as_path", "router_hops"],
    )
    derivation.add_row(role="primary", provider_asn=primary[1],
                       as_path="-".join(map(str, primary)),
                       router_hops=len(primary_names) - 1)
    derivation.add_row(role="standby", provider_asn=standby[1],
                       as_path="-".join(map(str, standby)),
                       router_hops=len(workload.links) - len(primary_names) + 1)

    structural = _structural_table(build, providers, primary_links)
    chaos = _chaos_table(build, providers, seed, probes)

    result = ExperimentResult(
        experiment_id="T02",
        title="Blame routing on a topology-derived dual-homed workload",
        paper_claim=("§VI-A: the right person to tell depends on where the "
                     "fault sits — operator inside the provider, end user "
                     "(whose remedy is choice) at the edge — and that must "
                     "hold on real multihoming geometry, not just a "
                     "hand-drawn example."),
        tables=[derivation, structural, chaos],
    )

    rows = structural.rows
    primary_rows = [r for r in rows if r["on_primary"]]
    access = [r for r in primary_rows
              if "u" in r["link"].split("-")]
    provider_internal = [r for r in primary_rows if r not in access]
    off_path = [r for r in rows if not r["on_primary"]]

    result.add_check(
        "the generated internet yields a genuinely dual-homed workload",
        primary[1] != standby[1] and len(standby) >= len(primary),
        detail=(f"user AS {user} -> dst AS {dst} via providers "
                f"{primary[1]} (primary) and {standby[1]} (standby)"),
    )
    result.add_check(
        "faults inside the providers' chains are reported to the operator, "
        "actionably",
        bool(provider_internal)
        and all(r["audience"] == Audience.OPERATOR.value and r["actionable"]
                for r in provider_internal),
        detail=f"{len(provider_internal)} provider-internal faults",
    )
    result.add_check(
        "a fault at the user's access link is reported to the end user",
        bool(access)
        and all(r["audience"] == Audience.END_USER.value and r["actionable"]
                for r in access),
        detail=f"{len(access)} access-link faults",
    )
    result.add_check(
        "re-convergence recovers every primary-path fault via the standby "
        "provider",
        all(r["recovered"] for r in primary_rows),
        detail=f"{len(primary_rows)} primary-path faults re-converged",
    )
    result.add_check(
        "off-path faults do not disturb delivery",
        all(r["delivered"] for r in off_path),
        detail=f"{len(off_path)} standby-chain faults",
    )
    result.add_check(
        "under seeded chaos, blame stays consistent: operator iff the fault "
        "sits inside a provider chain",
        all(r["consistent"] for r in chaos.rows),
        detail=(f"{sum(1 for r in chaos.rows if not r['delivered'])} faulty "
                f"probes of {len(chaos.rows)}"),
    )
    return result
