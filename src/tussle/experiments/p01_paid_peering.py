"""P01 — a paid-peering dispute that cannot break reachability (§V-A-4).

The paper's interconnection story: providers "must interconnect to
provide the reachability that users value", but *how* they interconnect
— settlement-free, paid, or not at all — is a tussle fought with money
and routes at run time.  P01 stages the canonical modern instance, the
paid-peering dispute, on a generated internet:

1. **Before** — :class:`~tussle.peering.PeeringDynamics` bargains the
   market to its fixed point.  Traffic imbalance (content-heavy cones
   send more than they receive) makes some agreements *paid*: the Nash
   split of the peering surplus has the heavy sender paying the
   eyeball-heavy side, even though both gain.
2. **Dispute** — the most imbalanced paid peering is torn down and
   embargoed (neither side will re-bargain).  Routes reconverge:
   traffic detours up through transit providers, paths lengthen, both
   parties' interconnection value drops — but reachability holds at
   100%, because the dispute can only touch ``PEER_PEER`` edges while
   reachability rides the customer/provider DAG.  The tussle is
   *isolated* by the interface the design drew, which is the paper's
   design-for-tussle prescription.
3. **Settlement** — the embargo lifts, the next bargaining round
   restores the agreement on identical terms (the fixed point is a pure
   function of the state, so the restoration is exact).

The one-shot honor/defect game over the disputed surplus is a
prisoner's dilemma (defection is each side's dominant strategy — the
dispute is *rational* myopia), and only repetition sustains peace:
:func:`~tussle.peering.bargain.peering_sustainable` checks the folk-
theorem condition, and a grim-trigger-vs-defector match shows the war
playing out round by round.
"""

from __future__ import annotations

from statistics import mean
from typing import List, Tuple

from ..errors import ExperimentError
from ..gametheory.nash import support_enumeration
from ..gametheory.repeated import (
    AlwaysDefect,
    GrimTrigger,
    RandomStrategy,
    play_match,
)
from ..peering import (
    AgreementKind,
    PeeringDynamics,
    PeeringEconomics,
    customer_cones,
    depeering_stage_game,
    peering_sustainable,
)
from ..topogen import TopogenConfig, generate_internet
from .common import ExperimentResult, Table

__all__ = ["run_p01"]


def _cross_cone_pairs(dyn: PeeringDynamics, a: int, b: int,
                      per_side: int = 5) -> List[Tuple[int, int]]:
    """Sample stub pairs whose traffic the disputed edge carried."""
    cones = customer_cones(dyn.network)
    only_a = [s for i, s in enumerate(dyn.traffic.stub_asns)
              if cones[a][i] and not cones[b][i]]
    only_b = [s for i, s in enumerate(dyn.traffic.stub_asns)
              if cones[b][i] and not cones[a][i]]
    return [(s, d) for s in only_a[:per_side] for d in only_b[:per_side]]


def run_p01(n_ases: int = 120, seed: int = 0) -> ExperimentResult:
    config = TopogenConfig(n_ases=n_ases, router_detail="none")
    network = generate_internet(config, seed=seed)
    econ = PeeringEconomics()
    dyn = PeeringDynamics(network, seed=seed, econ=econ)

    # --- Phase 1: bargain the market to its fixed point.
    before = dyn.run()
    paid = [before.agreements[p] for p in sorted(before.agreements)
            if before.agreements[p].kind is AgreementKind.PAID_PEERING]
    if not paid:
        raise ExperimentError("P01 needs at least one paid peering; "
                              "tune the economics knobs")
    disputed = max(paid, key=lambda ag: abs(ag.transfer))
    a, b = disputed.pair
    payer = a if disputed.transfer > 0 else b
    payee = b if disputed.transfer > 0 else a
    pairs = _cross_cone_pairs(dyn, a, b)
    acc_before = dyn.accounts()

    def phase_stats(tag: str):
        rib = dyn.routing.fast_rib
        reach = float((rib.cls != 3).mean())
        lens = [len(dyn.routing.as_path(s, d)) for s, d in pairs]
        acc = dyn.accounts()
        return {
            "phase": tag,
            "agreements": len(dyn.agreements),
            "reachability": reach,
            "mean_cross_path_len": mean(lens) if lens else 0.0,
            "net_payer": acc[payer].net,
            "net_payee": acc[payee].net,
        }

    phases = Table(
        "P01: the dispute, phase by phase",
        ["phase", "agreements", "reachability", "mean_cross_path_len",
         "transit_cost", "net_payer", "net_payee"],
    )
    stats_before = phase_stats("before")
    stats_before["transit_cost"] = before.history[-1].total_transit_cost
    phases.add_row(**stats_before)

    # --- Phase 2: the payer balks; the link comes down under embargo.
    dyn.depeer(a, b)
    during = dyn.run()
    stats_during = phase_stats("dispute")
    stats_during["transit_cost"] = during.history[-1].total_transit_cost
    phases.add_row(**stats_during)

    # --- Phase 3: settlement — back to the table, terms restored.
    dyn.lift_embargo(a, b)
    after = dyn.run()
    stats_after = phase_stats("settled")
    stats_after["transit_cost"] = after.history[-1].total_transit_cost
    phases.add_row(**stats_after)
    acc_after = dyn.accounts()
    restored = after.agreements.get((a, b))

    # --- The game theory of the dispute.
    game = depeering_stage_game(disputed.surplus)
    equilibria = support_enumeration(game)
    pure = [eq.pure_profile() for eq in equilibria if eq.is_pure()]
    sustainable = peering_sustainable(disputed.surplus, econ.discount)
    war = play_match(GrimTrigger(), AlwaysDefect(), game=game, rounds=20)
    # A sloppy peer (misses SLAs 20% of rounds) against a grim-trigger
    # enforcement clause: one slip and the peace never comes back.  The
    # probe draws from the bargaining substream of the master seed —
    # isolated from the traffic matrix's streams, so adding draws here
    # can never perturb the demand the agreements were priced on.
    sloppy = play_match(
        GrimTrigger(),
        RandomStrategy(p_cooperate=0.8, seed=dyn.bargain_seed),
        game=game, rounds=60)
    terms = Table(
        "P01: disputed agreement and its enforcement game",
        ["metric", "value"],
    )
    terms.add_row(metric="disputed_pair", value=f"{a}-{b}")
    terms.add_row(metric="transfer_per_round", value=abs(disputed.transfer))
    terms.add_row(metric="payer", value=payer)
    terms.add_row(metric="surplus", value=disputed.surplus)
    terms.add_row(metric="one_shot_pure_equilibria", value=str(pure))
    terms.add_row(metric="repeated_sustainable", value=sustainable)
    terms.add_row(metric="war_cooperation_rate", value=war.cooperation_rate)
    terms.add_row(metric="sloppy_peer_cooperation_rate",
                  value=sloppy.cooperation_rate)

    result = ExperimentResult(
        experiment_id="P01",
        title="Paid-peering dispute: money tussle, reachability intact",
        paper_claim=("§V-A-4: interconnection agreements are bargained at "
                     "run time — imbalance makes peering *paid*, disputes "
                     "tear links down — but a design that keeps the money "
                     "tussle on peer edges leaves the reachability users "
                     "value untouched."),
        tables=[phases, terms],
    )
    result.add_check(
        "traffic imbalance produces paid peering (heavy sender pays)",
        disputed.transfer != 0.0
        and (disputed.savings_a > disputed.savings_b) == (payer == a),
        detail=f"AS {payer} pays AS {payee} {abs(disputed.transfer):.1f}/round",
    )
    result.add_check(
        "the bargain splits the surplus equally (Nash solution)",
        abs(disputed.net_gain(a, econ)
            - disputed.net_gain(b, econ)) < 1e-6,
        detail=f"each side gains {disputed.net_gain(a, econ):.1f}",
    )
    result.add_check(
        "reachability is 100% before, during, and after the dispute",
        all(s["reachability"] == 1.0
            for s in (stats_before, stats_during, stats_after)),
        detail="dispute only touches PEER_PEER edges; the provider DAG holds",
    )
    result.add_check(
        "the dispute pushes cone traffic onto paid transit (cost up, "
        "paths never shorten)",
        stats_during["transit_cost"] > stats_before["transit_cost"]
        and stats_during["mean_cross_path_len"]
        >= stats_before["mean_cross_path_len"],
        detail=(f"transit bill {stats_before['transit_cost']:.0f}->"
                f"{stats_during['transit_cost']:.0f}; cross-cone paths "
                f"{stats_before['mean_cross_path_len']:.2f}->"
                f"{stats_during['mean_cross_path_len']:.2f} hops"),
    )
    result.add_check(
        "the dispute costs both parties interconnection value",
        stats_during["net_payer"] < stats_before["net_payer"]
        and stats_during["net_payee"] < stats_before["net_payee"],
        detail=(f"payer {stats_before['net_payer']:.0f}->"
                f"{stats_during['net_payer']:.0f}, payee "
                f"{stats_before['net_payee']:.0f}->"
                f"{stats_during['net_payee']:.0f}"),
    )
    result.add_check(
        "one-shot bargaining cannot hold the peace (defect/defect is the "
        "unique pure equilibrium)",
        pure == [(1, 1)],
        detail="the honor/defect stage game is a prisoner's dilemma",
    )
    result.add_check(
        "repetition sustains the agreement (folk theorem), and grim "
        "trigger answers defection with war",
        sustainable and war.cooperation_rate < 0.1,
        detail=(f"sustainable at discount {econ.discount}; war match "
                f"cooperation rate {war.cooperation_rate:.2f}"),
    )
    result.add_check(
        "grim-trigger enforcement turns operational noise into war",
        0.0 < sloppy.cooperation_rate < 1.0,
        detail=(f"a 20%-sloppy peer ends a 60-round match at cooperation "
                f"rate {sloppy.cooperation_rate:.2f}"),
    )
    result.add_check(
        "settlement restores the exact pre-dispute terms and accounts",
        restored is not None
        and restored.to_dict() == disputed.to_dict()
        and all(acc_after[x].net == acc_before[x].net for x in (a, b)),
        detail="the fixed point is a pure function of (network, seed, econ)",
    )
    return result
