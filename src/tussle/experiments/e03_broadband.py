"""E03 — Residential broadband access and open access (§V-A-3).

Paper claims:

* the collapse from ~5000 dialup ISPs to a telco/cable duopoly brings
  "higher prices and restrictions";
* open access imposed at the *natural* modularity boundary (facilities vs
  ISP service) restores service-level competition — municipal fiber "can
  be a platform for competitors";
* "most of today's open access proposals fail" because they are "not
  modularized along tussle space boundaries" (the wrong-boundary regime);
* "but they probably will not work to the advantage of those that invest
  in the fiber."

Workload: the two-layer facilities market of
:mod:`tussle.econ.accesstech`, swept over market structures and regimes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..econ import herfindahl_index
from ..econ.accesstech import AccessRegime, Facility, build_access_market
from ..errors import ExperimentError
from .common import ExperimentResult, Table

__all__ = ["run_e03", "scenario_facilities"]


def scenario_facilities(kind: str) -> List[Facility]:
    if kind == "dialup-era":
        # Many facility owners (the phone network was open to any ISP).
        return [Facility(f"pop{i}", wholesale_fee=6.0) for i in range(5)]
    if kind == "duopoly":
        return [
            Facility("telco", wholesale_fee=8.0),
            Facility("cable", wholesale_fee=8.0),
        ]
    if kind == "duopoly+muni-fiber":
        return [
            Facility("telco", wholesale_fee=8.0),
            Facility("cable", wholesale_fee=8.0),
            Facility("muni-fiber", wholesale_fee=5.0, neutral=True),
        ]
    raise ExperimentError(f"unknown scenario {kind!r}")


def run_e03(n_consumers: int = 200, rounds: int = 30, seed: int = 3) -> ExperimentResult:
    table = Table(
        "E03: broadband market structure x open-access regime",
        ["scenario", "regime", "n_retailers", "hhi",
         "final_price", "consumer_surplus"],
    )
    cells: List[Tuple[str, AccessRegime]] = [
        ("dialup-era", AccessRegime.OPEN_NATURAL_BOUNDARY),
        ("duopoly", AccessRegime.CLOSED),
        ("duopoly", AccessRegime.OPEN_WRONG_BOUNDARY),
        ("duopoly", AccessRegime.OPEN_NATURAL_BOUNDARY),
        ("duopoly+muni-fiber", AccessRegime.CLOSED),
        ("duopoly+muni-fiber", AccessRegime.OPEN_NATURAL_BOUNDARY),
    ]
    rows: Dict[Tuple[str, AccessRegime], Dict[str, float]] = {}
    for scenario, regime in cells:
        market = build_access_market(
            scenario_facilities(scenario), regime,
            n_consumers=n_consumers, seed=seed,
        )
        market.run(rounds)
        shares = [
            len(p.subscribers) / max(1, n_consumers)
            for p in market.providers.values()
            if p.subscribers
        ]
        row = {
            "n_retailers": len(market.providers),
            "hhi": herfindahl_index(shares) if shares else 1.0,
            "final_price": market.mean_price(),
            "consumer_surplus": market.total_consumer_surplus(),
        }
        rows[(scenario, regime)] = row
        table.add_row(scenario=scenario, regime=regime.value, **row)

    result = ExperimentResult(
        experiment_id="E03",
        title="Residential broadband and open access",
        paper_claim=("Duopoly control of the wires raises prices; open access "
                     "at the facilities/service boundary restores competition; "
                     "open access at the wrong boundary does not."),
        tables=[table],
    )

    duopoly_closed = rows[("duopoly", AccessRegime.CLOSED)]
    duopoly_wrong = rows[("duopoly", AccessRegime.OPEN_WRONG_BOUNDARY)]
    duopoly_natural = rows[("duopoly", AccessRegime.OPEN_NATURAL_BOUNDARY)]
    dialup = rows[("dialup-era", AccessRegime.OPEN_NATURAL_BOUNDARY)]
    muni = rows[("duopoly+muni-fiber", AccessRegime.OPEN_NATURAL_BOUNDARY)]

    result.add_check(
        "duopoly closure raises prices above the dialup-era level",
        duopoly_closed["final_price"] > dialup["final_price"],
        detail=(f"dialup {dialup['final_price']:.1f} vs closed duopoly "
                f"{duopoly_closed['final_price']:.1f}"),
    )
    result.add_check(
        "open access at the natural boundary pulls duopoly prices down",
        duopoly_natural["final_price"] < duopoly_closed["final_price"],
        detail=(f"{duopoly_closed['final_price']:.1f} -> "
                f"{duopoly_natural['final_price']:.1f}"),
    )
    result.add_check(
        "the wrong-boundary regime helps far less than the natural one",
        (duopoly_closed["final_price"] - duopoly_wrong["final_price"])
        < (duopoly_closed["final_price"] - duopoly_natural["final_price"]),
        detail=(f"price cut wrong-boundary "
                f"{duopoly_closed['final_price'] - duopoly_wrong['final_price']:.1f} "
                f"vs natural "
                f"{duopoly_closed['final_price'] - duopoly_natural['final_price']:.1f}"),
    )
    result.add_check(
        "municipal fiber + open access further improves consumer surplus",
        muni["consumer_surplus"] >= duopoly_natural["consumer_surplus"],
        detail=(f"surplus duopoly-open {duopoly_natural['consumer_surplus']:.0f} "
                f"vs +muni {muni['consumer_surplus']:.0f}"),
    )
    result.add_check(
        "concentration (HHI) falls when the natural boundary is opened",
        duopoly_natural["hhi"] < duopoly_closed["hhi"],
        detail=f"HHI {duopoly_closed['hhi']:.3f} -> {duopoly_natural['hhi']:.3f}",
    )
    return result
