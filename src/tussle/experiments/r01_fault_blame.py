"""R01 — Fault reporting routes blame to the actor who can act (§VI-A).

Paper claims:

* "failures of transparency will occur ... design what happens then":
  when delivery fails, the system should say *why* and *to whom* —
  "the hard challenge is not so much to find the fault but to report
  the problem to the right person in the right language";
* the right person depends on where the fault sits: a fault inside the
  provider's network is the **operator's** to fix, while a fault at the
  user's edge leaves the user with the remedy the paper keeps
  returning to — *choice* of another path or provider.

Workload: a multihomed user ``u`` reaching ``dst`` through two
providers — A (``aE``–``aC``, the shorter, primary path) and B
(``bE``–``bX``–``bC``, the standby).  A structural table fails every
link in turn (stale tables, so the fault is observed rather than routed
around) and routes the resulting report with
:meth:`~tussle.netsim.faults.FaultReporter.route`; re-convergence via
:class:`~tussle.routing.RouteRecovery` then measures whether
multihoming actually delivers the user's remedy.  A second table drives
a seeded :class:`~tussle.resil.ChaosSchedule` against the same network
and checks that blame routing stays consistent under random faults.
"""

from __future__ import annotations

from typing import List, Tuple

from ..netsim.faults import Audience, FaultReporter
from ..netsim.forwarding import ForwardingEngine
from ..netsim.packets import make_packet
from ..resil import ChaosInjector, ChaosSchedule
from ..routing import RouteRecovery
from ..topogen.presets import (
    MULTIHOMED_PRIMARY_LINKS as _PRIMARY_LINKS,
    MULTIHOMED_PROVIDER_NODES as _PROVIDER_NODES,
    multihomed_user_network as _build_network,
)
from .common import ExperimentResult, Table

__all__ = ["run_r01"]


def _engine() -> ForwardingEngine:
    engine = ForwardingEngine(_build_network())
    engine.install_shortest_path_tables()
    return engine


def _structural_table() -> Tuple[Table, List[str]]:
    """Fail every link in turn and route the blame."""
    reporter = FaultReporter()
    table = Table(
        "R01: single-link faults, blame routing, and recovery",
        ["link", "on_primary", "delivered", "audience", "actionable",
         "recovered"],
    )
    failures: List[str] = []
    links = sorted(_build_network().links, key=lambda l: l.key())
    for link in links:
        engine = _engine()
        engine.network.fail_link(link.a, link.b)
        receipt = engine.send(make_packet("u", "dst"))
        on_primary = link.key() in _PRIMARY_LINKS
        audience = None
        actionable = None
        if not receipt.delivered:
            report = reporter.route(receipt, _PROVIDER_NODES)
            audience = report.audience.value
            actionable = report.actionable
            failures.append(audience)
        recovered = RouteRecovery(engine).reconverge(1.0, probe=("u", "dst"))
        table.add_row(link="-".join(link.key()), on_primary=on_primary,
                      delivered=receipt.delivered, audience=audience,
                      actionable=actionable, recovered=recovered)
    return table, failures


def _chaos_table(seed: int, probes: int) -> Table:
    """Probe under a seeded fault process; blame must stay consistent."""
    reporter = FaultReporter()
    schedule = ChaosSchedule(seed=seed, horizon=float(probes),
                             link_failure_rate=0.4, link_repair=(0.5, 2.0))
    engine = _engine()
    injector = ChaosInjector(engine, schedule.plan(engine.network))
    table = Table(
        "R01: seeded chaos probes",
        ["time", "delivered", "location", "audience", "consistent"],
    )
    for i in range(probes):
        now = i + 0.5
        injector.advance(now)
        receipt = engine.send(make_packet("u", "dst"))
        location = None
        audience = None
        consistent = True
        if not receipt.delivered:
            report = reporter.route(receipt, _PROVIDER_NODES)
            location = report.location
            audience = report.audience.value
            blamed_provider = location in _PROVIDER_NODES
            consistent = (
                (audience == Audience.OPERATOR.value) == blamed_provider
                and report.actionable
            )
        table.add_row(time=now, delivered=receipt.delivered,
                      location=location, audience=audience,
                      consistent=consistent)
    return table


def run_r01(probes: int = 12, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="R01",
        title="Fault blame routes to the actor who can act",
        paper_claim=("§VI-A: report the problem to the right person in the "
                     "right language — the operator for faults inside the "
                     "provider, the user (whose remedy is choice) at the "
                     "edge."),
    )
    structural, _ = _structural_table()
    result.tables.append(structural)
    chaos = _chaos_table(seed, probes)
    result.tables.append(chaos)

    rows = structural.rows
    primary = [r for r in rows if r["on_primary"]]
    provider_internal = [r for r in primary if r["link"] != "aE-u"]
    access = [r for r in primary if r["link"] == "aE-u"]
    off_path = [r for r in rows if not r["on_primary"]]

    result.add_check(
        "faults inside the provider's network are reported to the operator, "
        "actionably",
        all(r["audience"] == Audience.OPERATOR.value and r["actionable"]
            for r in provider_internal),
        f"{len(provider_internal)} provider-internal faults",
    )
    result.add_check(
        "a fault at the user's access link is reported to the end user, "
        "whose remedy is choice",
        all(r["audience"] == Audience.END_USER.value and r["actionable"]
            for r in access),
        f"{len(access)} access-link faults",
    )
    result.add_check(
        "re-convergence recovers every primary-path fault via the second "
        "provider",
        all(r["recovered"] for r in primary),
        f"{len(primary)} primary-path faults re-converged",
    )
    result.add_check(
        "off-path faults do not disturb delivery",
        all(r["delivered"] for r in off_path),
        f"{len(off_path)} standby-path faults",
    )
    result.add_check(
        "under seeded chaos, blame routing stays consistent: operator iff "
        "the fault sits in the provider's network",
        all(r["consistent"] for r in chaos.rows),
        f"{sum(1 for r in chaos.rows if not r['delivered'])} faulty probes "
        f"of {len(chaos.rows)}",
    )
    return result
