"""E06 — Identity, anonymity, and refusal (§V-B-1).

Paper claims:

* trust-mediated communication needs identity: "parties must be able to
  know to whom they are talking";
* a global identity namespace is the wrong answer; a *framework* over
  diverse schemes (real name, role, certificate, pseudonym) is needed;
* "while it will be possible to act anonymously, many people will choose
  not to communicate with you if you do";
* "if you are trying to act in an anonymous way, it should be hard to
  disguise this fact."

Workload: a population of senders across identity schemes contacting
receivers whose acceptance policy requires a minimum accountability
level. We sweep disguise-detection strength for the disguised-anonymous
senders.
"""

from __future__ import annotations

from typing import Dict, List

from ..trust.identity import IdentityFramework, IdentityScheme, Principal
from .common import ExperimentResult, Table, monotone_decreasing

__all__ = ["run_e06"]

#: Accountability threshold a cautious receiver applies.
ACCEPT_FLOOR = 0.5


def _population(framework: IdentityFramework) -> List[Principal]:
    framework.trust_voucher("trusted-ca")
    principals = [
        Principal("alice", IdentityScheme.REAL_NAME),
        Principal("bob", IdentityScheme.CERTIFICATE, vouched_by="trusted-ca"),
        Principal("carol", IdentityScheme.CERTIFICATE, vouched_by="fly-by-night-ca"),
        Principal("dave", IdentityScheme.ROLE, roles={"operator"}),
        Principal("erin", IdentityScheme.PSEUDONYM),
        Principal("mallory", IdentityScheme.ANONYMOUS),
        Principal("trent", IdentityScheme.ANONYMOUS,
                  disguised_as=IdentityScheme.PSEUDONYM),
    ]
    for principal in principals:
        framework.register(principal)
    return principals


def run_e06(trials: int = 200, seed: int = 13) -> ExperimentResult:
    framework = IdentityFramework(disguise_detection_rate=0.9, seed=seed)
    principals = _population(framework)

    scheme_table = Table(
        "E06: acceptance rate by identity scheme (floor=0.5)",
        ["principal", "scheme", "accept_rate"],
    )
    accept_rates: Dict[str, float] = {}
    for principal in principals:
        accepted = 0
        for _ in range(trials):
            if framework.accountability_level(principal.name) >= ACCEPT_FLOOR:
                accepted += 1
        rate = accepted / trials
        accept_rates[principal.name] = rate
        label = principal.scheme.value
        if principal.disguised_as is not None:
            label += f" (disguised as {principal.disguised_as.value})"
        scheme_table.add_row(principal=principal.name, scheme=label,
                             accept_rate=rate)

    # Sweep disguise detection: how often does disguised anonymity slip by?
    disguise_table = Table(
        "E06b: disguise slip-through vs detection strength",
        ["detection_rate", "slip_through_rate"],
    )
    slip_rates: List[float] = []
    for detection in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
        sweep_framework = IdentityFramework(disguise_detection_rate=detection,
                                            seed=seed)
        sweep_framework.register(
            Principal("shade", IdentityScheme.ANONYMOUS,
                      disguised_as=IdentityScheme.PSEUDONYM)
        )
        slipped = sum(
            1 for _ in range(trials)
            if sweep_framework.apparent_scheme("shade") is not IdentityScheme.ANONYMOUS
        )
        rate = slipped / trials
        slip_rates.append(rate)
        disguise_table.add_row(detection_rate=detection, slip_through_rate=rate)

    result = ExperimentResult(
        experiment_id="E06",
        title="Identity framework, anonymity and refusal",
        paper_claim=("Accountable identities are accepted, anonymous parties "
                     "are refused, and disguising anonymity should be hard."),
        tables=[scheme_table, disguise_table],
    )

    result.add_check(
        "accountable schemes (real name, trusted cert) are always accepted",
        accept_rates["alice"] == 1.0 and accept_rates["bob"] == 1.0,
        detail=f"alice {accept_rates['alice']:.2f}, bob {accept_rates['bob']:.2f}",
    )
    result.add_check(
        "openly anonymous parties are refused",
        accept_rates["mallory"] == 0.0,
        detail=f"mallory {accept_rates['mallory']:.2f}",
    )
    result.add_check(
        "disguised anonymity rarely slips through at strong detection",
        accept_rates["trent"] < 0.25,
        detail=f"trent acceptance {accept_rates['trent']:.2f} at detection 0.9",
    )
    result.add_check(
        "slip-through falls monotonically as detection strengthens",
        monotone_decreasing(slip_rates),
        detail=f"slip rates {['%.2f' % r for r in slip_rates]}",
    )
    result.add_check(
        "pseudonyms sit between: persistent but below the cautious floor",
        accept_rates["erin"] == 0.0,
        detail="a 0.5 floor refuses bare pseudonyms; receivers could choose lower",
    )
    return result
