"""N01: forwarding outcomes are invariant across substrate fidelity.

The scale experiments (L01/L02) established that the *market* side of a
tussle can be replayed on a vectorized backend without changing a single
verdict.  N01 makes the same claim for the *network* substrate: the QoS
priority-billing traffic of E07/X06, forwarded over a dumbbell, produces
identical per-packet outcomes whether the substrate is the scalar
packet engine, the vectorized packet engine, or the flow-level
approximation — fidelity is a declared performance choice, never a
source of drift in what the experiment concludes.

``fidelity`` selects the subject backend and is a sweepable axis
(``packet-scalar`` / ``packet-vector`` / ``flow``); the scalar engine
always runs alongside as the oracle.  ``packet-scalar`` as the subject
checks the oracle against a fresh second run of itself — a determinism
control for the comparison harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ScaleError
from ..netsim.forwarding import ForwardingEngine
from ..netsim.qos import PRIORITY_TOS, TosQosClassifier
from ..netsim.topology import dumbbell_topology
from ..scale.flowsim import FlowSim
from ..scale.narrays import (
    NetIndex,
    PacketArrays,
    packets_from_traffic,
    traffic_stream,
)
from ..scale.vforwarding import STATUS_NAMES, VectorForwardingEngine
from .common import ExperimentResult, Table

__all__ = ["FIDELITIES", "run_n01"]

#: The fidelity ladder, cheapest-per-packet last (see DESIGN.md
#: "Scale backends").
FIDELITIES = ("packet-scalar", "packet-vector", "flow")

_BILL = 0.75

#: One observed outcome per traffic triple: (status, latency,
#: delivered_to) — the fields every rung of the ladder must agree on.
_Outcome = Tuple[str, float, Optional[str]]


def _scalar_outcomes(network, traffic) -> Tuple[List[_Outcome], float]:
    engine = ForwardingEngine(network)
    engine.install_shortest_path_tables()
    classifier = TosQosClassifier(threshold=PRIORITY_TOS,
                                  bill_per_packet=_BILL)
    packets = packets_from_traffic(traffic)
    for packet in packets:
        classifier.prioritize(packet)
    outcomes = []
    for packet in packets:
        receipt = engine.send(packet)
        outcomes.append((receipt.status.value, receipt.latency,
                         receipt.delivered_to))
    return outcomes, classifier.revenue


def _vector_outcomes(network, traffic) -> Tuple[List[_Outcome], float]:
    engine = VectorForwardingEngine(network)
    engine.install_shortest_path_tables()
    batch = PacketArrays.from_traffic(traffic,
                                      NetIndex.from_network(network))
    rounds = engine.send_batch(batch, tos_threshold=PRIORITY_TOS,
                               bill_per_packet=_BILL)
    outcomes = [
        (engine.status_name(batch.status[i]), float(batch.latency[i]),
         engine.delivered_to(batch, i))
        for i in range(len(batch))
    ]
    return outcomes, rounds[0].revenue


def _flow_outcomes(network, traffic) -> Tuple[List[_Outcome], float]:
    sim = FlowSim(network)
    outcomes = []
    for src, dst, _ in traffic:
        i = sim.index.of(src)
        j = sim.index.of(dst)
        status = STATUS_NAMES[sim.path_status(i, j)]
        delivered_to = dst if status == "delivered" else None
        outcomes.append((status, sim.path_latency(i, j), delivered_to))
    # Flow fidelity declares away QoS billing (DESIGN.md): report the
    # analytic revenue the packet classifiers would have collected.
    revenue = _BILL * sum(1 for _, _, tos in traffic
                          if tos >= PRIORITY_TOS)
    return outcomes, revenue


_BACKENDS = {
    "packet-scalar": _scalar_outcomes,
    "packet-vector": _vector_outcomes,
    "flow": _flow_outcomes,
}


def run_n01(seed: int = 0, fidelity: str = "packet-vector",
            n_packets: int = 240) -> ExperimentResult:
    """Replay one traffic sample on the oracle and the chosen fidelity."""
    if fidelity not in _BACKENDS:
        raise ScaleError(
            f"unknown fidelity {fidelity!r}; choose from {FIDELITIES}")

    network = dumbbell_topology(6, 6)
    traffic = traffic_stream(network.node_names(), n_packets, seed)
    oracle_network = dumbbell_topology(6, 6)
    oracle, oracle_revenue = _scalar_outcomes(oracle_network, traffic)
    subject, subject_revenue = _BACKENDS[fidelity](network, traffic)

    table = Table(
        "N01: per-packet outcomes, scalar oracle vs subject backend",
        ["backend", "delivered", "delivery_rate", "total_latency",
         "revenue"],
    )
    result = ExperimentResult(
        experiment_id="N01",
        title="Substrate fidelity does not change forwarding outcomes",
        paper_claim=("Tussles must be separable from mechanism: the "
                     "QoS-billing traffic of E07/X06 reaches identical "
                     "per-packet verdicts on every substrate fidelity "
                     "(scalar packets, vectorized packets, flow-level), "
                     "so scaling the simulation never rewrites what the "
                     "experiment concludes."),
        tables=[table],
    )

    def summarize(label: str, outcomes: List[_Outcome],
                  revenue: float) -> None:
        delivered = sum(1 for status, _, _ in outcomes
                        if status == "delivered")
        table.add_row(
            backend=label,
            delivered=delivered,
            delivery_rate=delivered / len(outcomes),
            total_latency=sum(latency for _, latency, _ in outcomes),
            revenue=revenue,
        )

    summarize("oracle (packet-scalar)", oracle, oracle_revenue)
    summarize(f"subject ({fidelity})", subject, subject_revenue)

    status_agree = all(o[0] == s[0] and o[2] == s[2]
                       for o, s in zip(oracle, subject))
    result.add_check(
        f"{fidelity}: every delivery outcome matches the scalar oracle",
        status_agree,
        detail=f"{len(traffic)} packets, "
               f"{sum(1 for o, s in zip(oracle, subject) if o[0] != s[0])} "
               f"status disagreements",
    )
    latency_equal = all(o[1] == s[1] for o, s in zip(oracle, subject))
    result.add_check(
        f"{fidelity}: per-packet latency is bitwise equal to the oracle",
        latency_equal,
        detail="float equality, no tolerance — parity, not approximation",
    )
    result.add_check(
        f"{fidelity}: priority billing revenue matches the oracle",
        subject_revenue == oracle_revenue,
        detail=f"oracle {oracle_revenue:.2f} vs subject "
               f"{subject_revenue:.2f}",
    )
    return result
