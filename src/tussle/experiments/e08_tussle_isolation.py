"""E08 — Modularize along tussle boundaries: the DNS case (§IV-A).

Paper claims:

* DNS is "entangled in debate because DNS names are used both to name
  machines and to express trademark";
* "names that express trademarks should be used for as little else as
  possible" — the separated design confines disputes to a directory layer
  and machine naming keeps working;
* "solutions that are less efficient from a technical perspective may do
  a better job of isolating the collateral damage of tussle" — the
  separated design costs an extra resolution step.

Workload: the trademark-dispute campaign of
:func:`tussle.core.spillover.dns_spillover` on both name systems, plus a
structural isolation-score comparison of the two designs.
"""

from __future__ import annotations


from ..core.design import Design
from ..core.principles import isolation_score
from ..core.spillover import dns_spillover, spillover_from_event
from ..netsim.dns import EntangledNameSystem, SeparatedNameSystem
from .common import ExperimentResult, Table

__all__ = ["run_e08", "entangled_dns_design", "separated_dns_design"]


def entangled_dns_design() -> Design:
    """Structural model of today's DNS: one module, entangled functions."""
    design = Design("entangled-dns")
    design.add_module("dns")
    design.place_function("dns", "resolve-names",
                          tussle_spaces=["trademark", "machine-naming"])
    design.place_function("dns", "name-mailboxes",
                          tussle_spaces=["trademark"])
    design.place_function("dns", "cache-records")
    return design


def separated_dns_design() -> Design:
    """The paper's counterfactual: directory and machine naming split."""
    design = Design("separated-dns")
    design.add_module("directory")
    design.add_module("machine-naming")
    design.add_module("mailbox-naming")
    design.place_function("directory", "resolve-human-names",
                          tussle_spaces=["trademark"])
    design.place_function("machine-naming", "resolve-identifiers",
                          tussle_spaces=["machine-naming"])
    design.place_function("mailbox-naming", "name-mailboxes",
                          tussle_spaces=["mailbox"])
    design.connect("directory", "machine-naming", open_=True, tussle_aware=True)
    design.connect("mailbox-naming", "machine-naming", open_=True)
    return design


def run_e08(n_names: int = 30, dispute_fraction: float = 0.3,
            seed: int = 17) -> ExperimentResult:
    workload = Table(
        "E08: trademark-dispute damage by name-system design",
        ["design", "disputes", "human_name_breakage", "service_breakage",
         "machine_bindings_broken", "collateral_rate", "resolution_steps"],
    )
    entangled = dns_spillover(EntangledNameSystem(), n_names=n_names,
                              dispute_fraction=dispute_fraction, seed=seed)
    separated = dns_spillover(SeparatedNameSystem(), n_names=n_names,
                              dispute_fraction=dispute_fraction, seed=seed)
    workload.add_row(design="entangled", disputes=entangled.disputes,
                     human_name_breakage=entangled.human_name_breakage,
                     service_breakage=entangled.service_breakage,
                     machine_bindings_broken=entangled.machine_bindings_broken,
                     collateral_rate=entangled.collateral_rate,
                     resolution_steps=1)
    workload.add_row(design="separated", disputes=separated.disputes,
                     human_name_breakage=separated.human_name_breakage,
                     service_breakage=separated.service_breakage,
                     machine_bindings_broken=separated.machine_bindings_broken,
                     collateral_rate=separated.collateral_rate,
                     resolution_steps=2)

    structure = Table(
        "E08b: structural isolation scores",
        ["design", "isolation_score", "trademark_spillover_ratio"],
    )
    entangled_design = entangled_dns_design()
    separated_design = separated_dns_design()
    structure.add_row(
        design="entangled",
        isolation_score=isolation_score(entangled_design),
        trademark_spillover_ratio=spillover_from_event(
            entangled_design, "trademark").ratio,
    )
    structure.add_row(
        design="separated",
        isolation_score=isolation_score(separated_design),
        trademark_spillover_ratio=spillover_from_event(
            separated_design, "trademark").ratio,
    )

    result = ExperimentResult(
        experiment_id="E08",
        title="Tussle isolation: entangled vs separated naming",
        paper_claim=("Entangling trademark with machine naming lets disputes "
                     "break bystander services; separating them confines the "
                     "tussle to the directory at the cost of one extra "
                     "resolution step."),
        tables=[workload, structure],
    )

    result.add_check(
        "disputes break dependent services only in the entangled design",
        entangled.service_breakage > 0 and separated.service_breakage == 0,
        detail=(f"entangled broke {entangled.service_breakage} services, "
                f"separated broke {separated.service_breakage}"),
    )
    result.add_check(
        "machine-level bindings survive disputes in the separated design",
        separated.machine_bindings_broken == 0
        and entangled.machine_bindings_broken > 0,
        detail=(f"entangled {entangled.machine_bindings_broken} vs "
                f"separated {separated.machine_bindings_broken}"),
    )
    result.add_check(
        "the separated design scores higher structural isolation",
        isolation_score(separated_design) > isolation_score(entangled_design),
        detail=(f"isolation {isolation_score(entangled_design):.2f} -> "
                f"{isolation_score(separated_design):.2f}"),
    )
    result.add_check(
        "isolation costs technical efficiency (extra resolution step)",
        workload.rows[1]["resolution_steps"] > workload.rows[0]["resolution_steps"],
        detail="the paper: less efficient solutions may isolate tussle better",
    )
    return result
