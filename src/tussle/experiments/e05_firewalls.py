"""E05 — Trust, firewalls, and the cost to innovation (§V-B).

Paper claims:

* users "would like protection from system penetration attacks, DoS
  attacks" — hence firewalls, despite purists' complaints;
* blanket "that which is not permitted is forbidden" firewalls block the
  bad guys *and* new applications ("firewalls inhibit innovation");
* trust-mediated transparency — constraints "based on who is
  communicating, as well as (or instead of) what protocols are being
  run" — can block untrusted parties while leaving trusted parties'
  *novel* applications working.

Workload: a user behind a gateway, facing attackers, known-app senders
and new-app senders. Four deployments: no firewall, port filter,
blanket allow-list, trust-aware.
"""

from __future__ import annotations


from ..netsim import (
    BlanketFirewall,
    ForwardingEngine,
    PortFilterFirewall,
)
from ..topogen.presets import guarded_enterprise_network as _build_network
from ..trust import AttackKind, Attacker, ThreatCampaign, TrustAwareFirewall, TrustGraph
from .common import ExperimentResult, Table

__all__ = ["run_e05"]


def _engine() -> ForwardingEngine:
    engine = ForwardingEngine(_build_network())
    engine.install_shortest_path_tables()
    return engine


def _campaign(engine: ForwardingEngine, seed: int = 0) -> ThreatCampaign:
    attackers = [
        Attacker("badguy0", kind=AttackKind.PENETRATION, seed=seed),
        Attacker("badguy1", kind=AttackKind.SCAN, seed=seed + 1),
    ]
    legit = [("friend", "http"), ("colleague", "smtp")]
    new_apps = [("friend", "holo-conference"), ("colleague", "mesh-sync")]
    return ThreatCampaign(engine, victim="victim", attackers=attackers,
                          legit_senders=legit, new_app_senders=new_apps)


def run_e05(packets_per_source: int = 10, seed: int = 0) -> ExperimentResult:
    table = Table(
        "E05: firewall design vs protection and innovation",
        ["deployment", "attack_admission", "legit_success", "new_app_success"],
    )

    # --- No firewall: full transparency.
    engine = _engine()
    mix = _campaign(engine, seed).run(packets_per_source)
    table.add_row(deployment="none",
                  attack_admission=mix.attack_admission_rate,
                  legit_success=mix.legit_success_rate,
                  new_app_success=mix.new_app_success_rate)

    # --- Port-filter firewall: block the classically abused ports.
    engine = _engine()
    engine.attach_middlebox("gw", PortFilterFirewall(
        "gw-portfilter", blocked_applications={"smtp"}, blocked_ports=set()))
    mix = _campaign(engine, seed).run(packets_per_source)
    table.add_row(deployment="port-filter",
                  attack_admission=mix.attack_admission_rate,
                  legit_success=mix.legit_success_rate,
                  new_app_success=mix.new_app_success_rate)

    # --- Blanket firewall: allow-list of known applications only.
    engine = _engine()
    engine.attach_middlebox("gw", BlanketFirewall(
        "gw-blanket", allowed_applications={"http", "smtp"}))
    mix = _campaign(engine, seed).run(packets_per_source)
    table.add_row(deployment="blanket",
                  attack_admission=mix.attack_admission_rate,
                  legit_success=mix.legit_success_rate,
                  new_app_success=mix.new_app_success_rate)

    # --- Trust-aware firewall: admit by who, not what.
    engine = _engine()
    trust = TrustGraph()
    trust.set_trust("victim", "friend", 0.9)
    trust.set_trust("victim", "colleague", 0.8)
    trust.set_trust("victim", "stranger", 0.2)
    engine.attach_middlebox("gw", TrustAwareFirewall(
        "gw-trust", protected="victim", trust_graph=trust, trust_threshold=0.5))
    mix = _campaign(engine, seed).run(packets_per_source)
    table.add_row(deployment="trust-aware",
                  attack_admission=mix.attack_admission_rate,
                  legit_success=mix.legit_success_rate,
                  new_app_success=mix.new_app_success_rate)

    result = ExperimentResult(
        experiment_id="E05",
        title="Firewall designs: protection vs innovation",
        paper_claim=("No firewall admits the bad guys; blanket firewalls stop "
                     "attacks but kill new applications; trust-aware firewalls "
                     "stop attacks while trusted parties' new apps still work."),
        tables=[table],
    )

    rows = {row["deployment"]: row for row in table.rows}
    result.add_check(
        "with no firewall, attacks get through",
        rows["none"]["attack_admission"] == 1.0,
        detail=f"admission {rows['none']['attack_admission']:.2f}",
    )
    result.add_check(
        "the blanket firewall stops attacks on unknown ports AND new apps",
        rows["blanket"]["new_app_success"] == 0.0
        and rows["blanket"]["attack_admission"]
        < rows["none"]["attack_admission"],
        detail=(f"new-app success {rows['blanket']['new_app_success']:.2f}, "
                f"attack admission {rows['blanket']['attack_admission']:.2f}"),
    )
    result.add_check(
        "the trust-aware firewall blocks all attacks",
        rows["trust-aware"]["attack_admission"] == 0.0,
        detail=f"admission {rows['trust-aware']['attack_admission']:.2f}",
    )
    result.add_check(
        "yet new applications from trusted parties still work",
        rows["trust-aware"]["new_app_success"] == 1.0,
        detail=f"new-app success {rows['trust-aware']['new_app_success']:.2f}",
    )
    result.add_check(
        "blanket vs trust-aware is the innovation trade-off the paper names",
        rows["trust-aware"]["new_app_success"]
        > rows["blanket"]["new_app_success"],
        detail="trust mediation preserves deployability of the unforeseen",
    )
    return result
