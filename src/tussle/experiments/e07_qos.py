"""E07 — The QoS deployment post-mortem (§VII).

Paper claim: explicit QoS failed to emerge as an *open* end-to-end service
because of "a failure first to design any value-transfer mechanism to give
the providers the possibility of being rewarded for making the investment
(greed), and second, a failure to couple the design to a mechanism whereby
the user can exercise choice to select the provider who offered the
service (competitive fear)." Absent those, ISPs that deploy at all do so
*closed* — "if they deploy QoS mechanisms but only turn them on for
applications that they sell... they can price it at monopoly prices."

Workload: the symmetric deployment game of
:mod:`tussle.econ.investment`, run over the 2x2 factorial (value flow x
user choice), plus the ablation where closed deployment is impossible.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..econ.investment import (
    DeploymentChoice,
    InvestmentModel,
    qos_deployment_game,
)
from .common import ExperimentResult, Table

__all__ = ["run_e07"]


def run_e07(model: InvestmentModel = None,
            seed: int = 0) -> ExperimentResult:
    # `seed` satisfies the uniform run(seed=...) harness contract; the
    # deployment-game sweep is fully deterministic.
    model = model or InvestmentModel()

    table = Table(
        "E07: QoS deployment equilibrium per factorial cell",
        ["value_flow", "user_choice", "equilibrium", "open_deployment"],
    )
    cells = qos_deployment_game(model, allow_closed=True)
    outcomes: Dict[Tuple[bool, bool], DeploymentChoice] = {}
    for cell in cells:
        outcomes[(cell.value_flow, cell.user_choice)] = cell.outcome
        table.add_row(
            value_flow=cell.value_flow,
            user_choice=cell.user_choice,
            equilibrium=cell.outcome.value,
            open_deployment=cell.open_deployment,
        )

    ablation = Table(
        "E07b (ablation): equilibria when closed deployment is impossible",
        ["value_flow", "user_choice", "equilibrium"],
    )
    ablation_outcomes: Dict[Tuple[bool, bool], DeploymentChoice] = {}
    for cell in qos_deployment_game(model, allow_closed=False):
        ablation_outcomes[(cell.value_flow, cell.user_choice)] = cell.outcome
        ablation.add_row(
            value_flow=cell.value_flow,
            user_choice=cell.user_choice,
            equilibrium=cell.outcome.value,
        )

    result = ExperimentResult(
        experiment_id="E07",
        title="QoS deployment: fear and greed factorial",
        paper_claim=("Open QoS deployment requires BOTH a value-flow mechanism "
                     "(greed) AND user provider-choice (fear); otherwise "
                     "deployment is closed (vertical integration) or absent."),
        tables=[table, ablation],
    )

    result.add_check(
        "open deployment happens ONLY in the (value-flow, user-choice) cell",
        outcomes[(True, True)] is DeploymentChoice.DEPLOY_OPEN
        and all(
            outcomes[cell] is not DeploymentChoice.DEPLOY_OPEN
            for cell in [(False, False), (False, True), (True, False)]
        ),
        detail=str({k: v.value for k, v in outcomes.items()}),
    )
    result.add_check(
        "cells lacking either factor produce CLOSED deployment "
        "(the monopoly-priced bundled service)",
        all(
            outcomes[cell] is DeploymentChoice.DEPLOY_CLOSED
            for cell in [(False, False), (False, True), (True, False)]
        ),
        detail="vertical integration monetizes without open value flow",
    )
    result.add_check(
        "ablation: with closed deployment impossible and no user choice, "
        "QoS simply does not deploy (the observed Internet outcome)",
        ablation_outcomes[(False, False)] is DeploymentChoice.NO_DEPLOY
        and ablation_outcomes[(True, False)] is DeploymentChoice.NO_DEPLOY,
        detail=str({k: v.value for k, v in ablation_outcomes.items()}),
    )
    result.add_check(
        "ablation: both factors together still produce open deployment",
        ablation_outcomes[(True, True)] is DeploymentChoice.DEPLOY_OPEN,
        detail="the paper's prescription survives the ablation",
    )
    return result
