"""E02 — Value pricing and the tunnelling counter-move (§V-A-2).

Paper claim: providers tier prices to separate customers by willingness to
pay ("no servers on the residential rate"); customers respond by switching
to another provider "if there is one, or by tunneling to disguise the port
numbers being used." Mechanisms that mask usage (tunnels) "shift the
balance of power from the producer to the consumer," and the outcome
"depends strongly on whether one perceives competition as currently
healthy."

Workload: a market where all providers value-price. We sweep the cells
(monopoly vs competitive) x (consumers can tunnel vs cannot) and report
tier revenue extraction, tunnelling uptake, and consumer surplus.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..econ import (
    Consumer,
    Market,
    MonopolyPricing,
    Provider,
    UndercutPricing,
    ValuePricingStrategy,
)
from ..econ.demand import Segment, UniformWtp
from .common import ExperimentResult, Table

__all__ = ["run_e02", "value_pricing_market_spec"]


def value_pricing_market_spec(n_providers: int, can_tunnel: bool,
                              detects_tunnels: bool, n_consumers: int,
                              seed: int) -> dict:
    """Constructor kwargs for one E02 value-pricing cell.

    Fresh objects per call, so the same spec can feed both the scalar
    market and the ``tussle.scale`` vector backend (the parity harness
    relies on this).
    """
    providers = []
    strategies = {}
    for i in range(n_providers):
        name = f"isp{i}"
        providers.append(Provider(
            name=name,
            price=30.0,
            business_price=42.0,
            unit_cost=5.0,
            detects_tunnels=detects_tunnels,
        ))
        base = MonopolyPricing(price_cap=45.0) if n_providers == 1 else UndercutPricing()
        strategies[name] = ValuePricingStrategy(tier_multiple=1.4, base_strategy=base)
    rng = random.Random(seed)
    basic_wtp = UniformWtp(25.0, 60.0)
    business_wtp = UniformWtp(35.0, 70.0)
    consumers: List[Consumer] = []
    for i in range(n_consumers):
        if i % 3 == 0:  # a third of households want to run a server
            consumers.append(Consumer(
                name=f"home{i}",
                wtp=business_wtp.sample(rng),
                segment=Segment.BUSINESS,
                server_value=30.0,
                can_tunnel=can_tunnel,
                tunnel_cost=3.0,
                switching_cost=2.0,
            ))
        else:
            consumers.append(Consumer(
                name=f"home{i}",
                wtp=basic_wtp.sample(rng),
                segment=Segment.BASIC,
                switching_cost=2.0,
            ))
    return dict(providers=providers, consumers=consumers,
                strategies=strategies, seed=seed)


def _build_market(n_providers: int, can_tunnel: bool, detects_tunnels: bool,
                  n_consumers: int, seed: int) -> Market:
    return Market(**value_pricing_market_spec(
        n_providers, can_tunnel, detects_tunnels, n_consumers, seed))


def run_e02(n_consumers: int = 150, rounds: int = 25, seed: int = 11) -> ExperimentResult:
    table = Table(
        "E02: value pricing under competition x tunnelling",
        ["market", "tunnels", "detects", "tunnel_uptake",
         "provider_profit", "consumer_surplus"],
    )
    cells: List[Tuple[str, int, bool, bool]] = [
        ("monopoly", 1, False, False),
        ("monopoly", 1, True, False),
        ("competitive", 4, False, False),
        ("competitive", 4, True, False),
        ("monopoly+dpi", 1, True, True),
    ]
    measurements: Dict[Tuple[str, bool, bool], Dict[str, float]] = {}
    for label, n_providers, can_tunnel, detects in cells:
        market = _build_market(n_providers, can_tunnel, detects, n_consumers, seed)
        market.run(rounds)
        business = [c for c in market.consumers if c.segment is Segment.BUSINESS]
        tunnel_uptake = (
            sum(1 for c in business if c.tunnelling) / len(business) if business else 0.0
        )
        row = {
            "tunnel_uptake": tunnel_uptake,
            "provider_profit": market.total_provider_profit(),
            "consumer_surplus": market.total_consumer_surplus(),
        }
        measurements[(label, can_tunnel, detects)] = row
        table.add_row(market=label, tunnels=can_tunnel, detects=detects, **row)

    result = ExperimentResult(
        experiment_id="E02",
        title="Value pricing vs the tunnelling counter-move",
        paper_claim=("Tiering extracts surplus from server-running customers; "
                     "tunnels shift power back to the consumer; competition "
                     "disciplines the tier premium; detection (the provider's "
                     "counter-counter-move) restores extraction."),
        tables=[table],
    )

    mono_plain = measurements[("monopoly", False, False)]
    mono_tunnel = measurements[("monopoly", True, False)]
    comp_plain = measurements[("competitive", False, False)]
    mono_dpi = measurements[("monopoly+dpi", True, True)]

    result.add_check(
        "tunnelling raises consumer surplus under monopoly tiering",
        mono_tunnel["consumer_surplus"] > mono_plain["consumer_surplus"],
        detail=(f"surplus {mono_plain['consumer_surplus']:.0f} -> "
                f"{mono_tunnel['consumer_surplus']:.0f} once tunnels exist"),
    )
    result.add_check(
        "tunnelling cuts the monopolist's extraction",
        mono_tunnel["provider_profit"] < mono_plain["provider_profit"],
        detail=(f"profit {mono_plain['provider_profit']:.0f} -> "
                f"{mono_tunnel['provider_profit']:.0f}"),
    )
    result.add_check(
        "competition alone already disciplines extraction",
        comp_plain["provider_profit"] < mono_plain["provider_profit"]
        and comp_plain["consumer_surplus"] > mono_plain["consumer_surplus"],
        detail=(f"monopoly profit {mono_plain['provider_profit']:.0f} vs "
                f"competitive {comp_plain['provider_profit']:.0f}"),
    )
    result.add_check(
        "tunnel detection (escalation) restores extraction",
        mono_dpi["provider_profit"] > mono_tunnel["provider_profit"]
        and mono_dpi["tunnel_uptake"] < mono_tunnel["tunnel_uptake"] + 1e-9,
        detail=(f"profit {mono_tunnel['provider_profit']:.0f} -> "
                f"{mono_dpi['provider_profit']:.0f} with DPI"),
    )
    result.add_check(
        "tunnels are actually used under monopoly tiering",
        mono_tunnel["tunnel_uptake"] > 0.3,
        detail=f"uptake {mono_tunnel['tunnel_uptake']:.2f}",
    )
    return result
