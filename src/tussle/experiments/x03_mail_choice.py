"""X03 — The mail system: design for choice at work (§IV-B, §VI-A).

Three measurements from the paper's mail example:

* **market discipline** — "this sort of choice drives innovation and
  product enhancement, and imposes discipline on the marketplace":
  users free to switch abandon unreliable SMTP servers;
* **the ISP's counter-move** — "an ISP might try to control what SMTP
  server a customer uses by redirecting packets based on the port
  number": a redirector overrides the user's choice, measurably;
* **application design guidelines** — the §VI-A guidelines, applied to a
  choice-preserving mail design and a locked-down walled-garden design.
"""

from __future__ import annotations

from typing import Dict

from ..core.guidelines import ApplicationDesign, audit, tussle_readiness_grade
from ..netsim.forwarding import ForwardingEngine
from ..netsim.mail import (
    MailServer,
    MailSystem,
    MailUser,
    build_mail_topology,
    server_market_discipline,
)
from ..netsim.middlebox import Redirector
from .common import ExperimentResult, Table

__all__ = ["run_x03", "open_mail_design", "walled_garden_design"]


def open_mail_design() -> ApplicationDesign:
    """The classic mail architecture the paper praises."""
    return ApplicationDesign(
        name="open-mail",
        user_selectable_roles={"smtp-server", "pop-server", "news-server"},
        third_parties={"spam-filter"},
        third_parties_selectable=True,
        supports_encryption=True,
        encryption_user_controlled=True,
        reports_failures=True,
        interfaces_open=True,
        preconfigured_defaults=True,
    )


def walled_garden_design() -> ApplicationDesign:
    """A vertically-integrated messaging silo."""
    return ApplicationDesign(
        name="walled-garden-mail",
        user_selectable_roles=set(),
        fixed_roles={"message-server", "directory"},
        third_parties={"content-scanner"},
        third_parties_selectable=False,
        supports_encryption=False,
        reports_failures=False,
        interfaces_open=False,
        preconfigured_defaults=True,
    )


def run_x03(seed: int = 23) -> ExperimentResult:
    # --- Market discipline: reliable servers win the free-choice market.
    counts = server_market_discipline(
        reliabilities=[0.99, 0.80, 0.60], seed=seed)
    discipline = Table(
        "X03: server reliability vs final user count (free choice)",
        ["server", "reliability", "final_users"],
    )
    for (name, users), reliability in zip(sorted(counts.items()),
                                          [0.99, 0.80, 0.60]):
        discipline.add_row(server=name, reliability=reliability,
                           final_users=users)

    # --- The ISP redirection counter-move.
    servers = [MailServer("user-smtp", reliability=0.99),
               MailServer("isp-smtp", reliability=0.95)]
    net = build_mail_topology([s.name for s in servers])
    engine = ForwardingEngine(net)
    engine.install_shortest_path_tables()
    engine.attach_middlebox("isp-access", Redirector(
        "isp-capture", port=25, new_destination="isp-smtp"))
    system = MailSystem(engine, servers, seed=seed)
    user = MailUser(name="user", smtp_server="user-smtp",
                    pop_server="user-smtp")
    for _ in range(50):
        system.send(user)
    redirection = Table(
        "X03b: ISP SMTP capture vs the user's configured choice",
        ["configured_server", "redirection_rate", "delivery_rate"],
    )
    redirection.add_row(configured_server="user-smtp",
                        redirection_rate=system.redirection_rate(),
                        delivery_rate=user.delivery_rate())

    # --- Guideline audit of the two designs.
    audit_table = Table(
        "X03c: application design guideline audit",
        ["design", "serious_violations", "advisory_violations", "grade"],
    )
    grades: Dict[str, str] = {}
    for design in (open_mail_design(), walled_garden_design()):
        findings = audit(design)
        serious = sum(1 for f in findings if f.serious)
        grade = tussle_readiness_grade(design)
        grades[design.name] = grade
        audit_table.add_row(design=design.name,
                            serious_violations=serious,
                            advisory_violations=len(findings) - serious,
                            grade=grade)

    result = ExperimentResult(
        experiment_id="X03",
        title="Mail: choice, the ISP counter-move, and design guidelines",
        paper_claim=("Server choice disciplines the market; ISPs counter "
                     "with port-based redirection; application design "
                     "guidelines distinguish choice-preserving designs "
                     "from walled gardens."),
        tables=[discipline, redirection, audit_table],
    )

    ordered = sorted(counts.items())
    result.add_check(
        "the most reliable server ends with the most users",
        ordered[0][1] == max(counts.values()),
        detail=f"final counts {counts}",
    )
    result.add_check(
        "the least reliable server is abandoned",
        ordered[-1][1] == 0,
        detail=f"final counts {counts}",
    )
    result.add_check(
        "the ISP redirector overrides 100% of the user's SMTP choices",
        system.redirection_rate() == 1.0,
        detail=f"redirection rate {system.redirection_rate():.2f}",
    )
    result.add_check(
        "mail still flows — the tussle is over WHO serves it, not whether",
        user.delivery_rate() > 0.8,
        detail=f"delivery via the ISP's server {user.delivery_rate():.2f}",
    )
    result.add_check(
        "the guideline audit grades open mail A/B and the walled garden D/F",
        grades["open-mail"] in ("A", "B")
        and grades["walled-garden-mail"] in ("D", "F"),
        detail=str(grades),
    )
    return result
