"""X05 — Colliding actor networks: the VoIP story (§II-C).

"When the creation of voice over IP (VoIP) causes the Internet to collide
with the 'telephone system,' the key issue is not a collision of
technologies, but a collision between large, heterogeneous actor
networks."

We build a loose, young Internet actor network and a solidified telephone
network (tight commitments, harmonized values, far from the Internet's in
value space), bridge them with VoIP commitments, and let alignment run.

Shapes checked: the collision is turbulent (ties dissolve or actors are
dragged); the *less solidified* side yields more ground in value space;
and the merged network is more changeable than the telephone network was
— new actors reopen a settled world to change.
"""

from __future__ import annotations


import numpy as np

from ..actornet.actors import DEFAULT_VALUE_DIMS, Actor, ActorKind
from ..actornet.collision import collide
from ..actornet.durability import changeability, durability
from ..actornet.network import ActorNetwork
from .common import ExperimentResult, Table

__all__ = ["run_x05", "build_internet_side", "build_telephone_side"]


def build_internet_side(seed: int = 0) -> ActorNetwork:
    """A young, loosely-aligned Internet actor network near the origin."""
    rng = np.random.default_rng(seed)
    network = ActorNetwork()
    protocols = Actor.make("ip-protocols", ActorKind.TECHNOLOGY,
                           values=np.zeros(DEFAULT_VALUE_DIMS),
                           expresses_intention_of="ietf")
    network.add_actor(protocols)
    network.add_actor(Actor.make("ietf", ActorKind.DESIGNER,
                                 values=rng.uniform(-0.3, 0.3,
                                                    DEFAULT_VALUE_DIMS)))
    network.commit("ietf", "ip-protocols", 0.8)
    for i in range(4):
        name = f"netizen{i}"
        network.add_actor(Actor.make(name, ActorKind.USER,
                                     values=rng.uniform(-0.8, 0.8,
                                                        DEFAULT_VALUE_DIMS)))
        network.commit(name, "ip-protocols", 0.4)
    network.add_actor(Actor.make("voip-app", ActorKind.APPLICATION,
                                 values=rng.uniform(-0.4, 0.4,
                                                    DEFAULT_VALUE_DIMS),
                                 expresses_intention_of="ietf"))
    network.commit("voip-app", "ip-protocols", 0.6)
    return network


def build_telephone_side(seed: int = 1) -> ActorNetwork:
    """A solidified telephone network: tight, harmonized, far away."""
    rng = np.random.default_rng(seed)
    center = np.full(DEFAULT_VALUE_DIMS, 1.8)
    network = ActorNetwork()
    pstn = Actor.make("pstn-standards", ActorKind.TECHNOLOGY,
                      values=center.copy(), inertia=0.95,
                      expresses_intention_of="carrier")
    network.add_actor(pstn)
    for name, kind in (("carrier", ActorKind.COMMERCIAL_ISP),
                       ("regulator", ActorKind.GOVERNMENT)):
        network.add_actor(Actor.make(
            name, kind, values=center + rng.uniform(-0.05, 0.05,
                                                    DEFAULT_VALUE_DIMS),
            inertia=0.5))
        network.commit(name, "pstn-standards", 0.95)
    for i in range(3):
        name = f"subscriber{i}"
        network.add_actor(Actor.make(
            name, kind=ActorKind.USER,
            values=center + rng.uniform(-0.05, 0.05, DEFAULT_VALUE_DIMS)))
        network.commit(name, "carrier", 0.9)
        network.commit(name, "pstn-standards", 0.9)
    return network


def run_x05(settle_rounds: int = 60, seed: int = 0) -> ExperimentResult:
    internet = build_internet_side(seed)
    telephone = build_telephone_side(seed + 1)
    durability_internet = durability(internet)
    durability_telephone = durability(telephone)
    changeability_telephone_before = changeability(telephone)

    bridges = [("voip-app", "carrier"), ("voip-app", "regulator"),
               ("netizen0", "subscriber0")]
    # The immediate aftermath: a few alignment rounds after the bridges land.
    _, early = collide(build_internet_side(seed), build_telephone_side(seed + 1),
                       bridges=bridges, bridge_strength=0.4, settle_rounds=5)
    merged, collision = collide(
        internet, telephone,
        bridges=bridges,
        bridge_strength=0.4,
        settle_rounds=settle_rounds,
    )

    table = Table(
        "X05: the VoIP collision, measured",
        ["quantity", "value"],
    )
    table.add_row(quantity="internet durability (before)",
                  value=durability_internet)
    table.add_row(quantity="telephone durability (before)",
                  value=durability_telephone)
    table.add_row(quantity="merged durability (after)",
                  value=collision.durability_after)
    table.add_row(quantity="telephone changeability (before)",
                  value=changeability_telephone_before)
    table.add_row(quantity="merged changeability (immediate aftermath)",
                  value=early.changeability_after)
    table.add_row(quantity="merged changeability (after settling)",
                  value=collision.changeability_after)
    table.add_row(quantity="commitments dissolved",
                  value=collision.dissolved_commitments)
    table.add_row(quantity="internet-side value drift",
                  value=collision.drift_side_a)
    table.add_row(quantity="telephone-side value drift",
                  value=collision.drift_side_b)

    result = ExperimentResult(
        experiment_id="X05",
        title="Collision of heterogeneous actor networks (VoIP)",
        paper_claim=("New applications arrive embedded in actor networks of "
                     "their own; the collision is between actor networks, "
                     "not technologies — it is turbulent, the solidified "
                     "side yields less, and the merged network is reopened "
                     "to change."),
        tables=[table],
    )

    result.add_check(
        "the telephone side starts far more solidified",
        durability_telephone > durability_internet + 0.1,
        detail=(f"durability {durability_telephone:.2f} vs "
                f"{durability_internet:.2f}"),
    )
    result.add_check(
        "the collision is turbulent (ties dissolve or actors are dragged)",
        collision.turbulent or (collision.drift_side_a
                                + collision.drift_side_b) > 0.5,
        detail=(f"dissolved {collision.dissolved_commitments}, total drift "
                f"{collision.drift_side_a + collision.drift_side_b:.2f}"),
    )
    result.add_check(
        "the less solidified (Internet) side yields more ground",
        collision.drift_side_a > collision.drift_side_b,
        detail=(f"drift internet {collision.drift_side_a:.2f} vs telephone "
                f"{collision.drift_side_b:.2f}"),
    )
    result.add_check(
        "the collision immediately reopens the settled telephone world to "
        "change (before the merged network re-solidifies)",
        early.changeability_after > changeability_telephone_before,
        detail=(f"changeability {changeability_telephone_before:.3f} -> "
                f"{early.changeability_after:.3f} in the aftermath, "
                f"{collision.changeability_after:.3f} after settling"),
    )
    return result
