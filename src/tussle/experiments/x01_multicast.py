"""X01 — The multicast post-mortem (§VII footnote 19).

"The case study of the failure to deploy multicast is left as an exercise
for the reader." This experiment does the exercise.

Hypothesis (from the model in :mod:`tussle.econ.investment`): multicast
adds a *coordination* failure on top of QoS's incentive failure. An open
multicast service is useful only when (nearly) everyone deploys it, so
the deployment game is a stag hunt: universal open deployment is an
equilibrium, but so is staying out — and a lone deployer loses money.
Even with both of the paper's QoS fixes (value flow + user choice), the
industry can rationally sit in the no-deploy/closed trap forever.

The experiment contrasts the QoS and multicast factorials cell by cell.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..econ.investment import (
    DeploymentChoice,
    MulticastModel,
    multicast_deployment_game,
    qos_deployment_game,
)
from .common import ExperimentResult, Table

__all__ = ["run_x01"]


def run_x01(model: MulticastModel = None,
            seed: int = 0) -> ExperimentResult:
    # `seed` satisfies the uniform run(seed=...) harness contract; the
    # factorial deployment game is fully deterministic.
    model = model or MulticastModel()

    table = Table(
        "X01: multicast deployment equilibria per factorial cell",
        ["value_flow", "user_choice", "equilibria", "coordination_trap"],
    )
    multicast_cells: Dict[Tuple[bool, bool], object] = {}
    for cell in multicast_deployment_game(model):
        multicast_cells[(cell.value_flow, cell.user_choice)] = cell
        table.add_row(
            value_flow=cell.value_flow,
            user_choice=cell.user_choice,
            equilibria=", ".join(e.value for e in cell.equilibria),
            coordination_trap=cell.coordination_trap,
        )

    contrast = Table(
        "X01b: QoS vs multicast in the best (value-flow, user-choice) cell",
        ["capability", "open_unique_equilibrium", "trap"],
    )
    qos_best = [c for c in qos_deployment_game()
                if c.value_flow and c.user_choice][0]
    multicast_best = multicast_cells[(True, True)]
    contrast.add_row(
        capability="qos",
        open_unique_equilibrium=qos_best.open_deployment,
        trap=False,
    )
    contrast.add_row(
        capability="multicast",
        open_unique_equilibrium=(
            multicast_best.equilibria == [DeploymentChoice.DEPLOY_OPEN]),
        trap=multicast_best.coordination_trap,
    )

    result = ExperimentResult(
        experiment_id="X01",
        title="Multicast: the reader's exercise",
        paper_claim=("Multicast failed to emerge as an open end-to-end "
                     "service (§VII); the model's account: a coordination "
                     "trap that persists even when the QoS incentive "
                     "failures are fixed."),
        tables=[table, contrast],
    )

    best = multicast_cells[(True, True)]
    result.add_check(
        "even with value flow AND user choice, multicast has a "
        "coordination trap (open is stable, but so is not getting there)",
        best.coordination_trap
        and DeploymentChoice.DEPLOY_OPEN in best.equilibria,
        detail=best.describe(),
    )
    result.add_check(
        "a lone open deployer loses money (the stag-hunt defection payoff)",
        model.payoff(DeploymentChoice.DEPLOY_OPEN,
                     DeploymentChoice.NO_DEPLOY, True, True) < 0,
        detail=(f"solo open payoff "
                f"{model.payoff(DeploymentChoice.DEPLOY_OPEN, DeploymentChoice.NO_DEPLOY, True, True):.0f}"),
    )
    result.add_check(
        "QoS's best cell has a unique open equilibrium; multicast's does not",
        qos_best.open_deployment
        and len(multicast_best.equilibria) > 1,
        detail=(f"multicast equilibria: "
                f"{[e.value for e in multicast_best.equilibria]}"),
    )
    result.add_check(
        "without value flow, a solo open deployment strictly loses money",
        all(model.payoff(DeploymentChoice.DEPLOY_OPEN,
                         DeploymentChoice.NO_DEPLOY, False, choice) < 0
            for choice in (False, True)),
        detail="the revenue term is zero in every no-value-flow cell",
    )
    return result
