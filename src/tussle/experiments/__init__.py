"""Experiment harnesses: one module per paper claim (see DESIGN.md).

Each ``run_eNN`` returns an
:class:`~tussle.experiments.common.ExperimentResult` holding printable
tables and explicit shape checks against the paper's qualitative claims.
"""

from .common import ExperimentResult, ShapeCheck, Table
from .e01_lockin import run_e01
from .e02_value_pricing import run_e02
from .e03_broadband import run_e03
from .e04_routing_control import run_e04
from .e05_firewalls import run_e05
from .e06_identity import run_e06
from .e07_qos import run_e07
from .e08_tussle_isolation import run_e08
from .e09_rigidity import run_e09
from .e10_freezing import run_e10
from .e11_encryption import run_e11
from .e12_game_taxonomy import run_e12
from .x01_multicast import run_x01
from .x02_policy_authority import run_x02
from .x03_mail_choice import run_x03
from .x04_coupled_spaces import run_x04
from .x05_collision import run_x05
from .x06_qos_binding import run_x06
from .x07_transparency_failures import run_x07
from .r01_fault_blame import run_r01
from .r02_retry_recovery import run_r02
from .n01_substrate import run_n01
from .p01_paid_peering import run_p01
from .p02_depeering_war import run_p02
from .t01_topo_choice import run_t01
from .t02_topo_blame import run_t02
from ..scale.large import run_l01, run_l02

#: The twelve paper-claim experiments plus extension experiments
#: (X01 multicast exercise, X02 policy-authority ablation, X03 mail
#: choice + guidelines audit, X04 dynamic isolation, X05 network collision, X06 QoS binding, X07 transparency failures)
#: the at-scale re-runs (L01 lock-in, L02 value pricing) on the
#: vectorized ``tussle.scale`` backend, the resilience experiments
#: (R01 fault-blame routing, R02 retry/breaker recovery), the
#: substrate-fidelity invariance experiment (N01), the generated-
#: topology experiments (T01 path choice, T02 blame routing) on
#: ``tussle.topogen`` internets, and the peering-economics experiments
#: (P01 paid-peering dispute, P02 depeering war) driving the
#: ``tussle.peering`` bargaining/routing fixed-point loop.
ALL_EXPERIMENTS = {
    "E01": run_e01,
    "E02": run_e02,
    "E03": run_e03,
    "E04": run_e04,
    "E05": run_e05,
    "E06": run_e06,
    "E07": run_e07,
    "E08": run_e08,
    "E09": run_e09,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "X01": run_x01,
    "X02": run_x02,
    "X03": run_x03,
    "X04": run_x04,
    "X05": run_x05,
    "X06": run_x06,
    "X07": run_x07,
    "L01": run_l01,
    "L02": run_l02,
    "R01": run_r01,
    "R02": run_r02,
    "N01": run_n01,
    "T01": run_t01,
    "T02": run_t02,
    "P01": run_p01,
    "P02": run_p02,
}

__all__ = [
    "ExperimentResult", "ShapeCheck", "Table", "ALL_EXPERIMENTS",
    "run_e01", "run_e02", "run_e03", "run_e04", "run_e05", "run_e06",
    "run_e07", "run_e08", "run_e09", "run_e10", "run_e11", "run_e12",
    "run_x01", "run_x02", "run_x03", "run_x04", "run_x05", "run_x06", "run_x07",
    "run_l01", "run_l02",
    "run_r01", "run_r02",
    "run_n01",
    "run_t01", "run_t02",
    "run_p01", "run_p02",
]
