"""R02 — Retries ride out transient faults; persistent faults escalate.

Paper claims (§VI-A):

* "failures of transparency will occur — design what happens then":
  the first line of that design is mechanical — bounded, jittered
  retry absorbs *transient* faults without any human in the loop;
* but retrying is only the right remedy while the fault is transient.
  A persistent fault makes retry pure waste: "the hard challenge is
  ... to report the problem to the right person" — the remedy must
  move from the machinery (retry) to the actor who can act (the
  operator), which is exactly what a circuit breaker mechanises.

Workload: a user ``u`` reaching ``dst`` across a provider (``p1``,
``p2``).  A deterministic :class:`~tussle.resil.FaultPlan` flaps the
provider's internal link: the *transient* regime downs it for 0.5 s
every 3 s; the *persistent* regime downs it at t=0 forever.  A fixed
probe grid sends under three strategies — single send, seeded-backoff
retry (:class:`~tussle.netsim.transport.ReliableSender`), and retry
behind a shared :class:`~tussle.resil.CircuitBreaker`.  The retry
parameters are chosen so recovery in the transient regime is
*guaranteed* for every jitter seed: the minimum total backoff span
(2.375 s) outlasts any outage (0.5 s), and the maximum attempt gap
(~1 s) is smaller than every up-window (≥ 2.5 s).
"""

from __future__ import annotations

from typing import Dict, List

from ..netsim.faults import Audience, FaultReporter
from ..netsim.forwarding import ForwardingEngine
from ..netsim.transport import ReliableSender
from ..resil import (
    Backoff,
    ChaosInjector,
    CircuitBreaker,
    FaultEvent,
    FaultKind,
    FaultPlan,
    link_target,
)
from ..resil.workerchaos import digest63
from ..topogen.presets import (
    FLAKY_PROVIDER_NODES as _PROVIDER_NODES,
    flaky_provider_network as _build_network,
)
from .common import ExperimentResult, Table

__all__ = ["run_r02"]

#: Probe launch times: three land inside transient outages
#: ([0.7, 1.2], [3.7, 4.2], [6.7, 7.2]), six in healthy windows.
_PROBE_TIMES = (0.2, 0.9, 2.0, 3.0, 3.9, 5.0, 6.0, 6.9, 8.0)


def _engine() -> ForwardingEngine:
    engine = ForwardingEngine(_build_network())
    engine.install_shortest_path_tables()
    return engine


def _transient_plan() -> FaultPlan:
    """Down the provider link for 0.5 s every 3 s."""
    target = link_target("p1", "p2")
    plan = FaultPlan()
    for start in (0.7, 3.7, 6.7):
        plan.add(FaultEvent(start, FaultKind.LINK_DOWN, target))
        plan.add(FaultEvent(start + 0.5, FaultKind.LINK_UP, target))
    return plan


def _persistent_plan() -> FaultPlan:
    """Down the provider link at t=0, never repaired."""
    return FaultPlan(events=[
        FaultEvent(0.0, FaultKind.LINK_DOWN, link_target("p1", "p2"))])


def _backoff(seed: int, regime: str, strategy: str, probe: int) -> Backoff:
    """Per-probe retry schedule; only the jitter stream varies with seed."""
    return Backoff(base=0.25, factor=2.0, cap=1.0, max_retries=6, jitter=0.5,
                   seed=digest63(seed, "r02", regime, strategy, str(probe)))


def _run_strategy(regime: str, strategy: str, seed: int) -> Dict[str, object]:
    plan = _transient_plan() if regime == "transient" else _persistent_plan()
    breaker = (CircuitBreaker(failure_threshold=4, reset_timeout=10.0)
               if strategy == "breaker" else None)
    delivered = 0
    attempts = 0
    last_receipt = None
    for index, start in enumerate(_PROBE_TIMES):
        engine = _engine()
        injector = ChaosInjector(engine, plan)
        injector.advance(start)
        if strategy == "none":
            backoff = Backoff(base=0.25, factor=2.0, cap=1.0, max_retries=0,
                              jitter=0.5, seed=0)
        else:
            backoff = _backoff(seed, regime, strategy, index)
        sender = ReliableSender(engine, "u", "dst", backoff=backoff,
                                timeout=60.0, breaker=breaker,
                                on_advance=injector.advance)
        outcome = sender.send(now=start)
        delivered += 1 if outcome.delivered else 0
        attempts += outcome.attempts
        if outcome.final_receipt is not None:
            last_receipt = outcome.final_receipt
    return {
        "regime": regime,
        "strategy": strategy,
        "delivery_rate": delivered / len(_PROBE_TIMES),
        "attempts": attempts,
        "refusals": breaker.refusals if breaker is not None else 0,
        "trips": breaker.trips if breaker is not None else 0,
        "last_receipt": last_receipt,
    }


def run_r02(seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="R02",
        title="Retry absorbs transients; breakers escalate persistence",
        paper_claim=("§VI-A: design for failure — mechanical retry is the "
                     "remedy for transient faults, but a persistent fault "
                     "must stop consuming retries and reach the operator."),
    )
    table = Table(
        "R02: delivery and retry cost by regime and strategy",
        ["regime", "strategy", "delivery_rate", "attempts", "refusals",
         "trips"],
    )
    outcomes: Dict[tuple, Dict[str, object]] = {}
    rows: List[Dict[str, object]] = []
    for regime in ("transient", "persistent"):
        for strategy in ("none", "retry", "breaker"):
            row = _run_strategy(regime, strategy, seed)
            outcomes[(regime, strategy)] = row
            rows.append(row)
            table.add_row(**{k: row[k] for k in table.columns})
    result.tables.append(table)

    t_none = outcomes[("transient", "none")]
    t_retry = outcomes[("transient", "retry")]
    t_breaker = outcomes[("transient", "breaker")]
    p_retry = outcomes[("persistent", "retry")]
    p_breaker = outcomes[("persistent", "breaker")]

    result.add_check(
        "single sends lose probes to transient outages",
        0.0 < float(t_none["delivery_rate"]) < 1.0,
        f"delivery {t_none['delivery_rate']:.3f} without retry",
    )
    result.add_check(
        "seeded-backoff retry rides out every transient outage",
        float(t_retry["delivery_rate"]) == 1.0,
        f"{t_retry['attempts']} attempts across {len(_PROBE_TIMES)} probes",
    )
    result.add_check(
        "the breaker stays closed through transients (no trips, full "
        "delivery)",
        float(t_breaker["delivery_rate"]) == 1.0
        and int(t_breaker["trips"]) == 0,
        f"trips={t_breaker['trips']}",
    )
    result.add_check(
        "retries cannot rescue a persistent fault",
        float(p_retry["delivery_rate"]) == 0.0,
        f"{p_retry['attempts']} attempts, all wasted",
    )
    result.add_check(
        "the breaker cuts the retry budget burned on a persistent fault "
        "and refuses further attempts",
        int(p_breaker["attempts"]) < int(p_retry["attempts"])
        and int(p_breaker["refusals"]) > 0
        and int(p_breaker["trips"]) >= 1,
        f"{p_breaker['attempts']} vs {p_retry['attempts']} attempts, "
        f"{p_breaker['refusals']} refusals",
    )
    blame = FaultReporter().route(p_retry["last_receipt"], _PROVIDER_NODES)
    result.add_check(
        "after retry exhaustion the fault report addresses the operator",
        blame.audience is Audience.OPERATOR and blame.actionable,
        blame.summary,
    )
    return result
