"""X04 — Dynamic tussle isolation: co-located vs separated spaces (§IV-A).

E08 measured the isolation principle *structurally* (which functions sit
where). This experiment measures it *dynamically*: two tussle spaces run
side by side — a hot economics fight whose rigid design forces
workarounds, and a peaceful naming space that just needs its knob — and
the only thing varied is the modular layout.

Co-located (one module): the economics workarounds degrade the shared
module and the innocent naming space breaks with zero workarounds of its
own — "one tussle... spill[s] over and distort[s] unrelated issues."

Separated (a module each): the same fight rages, the same damage accrues
to the economics module, and the naming space is untouched.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.coupling import MultiSpaceSimulator
from ..core.design import Design
from ..core.mechanisms import Mechanism
from ..core.stakeholders import Stakeholder, StakeholderKind
from ..core.tussle import TussleSpace
from .common import ExperimentResult, Table

__all__ = ["run_x04"]


def _hot_economics_space() -> TussleSpace:
    """A contested space whose design dictates the outcome (rigid)."""
    space = TussleSpace("economics", initial_state={"pricing": 0.5})
    space.add_mechanism(Mechanism(name="pricing-knob", variable="pricing",
                                  allowed_range=(0.5, 0.5)))
    users = Stakeholder("users", StakeholderKind.USER, workaround_cost=0.05)
    users.add_interest("pricing", target=0.0)
    providers = Stakeholder("providers", StakeholderKind.COMMERCIAL_ISP,
                            workaround_cost=0.05)
    providers.add_interest("pricing", target=1.0)
    space.add_stakeholder(users)
    space.add_stakeholder(providers)
    return space


def _peaceful_naming_space() -> TussleSpace:
    """An uncontested space with a working knob."""
    space = TussleSpace("naming", initial_state={"resolution-policy": 0.2})
    space.add_mechanism(Mechanism(name="naming-knob",
                                  variable="resolution-policy"))
    operators = Stakeholder("operators", StakeholderKind.PRIVATE_NETWORK_PROVIDER)
    operators.add_interest("resolution-policy", target=0.8)
    space.add_stakeholder(operators)
    return space


def _layout(separated: bool) -> Tuple[Design, Dict[str, str]]:
    design = Design("separated" if separated else "co-located")
    if separated:
        design.add_module("econ-module")
        design.add_module("naming-module")
        placement = {"economics": "econ-module", "naming": "naming-module"}
    else:
        design.add_module("monolith")
        placement = {"economics": "monolith", "naming": "monolith"}
    return design, placement


def run_x04(rounds: int = 30, seed: int = 0) -> ExperimentResult:
    # `seed` satisfies the uniform run(seed=...) harness contract; the
    # coupled-space simulation is fully deterministic.
    table = Table(
        "X04: modular layout vs collateral damage from a hot tussle",
        ["layout", "space", "own_workarounds", "final_integrity", "broken"],
    )
    outcomes: Dict[Tuple[str, str], object] = {}
    for separated in (False, True):
        design, placement = _layout(separated)
        simulator = MultiSpaceSimulator(
            design,
            spaces=[_hot_economics_space(), _peaceful_naming_space()],
            placement=placement,
            workaround_damage=0.1,
        )
        result = simulator.run(rounds)
        for record in result.records:
            outcomes[(design.name, record.space)] = record
            table.add_row(layout=design.name, space=record.space,
                          own_workarounds=record.own_workarounds,
                          final_integrity=record.final_integrity,
                          broken=record.broken)

    result = ExperimentResult(
        experiment_id="X04",
        title="Dynamic tussle isolation (co-located vs separated)",
        paper_claim=("Modularizing along tussle boundaries lets a hot tussle "
                     "play out 'with minimal distortion of other aspects of "
                     "the system's function'; co-location makes bystander "
                     "functions collateral damage."),
        tables=[table],
    )

    colocated_naming = outcomes[("co-located", "naming")]
    separated_naming = outcomes[("separated", "naming")]
    colocated_econ = outcomes[("co-located", "economics")]
    separated_econ = outcomes[("separated", "economics")]

    result.add_check(
        "the naming space never works around anything in either layout",
        colocated_naming.own_workarounds == 0
        and separated_naming.own_workarounds == 0,
    )
    result.add_check(
        "co-located: the innocent naming space is broken collaterally",
        colocated_naming.broken,
        detail=(f"naming integrity {colocated_naming.final_integrity:.2f} "
                f"with 0 own workarounds"),
    )
    result.add_check(
        "separated: the naming space survives at full integrity",
        not separated_naming.broken
        and separated_naming.final_integrity == 1.0,
    )
    result.add_check(
        "the economics fight itself is equally destructive in both layouts",
        colocated_econ.broken and separated_econ.broken,
        detail="isolation changes who gets hurt, not whether the fight happens",
    )
    return result
