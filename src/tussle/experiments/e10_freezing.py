"""E10 — Entrant churn vs actor-network freezing (§II-C).

Paper claims:

* "the new applications bring new actors to the actor network, which
  keeps the actor network from becoming frozen, which in turn permits
  change to occur";
* "when new applications and user groups cease to come to the Internet...
  the tensions and tussles in the network will begin to be resolved, and
  this will imply a freezing of the actor network";
* "we should look for a time when innovation slows, not just as a signal
  but also as a pre-condition of a durably formed and unchangeable
  Internet."

Workload: the churn simulation over a seeded Internet actor network,
sweeping the entrant arrival rate.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..actornet import ChurnSimulation, seed_internet_network
from .common import ExperimentResult, Table, monotone_increasing

__all__ = ["run_e10"]

ARRIVAL_RATES = [0.0, 0.25, 0.5, 1.0, 2.0]


def run_e10(rounds: int = 40, seed: int = 19) -> ExperimentResult:
    table = Table(
        "E10: entrant arrival rate vs durability and freezing",
        ["arrival_rate", "final_changeability", "final_durability",
         "value_variance", "froze_at", "n_actors"],
    )
    changeabilities: List[float] = []
    froze: List[Optional[int]] = []
    for rate in ARRIVAL_RATES:
        simulation = ChurnSimulation(
            seed_internet_network(rng=np.random.default_rng(seed)),
            arrival_rate=rate,
            seed=seed,
        )
        simulation.run(rounds)
        final = simulation.history[-1]
        changeabilities.append(final.changeability)
        froze.append(simulation.froze_at())
        table.add_row(
            arrival_rate=rate,
            final_changeability=final.changeability,
            final_durability=final.durability,
            value_variance=final.value_variance,
            froze_at=simulation.froze_at(),
            n_actors=final.n_actors,
        )

    result = ExperimentResult(
        experiment_id="E10",
        title="Churn keeps the actor network changeable",
        paper_claim=("With no entrants the actor network harmonizes and "
                     "freezes; continuing arrivals keep it changeable."),
        tables=[table],
    )

    result.add_check(
        "the zero-arrival network freezes",
        froze[0] is not None,
        detail=f"froze at round {froze[0]}",
    )
    result.add_check(
        "networks with healthy churn do not freeze within the horizon",
        all(f is None for f in froze[2:]),
        detail=f"froze_at per rate {froze}",
    )
    result.add_check(
        "changeability rises with the arrival rate",
        monotone_increasing([changeabilities[0], changeabilities[2],
                             changeabilities[4]]),
        detail=f"changeability {['%.3f' % c for c in changeabilities]}",
    )
    result.add_check(
        "the frozen network is the most durable",
        table.rows[0]["final_durability"] == max(r["final_durability"]
                                                 for r in table.rows),
        detail=(f"durability at rate 0: "
                f"{table.rows[0]['final_durability']:.3f}"),
    )
    return result
