"""E12 — The game-theoretic taxonomy of tussles (§II-B).

Paper claims:

* tussle games "range from purely conflicting games (so called zero-sum
  games)... to coordination games where actors have a common goal but
  fail to coordinate their actions due to incentive problems";
* the classic theory (von Neumann zero-sum, Nash general-sum) solves
  them;
* Vickrey-style mechanism design "guaranteed tussle-free actor networks"
  for truthful-information problems: truth-telling is dominant under the
  second-price rule (and not under first-price).

Workload: classify and solve the canonical tussle games of
:mod:`tussle.gametheory.tussle_games`; verify auction truthfulness; run a
VCG allocation.
"""

from __future__ import annotations

from typing import Dict

from ..gametheory import (
    TussleClass,
    VCGMechanism,
    anonymity_game,
    classify_game,
    congestion_dilemma,
    encryption_escalation_game,
    first_price_auction,
    is_truthful_dominant,
    peering_game,
    solve_zero_sum,
    support_enumeration,
    vickrey_auction,
    wiretap_hide_seek,
)
from .common import ExperimentResult, Table

__all__ = ["run_e12"]


def run_e12(seed: int = 0) -> ExperimentResult:
    # `seed` satisfies the uniform run(seed=...) harness contract; the
    # game taxonomy is solved in closed form.
    taxonomy = Table(
        "E12a: canonical tussle games classified and solved",
        ["game", "class", "pure_equilibria", "solution_note"],
    )

    games = {
        "wiretap-hide-seek": wiretap_hide_seek(3),
        "congestion-dilemma": congestion_dilemma(),
        "peering": peering_game(),
        "anonymity": anonymity_game(),
        "encryption-escalation(c=0.8)": encryption_escalation_game(0.8),
    }
    classifications: Dict[str, TussleClass] = {}
    for name, game in games.items():
        cls = classify_game(game)
        classifications[name] = cls
        pure = game.pure_nash_equilibria()
        if cls is TussleClass.ZERO_SUM:
            solution = solve_zero_sum(game)
            note = (f"value={solution.value:.3f}, "
                    f"uniform mix={solution.row_strategy.round(3).tolist()}")
        else:
            equilibria = support_enumeration(game, max_support=2)
            note = f"{len(equilibria)} equilibria via support enumeration"
        labels = [
            f"({game.action_labels[0][r]},{game.action_labels[1][c]})"
            for r, c in pure
        ]
        taxonomy.add_row(game=name, **{"class": cls.value},
                         pure_equilibria="; ".join(labels) or "none",
                         solution_note=note)

    # --- Mechanism design: Vickrey removes the information tussle.
    auctions = Table(
        "E12b: truthfulness of auction mechanisms",
        ["mechanism", "truthful_dominant"],
    )
    values = {"alice": 8.0, "bob": 5.0, "carol": 3.0}
    vickrey_truthful = is_truthful_dominant(vickrey_auction, values)
    first_price_truthful = is_truthful_dominant(first_price_auction, values)
    auctions.add_row(mechanism="vickrey (second price)",
                     truthful_dominant=vickrey_truthful)
    auctions.add_row(mechanism="first price",
                     truthful_dominant=first_price_truthful)

    # --- VCG allocation demo: welfare-maximizing outcome + pivot payments.
    vcg = VCGMechanism(outcomes=["build-route-A", "build-route-B"])
    reports = {
        "isp1": {"build-route-A": 6.0, "build-route-B": 1.0},
        "isp2": {"build-route-A": 2.0, "build-route-B": 4.0},
        "user": {"build-route-A": 3.0, "build-route-B": 2.0},
    }
    chosen, payments = vcg.run(reports)
    vcg_table = Table("E12c: VCG route-choice allocation",
                      ["chosen_outcome", "agent", "payment"])
    for agent in sorted(payments):
        vcg_table.add_row(chosen_outcome=chosen, agent=agent,
                          payment=payments[agent])

    result = ExperimentResult(
        experiment_id="E12",
        title="Tussle taxonomy and mechanism design",
        paper_claim=("Tussles span zero-sum to coordination games; classic "
                     "solvers handle them; Vickrey/VCG mechanisms make truth "
                     "telling dominant, removing the information tussle."),
        tables=[taxonomy, auctions, vcg_table],
    )

    result.add_check(
        "the wiretap game is zero-sum (purely conflicting interests)",
        classifications["wiretap-hide-seek"] is TussleClass.ZERO_SUM,
    )
    result.add_check(
        "the peering game is a coordination game (common goal, two equilibria)",
        classifications["peering"] is TussleClass.COORDINATION,
        detail=f"classified {classifications['peering'].value}",
    )
    result.add_check(
        "the congestion dilemma is mixed-motive with a defect equilibrium",
        classifications["congestion-dilemma"] is TussleClass.MIXED_MOTIVE
        and games["congestion-dilemma"].pure_nash_equilibria() == [(1, 1)],
    )
    result.add_check(
        "Vickrey makes truthful bidding dominant; first-price does not",
        vickrey_truthful and not first_price_truthful,
    )
    result.add_check(
        "VCG picks the welfare-maximizing outcome with pivot payments",
        chosen == "build-route-A" and payments["isp1"] > 0
        and abs(payments["user"]) < 1e9,
        detail=f"chosen {chosen}, payments {payments}",
    )
    return result
