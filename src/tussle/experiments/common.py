"""Shared experiment harness: tables, results, shape checks.

The paper has no numeric tables to match, so every experiment here
reports (a) a table of measured rows and (b) an explicit *shape check* —
a predicate over the rows asserting the paper's qualitative claim (who
wins, what direction, where the crossover falls). Benchmarks print the
table and the check verdict; tests assert the check.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..canon import canonical_json
from ..errors import ExperimentError

__all__ = ["Table", "ShapeCheck", "ExperimentResult", "canonical_json"]


class Table:
    """A printable table of experiment rows."""

    def __init__(self, title: str, columns: Sequence[str]):
        if not columns:
            raise ExperimentError("table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ExperimentError(f"row has unknown columns {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        if name not in self.columns:
            raise ExperimentError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.3f}"
        if value is None:
            return "-"
        return str(value)

    def format(self) -> str:
        """Render as an aligned plain-text table."""
        header = list(self.columns)
        body = [[self._format_cell(row.get(col)) for col in header]
                for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form: title, columns, rows."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [{col: row.get(col) for col in self.columns}
                     for row in self.rows],
        }

    def to_json(self) -> str:
        """Canonical JSON text (see :func:`canonical_json`)."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Table":
        table = cls(data["title"], data["columns"])
        for row in data["rows"]:
            table.add_row(**row)
        return table

    @classmethod
    def from_json(cls, text: str) -> "Table":
        """Inverse of :meth:`to_json`.

        Round-trip contract: ``from_json(t.to_json()).to_json() ==
        t.to_json()``.  Cells omitted from a row come back as explicit
        ``None`` (the form :meth:`to_dict` already emits), bools and
        numbers keep their types, and float cells keep their exact
        IEEE-754 value.
        """
        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class ShapeCheck:
    """One qualitative claim and whether the measurements support it."""

    claim: str
    holds: bool
    detail: str = ""


@dataclass
class ExperimentResult:
    """Everything one experiment produces.

    ``metrics`` is an optional observability snapshot (see
    :mod:`tussle.obs`) attached by runners that install a metrics
    registry; it is descriptive side-channel data and deliberately not
    part of the seedcheck fingerprint.
    """

    experiment_id: str
    title: str
    paper_claim: str
    tables: List[Table] = field(default_factory=list)
    checks: List[ShapeCheck] = field(default_factory=list)
    metrics: Optional[Dict[str, Any]] = None

    @property
    def shape_holds(self) -> bool:
        """Do all shape checks pass?"""
        return all(check.holds for check in self.checks)

    def add_check(self, claim: str, holds: bool, detail: str = "") -> None:
        self.checks.append(ShapeCheck(claim=claim, holds=holds, detail=detail))

    def format(self) -> str:
        lines = [f"=== {self.experiment_id}: {self.title} ===",
                 f"Paper claim: {self.paper_claim}", ""]
        for table in self.tables:
            lines.append(table.format())
            lines.append("")
        for check in self.checks:
            verdict = "HOLDS" if check.holds else "FAILS"
            lines.append(f"[{verdict}] {check.claim}")
            if check.detail:
                lines.append(f"         {check.detail}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form, including metrics when attached."""
        payload: Dict[str, Any] = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "shape_holds": self.shape_holds,
            "tables": [table.to_dict() for table in self.tables],
            "checks": [
                {"claim": c.claim, "holds": c.holds, "detail": c.detail}
                for c in self.checks
            ],
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        return payload

    def to_json(self) -> str:
        """Canonical JSON text (see :func:`canonical_json`).

        This is the wire/cache form used by the sweep engine: it must be
        byte-identical for two runs of the same experiment at the same
        seed, and :meth:`from_json` must reproduce a result whose
        fingerprint (``tussle.lint.seedcheck.fingerprint``) matches the
        original.
        """
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            paper_claim=data["paper_claim"],
            tables=[Table.from_dict(t) for t in data["tables"]],
            checks=[ShapeCheck(claim=c["claim"], holds=c["holds"],
                               detail=c.get("detail", ""))
                    for c in data["checks"]],
            metrics=data.get("metrics"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`; ``shape_holds`` is recomputed."""
        return cls.from_dict(json.loads(text))

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.format())


def monotone_decreasing(values: Sequence[float], strict: bool = False) -> bool:
    """Is the sequence (weakly or strictly) decreasing?"""
    pairs = zip(values, values[1:])
    if strict:
        return all(a > b for a, b in pairs)
    return all(a >= b - 1e-9 for a, b in pairs)


def monotone_increasing(values: Sequence[float], strict: bool = False) -> bool:
    pairs = zip(values, values[1:])
    if strict:
        return all(a < b for a, b in pairs)
    return all(a <= b + 1e-9 for a, b in pairs)


__all__ += ["monotone_decreasing", "monotone_increasing"]
