"""X07 — "Failures of transparency will occur — design what happens then"
(§VI-A).

Paper claims:

* today's user gets "little in the way of helpful information about why"
  an address is unreachable; fault reporting should reach "the right
  person in the right language";
* "one way to help preserve the end-to-end character of the Internet is
  to require that devices reveal if they impose limitations on it.
  However, there is no obvious way to enforce this requirement, so it
  becomes a courtesy" — disclosure is a compliance *fraction*, not a
  fact;
* "some devices that impair transparency may intentionally give no error
  information... that must be taken into account in design of diagnostic
  tools."

Workload: a path with many interfering middleboxes whose disclosure
compliance we sweep from 0% to 100%. For each blocked flow we produce
end-user and operator fault reports and measure how often the user gets
an *actionable* report (one naming a cause they can route or shop
around), plus the deployment's measured disclosure rate from the
transparency ledger.
"""

from __future__ import annotations

from typing import List

from ..netsim.faults import Audience, FaultReporter
from ..netsim.forwarding import ForwardingEngine
from ..netsim.middlebox import PortFilterFirewall
from ..netsim.packets import make_packet
from ..netsim.topology import Network, NodeKind
from .common import ExperimentResult, Table, monotone_increasing

__all__ = ["run_x07"]

COMPLIANCE_LEVELS = [0.0, 0.25, 0.5, 0.75, 1.0]
N_PATHS = 20


def _engine_with_interferers(disclosing: int, total: int) -> ForwardingEngine:
    """``total`` parallel two-hop paths, each with one blocking middlebox;
    the first ``disclosing`` of them announce their interference."""
    net = Network()
    net.add_node("user", kind=NodeKind.HOST)
    engine = ForwardingEngine(net)
    for index in range(total):
        mid = f"mid{index}"
        dst = f"dst{index}"
        net.add_node(mid, kind=NodeKind.MIDDLEBOX)
        net.add_node(dst, kind=NodeKind.HOST)
        net.add_link("user", mid)
        net.add_link(mid, dst)
        engine.attach_middlebox(mid, PortFilterFirewall(
            f"fw{index}",
            blocked_applications={"generic"},
            discloses=index < disclosing,
        ))
    engine.install_shortest_path_tables()
    return engine


def run_x07(seed: int = 0) -> ExperimentResult:
    # `seed` satisfies the uniform run(seed=...) harness contract; the
    # disclosure sweep is fully deterministic.
    table = Table(
        "X07: disclosure compliance vs actionable fault reports",
        ["compliance", "user_actionable_rate", "operator_actionable_rate",
         "measured_disclosure_rate"],
    )
    reporter = FaultReporter()
    user_rates: List[float] = []
    for compliance in COMPLIANCE_LEVELS:
        disclosing = round(compliance * N_PATHS)
        engine = _engine_with_interferers(disclosing, N_PATHS)
        user_actionable = 0
        operator_actionable = 0
        for index in range(N_PATHS):
            receipt = engine.send(make_packet("user", f"dst{index}"))
            assert not receipt.delivered
            if reporter.report(receipt, Audience.END_USER).actionable:
                user_actionable += 1
            if reporter.report(receipt, Audience.OPERATOR).actionable:
                operator_actionable += 1
        user_rate = user_actionable / N_PATHS
        user_rates.append(user_rate)
        table.add_row(
            compliance=compliance,
            user_actionable_rate=user_rate,
            operator_actionable_rate=operator_actionable / N_PATHS,
            measured_disclosure_rate=engine.ledger.disclosure_rate(),
        )

    result = ExperimentResult(
        experiment_id="X07",
        title="Failures of transparency: disclosure as a courtesy",
        paper_claim=("The end user's ability to act on a failure tracks how "
                     "many interfering devices deign to disclose; silent "
                     "devices leave only 'trace stops, cause unknown'; the "
                     "operator view localizes faults regardless."),
        tables=[table],
    )

    result.add_check(
        "with zero disclosure the user gets no actionable reports at all",
        user_rates[0] == 0.0,
        detail=f"actionable rate {user_rates[0]:.2f} at compliance 0",
    )
    result.add_check(
        "full disclosure makes every user report actionable",
        user_rates[-1] == 1.0,
    )
    result.add_check(
        "user-actionability rises monotonically with compliance "
        "(disclosure is exactly as good as the courtesy extends)",
        monotone_increasing(user_rates),
        detail=f"rates {['%.2f' % r for r in user_rates]}",
    )
    result.add_check(
        "the measured disclosure rate matches the deployed compliance",
        all(abs(row["measured_disclosure_rate"] - row["compliance"]) < 1e-9
            for row in table.rows),
    )
    result.add_check(
        "operator reports localize the fault regardless of disclosure "
        "(the trace still shows where packets vanish)",
        all(row["operator_actionable_rate"] == 1.0 for row in table.rows),
    )
    return result
