"""Pairwise trust with bounded transitive propagation.

"Mechanisms that regulate interaction on the basis of mutual trust should
be a fundamental part of the Internet of tomorrow" (§V-B). The trust graph
holds directed trust scores in [0, 1]; indirect trust is the best
path-product with per-hop decay (trust dilutes through intermediaries),
computed by a Dijkstra-style search.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from ..errors import TrustError

__all__ = ["TrustGraph"]


class TrustGraph:
    """Directed weighted trust between parties.

    Parameters
    ----------
    decay:
        Multiplier applied per propagation hop beyond the first; models
        dilution of transitive trust.
    max_hops:
        Longest chain considered when inferring indirect trust.
    """

    def __init__(self, decay: float = 0.8, max_hops: int = 3):
        if not 0.0 < decay <= 1.0:
            raise TrustError(f"decay must be in (0, 1], got {decay}")
        if max_hops < 1:
            raise TrustError("max_hops must be at least 1")
        self.decay = decay
        self.max_hops = max_hops
        self._edges: Dict[str, Dict[str, float]] = {}
        self._parties: Set[str] = set()

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def set_trust(self, truster: str, trustee: str, score: float) -> None:
        """Record that ``truster`` trusts ``trustee`` at ``score``."""
        if truster == trustee:
            raise TrustError("self-trust is implicit; do not record it")
        if not 0.0 <= score <= 1.0:
            raise TrustError(f"trust score must be in [0, 1], got {score}")
        self._edges.setdefault(truster, {})[trustee] = score
        self._parties.add(truster)
        self._parties.add(trustee)

    def direct_trust(self, truster: str, trustee: str) -> Optional[float]:
        return self._edges.get(truster, {}).get(trustee)

    def revoke(self, truster: str, trustee: str) -> None:
        edges = self._edges.get(truster, {})
        edges.pop(trustee, None)

    @property
    def parties(self) -> List[str]:
        return sorted(self._parties)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def trust(self, truster: str, trustee: str) -> float:
        """Effective trust: direct if present, else best decayed chain.

        The score of a chain t -> a -> b -> ... -> trustee is the product
        of edge scores times decay^(hops - 1); the maximum over chains of
        length <= max_hops is returned (0 when unreachable).
        """
        if truster == trustee:
            return 1.0
        direct = self.direct_trust(truster, trustee)
        best = direct if direct is not None else 0.0

        # Max-product search with hop budget (scores <= 1, so products
        # only shrink; a visited-with-better-score check keeps it finite).
        heap: List[Tuple[float, int, str]] = [(-1.0, 0, truster)]
        seen: Dict[Tuple[str, int], float] = {}
        while heap:
            negative_score, hops, node = heapq.heappop(heap)
            score = -negative_score
            if hops >= self.max_hops:
                continue
            for neighbor, edge in self._edges.get(node, {}).items():
                chained = score * edge * (self.decay if hops >= 1 else 1.0)
                if neighbor == trustee:
                    best = max(best, chained)
                    continue
                key = (neighbor, hops + 1)
                if seen.get(key, 0.0) >= chained:
                    continue
                seen[key] = chained
                heapq.heappush(heap, (-chained, hops + 1, neighbor))
        return best

    def trusts(self, truster: str, trustee: str, threshold: float = 0.5) -> bool:
        """Binary decision at a threshold."""
        return self.trust(truster, trustee) >= threshold

    def mutual_trust(self, a: str, b: str) -> float:
        """Minimum of the two directions — interaction needs both."""
        return min(self.trust(a, b), self.trust(b, a))

    def erode(self, factor: float = 0.9) -> None:
        """Scale every edge down — the paper's eroding-trust environment."""
        if not 0.0 <= factor <= 1.0:
            raise TrustError("erosion factor must be in [0, 1]")
        for truster in self._edges:
            for trustee in self._edges[truster]:
                self._edges[truster][trustee] *= factor
