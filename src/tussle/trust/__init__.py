"""Trust substrate (§V-B): identity, trust graphs, firewalls, mediators, threats."""

from .identity import IdentityFramework, IdentityScheme, Principal
from .trustgraph import TrustGraph
from .firewall import (
    ControlChannel,
    PinholeRequest,
    PolicyAuthority,
    TrustAwareFirewall,
)
from .thirdparty import (
    CertificateAuthority,
    LiabilityShield,
    MediatedInteraction,
    ReputationService,
    TrustMediator,
)
from .threats import AttackKind, Attacker, ThreatCampaign, TrafficMix

__all__ = [
    "IdentityFramework", "IdentityScheme", "Principal",
    "TrustGraph",
    "ControlChannel", "PinholeRequest", "PolicyAuthority", "TrustAwareFirewall",
    "CertificateAuthority", "LiabilityShield", "MediatedInteraction",
    "ReputationService", "TrustMediator",
    "AttackKind", "Attacker", "ThreatCampaign", "TrafficMix",
]
