"""Third parties that mediate trust (§V-B).

"We depend on third parties to mediate and enhance the assurance that
things are going to go right. Credit card companies limit our liability...
Public key certificate agents provide us with certificates... Web sites
assess and report the reputation of other sites... there should be
explicit ability to select what third parties are used to mediate an
interaction."

Three mediator types are provided, all implementing
:class:`TrustMediator.mediate`, which adjusts the expected outcome of an
interaction between a wary party and a counterparty:

* :class:`CertificateAuthority` — binds identity, raising confidence the
  counterparty is who they claim;
* :class:`ReputationService` — aggregates past outcomes into a score;
* :class:`LiabilityShield` — caps the loss if things go wrong (the credit
  card model).

:class:`MediatedInteraction` composes any set of mediators *chosen by the
parties* and computes expected utility, so experiments can show that the
ability to select mediators raises welfare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import TrustError

__all__ = [
    "TrustMediator",
    "CertificateAuthority",
    "ReputationService",
    "LiabilityShield",
    "MediatedInteraction",
]


class TrustMediator:
    """Interface: adjust (success_probability, loss_if_failure)."""

    name = "mediator"
    fee = 0.0

    def mediate(self, counterparty: str, success_probability: float,
                loss_if_failure: float) -> Tuple[float, float]:
        raise NotImplementedError  # pragma: no cover - abstract


class CertificateAuthority(TrustMediator):
    """Certifies identities; certified counterparties fail less often.

    A certificate doesn't make a merchant honest, but it eliminates
    impostors: the failure probability attributable to misidentification
    (``impostor_fraction`` of all failures) goes away for certified
    parties.
    """

    def __init__(self, name: str = "cert-authority", fee: float = 0.1,
                 impostor_fraction: float = 0.5):
        if not 0.0 <= impostor_fraction <= 1.0:
            raise TrustError("impostor fraction must be a probability")
        self.name = name
        self.fee = fee
        self.impostor_fraction = impostor_fraction
        self._certified: Dict[str, bool] = {}

    def certify(self, party: str) -> None:
        self._certified[party] = True

    def is_certified(self, party: str) -> bool:
        return self._certified.get(party, False)

    def mediate(self, counterparty: str, success_probability: float,
                loss_if_failure: float) -> Tuple[float, float]:
        if not self.is_certified(counterparty):
            return success_probability, loss_if_failure
        failure = 1.0 - success_probability
        reduced_failure = failure * (1.0 - self.impostor_fraction)
        return 1.0 - reduced_failure, loss_if_failure


class ReputationService(TrustMediator):
    """Aggregates reported outcomes; consulting it screens bad parties.

    Parties whose observed success rate falls below ``warn_threshold``
    are flagged; a wary user simply avoids them (modelled as success
    probability snapped to the observed rate, so expectations become
    accurate rather than hopeful).
    """

    def __init__(self, name: str = "reputation", fee: float = 0.02,
                 warn_threshold: float = 0.5):
        self.name = name
        self.fee = fee
        self.warn_threshold = warn_threshold
        self._outcomes: Dict[str, List[bool]] = {}

    def report(self, party: str, success: bool) -> None:
        self._outcomes.setdefault(party, []).append(success)

    def score(self, party: str) -> Optional[float]:
        outcomes = self._outcomes.get(party)
        if not outcomes:
            return None
        return sum(outcomes) / len(outcomes)

    def warns_about(self, party: str) -> bool:
        score = self.score(party)
        return score is not None and score < self.warn_threshold

    def mediate(self, counterparty: str, success_probability: float,
                loss_if_failure: float) -> Tuple[float, float]:
        score = self.score(counterparty)
        if score is None:
            return success_probability, loss_if_failure
        return score, loss_if_failure


class LiabilityShield(TrustMediator):
    """Caps the user's loss (credit-card style: "$50, or sometimes nothing")."""

    def __init__(self, name: str = "liability-shield", fee: float = 0.3,
                 cap: float = 0.5):
        if cap < 0:
            raise TrustError("liability cap cannot be negative")
        self.name = name
        self.fee = fee
        self.cap = cap

    def mediate(self, counterparty: str, success_probability: float,
                loss_if_failure: float) -> Tuple[float, float]:
        return success_probability, min(loss_if_failure, self.cap)


@dataclass
class MediatedInteraction:
    """An interaction whose risk profile is shaped by chosen mediators.

    Attributes
    ----------
    counterparty:
        Who the wary party is dealing with.
    value:
        Gain if the interaction succeeds.
    success_probability / loss_if_failure:
        The unmediated risk profile.
    mediators:
        The third parties the user *chose* — choice is the point.
    """

    counterparty: str
    value: float
    success_probability: float
    loss_if_failure: float
    mediators: List[TrustMediator] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.success_probability <= 1.0:
            raise TrustError("success probability must be in [0, 1]")
        if self.loss_if_failure < 0:
            raise TrustError("loss cannot be negative")

    def effective_profile(self) -> Tuple[float, float, float]:
        """(success_probability, loss, total_fees) after mediation."""
        probability = self.success_probability
        loss = self.loss_if_failure
        fees = 0.0
        for mediator in self.mediators:
            probability, loss = mediator.mediate(self.counterparty, probability, loss)
            fees += mediator.fee
        return probability, loss, fees

    def expected_utility(self) -> float:
        probability, loss, fees = self.effective_profile()
        return probability * self.value - (1.0 - probability) * loss - fees

    def worth_doing(self) -> bool:
        return self.expected_utility() > 0
