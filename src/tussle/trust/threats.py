"""Threats: the "genuine bad guys" of §V-B.

"Most users would prefer to have nothing to do with the bad guys. They
would like protection from system penetration attacks, DoS attacks, and
so on."

:class:`Attacker` generates attack packets (scans, penetration attempts,
floods) addressed at victims; :class:`ThreatCampaign` runs a seeded mixed
workload of attack and legitimate traffic through a forwarding engine so
E05 can measure, per firewall design, the attack admission rate alongside
the new-application success rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence, Tuple

from ..netsim.forwarding import ForwardingEngine
from ..netsim.packets import Packet, make_packet

__all__ = ["AttackKind", "Attacker", "TrafficMix", "ThreatCampaign"]


class AttackKind(Enum):
    """The attack classes the paper names."""

    SCAN = "scan"
    PENETRATION = "penetration"
    DOS_FLOOD = "dos-flood"


@dataclass
class Attacker:
    """A source of attack traffic.

    Attack packets imitate whatever application gets through: scans use
    shifting ports, penetration attempts target well-known services, and
    floods use whatever is cheap. The ``application`` labels carry ground
    truth so admission can be measured exactly.
    """

    name: str
    kind: AttackKind = AttackKind.PENETRATION
    seed: int = 0

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def generate(self, victim: str, count: int) -> List[Packet]:
        packets = []
        for _ in range(count):
            if self.kind is AttackKind.SCAN:
                application = self.rng.choice(["http", "smtp", "dns", "generic"])
            elif self.kind is AttackKind.PENETRATION:
                application = self.rng.choice(["http", "smtp"])
            else:
                application = "generic"
            packet = make_packet(self.name, victim, application=application)
            packet.payload = {"attack": self.kind.value}
            packets.append(packet)
        return packets


@dataclass
class TrafficMix:
    """Outcome counts of a threat campaign."""

    attacks_sent: int = 0
    attacks_admitted: int = 0
    legit_sent: int = 0
    legit_admitted: int = 0
    new_app_sent: int = 0
    new_app_admitted: int = 0

    @property
    def attack_admission_rate(self) -> float:
        return self.attacks_admitted / self.attacks_sent if self.attacks_sent else 0.0

    @property
    def legit_success_rate(self) -> float:
        return self.legit_admitted / self.legit_sent if self.legit_sent else 0.0

    @property
    def new_app_success_rate(self) -> float:
        """The innovation metric: do *novel* applications get through?"""
        return self.new_app_admitted / self.new_app_sent if self.new_app_sent else 0.0


class ThreatCampaign:
    """Runs a mixed workload of attack / known-app / new-app traffic.

    Parameters
    ----------
    engine:
        Forwarding engine with whatever firewall deployment is under test.
    victim:
        Destination all traffic is addressed to.
    attackers:
        Attack sources.
    legit_senders:
        (sender, application) pairs for established applications.
    new_app_senders:
        (sender, application) pairs for *novel* applications (names must
        not collide with well-known ports so classification fails open or
        closed depending on the firewall design).
    """

    def __init__(
        self,
        engine: ForwardingEngine,
        victim: str,
        attackers: Sequence[Attacker],
        legit_senders: Sequence[Tuple[str, str]],
        new_app_senders: Sequence[Tuple[str, str]] = (),
    ):
        self.engine = engine
        self.victim = victim
        self.attackers = list(attackers)
        self.legit_senders = list(legit_senders)
        self.new_app_senders = list(new_app_senders)

    def run(self, packets_per_source: int = 10) -> TrafficMix:
        mix = TrafficMix()
        for attacker in self.attackers:
            for packet in attacker.generate(self.victim, packets_per_source):
                receipt = self.engine.send(packet)
                mix.attacks_sent += 1
                if receipt.delivered:
                    mix.attacks_admitted += 1
        for sender, application in self.legit_senders:
            for _ in range(packets_per_source):
                receipt = self.engine.send(
                    make_packet(sender, self.victim, application=application)
                )
                mix.legit_sent += 1
                if receipt.delivered:
                    mix.legit_admitted += 1
        for sender, application in self.new_app_senders:
            for _ in range(packets_per_source):
                receipt = self.engine.send(
                    make_packet(sender, self.victim, application=application)
                )
                mix.new_app_sent += 1
                if receipt.delivered:
                    mix.new_app_admitted += 1
        return mix
