"""Identity: a framework for talking about identity, not a single scheme.

"There are lots of ways that parties choose to identify themselves to each
other, many of which will be private to the parties, based on role rather
than individual name, etc. What is needed is a framework that translates
these diverse ways into lower level network actions that control access.
This implies a framework for talking about identity, not a single
identity scheme" (§V-B-1).

Also: "A compromise outcome of this tussle might be that if you are trying
to act in an anonymous way, it should be hard to disguise this fact."
:meth:`IdentityFramework.apparent_scheme` implements that compromise —
disguised anonymity is detected with high probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from ..errors import TrustError

__all__ = ["IdentityScheme", "Principal", "IdentityFramework"]


class IdentityScheme(Enum):
    """The diverse ways parties identify themselves."""

    REAL_NAME = "real-name"
    PSEUDONYM = "pseudonym"
    ROLE = "role"                  # "based on role rather than individual name"
    CERTIFICATE = "certificate"    # vouched by a third party
    ANONYMOUS = "anonymous"

    @property
    def accountable(self) -> bool:
        """Can actions under this scheme be traced to a responsible party?"""
        return self in (IdentityScheme.REAL_NAME, IdentityScheme.CERTIFICATE)


@dataclass
class Principal:
    """A party as seen by the identity framework.

    Attributes
    ----------
    scheme:
        The identity scheme the principal actually uses.
    disguised_as:
        An anonymous principal may *claim* another scheme; the framework
        makes such disguise hard to sustain.
    roles:
        Role names for ROLE-scheme principals.
    vouched_by:
        Certificate issuer name for CERTIFICATE principals.
    """

    name: str
    scheme: IdentityScheme
    disguised_as: Optional[IdentityScheme] = None
    roles: Set[str] = field(default_factory=set)
    vouched_by: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scheme is IdentityScheme.CERTIFICATE and not self.vouched_by:
            raise TrustError(
                f"certificate principal {self.name!r} needs a voucher"
            )
        if self.disguised_as is not None and self.scheme is not IdentityScheme.ANONYMOUS:
            raise TrustError("only anonymous principals can be disguised")

    @property
    def claimed_scheme(self) -> IdentityScheme:
        return self.disguised_as or self.scheme


class IdentityFramework:
    """Registers principals and translates identities into access inputs.

    Parameters
    ----------
    disguise_detection_rate:
        Probability that a disguised-anonymous principal is unmasked per
        observation — the "hard to disguise" design point. 1.0 means
        disguise always fails.
    seed:
        Seeds detection randomness.
    """

    def __init__(self, disguise_detection_rate: float = 0.9, seed: int = 0):
        if not 0.0 <= disguise_detection_rate <= 1.0:
            raise TrustError("detection rate must be a probability")
        self.disguise_detection_rate = disguise_detection_rate
        self.rng = random.Random(seed)
        self._principals: Dict[str, Principal] = {}
        self._trusted_vouchers: Set[str] = set()

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, principal: Principal) -> Principal:
        if principal.name in self._principals:
            raise TrustError(f"duplicate principal {principal.name!r}")
        self._principals[principal.name] = principal
        return principal

    def principal(self, name: str) -> Principal:
        try:
            return self._principals[name]
        except KeyError:
            raise TrustError(f"unknown principal {name!r}") from None

    def trust_voucher(self, voucher: str) -> None:
        """Mark a certificate issuer as trusted by this framework."""
        self._trusted_vouchers.add(voucher)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def apparent_scheme(self, name: str) -> IdentityScheme:
        """The scheme an observer perceives.

        A disguised anonymous principal is unmasked with probability
        ``disguise_detection_rate``; otherwise the claimed scheme shows.
        """
        principal = self.principal(name)
        if principal.disguised_as is None:
            return principal.scheme
        if self.rng.random() < self.disguise_detection_rate:
            return IdentityScheme.ANONYMOUS
        return principal.disguised_as

    def accountability_level(self, name: str) -> float:
        """A [0, 1] accountability score for access decisions.

        REAL_NAME and trusted CERTIFICATE score 1; untrusted certificates
        0.6; pseudonyms 0.4 (persistent but unlinkable); roles 0.5;
        anonymous 0.
        """
        principal = self.principal(name)
        scheme = self.apparent_scheme(name)
        if scheme is IdentityScheme.REAL_NAME:
            return 1.0
        if scheme is IdentityScheme.CERTIFICATE:
            if principal.vouched_by in self._trusted_vouchers:
                return 1.0
            return 0.6
        if scheme is IdentityScheme.ROLE:
            return 0.5
        if scheme is IdentityScheme.PSEUDONYM:
            return 0.4
        return 0.0

    def principals(self) -> List[Principal]:
        return [self._principals[k] for k in sorted(self._principals)]
