"""Trust-aware firewalls and the who-sets-policy tussle (§V-B).

"Firewalls that provide trust-mediated transparency must be designed so
that they apply constraints based on who is communicating, as well as (or
instead of) what protocols are being run... Along with this device must be
protocols and interfaces to allow the end node and the control point to
communicate about the desired controls."

:class:`TrustAwareFirewall` is a middlebox that admits traffic by the
*identity and trust* of the communicating parties rather than by port —
so a new application from a trusted party passes (innovation preserved)
while an untrusted party's traffic is dropped regardless of port.

:class:`ControlChannel` is the MIDCOM-like protocol: endpoints request
pinholes; whether a request is honoured depends on :class:`PolicyAuthority`
("Who gets to set the policy in the firewall?... All we can design is the
space for the tussle"), and whether installed rules are *visible* to the
affected user is an explicit design flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from ..errors import TrustError
from ..netsim.middlebox import Action, Middlebox, Verdict
from ..netsim.packets import Packet
from .identity import IdentityFramework
from .trustgraph import TrustGraph

__all__ = [
    "PolicyAuthority",
    "PinholeRequest",
    "TrustAwareFirewall",
    "ControlChannel",
]


class PolicyAuthority(Enum):
    """Who is 'in charge' of the firewall's policy."""

    END_USER = "end-user"
    ADMINISTRATOR = "administrator"
    NEGOTIATED = "negotiated"  # both must concur (the OPES/IAB position)


@dataclass
class PinholeRequest:
    """An endpoint's request to permit a flow through the firewall."""

    requester: str
    src: str
    dst: str
    application: str
    granted: Optional[bool] = None
    reason: str = ""


class TrustAwareFirewall(Middlebox):
    """A firewall deciding on *who*, not *what port*.

    Parameters
    ----------
    protected:
        The party (endpoint name) whose traffic this firewall mediates.
    trust_graph / identities:
        The trust substrate consulted per packet.
    trust_threshold:
        Minimum effective trust (protected -> sender) to admit traffic.
    accountability_floor:
        Minimum identity accountability; anonymous senders score 0 and
        are refused when the floor is positive (the §V-B-1 outcome:
        "many people will choose not to communicate with you").
    authority:
        Who may change policy via the control channel.
    rules_visible:
        Whether an affected end user may download and examine the rules
        — the paper's visibility-of-decision-making question.
    """

    def __init__(
        self,
        name: str,
        protected: str,
        trust_graph: TrustGraph,
        identities: Optional[IdentityFramework] = None,
        trust_threshold: float = 0.5,
        accountability_floor: float = 0.0,
        authority: PolicyAuthority = PolicyAuthority.END_USER,
        rules_visible: bool = True,
        discloses: bool = True,
    ):
        super().__init__(name, discloses=discloses)
        self.protected = protected
        self.trust_graph = trust_graph
        self.identities = identities
        self.trust_threshold = trust_threshold
        self.accountability_floor = accountability_floor
        self.authority = authority
        self.rules_visible = rules_visible
        self.pinholes: Set[Tuple[str, str]] = set()  # (src, dst) always allowed
        self.blocklist: Set[str] = set()

    # ------------------------------------------------------------------
    # Packet processing
    # ------------------------------------------------------------------
    def process(self, packet: Packet) -> Verdict:
        wire = packet.wire_header
        sender = wire.src
        if (sender, wire.dst) in self.pinholes:
            return self._record(packet, Verdict(Action.FORWARD, packet=packet))
        if sender in self.blocklist:
            return self._record(
                packet, Verdict(Action.DROP, reason=f"{sender!r} blocklisted")
            )
        # Traffic not addressed to/from the protected party is transit.
        if self.protected not in (wire.src, wire.dst):
            return self._record(packet, Verdict(Action.FORWARD, packet=packet))
        counterparty = wire.src if wire.dst == self.protected else wire.dst
        if counterparty == self.protected:
            return self._record(packet, Verdict(Action.FORWARD, packet=packet))

        if self.identities is not None:
            try:
                accountability = self.identities.accountability_level(counterparty)
            except TrustError:
                accountability = 0.0
            if accountability < self.accountability_floor:
                return self._record(
                    packet,
                    Verdict(Action.DROP,
                            reason=f"insufficient accountability "
                                   f"({accountability:.2f} < {self.accountability_floor:.2f})"),
                )
        trust = self.trust_graph.trust(self.protected, counterparty)
        if trust >= self.trust_threshold:
            return self._record(packet, Verdict(Action.FORWARD, packet=packet))
        return self._record(
            packet,
            Verdict(Action.DROP,
                    reason=f"trust {trust:.2f} below threshold {self.trust_threshold:.2f}"),
        )

    # ------------------------------------------------------------------
    # Rule inspection (visibility of decision-making)
    # ------------------------------------------------------------------
    def download_rules(self, requester: str) -> List[str]:
        """The paper's question: can the end user examine the rules?

        Visible-rule firewalls answer anyone affected; otherwise only the
        administrator-side gets them, and end users receive an empty list
        (a courtesy withheld).
        """
        if not self.rules_visible and requester == self.protected \
                and self.authority is PolicyAuthority.ADMINISTRATOR:
            return []
        rules = [
            f"admit if trust >= {self.trust_threshold:.2f}",
            f"admit if accountability >= {self.accountability_floor:.2f}",
        ]
        rules.extend(f"pinhole {src}->{dst}" for src, dst in sorted(self.pinholes))
        rules.extend(f"block {party}" for party in sorted(self.blocklist))
        return rules


class ControlChannel:
    """MIDCOM-like control protocol between endpoints and the firewall.

    Requests are granted according to the firewall's
    :class:`PolicyAuthority`:

    * END_USER — the protected party's own requests are honoured;
    * ADMINISTRATOR — only the named administrator's requests are;
    * NEGOTIATED — a request needs *both* the protected party and the
      administrator to have approved the same flow.
    """

    def __init__(self, firewall: TrustAwareFirewall, administrator: str = "admin"):
        self.firewall = firewall
        self.administrator = administrator
        self.requests: List[PinholeRequest] = []
        self._pending_approvals: Dict[Tuple[str, str, str], Set[str]] = {}

    def request_pinhole(self, requester: str, src: str, dst: str,
                        application: str = "generic") -> PinholeRequest:
        request = PinholeRequest(requester=requester, src=src, dst=dst,
                                 application=application)
        authority = self.firewall.authority
        if authority is PolicyAuthority.END_USER:
            allowed = requester == self.firewall.protected
            request.reason = ("end-user authority" if allowed
                              else "only the protected end user may open pinholes")
        elif authority is PolicyAuthority.ADMINISTRATOR:
            allowed = requester == self.administrator
            request.reason = ("administrator authority" if allowed
                              else "only the administrator may open pinholes")
        else:
            key = (src, dst, application)
            approvers = self._pending_approvals.setdefault(key, set())
            if requester in (self.firewall.protected, self.administrator):
                approvers.add(requester)
            allowed = {self.firewall.protected, self.administrator} <= approvers
            request.reason = (
                "both parties concurred" if allowed
                else f"awaiting concurrence (have {sorted(approvers)})"
            )
        request.granted = allowed
        if allowed:
            self.firewall.pinholes.add((src, dst))
        self.requests.append(request)
        return request

    def grant_rate(self) -> float:
        if not self.requests:
            return 0.0
        return sum(1 for r in self.requests if r.granted) / len(self.requests)
