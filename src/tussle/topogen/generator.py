"""Deterministic tiered internet generator.

Builds :class:`~tussle.netsim.topology.Network` objects with the shape
the paper's routing tussles play out on (§V-A-4): a clique of tier-1
core providers peering with each other, regional tier-2 transit networks
buying transit from the core, stub/access ASes multihoming into their
region's transit nets, and IXP meeting points where co-located members
peer.  Optionally each AS gets an intra-AS Waxman router graph whose
highest-betweenness routers are assigned the ``core`` role (the border
routers that carry inter-AS links).

Determinism contract
--------------------
``generate_internet(config, seed)`` is a pure function: the same
``(config, seed)`` always yields a byte-identical canonical JSON graph
(see :mod:`tussle.topogen.canonical`; the CI ``topogen`` job double-runs
the CLI and compares bytes).  All randomness flows from the explicit
``seed`` through per-stage substreams (``rng.getrandbits``), so adding a
draw to one wiring stage cannot reorder the draws of another.

Valley-free contract
--------------------
Provider->customer edges form a DAG by construction (tier-1s have no
providers, tier-2s buy only from tier-1s, stubs only from tier-2s), so
Gao-Rexford policies are guaranteed convergent and every stub can reach
every other AS (customer routes climb to the tier-1 clique, the clique
peers, provider routes descend).  ``python -m tussle.topogen check``
asserts the resulting selected paths are valley-free across seeds.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Dict, List, Sequence, Tuple

from ..errors import TopogenError
from ..netsim.topology import Network, NodeKind, Relationship
from .config import TopogenConfig

__all__ = ["generate_internet", "waxman_graph", "betweenness_centrality",
           "core_routers"]

#: Inter-AS link latency by the lower tier number of the two endpoints.
_INTER_AS_LATENCY = {1: 0.02, 2: 0.015, 3: 0.01}
#: Link capacity (bits/s) by the lower tier number of the two endpoints.
_INTER_AS_CAPACITY = {1: 1e10, 2: 1e9, 3: 1e8}


def _substream(rng: random.Random) -> random.Random:
    """An independent per-stage RNG derived from the master stream."""
    return random.Random(rng.getrandbits(63))


# ----------------------------------------------------------------------
# Intra-AS router graphs
# ----------------------------------------------------------------------
def waxman_graph(
    n: int, rng: random.Random, alpha: float = 0.4, beta: float = 0.2,
) -> Tuple[List[Tuple[float, float]], List[Tuple[int, int]]]:
    """A connected Waxman(alpha, beta) graph on ``n`` unit-square points.

    Edge probability is ``alpha * exp(-d / (beta * L))`` with ``L`` the
    unit square's diameter.  Connectivity is guaranteed by linking any
    point that drew no edge to an earlier point to its nearest earlier
    neighbour, so the construction stays deterministic (no rejection
    loops) and single-component.
    """
    if n < 1:
        raise TopogenError("waxman graph needs at least one node")
    points = [(rng.random(), rng.random()) for _ in range(n)]
    diameter = math.sqrt(2.0)
    edges: List[Tuple[int, int]] = []
    for j in range(1, n):
        xj, yj = points[j]
        attached = False
        nearest, nearest_d = 0, float("inf")
        for i in range(j):
            xi, yi = points[i]
            d = math.hypot(xj - xi, yj - yi)
            if d < nearest_d:
                nearest, nearest_d = i, d
            if rng.random() < alpha * math.exp(-d / (beta * diameter)):
                edges.append((i, j))
                attached = True
        if not attached:
            edges.append((nearest, j))
    return points, edges


def betweenness_centrality(n: int, edges: Sequence[Tuple[int, int]]) -> List[float]:
    """Brandes betweenness for a small undirected graph (exact, unscaled)."""
    adj: List[List[int]] = [[] for _ in range(n)]
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    centrality = [0.0] * n
    for source in range(n):
        stack: List[int] = []
        preds: List[List[int]] = [[] for _ in range(n)]
        sigma = [0] * n
        sigma[source] = 1
        dist = [-1] * n
        dist[source] = 0
        queue = deque([source])
        while queue:
            v = queue.popleft()
            stack.append(v)
            for w in adj[v]:
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        delta = [0.0] * n
        while stack:
            w = stack.pop()
            for v in preds[w]:
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
            if w != source:
                centrality[w] += delta[w]
    return centrality


def core_routers(n: int, edges: Sequence[Tuple[int, int]],
                 percentile: int) -> List[int]:
    """Indices of the top-``percentile``% routers by betweenness (min 1).

    Ties break toward the lower index so role assignment is a pure
    function of the graph.
    """
    centrality = betweenness_centrality(n, edges)
    ranked = sorted(range(n), key=lambda i: (-centrality[i], i))
    count = max(1, round(n * percentile / 100))
    return sorted(ranked[:count])


# ----------------------------------------------------------------------
# The generator
# ----------------------------------------------------------------------
def generate_internet(config: TopogenConfig = TopogenConfig(),
                      seed: int = 0) -> Network:
    """Generate a tiered internet as a pure function of (config, seed).

    The returned network carries:

    * AS-level: every AS with ``tier`` set and metadata ``region`` (all
      tiers), ``ixps`` (tier-1/2 members), plus Gao-Rexford business
      relationships;
    * node-level (per ``config.router_detail``): Waxman router graphs
      with metadata ``role`` (``core``/``edge``) and unit-square ``pos``,
      and one inter-AS link per business relationship between the two
      ASes' lowest-numbered core routers.
    """
    master = random.Random(seed)
    # One substream per wiring stage, drawn in a fixed order so a new
    # draw in one stage never shifts another stage's sequence.
    rng_regions = _substream(master)
    rng_ixp = _substream(master)
    rng_t2 = _substream(master)
    rng_stub = _substream(master)
    rng_routers = _substream(master)

    net = Network()
    tier1 = list(range(1, config.n_tier1 + 1))
    tier2 = list(range(config.n_tier1 + 1,
                       config.n_tier1 + config.n_tier2 + 1))
    stubs = list(range(config.n_tier1 + config.n_tier2 + 1,
                       config.n_tier1 + config.n_tier2 + config.n_stub + 1))

    # --- Regions: tier-2s round-robin (every region gets transit),
    # stubs drawn uniformly.
    region_of: Dict[int, int] = {}
    for position, asn in enumerate(tier2):
        region_of[asn] = position % config.n_regions
    for asn in stubs:
        region_of[asn] = rng_regions.randrange(config.n_regions)
    tier2_by_region: Dict[int, List[int]] = {r: [] for r in range(config.n_regions)}
    for asn in tier2:
        tier2_by_region[region_of[asn]].append(asn)

    for asn in tier1:
        net.add_as(asn, tier=1, region=-1, ixps=[])
    for asn in tier2:
        net.add_as(asn, tier=2, region=region_of[asn], ixps=[])
    for asn in stubs:
        net.add_as(asn, tier=3, region=region_of[asn])

    related = set()

    def relate(a: int, b: int, rel: Relationship) -> bool:
        key = (a, b) if a <= b else (b, a)
        if a == b or key in related:
            return False
        related.add(key)
        net.add_as_relationship(a, b, rel)
        return True

    # --- Tier-1 clique: full peer mesh.
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            relate(a, b, Relationship.PEER_PEER)

    # --- IXP membership: region-homed meeting points.
    ixp_region = {ixp: ixp % config.n_regions for ixp in range(config.n_ixps)}
    ixp_members: Dict[int, List[int]] = {ixp: [] for ixp in range(config.n_ixps)}
    all_ixps = list(range(config.n_ixps))
    for asn in tier1:
        joined = sorted(rng_ixp.sample(
            all_ixps, min(config.ixp_connections, config.n_ixps)))
        net.autonomous_system(asn).metadata["ixps"] = joined
        for ixp in joined:
            ixp_members[ixp].append(asn)
    for asn in tier2:
        local = [i for i in all_ixps if ixp_region[i] == region_of[asn]]
        pool = local if local else all_ixps
        count = min(1 + (rng_ixp.random() < 0.3), len(pool))
        joined = sorted(rng_ixp.sample(pool, count))
        net.autonomous_system(asn).metadata["ixps"] = joined
        for ixp in joined:
            ixp_members[ixp].append(asn)

    # --- Tier-2 transit from the core, plus regional peering.
    for asn in tier2:
        n_providers = 1 + (rng_t2.random() < config.t2_multihome_p)
        for provider in rng_t2.sample(tier1, min(n_providers, len(tier1))):
            relate(asn, provider, Relationship.CUSTOMER_PROVIDER)
    for region in range(config.n_regions):
        locals_ = tier2_by_region[region]
        for i, a in enumerate(locals_):
            for b in locals_[i + 1:]:
                if rng_t2.random() < config.t2_peer_p:
                    relate(a, b, Relationship.PEER_PEER)

    # --- IXP peering: co-located members meet and (sometimes) peer.
    for ixp in all_ixps:
        members = ixp_members[ixp]
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if rng_ixp.random() < config.ixp_peer_p:
                    relate(a, b, Relationship.PEER_PEER)

    # --- Stubs multihome into their region's transit nets.
    for asn in stubs:
        pool = tier2_by_region[region_of[asn]]
        n_providers = 1 + (rng_stub.random() < config.stub_multihome_p)
        for provider in rng_stub.sample(pool, min(n_providers, len(pool))):
            relate(asn, provider, Relationship.CUSTOMER_PROVIDER)

    # --- Intra-AS router graphs + inter-AS border links.
    _build_router_level(net, config, tier1, tier2, stubs, rng_routers)
    return net


def _routered_tiers(config: TopogenConfig) -> Tuple[int, ...]:
    if config.router_detail == "none":
        return ()
    if config.router_detail == "core":
        return (1, 2)
    return (1, 2, 3)


def _build_router_level(net: Network, config: TopogenConfig,
                        tier1: List[int], tier2: List[int],
                        stubs: List[int], rng: random.Random) -> None:
    tiers = _routered_tiers(config)
    if not tiers:
        return
    sizes = {1: config.routers_tier1, 2: config.routers_tier2,
             3: config.routers_stub}
    border_of: Dict[int, str] = {}
    for tier, asns in ((1, tier1), (2, tier2), (3, stubs)):
        if tier not in tiers:
            continue
        lo, hi = sizes[tier]
        for asn in asns:
            n_routers = rng.randint(lo, hi)
            points, edges = waxman_graph(
                n_routers, rng, config.waxman_alpha, config.waxman_beta)
            cores = core_routers(n_routers, edges, config.core_percentile)
            core_set = set(cores)
            names = [f"as{asn}-r{i}" for i in range(n_routers)]
            for i, name in enumerate(names):
                net.add_node(
                    name, kind=NodeKind.ROUTER, asn=asn,
                    role="core" if i in core_set else "edge",
                    pos=[points[i][0], points[i][1]])
            for a, b in edges:
                (xa, ya), (xb, yb) = points[a], points[b]
                net.add_link(names[a], names[b],
                             latency=0.001 + 0.01 * math.hypot(xb - xa, yb - ya),
                             capacity=_INTER_AS_CAPACITY[tier])
            border_of[asn] = names[cores[0]]
    # One physical link per business relationship whose two ASes both
    # have routers, joining their lowest-numbered core routers.
    for autonomous in net.ases:
        asn = autonomous.asn
        if asn not in border_of:
            continue
        for neighbor in sorted(net.as_neighbors(asn)):
            if neighbor <= asn or neighbor not in border_of:
                continue
            tier = min(autonomous.tier, net.autonomous_system(neighbor).tier)
            net.add_link(border_of[asn], border_of[neighbor],
                         latency=_INTER_AS_LATENCY[tier],
                         capacity=_INTER_AS_CAPACITY[tier])
