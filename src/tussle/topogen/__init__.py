"""tussle.topogen — internet-scale tiered topology generation.

The subsystem has four faces:

* :mod:`~tussle.topogen.generator` — deterministic tiered internets
  (tier-1 clique, regional transit, multihomed stubs, IXP peering,
  Waxman intra-AS router graphs);
* :mod:`~tussle.topogen.caida` — CAIDA as-rel file loading, so measured
  AS graphs run through the same pipeline;
* :mod:`~tussle.topogen.canonical` — the canonical JSON graph document
  (the determinism-gate currency and interchange format);
* :mod:`~tussle.topogen.presets` — the small hand-built workload
  networks experiments share.

Quickstart::

    python -m tussle.topogen gen --ases 1000 --seed 0
"""

from .caida import dump_caida, infer_tiers, load_caida, parse_caida
from .canonical import (GRAPH_SCHEMA, graph_from_dict, graph_from_json,
                        graph_to_dict, graph_to_json)
from .config import ROUTER_DETAIL_LEVELS, TopogenConfig
from .generator import (betweenness_centrality, core_routers,
                        generate_internet, waxman_graph)

__all__ = [
    "TopogenConfig",
    "ROUTER_DETAIL_LEVELS",
    "generate_internet",
    "waxman_graph",
    "betweenness_centrality",
    "core_routers",
    "GRAPH_SCHEMA",
    "graph_to_dict",
    "graph_to_json",
    "graph_from_dict",
    "graph_from_json",
    "parse_caida",
    "load_caida",
    "dump_caida",
    "infer_tiers",
]
