"""Canonical JSON form of a topology (the determinism-gate currency).

``graph_to_json`` flattens a :class:`~tussle.netsim.topology.Network`
into one canonical JSON document (sorted keys, compact separators,
exact floats — see :func:`tussle.canon.canonical_json`): two topologies
are byte-identical iff they are the same graph.  The CI ``topogen`` job
generates the 10^3-AS graph twice at one seed and compares bytes.

``graph_from_dict`` inverts the flattening, so graphs can be generated
once, shipped as JSON, and re-hydrated by sweep workers or external
tools.  Round-trip contract::

    graph_to_json(graph_from_dict(json.loads(text))) == text

Infinite link capacity (the scalar default, meaning "uncongested") is
encoded as JSON ``null`` — strict canonical JSON has no ``Infinity``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..canon import canonical_json
from ..errors import TopogenError
from ..netsim.topology import Link, Network, NodeKind, Relationship

__all__ = ["GRAPH_SCHEMA", "graph_to_dict", "graph_to_json",
           "graph_from_dict", "graph_from_json"]

#: Bumped when the graph document layout changes incompatibly.
GRAPH_SCHEMA = 1


def _capacity_out(value: float) -> Any:
    return None if value == float("inf") else value


def _capacity_in(value: Any) -> float:
    return float("inf") if value is None else float(value)


def graph_to_dict(network: Network, generator: Dict[str, Any] = None) -> Dict[str, Any]:
    """Flatten a network into a canonically-serialisable document.

    ``generator`` optionally records provenance (generator name, knob
    values, seed) inside the document, so a graph file is self-describing.
    """
    ases = [
        {"asn": a.asn, "name": a.name, "tier": a.tier,
         "metadata": dict(sorted(a.metadata.items()))}
        for a in network.ases
    ]
    relationships: List[List[Any]] = []
    seen = set()
    for a in network.ases:
        for provider in sorted(network.providers_of(a.asn)):
            relationships.append([a.asn, provider,
                                  Relationship.CUSTOMER_PROVIDER.value])
        for peer in sorted(network.peers_of(a.asn)):
            key = (min(a.asn, peer), max(a.asn, peer), "peer")
            if key not in seen:
                seen.add(key)
                relationships.append([key[0], key[1],
                                      Relationship.PEER_PEER.value])
        for sibling in sorted(network.siblings_of(a.asn)):
            key = (min(a.asn, sibling), max(a.asn, sibling), "sibling")
            if key not in seen:
                seen.add(key)
                relationships.append([key[0], key[1],
                                      Relationship.SIBLING.value])
    relationships.sort()
    nodes = [
        {"name": n.name, "kind": n.kind.value, "asn": n.asn,
         "metadata": dict(sorted(n.metadata.items()))}
        for n in sorted(network.nodes, key=lambda n: n.name)
    ]
    links = [
        {"a": link.key()[0], "b": link.key()[1], "latency": link.latency,
         "capacity": _capacity_out(link.capacity), "cost": link.cost,
         "up": link.up, "metadata": dict(sorted(link.metadata.items()))}
        for link in sorted(network.links, key=Link.key)
    ]
    document: Dict[str, Any] = {
        "schema": GRAPH_SCHEMA,
        "ases": ases,
        "relationships": relationships,
        "nodes": nodes,
        "links": links,
    }
    if generator is not None:
        document["generator"] = dict(generator)
    return document


def graph_to_json(network: Network, generator: Dict[str, Any] = None) -> str:
    """Canonical JSON text of :func:`graph_to_dict`."""
    return canonical_json(graph_to_dict(network, generator))


def graph_from_dict(document: Dict[str, Any]) -> Network:
    """Re-hydrate a network from its canonical document."""
    if not isinstance(document, dict) or "ases" not in document:
        raise TopogenError("not a topology document (missing 'ases')")
    schema = document.get("schema")
    if schema != GRAPH_SCHEMA:
        raise TopogenError(
            f"topology document schema {schema!r} != supported {GRAPH_SCHEMA}")
    net = Network()
    for entry in document["ases"]:
        node = net.add_as(entry["asn"], name=entry.get("name", ""),
                          tier=entry.get("tier", 3))
        node.metadata.update(entry.get("metadata", {}))
    try:
        relationships = [
            (a, b, Relationship(value))
            for a, b, value in document.get("relationships", [])
        ]
    except ValueError as exc:
        raise TopogenError(f"unknown relationship kind: {exc}") from None
    for a, b, rel in relationships:
        net.add_as_relationship(a, b, rel)
    for entry in document.get("nodes", []):
        node = net.add_node(entry["name"], kind=NodeKind(entry["kind"]),
                            asn=entry.get("asn"))
        node.metadata.update(entry.get("metadata", {}))
    for entry in document.get("links", []):
        link = net.add_link(entry["a"], entry["b"],
                            latency=entry.get("latency", 0.01),
                            capacity=_capacity_in(entry.get("capacity")),
                            cost=entry.get("cost", 1.0))
        link.up = entry.get("up", True)
        link.metadata.update(entry.get("metadata", {}))
    return net


def graph_from_json(text: str) -> Network:
    """Inverse of :func:`graph_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TopogenError(f"topology document is not JSON: {exc}") from exc
    return graph_from_dict(document)
