"""CAIDA-style AS-relationship loader.

Real AS graphs ship as CAIDA *as-rel* files: one ``provider|customer|-1``
or ``peer|peer|0`` triple per line, ``#`` comments.  This module parses
that format into the same :class:`~tussle.netsim.topology.Network`
business graph the generator emits, so experiments and the fast path
run unchanged on measured topologies.

Tier inference (CAIDA files carry no tiers): an AS with no providers
and at least one customer is tier 1 (transit-free core); an AS with
both providers and customers is tier 2; everything else — pure stubs
and relationship-less islands — is tier 3.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Tuple, Union

from ..errors import TopogenError
from ..netsim.topology import Network, Relationship

__all__ = ["parse_caida", "load_caida", "dump_caida", "infer_tiers"]

#: CAIDA relationship codes.
_PROVIDER_CUSTOMER = -1
_PEER_PEER = 0


def parse_caida(lines: Iterable[str]) -> Network:
    """Build a network from CAIDA as-rel lines.

    ``a|b|-1`` records ``a`` as the *provider* of ``b`` (CAIDA's p2c
    orientation); ``a|b|0`` records a peering.  Duplicate triples are
    tolerated; conflicting triples for the same pair raise.
    """
    net = Network()
    seen = {}
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) != 3:
            raise TopogenError(
                f"line {lineno}: expected 'a|b|rel', got {line!r}")
        try:
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError:
            raise TopogenError(
                f"line {lineno}: non-integer field in {line!r}") from None
        if a == b:
            raise TopogenError(f"line {lineno}: self-relationship for AS {a}")
        if rel not in (_PROVIDER_CUSTOMER, _PEER_PEER):
            raise TopogenError(
                f"line {lineno}: unknown relationship code {rel} "
                f"(expected -1 provider-customer or 0 peer-peer)")
        for asn in (a, b):
            if not net.has_as(asn):
                net.add_as(asn)
        # Normalize to a direction-stable key: p2c keeps (provider,
        # customer) order, peering sorts the pair.
        if rel == _PROVIDER_CUSTOMER:
            key, kind = (a, b), "p2c"
        else:
            key, kind = (min(a, b), max(a, b)), "p2p"
        previous = seen.get((min(a, b), max(a, b)))
        if previous is not None:
            if previous == (key, kind):
                continue
            raise TopogenError(
                f"line {lineno}: conflicting relationship for "
                f"AS{a}-AS{b} ({previous[1]} vs {kind})")
        seen[(min(a, b), max(a, b))] = (key, kind)
        if kind == "p2c":
            # add_as_relationship names the customer first.
            net.add_as_relationship(b, a, Relationship.CUSTOMER_PROVIDER)
        else:
            net.add_as_relationship(a, b, Relationship.PEER_PEER)
    infer_tiers(net)
    return net


def load_caida(path: Union[str, Path]) -> Network:
    """Parse a CAIDA as-rel file from disk."""
    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise TopogenError(f"cannot read {source}: {exc}") from exc
    return parse_caida(text.splitlines())


def dump_caida(network: Network) -> str:
    """Serialise a network's business graph back to as-rel lines.

    Round-trip contract: ``dump_caida(parse_caida(dump_caida(n).splitlines()))
    == dump_caida(n)``.  Sibling relationships have no CAIDA encoding and
    raise.
    """
    triples: List[Tuple[int, int, int]] = []
    for autonomous in network.ases:
        asn = autonomous.asn
        if network.siblings_of(asn):
            raise TopogenError(
                f"AS {asn} has sibling relationships; the CAIDA as-rel "
                f"format cannot express them")
        for customer in sorted(network.customers_of(asn)):
            triples.append((asn, customer, _PROVIDER_CUSTOMER))
        for peer in sorted(network.peers_of(asn)):
            if asn < peer:
                triples.append((asn, peer, _PEER_PEER))
    triples.sort()
    return "\n".join(f"{a}|{b}|{rel}" for a, b, rel in triples) + "\n"


def infer_tiers(network: Network) -> None:
    """Assign tiers in place from the relationship structure."""
    for autonomous in network.ases:
        providers = network.providers_of(autonomous.asn)
        customers = network.customers_of(autonomous.asn)
        if not providers and customers:
            autonomous.tier = 1
        elif providers and customers:
            autonomous.tier = 2
        else:
            autonomous.tier = 3
