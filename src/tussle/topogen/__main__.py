"""CLI for the topology generator: generate, gate, and inspect graphs.

``python -m tussle.topogen gen --ases 1000 --seed 0`` writes the
canonical JSON graph document to stdout (or ``--out``).
``python -m tussle.topogen check --ases 1000 --seeds 0 1 2 3 4`` is the
CI gate: per seed it generates twice asserting byte-identical canonical
JSON, converges valley-free routing, and verifies every selected path
obeys Gao-Rexford export rules and every stub pair is connected.
``python -m tussle.topogen load PATH`` ingests a CAIDA as-rel file or a
canonical JSON document and prints its shape.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .caida import load_caida
from .canonical import graph_from_json, graph_to_json
from .config import ROUTER_DETAIL_LEVELS, TopogenConfig
from .generator import generate_internet

__all__ = ["main"]


def _config_from_args(args: argparse.Namespace) -> TopogenConfig:
    overrides = {"n_ases": args.ases, "router_detail": args.router_detail}
    if args.regions is not None:
        overrides["n_regions"] = args.regions
    if args.ixps is not None:
        overrides["n_ixps"] = args.ixps
    return TopogenConfig(**overrides)


def _stats_lines(net) -> List[str]:
    tiers = {1: 0, 2: 0, 3: 0}
    for autonomous in net.ases:
        tiers[autonomous.tier] = tiers.get(autonomous.tier, 0) + 1
    n_p2c = sum(len(net.providers_of(a.asn)) for a in net.ases)
    n_peer = sum(len(net.peers_of(a.asn)) for a in net.ases) // 2
    return [
        f"ases: {len(net.ases)} (tier1={tiers.get(1, 0)} "
        f"tier2={tiers.get(2, 0)} stub={tiers.get(3, 0)})",
        f"relationships: {n_p2c} provider-customer, {n_peer} peer",
        f"routers: {len(net.nodes)} nodes, {len(net.links)} links",
    ]


def _cmd_gen(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    net = generate_internet(config, seed=args.seed)
    provenance = {"name": "tussle.topogen", "seed": args.seed,
                  "params": config.to_params()}
    text = graph_to_json(net, generator=provenance)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {len(text)} canonical bytes to {args.out}")
    if args.stats:
        for line in _stats_lines(net):
            print(line)
    elif not args.out:
        print(text)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from ..routing.policies import is_valley_free
    from ..scale.vrouting import CLASS_NONE, converge_valley_free

    config = _config_from_args(args)
    failures = 0
    for seed in args.seeds:
        first = graph_to_json(generate_internet(config, seed=seed))
        second = graph_to_json(generate_internet(config, seed=seed))
        if first != second:
            print(f"[FAIL] seed={seed}: two runs differ "
                  f"({len(first)} vs {len(second)} bytes)")
            failures += 1
            continue
        net = graph_from_json(first)
        stubs = [a.asn for a in net.ases if a.tier == 3]
        sample = stubs[:: max(1, len(stubs) // args.sample)][: args.sample]
        rib = converge_valley_free(net, destinations=sample)
        bad_paths = 0
        unreachable = 0
        for dst in sample:
            column = rib.column_of(dst)
            for row, asn in enumerate(rib.index.asns):
                if rib.cls[row, column] == CLASS_NONE:
                    unreachable += 1
                    continue
                path = rib.as_path(int(asn), dst)
                if not is_valley_free(net, path):
                    bad_paths += 1
        if bad_paths or unreachable:
            print(f"[FAIL] seed={seed}: {bad_paths} valley violations, "
                  f"{unreachable} unreachable (AS, stub) pairs")
            failures += 1
        else:
            print(f"[ok] seed={seed}: byte-identical ({len(first)} bytes), "
                  f"{len(sample)} stub columns valley-free and "
                  f"fully reachable")
    print(f"check: {len(args.seeds) - failures}/{len(args.seeds)} "
          f"seed(s) clean")
    return 1 if failures else 0


def _cmd_load(args: argparse.Namespace) -> int:
    path = Path(args.path)
    text = path.read_text(encoding="utf-8")
    if text.lstrip().startswith("{"):
        net = graph_from_json(text)
    else:
        net = load_caida(path)
    for line in _stats_lines(net):
        print(line)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tussle.topogen",
        description="Deterministic tiered internet topology generation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_shape(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--ases", type=int, default=1000,
                         help="total AS count (default 1000)")
        cmd.add_argument("--router-detail", choices=ROUTER_DETAIL_LEVELS,
                         default="core",
                         help="which tiers get router graphs (default core)")
        cmd.add_argument("--regions", type=int, default=None,
                         help="number of geographic regions")
        cmd.add_argument("--ixps", type=int, default=None,
                         help="number of IXP meeting points")

    gen = sub.add_parser("gen", help="generate one graph as canonical JSON")
    add_shape(gen)
    gen.add_argument("--seed", type=int, default=0, help="generator seed")
    gen.add_argument("--out", help="write to this path instead of stdout")
    gen.add_argument("--stats", action="store_true",
                     help="print a shape summary instead of the document")

    check = sub.add_parser(
        "check", help="determinism + valley-free gate over seeds")
    add_shape(check)
    check.add_argument("--seeds", type=int, nargs="+",
                       default=[0, 1, 2, 3, 4],
                       help="seeds to gate (default 0..4)")
    check.add_argument("--sample", type=int, default=10,
                       help="stub destinations sampled per seed (default 10)")

    load = sub.add_parser(
        "load", help="ingest a CAIDA as-rel file or canonical JSON document")
    load.add_argument("path", help="file to load")

    args = parser.parse_args(argv)
    if args.command == "gen":
        return _cmd_gen(args)
    if args.command == "check":
        return _cmd_check(args)
    return _cmd_load(args)


if __name__ == "__main__":
    sys.exit(main())
