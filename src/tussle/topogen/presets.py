"""Shared topology fixtures for experiments, tests and benchmarks.

Before this module, E04, R01, R02 and E05 each hand-built their own
workload network inline, and tests re-typed the same graphs; every copy
was one more place a topology tweak could drift.  Each preset here is
the single definition of one reference workload:

* :func:`e04_reference_graph` — the seeded 3/6/12 hierarchical AS graph
  E04 compares routing-control regimes on;
* :func:`multihomed_user_network` — R01's dual-provider user (primary
  3-hop path through provider A, 4-hop standby through provider B);
* :func:`flaky_provider_network` — R02's single chain whose provider
  link flaps;
* :func:`guarded_enterprise_network` — E05's victim-behind-a-gateway
  firewall workload;
* :func:`stub_pairs` — the deterministic stub-to-stub traffic pairing
  E04 and T01 both measure over.

The constants R01 needs to classify faults (which nodes belong to the
providers, which links are on the primary path) live next to the
builder so topology and classification cannot drift apart.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..netsim.topology import Network, NodeKind, random_as_graph

__all__ = [
    "e04_reference_graph",
    "multihomed_user_network",
    "MULTIHOMED_PROVIDER_NODES",
    "MULTIHOMED_PRIMARY_LINKS",
    "flaky_provider_network",
    "FLAKY_PROVIDER_NODES",
    "guarded_enterprise_network",
    "stub_pairs",
]

#: Nodes inside either provider of :func:`multihomed_user_network`.
MULTIHOMED_PROVIDER_NODES = ("aE", "aC", "bE", "bX", "bC")
#: Links on its primary (provider-A) path, in canonical key order.
MULTIHOMED_PRIMARY_LINKS = (("aC", "aE"), ("aC", "dst"), ("aE", "u"))

#: Provider nodes of :func:`flaky_provider_network`.
FLAKY_PROVIDER_NODES = ("p1", "p2")


def e04_reference_graph(seed: int = 5,
                        rng: Optional[random.Random] = None) -> Network:
    """The seeded hierarchical AS graph E04 runs its four regimes on.

    Three tier-1s in a full peer mesh, six tier-2 transit nets, twelve
    multihoming stubs — small enough to enumerate paths by hand, rich
    enough that provider policy actually bites.
    """
    if rng is None:
        rng = random.Random(seed)
    return random_as_graph(n_tier1=3, n_tier2=6, n_tier3=12, rng=rng)


def multihomed_user_network() -> Network:
    """R01's workload: user ``u`` multihomed through providers A and B.

    Provider A is the 3-hop primary (``u``-``aE``-``aC``-``dst``);
    provider B the 4-hop standby (``u``-``bE``-``bX``-``bC``-``dst``),
    so shortest-path routing prefers A and re-convergence falls back
    to B.
    """
    net = Network()
    for name in ("u", "aE", "aC", "bE", "bX", "bC", "dst"):
        net.add_node(name)
    net.add_link("u", "aE")
    net.add_link("aE", "aC")
    net.add_link("aC", "dst")
    net.add_link("u", "bE")
    net.add_link("bE", "bX")
    net.add_link("bX", "bC")
    net.add_link("bC", "dst")
    return net


def flaky_provider_network() -> Network:
    """R02's workload: one chain ``u``-``p1``-``p2``-``dst``.

    No standby path on purpose: when the provider link flaps, retry is
    the user's only remedy, which is exactly what R02 measures.
    """
    net = Network()
    for name in ("u", "p1", "p2", "dst"):
        net.add_node(name)
    net.add_link("u", "p1")
    net.add_link("p1", "p2")
    net.add_link("p2", "dst")
    return net


def guarded_enterprise_network() -> Network:
    """E05's workload: a victim host behind a gateway middlebox.

    Five sources (two legitimate, one stranger, two attackers) reach
    ``victim`` only through ``internet`` -> ``gw``, so the gateway is
    the one place firewall policy can act.
    """
    net = Network()
    net.add_node("victim", kind=NodeKind.HOST)
    net.add_node("gw", kind=NodeKind.MIDDLEBOX)
    net.add_node("internet", kind=NodeKind.ROUTER)
    for name in ("friend", "colleague", "stranger", "badguy0", "badguy1"):
        net.add_node(name, kind=NodeKind.HOST)
        net.add_link(name, "internet")
    net.add_link("internet", "gw")
    net.add_link("gw", "victim")
    return net


def stub_pairs(network: Network, count: int) -> List[Tuple[int, int]]:
    """Deterministic stub-to-stub (src, dst) pairs, half the ring apart.

    Pairs each tier-3 AS with the stub halfway around the (ASN-ordered)
    stub list, the pairing E04 introduced; shared so T01 measures the
    same traffic shape at 10^2-10^3 ASes.
    """
    stubs = [a.asn for a in network.ases if a.tier == 3]
    pairs: List[Tuple[int, int]] = []
    for i, src in enumerate(stubs):
        dst = stubs[(i + len(stubs) // 2) % len(stubs)]
        if src != dst:
            pairs.append((src, dst))
        if len(pairs) >= count:
            break
    return pairs
