"""Topology-generation knobs.

One frozen dataclass holds every structural knob of the tiered internet
generator so a topology is a pure function of ``(config, seed)``.  The
defaults produce the 10^3-AS graph the T01/T02 experiments and the CI
determinism gate use; the CLI (``python -m tussle.topogen gen``) exposes
the most-travelled knobs as flags.

Scaling behaviour: tier populations are *fractions* of ``n_ases`` so the
same config shape describes 10^2 smoke graphs and 10^4 stress graphs.
Router-level detail is opt-in per tier (``router_detail``) because a
10^4-AS run usually wants the AS-level business graph only.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple

from ..errors import TopogenError

__all__ = ["TopogenConfig", "ROUTER_DETAIL_LEVELS"]

#: Which ASes get an intra-AS Waxman router graph.
#: ``none``: business graph only; ``core``: tier-1 and tier-2 ASes;
#: ``all``: every AS including stubs.
ROUTER_DETAIL_LEVELS = ("none", "core", "all")


@dataclass(frozen=True)
class TopogenConfig:
    """Structural knobs of the tiered internet generator.

    Attributes
    ----------
    n_ases:
        Total AS count across all tiers.
    tier1_fraction / transit_fraction:
        Share of ASes that are tier-1 core (min 3, full peer clique) and
        tier-2 regional transit; the remainder are stub/access ASes.
    n_regions:
        Geographic regions; tier-2s and stubs attach within a region.
    n_ixps:
        Internet exchange points (meeting rooms where co-located members
        peer); assigned round-robin to regions.
    t2_multihome_p / stub_multihome_p:
        Probability that a tier-2 (stub) buys transit from a second
        tier-1 (tier-2).
    t2_peer_p:
        Probability that two tier-2s in the same region peer directly.
    ixp_peer_p:
        Probability that two co-located IXP members peer.
    ixp_connections:
        IXPs each tier-1 attaches to.
    router_detail:
        Which tiers get intra-AS Waxman router graphs (see
        :data:`ROUTER_DETAIL_LEVELS`).
    waxman_alpha / waxman_beta:
        Waxman edge-probability parameters ``alpha * exp(-d / (beta * L))``.
    routers_tier1 / routers_tier2 / routers_stub:
        Inclusive ``(lo, hi)`` router counts per AS of that tier.
    core_percentile:
        Percentage of each AS's routers (by betweenness centrality)
        assigned the ``core`` role; the rest are ``edge``.
    """

    n_ases: int = 1000
    tier1_fraction: float = 0.01
    transit_fraction: float = 0.15
    n_regions: int = 5
    n_ixps: int = 8
    t2_multihome_p: float = 0.5
    stub_multihome_p: float = 0.4
    t2_peer_p: float = 0.15
    ixp_peer_p: float = 0.3
    ixp_connections: int = 2
    router_detail: str = "core"
    waxman_alpha: float = 0.4
    waxman_beta: float = 0.2
    routers_tier1: Tuple[int, int] = (8, 12)
    routers_tier2: Tuple[int, int] = (4, 6)
    routers_stub: Tuple[int, int] = (2, 3)
    core_percentile: int = 20

    def __post_init__(self) -> None:
        if self.n_ases < 20:
            raise TopogenError(
                f"n_ases={self.n_ases}: the tiered generator needs at "
                f"least 20 ASes (use netsim.random_as_graph for toys)")
        if not 0.0 < self.tier1_fraction < 0.5:
            raise TopogenError("tier1_fraction must be in (0, 0.5)")
        if not 0.0 < self.transit_fraction < 0.9:
            raise TopogenError("transit_fraction must be in (0, 0.9)")
        if self.n_regions < 1:
            raise TopogenError("need at least one region")
        if self.n_ixps < 1:
            raise TopogenError("need at least one IXP")
        if self.router_detail not in ROUTER_DETAIL_LEVELS:
            raise TopogenError(
                f"router_detail {self.router_detail!r} not one of "
                f"{ROUTER_DETAIL_LEVELS}")
        if self.n_tier2 < 2 * self.n_regions:
            raise TopogenError(
                f"{self.n_tier2} tier-2 ASes cannot cover {self.n_regions} "
                f"regions with the 2-per-region floor stub multihoming "
                f"needs; shrink n_regions or raise transit_fraction")
        for name in ("routers_tier1", "routers_tier2", "routers_stub"):
            lo, hi = getattr(self, name)
            if not 1 <= lo <= hi:
                raise TopogenError(f"{name}=({lo}, {hi}) is not a valid "
                                   f"inclusive range")
        if not 1 <= self.core_percentile <= 100:
            raise TopogenError("core_percentile must be in [1, 100]")
        _ = self.n_stub  # fractions must leave room for stubs; raises if not

    # ------------------------------------------------------------------
    # Derived tier populations
    # ------------------------------------------------------------------
    @property
    def n_tier1(self) -> int:
        return max(3, round(self.n_ases * self.tier1_fraction))

    @property
    def n_tier2(self) -> int:
        return max(2 * self.n_regions, round(self.n_ases * self.transit_fraction))

    @property
    def n_stub(self) -> int:
        n = self.n_ases - self.n_tier1 - self.n_tier2
        if n < 1:
            raise TopogenError(
                f"tier fractions leave no stub ASes "
                f"({self.n_tier1} tier-1 + {self.n_tier2} tier-2 of "
                f"{self.n_ases})")
        return n

    def to_params(self) -> Dict[str, object]:
        """Canonically-serialisable knob dict (embedded in graph JSON)."""
        out: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = list(value) if isinstance(value, tuple) else value
        return out
