"""Canonical JSON: the package's one bit-stable serialisation.

Lives at the package root with no dependencies beyond :mod:`tussle.errors`
so that leaf subsystems (``resil``, ``sweep``, ``experiments``) can all
share the same bytes without importing each other.
:mod:`tussle.experiments.common` re-exports :func:`canonical_json` for
backwards compatibility.
"""

from __future__ import annotations

import json
from typing import Any

from .errors import ExperimentError

__all__ = ["canonical_json"]


def canonical_json(payload: Any) -> str:
    """Bit-stable canonical JSON: sorted keys, compact separators.

    Floats are emitted via ``repr`` (Python's shortest round-trip decimal
    form), so the exact IEEE-754 value survives a dump/load cycle and the
    same payload always yields the same bytes.  NaN/inf are rejected —
    they would not round-trip through strict JSON parsers.
    """
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                          ensure_ascii=True, allow_nan=False)
    except ValueError as exc:
        raise ExperimentError(
            f"payload is not canonically serialisable: {exc}") from exc
