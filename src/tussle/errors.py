"""Exception hierarchy for the :mod:`tussle` framework.

All exceptions raised by the framework derive from :class:`TussleError`, so
callers can catch framework failures without masking programming errors such
as ``TypeError``.
"""

from __future__ import annotations


class TussleError(Exception):
    """Base class for every error raised by the tussle framework."""


class SimulationError(TussleError):
    """An invariant of the discrete-event simulator was violated."""


class TopologyError(TussleError):
    """A topology operation referenced a missing node/link or was malformed."""


class RoutingError(TussleError):
    """Route computation or forwarding failed."""


class AddressingError(TussleError):
    """Address allocation, renumbering, or lookup failed."""


class MarketError(TussleError):
    """An economic-market operation was invalid (e.g. negative price)."""


class GameError(TussleError):
    """A game-theory object was malformed or a solver failed to converge."""


class PolicyError(TussleError):
    """A policy expression failed to parse or evaluate."""


class PolicyParseError(PolicyError):
    """The policy source text is not valid in the policy language."""


class OntologyError(PolicyError):
    """A policy referenced terms outside the bounded ontology."""


class TrustError(TussleError):
    """A trust / identity operation failed."""


class ActorNetworkError(TussleError):
    """An actor-network operation referenced unknown actors or commitments."""


class DesignError(TussleError):
    """A design object (modules, boundaries, interfaces) was malformed."""


class ExperimentError(TussleError):
    """An experiment harness was configured inconsistently."""


class MetricsError(SimulationError, ValueError):
    """A metrics counter or time series was used inconsistently.

    Also a :class:`ValueError` so callers that predate the taxonomy keep
    working.
    """


class VisibilityError(RoutingError, ValueError):
    """A tussle-visibility score was out of range or unknown.

    Also a :class:`ValueError` so callers that predate the taxonomy keep
    working.
    """


class LintError(TussleError):
    """The static analyzer was misconfigured or given unreadable input."""


class SweepError(TussleError):
    """A sweep specification, cache, or executor was used inconsistently."""


class ObservabilityError(TussleError):
    """A trace, metrics, or profiling operation was invalid."""


class ResilienceError(TussleError):
    """A fault plan, retry schedule, or breaker was used inconsistently."""


class ScaleError(TussleError):
    """A vectorized backend was misused or failed its parity contract."""


class PeeringError(TussleError):
    """A peering valuation, bargain, or fixed-point loop was misused."""


class TopogenError(TopologyError):
    """A topology-generation config, loader, or gate was used inconsistently.

    Also a :class:`TopologyError`, since every topogen failure is
    ultimately about producing or consuming a malformed topology.
    """
