"""Learning dynamics: how tussles evolve over repeated interaction.

"There is no 'final outcome' of these interactions, no stable point"
(§I) — except when there is: learning dynamics show which tussle games
settle and which churn. Provides fictitious play, (discrete-time)
replicator dynamics and best-response dynamics for 2-player games.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import GameError
from ..obs.runtime import current as _obs_current
from .games import NormalFormGame
from .nash import best_response

__all__ = [
    "LearningResult",
    "fictitious_play",
    "replicator_dynamics",
    "best_response_dynamics",
]


@dataclass
class LearningResult:
    """Outcome of a learning run.

    ``converged`` means the empirical strategies stopped moving within
    tolerance before the iteration budget ran out; ``trajectory`` records
    the (row, col) strategy pair each sampling interval.
    """

    strategies: Tuple[np.ndarray, np.ndarray]
    converged: bool
    iterations: int
    trajectory: List[Tuple[np.ndarray, np.ndarray]] = field(default_factory=list)

    def cycle_detected(self) -> bool:
        """Heuristic: did the trajectory revisit an earlier point?"""
        if len(self.trajectory) < 4 or self.converged:
            return False
        last = self.trajectory[-1]
        for earlier in self.trajectory[:-2]:
            if (np.allclose(earlier[0], last[0], atol=1e-3)
                    and np.allclose(earlier[1], last[1], atol=1e-3)):
                return True
        return False


def _check_two_player(game: NormalFormGame) -> Tuple[np.ndarray, np.ndarray]:
    if game.n_players != 2:
        raise GameError("learning dynamics implemented for 2-player games")
    return np.asarray(game.payoffs[0], float), np.asarray(game.payoffs[1], float)


def _observe_run(dynamics: str, result: LearningResult) -> LearningResult:
    """Record one learning run (span over iterations) and pass it through."""
    ctx = _obs_current()
    if ctx.tracer.enabled:
        span = ctx.tracer.begin("gametheory.learning", dynamics, 0.0)
        span.end(float(result.iterations), iterations=result.iterations,
                 converged=result.converged)
    if ctx.metrics.enabled:
        scope = ctx.metrics.scope("gametheory.learning")
        scope.counter("runs").inc()
        scope.counter("iterations").inc(result.iterations)
        scope.counter("converged_runs").inc(1 if result.converged else 0)
    return result


def fictitious_play(
    game: NormalFormGame,
    iterations: int = 2000,
    tolerance: float = 1e-3,
    sample_every: int = 50,
) -> LearningResult:
    """Classic fictitious play: best-respond to the opponent's empirical mix.

    Converges for zero-sum and many coordination games; cycles in e.g.
    matching pennies variants (Shapley), which the result reports.
    """
    a, b = _check_two_player(game)
    m, n = a.shape
    counts_row = np.zeros(m)
    counts_col = np.zeros(n)
    counts_row[0] = 1
    counts_col[0] = 1
    trajectory: List[Tuple[np.ndarray, np.ndarray]] = []
    previous: Optional[Tuple[np.ndarray, np.ndarray]] = None
    converged = False
    iterations_used = iterations

    for t in range(1, iterations + 1):
        x = counts_row / counts_row.sum()
        y = counts_col / counts_col.sum()
        row_action = best_response(game, 0, y)
        col_action = best_response(game, 1, x)
        counts_row[row_action] += 1
        counts_col[col_action] += 1
        if t % sample_every == 0:
            trajectory.append((x.copy(), y.copy()))
            if previous is not None:
                if (np.max(np.abs(previous[0] - x)) < tolerance
                        and np.max(np.abs(previous[1] - y)) < tolerance):
                    converged = True
                    iterations_used = t
                    break
            previous = (x.copy(), y.copy())

    x = counts_row / counts_row.sum()
    y = counts_col / counts_col.sum()
    return _observe_run("fictitious_play", LearningResult(
        strategies=(x, y),
        converged=converged,
        iterations=iterations_used,
        trajectory=trajectory,
    ))


def replicator_dynamics(
    game: NormalFormGame,
    iterations: int = 2000,
    step: float = 0.1,
    tolerance: float = 1e-7,
    initial: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    sample_every: int = 50,
) -> LearningResult:
    """Discrete-time two-population replicator dynamics.

    Models evolutionary tussle: strategies that do better than the
    population average grow. Used for the bounded-rationality view the
    paper cites (Binmore's evolutionary game theory).
    """
    a, b = _check_two_player(game)
    m, n = a.shape
    if initial is not None:
        x = np.asarray(initial[0], float).copy()
        y = np.asarray(initial[1], float).copy()
    else:
        # Slightly perturbed uniform start to break symmetric stalemates.
        x = np.full(m, 1.0 / m) + np.linspace(0, 1e-3, m)
        y = np.full(n, 1.0 / n) + np.linspace(1e-3, 0, n)
        x /= x.sum()
        y /= y.sum()

    trajectory: List[Tuple[np.ndarray, np.ndarray]] = []
    converged = False
    iterations_used = iterations

    for t in range(1, iterations + 1):
        fitness_row = a @ y
        fitness_col = x @ b
        avg_row = float(x @ fitness_row)
        avg_col = float(fitness_col @ y)
        new_x = x * (1.0 + step * (fitness_row - avg_row))
        new_y = y * (1.0 + step * (fitness_col - avg_col))
        new_x = np.maximum(new_x, 0.0)
        new_y = np.maximum(new_y, 0.0)
        if new_x.sum() <= 0 or new_y.sum() <= 0:
            break
        new_x /= new_x.sum()
        new_y /= new_y.sum()
        movement = max(np.max(np.abs(new_x - x)), np.max(np.abs(new_y - y)))
        x, y = new_x, new_y
        if t % sample_every == 0:
            trajectory.append((x.copy(), y.copy()))
        if movement < tolerance:
            converged = True
            iterations_used = t
            break

    return _observe_run("replicator_dynamics", LearningResult(
        strategies=(x, y),
        converged=converged,
        iterations=iterations_used,
        trajectory=trajectory,
    ))


def best_response_dynamics(
    game: NormalFormGame,
    iterations: int = 500,
    initial: Tuple[int, int] = (0, 0),
) -> LearningResult:
    """Alternating pure best-response dynamics.

    Converges to a pure Nash equilibrium when one is reachable; otherwise
    cycles (detected and reported). This is the paper's move/counter-move
    adaptation pattern in its purest form.
    """
    _check_two_player(game)
    m, n = game.n_actions
    row, col = initial
    if not (0 <= row < m and 0 <= col < n):
        raise GameError(f"initial profile {initial} out of range")
    trajectory: List[Tuple[np.ndarray, np.ndarray]] = []
    seen = {(row, col): 0}
    converged = False
    iterations_used = iterations

    for t in range(1, iterations + 1):
        y = np.zeros(n)
        y[col] = 1.0
        new_row = best_response(game, 0, y)
        x = np.zeros(m)
        x[new_row] = 1.0
        new_col = best_response(game, 1, x)
        x_vec = np.zeros(m)
        x_vec[new_row] = 1.0
        y_vec = np.zeros(n)
        y_vec[new_col] = 1.0
        trajectory.append((x_vec, y_vec))
        if (new_row, new_col) == (row, col):
            converged = True
            iterations_used = t
            break
        row, col = new_row, new_col
        if (row, col) in seen:
            iterations_used = t
            break  # cycle
        seen[(row, col)] = t

    x = np.zeros(m)
    x[row] = 1.0
    y = np.zeros(n)
    y[col] = 1.0
    return _observe_run("best_response_dynamics", LearningResult(
        strategies=(x, y),
        converged=converged,
        iterations=iterations_used,
        trajectory=trajectory,
    ))
